#!/usr/bin/env python3
"""Extending AutoComp with custom traits, filters and policies (NFR1).

The paper's framework is deliberately modular: traits, filters, ranking
policies, selectors and schedulers are all small strategy objects.  This
example adds, without touching framework code:

* a *workload-aware* trait reading a custom access-frequency statistic
  (the §8 "Workload Awareness" future direction);
* a filter that protects write-hot tables from risky compaction;
* a three-objective ranking policy that weighs access frequency alongside
  the paper's benefit/cost pair.

Run:  python examples/custom_strategy.py
"""

from repro import Catalog, Cluster, EngineSession, Schema, WeightedSumPolicy
from repro.core import (
    AutoCompPipeline,
    CandidateFilter,
    LstConnector,
    LstExecutionBackend,
    Objective,
    SequentialScheduler,
    TopKSelector,
)
from repro.core.candidates import CandidateKey, CandidateStatistics
from repro.core.traits import ComputeCostTrait, FileCountReductionTrait, Trait, BENEFIT
from repro.engine import MisconfiguredShuffleWriter
from repro.lst import Field
from repro.units import GiB, MiB


class AccessFrequencyTrait(Trait):
    """Benefit trait: queries/hour hitting the candidate.

    Hot tables gain more from compaction because every query pays the
    small-file tax.  The value comes from the connector's ``custom``
    statistics, showing how platform-specific signals flow through the
    standardized statistics layout (§4.1).
    """

    name = "access_frequency"
    direction = BENEFIT

    def compute(self, statistics: CandidateStatistics) -> float:
        return statistics.custom.get("access_frequency", 0.0)


class WriteHotTableFilter(CandidateFilter):
    """Drop candidates with very recent write activity (conflict shield)."""

    name = "write_hot"

    def __init__(self, quiet_s: float) -> None:
        self.quiet_s = quiet_s

    def keep(self, candidate, now):
        stats = candidate.statistics
        return stats is not None and now - stats.last_modified_at >= self.quiet_s


class WorkloadAwareConnector(LstConnector):
    """LstConnector + an access-frequency side channel.

    A real deployment would read query logs; here the workload registers
    its per-table access rates explicitly.
    """

    def __init__(self, catalog, access_rates):
        super().__init__(catalog)
        self.access_rates = access_rates

    def collect_statistics(self, key: CandidateKey) -> CandidateStatistics:
        base = super().collect_statistics(key)
        custom = dict(base.custom)
        custom["access_frequency"] = self.access_rates.get(key.qualified_table, 0.0)
        from dataclasses import replace

        return replace(base, custom=custom)


def main() -> None:
    catalog = Catalog()
    catalog.create_database("db")
    schema = Schema.of(Field("id", "long"), Field("v", "string"))
    session = EngineSession(
        Cluster("q", executors=8), telemetry=catalog.telemetry, clock=catalog.clock, seed=3
    )
    writer = MisconfiguredShuffleWriter(num_partitions=32)

    # Two equally fragmented tables; 'dashboard' is queried 50x more often.
    for name in ("dashboard", "archive"):
        table = catalog.create_table(f"db.{name}", schema)
        session.write(table, 128 * MiB, writer)
    access_rates = {"db.dashboard": 100.0, "db.archive": 2.0}

    connector = WorkloadAwareConnector(catalog, access_rates)
    backend = LstExecutionBackend(connector, Cluster("maint", executors=2))
    pipeline = AutoCompPipeline(
        connector=connector,
        backend=backend,
        traits=[
            FileCountReductionTrait(),
            ComputeCostTrait(executor_memory_gb=128.0, rewrite_bytes_per_hour=1 * GiB),
            AccessFrequencyTrait(),
        ],
        policy=WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.4, maximize=True),
                Objective("access_frequency", 0.4, maximize=True),
                Objective("compute_cost_gbhr", 0.2, maximize=False),
            ]
        ),
        selector=TopKSelector(1),  # budget for exactly one compaction
        scheduler=SequentialScheduler(),
        stats_filters=[WriteHotTableFilter(quiet_s=0.0)],
        telemetry=catalog.telemetry,
    )

    report = pipeline.run_cycle(now=catalog.clock.now)
    print("Workload-aware ranking with budget for ONE compaction:")
    print(f"  candidates : {report.candidates_generated}")
    print(f"  selected   : {[str(k) for k in report.selected]}")
    print(f"  files freed: {report.total_files_reduced}")
    chosen = str(report.selected[0])
    assert chosen == "db.dashboard", "hot table should win the budget"
    print("\nThe hot dashboard table won the slot — the archive table, with "
          "identical fragmentation, waits for a future cycle.")


if __name__ == "__main__":
    main()
