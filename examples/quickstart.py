#!/usr/bin/env python3
"""Quickstart: heal a fragmented table with one AutoComp cycle.

Builds a small data lake, fragments a table with a mis-tuned writer (the
paper's §2 scenario), then runs the paper's OpenHouse AutoComp
configuration — MOOP ranking with weights 0.7/0.3, top-k selection — and
shows the before/after effect on files, storage and query latency.

Run:  python examples/quickstart.py
"""

from repro import Catalog, Cluster, EngineSession, Schema, openhouse_pipeline
from repro.engine import MisconfiguredShuffleWriter
from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec
from repro.units import MiB, format_bytes


def main() -> None:
    # --- a catalog with one tenant database ---------------------------------
    catalog = Catalog()
    catalog.create_database("analytics", quota_objects=100_000)

    schema = Schema.of(
        Field("id", "long"),
        Field("event_date", "date"),
        Field("payload", "string"),
    )
    spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    table = catalog.create_table("analytics.events", schema, spec=spec)

    # --- an end-user job with a badly tuned shuffle -------------------------
    query_cluster = Cluster("query", executors=8)
    session = EngineSession(
        query_cluster, telemetry=catalog.telemetry, clock=catalog.clock, seed=1
    )
    writer = MisconfiguredShuffleWriter(num_partitions=64)
    for month in range(3):
        session.write(table, 256 * MiB, writer, partitions=(month,))

    print("After the mis-tuned writes:")
    print(f"  live data files : {table.data_file_count}")
    print(f"  small files     : {table.small_file_count()}")
    print(f"  table bytes     : {format_bytes(table.total_data_bytes)}")
    before = session.execute_read([(table, None)])
    print(f"  full-scan latency: {before.latency_s:.2f}s "
          f"({before.files_scanned} files opened)")

    # --- one AutoComp cycle ---------------------------------------------------
    catalog.clock.advance_by(2 * 3600)  # age past the recent-table filter
    pipeline = openhouse_pipeline(
        catalog,
        compaction_cluster=Cluster("compaction", executors=3),
        generation="hybrid",  # partition-scope candidates for this table
        k=10,
    )
    report = pipeline.run_cycle(now=catalog.clock.now)

    print("\nAutoComp cycle:")
    print(f"  candidates generated : {report.candidates_generated}")
    print(f"  selected             : {[str(k) for k in report.selected]}")
    print(f"  compactions succeeded: {report.successes}")
    print(f"  files reduced        : {report.total_files_reduced}")
    print(f"  compute spent        : {report.total_gbhr:.2f} GBHr")

    print("\nAfter compaction:")
    print(f"  live data files : {table.data_file_count}")
    after = session.execute_read([(table, None)])
    print(f"  full-scan latency: {after.latency_s:.2f}s "
          f"({after.files_scanned} files opened)")
    print(f"  speedup          : {before.latency_s / after.latency_s:.2f}x")


if __name__ == "__main__":
    main()
