#!/usr/bin/env python3
"""The LinkedIn production narrative at fleet scale (paper §7).

Simulates months of an OpenHouse-like deployment:

* months 0–3:  no compaction — small files pile up, quota pressure grows;
* months 4–8:  *manual* compaction — a fixed list of ~100 fragile tables
  compacted daily (diminishing returns once they are clean);
* month 9+:    AutoComp — the MOOP-ranked, quota-aware pipeline, first
  with a conservative fixed k, then budget-driven dynamic k.

Prints the Figure 10c/11b-style summary: normalised file count and HDFS
open() pressure falling at each rollout despite deployment growth.

Run:  python examples/openhouse_production.py
"""

from repro.analysis import normalize_series, sparkline
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetSimulator,
    ManualCompactionStrategy,
)


def main() -> None:
    config = FleetConfig(initial_tables=1500, onboarded_per_month=200, seed=2025)
    simulator = FleetSimulator(config)

    # Strategy schedule (days; one simulated month = 30 days).
    simulator.set_strategy(4 * 30, ManualCompactionStrategy(k=100))
    simulator.set_strategy(9 * 30, AutoCompStrategy(simulator.model, k=10))
    simulator.set_strategy(
        11 * 30, AutoCompStrategy(simulator.model, k=None, budget_gbhr=2_000.0)
    )
    simulator.run_days(12 * 30)

    telemetry = simulator.telemetry
    files = telemetry.series("fleet.total_files").values
    opens = telemetry.series("fleet.open_calls").values
    size = telemetry.series("fleet.deployment_size").values
    small = telemetry.series("fleet.small_file_fraction").values

    def monthly(values):
        return [values[min(m * 30, len(values) - 1)] for m in range(12)]

    print("Month-by-month (normalised):")
    print(f"  file count      {sparkline(normalize_series(monthly(files)))}")
    print(f"  open() calls    {sparkline(normalize_series(monthly(opens)))}")
    print(f"  deployment size {sparkline(normalize_series(monthly(size)))}")
    print(f"  %files <128MiB  {sparkline(monthly(small))}")
    print()
    print(f"  small-file share before any compaction : {max(small[:120]):.0%}")
    print(f"  after manual rollout (month 8)         : {small[8 * 30]:.0%}")
    print(f"  after AutoComp (month 12)              : {small[-1]:.0%}")

    accuracy = simulator.estimator_accuracy()
    print("\nEstimator accuracy across all compactions (paper: +28% / +19%):")
    print(f"  file-count reduction overestimated by {accuracy['reduction_overestimate']:.0%}")
    print(f"  compute cost underestimated by        {accuracy['cost_underestimate']:.0%}")

    reduced = simulator.weekly_totals("fleet.files_reduced")
    cost = simulator.weekly_totals("fleet.gbhr")
    print("\nWeekly files reduced (sparkline over 12 months):")
    print(f"  files reduced  {sparkline(reduced)}")
    print(f"  GBHr spent     {sparkline(cost)}")


if __name__ == "__main__":
    main()
