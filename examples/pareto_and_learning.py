#!/usr/bin/env python3
"""The §8 future directions, implemented: Pareto fronts, weight learning,
and Z-ordered layout-aware compaction.

Three mini-demos on one fragmented catalog:

1. **Pareto frontier** — instead of collapsing benefit and cost into one
   weighted score, enumerate the non-dominated candidates and pick the
   knee point (closest to utopia);
2. **Weight learning** — a feedback hook regresses realised
   files-per-GBHr and adapts the MOOP benefit weight across cycles;
3. **Z-ordered rewrite** — compaction output groups follow the Morton
   curve over a two-dimensional partition space, so adjacent regions land
   in adjacent files.

Run:  python examples/pareto_and_learning.py
"""

from repro import Catalog, Cluster, EngineSession, Schema
from repro.core import (
    AutoCompPipeline,
    LstConnector,
    LstExecutionBackend,
    Objective,
    ParetoFrontPolicy,
    ParetoObjective,
    SequentialScheduler,
    TopKSelector,
    WeightedSumPolicy,
    WeightLearner,
    knee_point,
)
from repro.core.traits import ComputeCostTrait, FileCountReductionTrait, TraitRegistry
from repro.engine import MisconfiguredShuffleWriter
from repro.lst import Field, IdentityTransform, PartitionField, PartitionSpec
from repro.lst.maintenance import execute_rewrite
from repro.lst.zorder import plan_zorder_rewrite, z_value
from repro.units import GiB, MiB


def build_world():
    catalog = Catalog()
    catalog.create_database("db")
    schema = Schema.of(Field("id", "long"), Field("region", "int"), Field("day", "int"))
    session = EngineSession(
        Cluster("q", executors=8), telemetry=catalog.telemetry, clock=catalog.clock, seed=11
    )
    # Tables with different benefit/cost profiles: more volume AND more
    # fragmentation as we go (so no candidate dominates the others).
    profiles = [("tiny_dust", 32, 16), ("midsize", 128, 48), ("heavy", 512, 160)]
    for name, volume_mib, partitions in profiles:
        table = catalog.create_table(f"db.{name}", schema)
        session.write(table, volume_mib * MiB, MisconfiguredShuffleWriter(partitions))
    return catalog, session


def demo_pareto(catalog):
    connector = LstConnector(catalog)
    traits = TraitRegistry(
        [
            FileCountReductionTrait(),
            ComputeCostTrait(executor_memory_gb=128.0, rewrite_bytes_per_hour=1 * GiB),
        ]
    )
    candidates = connector.observe(connector.list_candidates("table"))
    traits.annotate_all(candidates)

    objectives = [
        ParetoObjective("file_count_reduction", maximize=True),
        ParetoObjective("compute_cost_gbhr", maximize=False),
    ]
    policy = ParetoFrontPolicy(objectives, keep_dominated=True)
    ranked = policy.rank(candidates)
    knee = knee_point(candidates, objectives)

    print("Pareto view of the candidate space (benefit=ΔF_c, cost=GBHr):")
    for candidate in ranked:
        marker = "  <- knee" if candidate is knee else ""
        print(
            f"  {str(candidate.key):<14} ΔF={candidate.trait('file_count_reduction'):5.0f} "
            f"GBHr={candidate.trait('compute_cost_gbhr'):7.2f}{marker}"
        )


def demo_weight_learning(catalog, session):
    policy = WeightedSumPolicy(
        [
            Objective("file_count_reduction", 0.5, maximize=True),
            Objective("compute_cost_gbhr", 0.5, maximize=False),
        ]
    )
    learner = WeightLearner(policy, warmup_cycles=1, learning_rate=0.05)
    connector = LstConnector(catalog)
    pipeline = AutoCompPipeline(
        connector=connector,
        backend=LstExecutionBackend(connector, Cluster("m", executors=2)),
        traits=[
            FileCountReductionTrait(),
            ComputeCostTrait(executor_memory_gb=128.0, rewrite_bytes_per_hour=1 * GiB),
        ],
        policy=policy,
        selector=TopKSelector(1),
        scheduler=SequentialScheduler(),
        feedback_hooks=[learner.observe],
    )
    writer = MisconfiguredShuffleWriter(num_partitions=24)
    print("\nWeight learning across cycles (benefit weight starts at 0.50):")
    for cycle in range(4):
        # Fresh fragmentation arrives between cycles.
        table = catalog.load_table("db.midsize")
        session.write(table, 96 * MiB, writer)
        report = pipeline.run_cycle(now=float(cycle))
        print(
            f"  cycle {cycle}: reduced {report.total_files_reduced:4d} files "
            f"at {report.total_gbhr:6.2f} GBHr -> benefit weight "
            f"{learner.benefit_weight:.2f}"
        )
    fit = learner.regress_efficiency([])
    del fit


def demo_zorder(catalog, session):
    schema = Schema.of(Field("id", "long"), Field("region", "int"), Field("day", "int"))
    spec = PartitionSpec.of(
        PartitionField("region", IdentityTransform()),
        PartitionField("day", IdentityTransform()),
    )
    table = catalog.create_table("db.grid", schema, spec=spec)
    writer = MisconfiguredShuffleWriter(num_partitions=6)
    for region in range(4):
        for day in range(4):
            session.write(table, 24 * MiB, writer, partitions=(region, day))

    plan = plan_zorder_rewrite(
        table.live_files(), table.target_file_size, table=str(table.identifier)
    )
    execute_rewrite(table, plan)
    print("\nZ-ordered compaction over a 4x4 (region, day) grid:")
    print(f"  groups rewritten : {len(plan.groups)}")
    order = [g.partition for g in plan.groups[:8]]
    print(f"  first groups     : {order}")
    codes = [z_value(p) for p in (g.partition for g in plan.groups)]
    assert codes == sorted(codes)
    print("  group order follows the Morton curve — adjacent (region, day)")
    print("  cells are rewritten (and laid out) next to each other.")


def main() -> None:
    catalog, session = build_world()
    demo_pareto(catalog)
    demo_weight_learning(catalog, session)
    demo_zorder(catalog, session)


if __name__ == "__main__":
    main()
