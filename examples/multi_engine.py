#!/usr/bin/env python3
"""Cross-format compaction: one AutoComp over Iceberg AND Delta (NFR3).

Creates tables in both format profiles, fragments them identically, and
runs a single AutoComp pipeline across the mixed catalog.  Also
demonstrates the conflict-semantics difference the paper highlights in
§4.4: concurrent rewrites of distinct partitions *conflict* on the
Iceberg-v1.2.0 profile but *commit cleanly* on the Delta profile.

Run:  python examples/multi_engine.py
"""

from repro import Catalog, Cluster, EngineSession, Schema, Simulator, openhouse_pipeline
from repro.core import LstConnector, LstExecutionBackend, ParallelScheduler
from repro.core.candidates import Candidate, CandidateKey, CandidateScope
from repro.core.scheduling import CompactionTask
from repro.engine import MisconfiguredShuffleWriter
from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec
from repro.units import MiB


def build_catalog():
    catalog = Catalog()
    catalog.create_database("lake")
    schema = Schema.of(Field("id", "long"), Field("day", "date"))
    spec = PartitionSpec.of(PartitionField("day", MonthTransform()))
    iceberg = catalog.create_table("lake.ice", schema, spec=spec, table_format="iceberg")
    delta = catalog.create_table("lake.dlt", schema, spec=spec, table_format="delta")
    session = EngineSession(
        Cluster("q", executors=8), telemetry=catalog.telemetry, clock=catalog.clock, seed=7
    )
    writer = MisconfiguredShuffleWriter(num_partitions=24)
    for table in (iceberg, delta):
        for month in range(2):
            session.write(table, 96 * MiB, writer, partitions=(month,))
    return catalog, iceberg, delta


def partition_task(table, partition):
    ident = table.identifier
    key = CandidateKey(ident.database, ident.name, CandidateScope.PARTITION, partition)
    return CompactionTask(candidate=Candidate(key=key))


def demo_conflict_semantics(catalog, table, label):
    """Rewrite two distinct partitions *concurrently* and report outcomes."""
    connector = LstConnector(catalog)
    backend = LstExecutionBackend(connector, Cluster("maint", executors=2))
    simulator = Simulator(catalog.clock)
    results = []
    ParallelScheduler().schedule(
        [partition_task(table, (0,)), partition_task(table, (1,))],
        backend,
        simulator=simulator,
        on_result=results.append,
    )
    simulator.run()
    succeeded = sum(1 for r in results if r.success)
    conflicted = sum(1 for r in results if not r.success and not r.skipped)
    print(f"  {label:<22} concurrent partition rewrites: "
          f"{succeeded} committed, {conflicted} conflicted")
    for result in results:
        if result.conflict_reason:
            print(f"    conflict: {result.conflict_reason}")


def main() -> None:
    # --- one pipeline over a mixed-format catalog -----------------------------
    catalog, iceberg, delta = build_catalog()
    catalog.clock.advance_by(2 * 3600)
    pipeline = openhouse_pipeline(catalog, Cluster("compaction", executors=3), k=10)
    report = pipeline.run_cycle(now=catalog.clock.now)
    print("One AutoComp cycle over a mixed Iceberg+Delta catalog:")
    print(f"  selected: {[str(k) for k in report.selected]}")
    print(f"  iceberg files: {iceberg.data_file_count}, delta files: {delta.data_file_count}")

    # --- the §4.4 conflict-semantics contrast ---------------------------------
    print("\nConcurrent rewrites of DISTINCT partitions (the §4.4 quirk):")
    catalog2, iceberg2, delta2 = build_catalog()
    demo_conflict_semantics(catalog2, iceberg2, "Iceberg v1.2.0 profile")
    demo_conflict_semantics(catalog2, delta2, "Delta v2.4.0 profile")
    print("\nAutoComp's PartitionSerialScheduler exists precisely because of "
          "the Iceberg behaviour above.")


if __name__ == "__main__":
    main()
