#!/usr/bin/env python3
"""Policy Lab walkthrough: record once, replay deterministically, ask what-if.

The AutoComp evaluation is trace-driven (paper §6–§7): policies are judged
by replaying a realistic write workload and comparing file-count reduction
against GBHr cost.  This example runs the full loop:

1. record a month of fleet history (writes, compactions, cycles) into a
   versioned JSONL trace while a conservative AutoComp policy runs;
2. verify the replay guarantees — verbatim replay reconstructs the fleet
   exactly, and the same trace + variant yields byte-identical reports;
3. sweep a grid of policy variants over the recorded workload and print
   the ranked what-if comparison;
4. feed the winner back as offline priors: a warm start for the CFO
   auto-tuner and an efficiency prior for the weight learner;
5. close the deployment loop on the *catalog* plane: a live LST-catalog
   `AutoCompService` ring-buffers its own history and ranks candidate
   policies against it (`evaluate_recent`) — including a counterfactual
   2x-ingest perturbation — without re-running the live catalog.

Run:  PYTHONPATH=src python examples/policy_lab.py
"""

import io

from repro.core.autotune import CostFrugalOptimizer, Parameter
from repro.core.ranking import Objective, WeightedSumPolicy
from repro.core.weight_learning import WeightLearner
from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import (
    Perturbation,
    PolicyVariant,
    TraceRecorder,
    TraceReplayer,
    WhatIfRunner,
    variant_grid,
)
from repro.simulation import TapBus


def main() -> None:
    # 1. Record: a 300-table fleet runs 30 days under AutoComp k=10 with a
    # recorder subscribed to its event taps.
    taps = TapBus()
    config = FleetConfig(initial_tables=300, onboarded_per_month=40, seed=4242)
    trace_io = io.StringIO()
    recorder = TraceRecorder(trace_io, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=10))
    sim.run_days(30)
    recorder.close()
    print(f"recorded {recorder.events_recorded} events "
          f"({len(trace_io.getvalue()) // 1024} KiB of JSONL)")

    # 2. Replay guarantees.
    replayer = TraceReplayer(io.StringIO(trace_io.getvalue()))
    reconstructed = replayer.replay_verbatim()
    assert reconstructed.total_files == sim.model.total_files
    print(f"verbatim replay: {reconstructed.total_files} files — matches the live fleet")

    probe = PolicyVariant(name="probe", k=10)
    assert replayer.replay(probe).report_bytes() == replayer.replay(probe).report_bytes()
    print("what-if replay: byte-identical across repeated runs")

    # 3. What-if search: would different weights / budgets have done better?
    variants = variant_grid(benefit_weights=(0.5, 0.7, 0.9), ks=(5, 10, 25))
    report = WhatIfRunner(replayer.trace, variants).run()
    print(f"\nswept {len(variants)} variants over the recorded workload "
          f"({report.wall_s:.1f}s, {report.workers} workers):\n")
    print(report.render())

    # 4. Offline priors: warm-start the tuner from the what-if winner ...
    priors = report.to_priors()
    print(f"\npriors from the winner: {priors}")

    def objective(params):
        # Stand-in objective: replay the trace under the proposed knobs and
        # score negative efficiency (the tuner minimises).
        variant = PolicyVariant(
            name=f"tune-w{params['benefit_weight']:.3f}-k{params['k']:.0f}",
            benefit_weight=params["benefit_weight"],
            k=int(params["k"]),
        )
        result = TraceReplayer(replayer.trace).replay(variant)
        gbhr = result.total_gbhr
        return -(result.total_files_reduced / gbhr) if gbhr else 0.0

    tuned = CostFrugalOptimizer().optimize(
        objective,
        [Parameter("benefit_weight", 0.35, 0.95), Parameter("k", 2, 40, integer=True)],
        iterations=8,
        seed=7,
        warm_start=priors,
    )
    print(f"CFO warm-started at the winner; best after 8 trials: "
          f"{tuned.best_params} ({-tuned.best_objective:.1f} files/GBHr)")

    # ... and seed the online weight learner's expectation with the sweep's
    # efficiency distribution, so it adapts from its first live cycle.
    policy = WeightedSumPolicy(
        [
            Objective("file_count_reduction", 0.7, maximize=True),
            Objective("compute_cost_gbhr", 0.3, maximize=False),
        ]
    )
    learner = WeightLearner(policy, prior_efficiencies=report.prior_efficiencies())
    print(f"weight learner seeded with {len(report.prior_efficiencies())} offline "
          f"efficiency observations (warmup already satisfied)")
    del learner

    # 5. Deployment self-evaluation on the catalog plane.
    catalog_self_evaluation()


def catalog_self_evaluation() -> None:
    """A live §6-style catalog service judging policies on its own history."""
    from repro.catalog import Catalog
    from repro.core.service import AutoCompService, openhouse_pipeline
    from repro.engine import Cluster, EngineSession
    from repro.simulation import Simulator
    from repro.units import HOUR, MiB
    from repro.workloads import CabConfig, CabWorkload

    catalog = Catalog()
    cab = CabConfig(
        databases=2, data_bytes_per_db=256 * MiB, duration_s=4 * HOUR,
        lineitem_months=6, insert_bytes_mean=24 * MiB, shuffle_partitions=12,
        seed=99,
    )
    session = EngineSession(
        Cluster("query", executors=8), telemetry=catalog.telemetry,
        clock=catalog.clock, seed=cab.seed,
    )
    session.attach_filesystem(catalog.fs)
    workload = CabWorkload(catalog, session, cab)
    workload.load()
    simulator = Simulator(catalog.clock)
    workload.attach(simulator)

    service = AutoCompService(
        openhouse_pipeline(catalog, Cluster("compaction", executors=3),
                           k=10, min_table_age_s=0.0)
    )
    service.enable_history(segment_cycles=2, max_segments=4)
    for hour in range(1, 5):          # normal operation: hourly sync cycles
        simulator.run_until(hour * HOUR)
        service.run_cycle(now=catalog.clock.now)

    candidates = [
        PolicyVariant(name="k5", k=5),
        PolicyVariant(name="k25", k=25),
        PolicyVariant(name="quota-k10", ranking="quota_aware", k=10),
    ]
    recent = service.evaluate_recent(candidates, window=2)
    print("\nself-evaluation over the service's own last segments:\n")
    print(recent.render())

    surge = service.evaluate_recent(
        candidates, window=2, perturb=Perturbation(ingest_scale=2.0)
    )
    print(f"\nunder a counterfactual 2x-ingest surge the winner is "
          f"{surge.best().variant.name} "
          f"(vs {recent.best().variant.name} on the recorded workload)")


if __name__ == "__main__":
    main()
