#!/usr/bin/env python3
"""Auto-tuning compaction triggers (paper §6.3, Figure 9).

Uses the CFO-style optimiser (the offline stand-in for MLOS+FLAML) to tune
an optimize-after-write threshold on three LST-Bench-like workloads:

* TPC-DS WP1 — tuned compaction cuts end-to-end time (up to ~2×);
* TPC-DS WP3 — split read/write clusters: compaction consistently helps;
* TPC-H      — unpartitioned tables: the no-compaction default wins.

Run:  python examples/autotuning.py
"""

from repro.core import CostFrugalOptimizer, Parameter
from repro.core.traits import FileCountReductionTrait
from repro.workloads.lstbench import run_tpch, run_wp1, run_wp3


def tune(name, runner, iterations=12):
    def objective(params):
        run = runner(FileCountReductionTrait(), params["threshold"])
        return run.total_duration_s

    baseline = runner(None, 0.0).total_duration_s
    # Large initial step: the objective is flat near the low end of the
    # log-space, so small moves cannot escape the compact-after-every-write
    # plateau.
    result = CostFrugalOptimizer(initial_step=1.2).optimize(
        objective,
        [Parameter("threshold", 10, 5000, log=True, integer=True)],
        iterations=iterations,
        seed=42,
    )
    print(f"\n{name}")
    print(f"  no-compaction baseline : {baseline:8.0f} s")
    print(f"  best tuned threshold   : {result.best_params['threshold']:8.0f} files")
    print(f"  best tuned duration    : {result.best_objective:8.0f} s")
    print(f"  improvement            : {baseline / result.best_objective:8.2f} x")
    iterations_line = " ".join(f"{t.objective:.0f}" for t in result.trials)
    print(f"  per-iteration durations: {iterations_line}")
    return baseline, result


def main() -> None:
    print("Tuning optimize-after-write thresholds (CFO over log-space)...")
    wp1_base, wp1 = tune("TPC-DS WP1 (single cluster, frequent modifications)", run_wp1)
    wp3_base, wp3 = tune("TPC-DS WP3 (split read/write clusters)", run_wp3)

    def tpch_runner(trait, threshold):
        return run_tpch(trait, threshold, modification_rounds=10, queries=10)

    tpch_base, tpch = tune("TPC-H (unpartitioned tables)", tpch_runner)

    print("\nSummary (matches the Figure 9 conclusions):")
    print(f"  WP1 : tuned beats baseline by {wp1_base / wp1.best_objective:.2f}x")
    print(f"  WP3 : tuned beats baseline by {wp3_base / wp3.best_objective:.2f}x")
    verdict = "baseline (no auto-compaction) remains best" if (
        tpch.best_objective >= tpch_base * 0.98
    ) else "tuning found a win"
    print(f"  TPCH: {verdict}")


if __name__ == "__main__":
    main()
