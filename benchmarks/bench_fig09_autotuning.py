"""Figure 9: auto-tuning compaction triggers (§6.3).

Paper claims, per subplot:

* 9a — TPC-DS WP1 + small-file-count trigger: compaction helps when tables
  fragment; a tuned threshold reduces query time by up to 2×;
* 9b — TPC-H: the default (no auto-compaction) performs best — compaction
  rewrites whole unpartitioned tables and the modification phase dominates;
* 9c — TPC-DS WP1 + entropy trigger: behaves comparably to the
  file-count trigger;
* 9d — TPC-DS WP3: split read/write clusters see consistent benefits.

Each subplot runs the MLOS/FLAML-style CFO optimiser over the trigger
threshold; the y-axis of the paper's plots — end-to-end duration per
iteration — is printed per trial.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, sparkline
from repro.core import CostFrugalOptimizer, Parameter
from repro.core.traits import FileCountReductionTrait, FileEntropyTrait
from repro.workloads.lstbench import run_tpch, run_wp1, run_wp3

from benchmarks.harness import banner

ITERATIONS = 10


def _tune(runner, trait_factory):
    baseline = runner(None, 0.0).total_duration_s

    def objective(params):
        return runner(trait_factory(), params["threshold"]).total_duration_s

    result = CostFrugalOptimizer(initial_step=1.2).optimize(
        objective,
        [Parameter("threshold", 10, 5000, log=True, integer=True)],
        iterations=ITERATIONS,
        seed=42,
    )
    return baseline, result


SUBPLOTS = {
    "9a-wp1-filecount": (run_wp1, FileCountReductionTrait),
    "9b-tpch-filecount": (
        lambda trait, thr: run_tpch(trait, thr, modification_rounds=10, queries=10),
        FileCountReductionTrait,
    ),
    "9c-wp1-entropy": (run_wp1, FileEntropyTrait),
    "9d-wp3-filecount": (run_wp3, FileCountReductionTrait),
}

_results: dict[str, tuple[float, object]] = {}


@pytest.mark.parametrize("subplot", list(SUBPLOTS))
def test_fig09_tune_subplot(benchmark, subplot):
    runner, trait_factory = SUBPLOTS[subplot]
    baseline, result = benchmark.pedantic(
        _tune, args=(runner, trait_factory), rounds=1, iterations=1
    )
    _results[subplot] = (baseline, result)
    assert result.iterations == ITERATIONS


def test_fig09_summary(benchmark):
    for subplot in SUBPLOTS:
        if subplot not in _results:
            runner, trait_factory = SUBPLOTS[subplot]
            _results[subplot] = _tune(runner, trait_factory)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    print(
        banner(
            "Figure 9 — auto-tuning compaction trigger thresholds",
            "WP1 gains up to 2x from a tuned threshold (count & entropy "
            "triggers comparable); TPC-H is best left alone; WP3 benefits "
            "consistently",
        )
    )
    rows = []
    for subplot, (baseline, result) in _results.items():
        rows.append(
            [
                subplot,
                f"{baseline:.0f}s",
                f"{result.best_objective:.0f}s",
                f"{result.best_params['threshold']:.0f}",
                f"{baseline / result.best_objective:.2f}x",
                sparkline(result.objective_series()),
            ]
        )
    print(
        render_table(
            ["subplot", "no-comp baseline", "best tuned", "best thr", "speedup", "iterations"],
            rows,
        )
    )

    wp1_base, wp1 = _results["9a-wp1-filecount"]
    tpch_base, tpch = _results["9b-tpch-filecount"]
    entropy_base, entropy = _results["9c-wp1-entropy"]
    wp3_base, wp3 = _results["9d-wp3-filecount"]

    # 9a: tuned WP1 clearly beats never-compacting (paper: up to 2x).
    assert wp1.best_objective < 0.7 * wp1_base
    # 9b: TPC-H cannot beat the default meaningfully.
    assert tpch.best_objective > 0.95 * tpch_base
    # 9c: entropy trigger lands within 25% of the count trigger.
    assert abs(entropy.best_objective - wp1.best_objective) < 0.25 * wp1.best_objective
    # 9d: WP3 benefits consistently.
    assert wp3.best_objective < 0.7 * wp3_base
