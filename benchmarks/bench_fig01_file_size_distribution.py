"""Figure 1: file-size distribution — raw ingestion vs user-derived data.

Paper claim: the centrally managed ingestion pipeline produces files at the
~512 MB target, while end-user jobs (Spark/Trino/Flink, untuned) produce a
heavy concentration of small files.
"""

from __future__ import annotations

import pytest

from repro.analysis import bar_chart, render_table, size_histogram
from repro.catalog import Catalog
from repro.engine import (
    Cluster,
    EngineSession,
    MisconfiguredShuffleWriter,
    TrickleWriter,
)
from repro.lst import Field, IdentityTransform, PartitionField, PartitionSpec, Schema
from repro.simulation import derive_rng
from repro.units import GiB, MiB
from repro.workloads import RawIngestionPipeline

from benchmarks.harness import banner


def _build_lake():
    catalog = Catalog()
    catalog.create_database("raw")
    catalog.create_database("derived")
    session = EngineSession(
        Cluster("ingest", executors=8), telemetry=catalog.telemetry, clock=catalog.clock, seed=1
    )

    # Raw side: Gobblin-style hourly ingestion at the 512 MiB target.
    raw_schema = Schema.of(Field("event", "string"), Field("hour", "int"))
    raw_spec = PartitionSpec.of(PartitionField("hour", IdentityTransform()))
    raw = catalog.create_table("raw.events", raw_schema, spec=raw_spec)
    pipeline = RawIngestionPipeline(raw, session, events_bytes_per_hour=3 * GiB)
    pipeline.ingest_hours(24, derive_rng(1, "fig1-raw"))

    # Derived side: end-user jobs with mis-tuned shuffles and CDC trickles.
    derived_schema = Schema.of(Field("id", "long"), Field("v", "string"))
    rng = derive_rng(1, "fig1-derived")
    for i in range(12):
        table = catalog.create_table(f"derived.t{i:02d}", derived_schema)
        if i % 3 == 0:
            writer = TrickleWriter(mean_file_size=6 * MiB)
        else:
            writer = MisconfiguredShuffleWriter(num_partitions=int(rng.integers(48, 200)))
        volume = int(rng.uniform(0.5, 2.0) * GiB)
        session.write(table, volume, writer)
    return catalog, raw


def _distributions():
    catalog, raw = _build_lake()
    raw_sizes = [f.size_bytes for f in raw.live_files()]
    derived_sizes = []
    for ident in catalog.list_tables("derived"):
        derived_sizes.extend(f.size_bytes for f in catalog.load_table(ident).live_files())
    return size_histogram(raw_sizes), size_histogram(derived_sizes)


def test_fig01_file_size_distribution(benchmark):
    raw_hist, derived_hist = benchmark.pedantic(_distributions, rounds=1, iterations=1)

    print(
        banner(
            "Figure 1 — file size distribution: raw ingestion vs user-derived",
            "raw files cluster at the 512 MB target; derived data is "
            "dominated by small files",
        )
    )
    rows = [
        [bucket, raw_hist[bucket], derived_hist[bucket]] for bucket in raw_hist
    ]
    print(render_table(["size bucket", "raw ingestion", "user-derived"], rows))
    print("\nraw ingestion:")
    print(bar_chart(list(raw_hist), [float(v) for v in raw_hist.values()], width=30))
    print("\nuser-derived:")
    print(bar_chart(list(derived_hist), [float(v) for v in derived_hist.values()], width=30))

    raw_total = sum(raw_hist.values())
    derived_total = sum(derived_hist.values())
    raw_at_target = raw_hist[">=512MiB"] + raw_hist["256-512MiB"]
    derived_small = derived_total - derived_hist[">=512MiB"] - derived_hist["256-512MiB"]
    print(f"\nraw files at/near target : {raw_at_target / raw_total:.0%}")
    print(f"derived files below 256MiB: {derived_small / derived_total:.0%}")

    # Shape assertions: the two distributions are bimodal opposites.
    assert raw_at_target / raw_total > 0.8
    assert derived_small / derived_total > 0.8
