"""Figure 8: impact of compaction on query latency (hourly candlesticks).

Paper claims (§6.2): read-only latency is similar across strategies in
hour 1; from hour 2 onward compaction consistently improves it, fastest
under the aggressive table-10 strategy; execution-time variability also
shrinks; and the no-compaction baseline overruns the 5-hour window
(~25 minutes of extra queueing/execution).
"""

from __future__ import annotations

import statistics

from repro.analysis import candlestick, render_table
from repro.units import HOUR, MINUTE

from benchmarks.harness import CAB_STRATEGIES, banner, cab_run, hourly_latencies


def _collect():
    out = {}
    for name in CAB_STRATEGIES:
        result = cab_run(name)
        out[name] = {
            "ro": hourly_latencies(result, "ro"),
            "rw": hourly_latencies(result, "rw"),
            "makespan": result.makespan_s,
        }
    return out


def test_fig08_query_latency(benchmark):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    print(
        banner(
            "Figure 8 — query latency per hour (candlesticks: min/p25/med/p75/max)",
            "similar in hour 1; compaction wins from hour 2 on (table-10 "
            "fastest); variability shrinks; no-compaction overruns the "
            "5-hour window",
        )
    )
    for label in ("ro", "rw"):
        print(f"\n--- {label.upper()} queries ---")
        rows = []
        for name in CAB_STRATEGIES:
            for hour, values in enumerate(data[name][label]):
                if not values:
                    continue
                summary = candlestick(values)
                rows.append(
                    [
                        name,
                        f"h{hour + 1}",
                        f"{summary.minimum:.2f}",
                        f"{summary.p25:.2f}",
                        f"{summary.median:.2f}",
                        f"{summary.p75:.2f}",
                        f"{summary.maximum:.2f}",
                    ]
                )
        print(render_table(["strategy", "hour", "min", "p25", "med", "p75", "max"], rows))

    # The paper reports ~25 min of extra end-to-end runtime for the
    # baseline (queueing + longer queries).  Our engine model inflates
    # latencies under contention rather than queueing, so the equivalent
    # signal is the aggregate read-query time of the final hour (write jobs
    # carry strategy-independent upstream-compute time and are excluded).
    def hour5_load(name):
        return sum(data[name]["ro"][4])

    baseline_load = hour5_load("none") / MINUTE
    compacted_load = hour5_load("table-10") / MINUTE
    print(f"\naggregate hour-5 query time: none={baseline_load:.1f} min, "
          f"table-10={compacted_load:.1f} min "
          "(paper: baseline overruns the window by ~25 min)")

    def hour_median(name, label, hour):
        values = data[name][label][hour]
        return statistics.median(values) if values else float("nan")

    # (i) Hour 1 is similar across strategies (compaction hasn't run yet).
    h1 = [hour_median(name, "ro", 0) for name in CAB_STRATEGIES]
    assert max(h1) / min(h1) < 1.3
    # (ii) From hour 3 on, compaction beats the baseline on RO medians.
    for hour in (2, 3, 4):
        assert hour_median("table-10", "ro", hour) < hour_median("none", "ro", hour)
        assert hour_median("hybrid-500", "ro", hour) < hour_median("none", "ro", hour)
    # (iii) The aggressive strategy improves fastest (hour-2 medians).
    assert hour_median("table-10", "ro", 1) <= hour_median("hybrid-50", "ro", 1)
    # (iv) Variability shrinks: last-hour spread under compaction is below
    # the baseline's.
    spread_none = candlestick(data["none"]["ro"][4]).spread
    spread_comp = candlestick(data["table-10"]["ro"][4]).spread
    assert spread_comp < spread_none
    # (v) The baseline carries substantially more end-of-run load (the
    # paper's ~25-minute overrun) and never finishes earlier.
    assert baseline_load > 1.5 * compacted_load
    assert data["none"]["makespan"] >= data["table-10"]["makespan"]
