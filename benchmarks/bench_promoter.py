"""Self-driving policy plane: closed-loop promote / guard / rollback bench.

The paper's self-driving claim is that AutoComp can *operate its own
policy*: shadow-evaluate a candidate pool against recorded history,
promote only statistically-clear winners, watch the promotion through a
guard window of live cycles, and roll back on regression — all without
an operator in the loop.  This bench drives the full loop end to end on
a live catalog:

1. **converge** — the store boots on a deliberate dud policy (its
   small-file floor filters every candidate, so it compacts nothing)
   with a pool of real challengers; an :class:`~repro.core.daemon.AutoCompDaemon`
   churns a drifting ingest workload while its
   :class:`~repro.core.promoter.PolicyPromoter` ticks.  The promoter
   must promote a challenger, hold it through the guard window, and
   land STABLE on a non-dud policy within a fixed cycle budget;
2. **no churn under guard** — every promoter tick taken while the store
   is in its guard window must decide ``guard_wait``: promotions on top
   of an unproven promotion are forbidden (gated exact-zero);
3. **rollback** — with a healthy baseline banked, the dud is promoted
   back (an operator override through the same audited
   :meth:`~repro.core.promoter.PolicyStore.promote` path); the guarded
   live cycles degrade, and the promoter must auto-roll-back to the
   previous winner;
4. **audit** — :func:`~repro.core.promoter.verify_promotions` replays
   the full promotion history (promote → guard pass → promote →
   rollback) against the store and must find zero violations.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_promoter.py [--smoke]
        [--json BENCH_promoter.json]

``--smoke`` shrinks the fleet to CI size; ``--json`` writes the measured
metrics for the CI perf-regression gate
(``benchmarks/check_regression.py``).  The loop is seed-deterministic:
promotion counts, versions and convergence cycles are gated exactly.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.catalog import Catalog
from repro.core import (
    AutoCompDaemon,
    AutoCompService,
    LockManager,
    PolicyPromoter,
    PolicyStore,
    openhouse_pipeline,
    verify_promotions,
)
from repro.engine import Cluster
from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema
from repro.replay import PolicyVariant
from repro.units import HOUR, MiB


def _banner(title: str, claim: str) -> str:
    line = "=" * 78
    return f"\n{line}\n{title}\n{claim}\n{line}"


def build_fleet(tables: int) -> Catalog:
    """A fresh catalog with ``tables`` fragmented tables, aged past filters."""
    catalog = Catalog()
    catalog.create_database("db")
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    for i in range(tables):
        table = catalog.create_table(f"db.t{i:03d}", schema, spec=spec)
        txn = table.new_append()
        for _ in range(6):
            txn.add_file(8 * MiB, partition=(0,))
        txn.commit()
    catalog.clock.advance_by(2 * HOUR)
    return catalog


def churn(catalog: Catalog, cycle: int) -> None:
    """One hour of drifting ingest: file count and size wander with time.

    The drift keeps the workload from being a single repeated pattern —
    the shadow evaluations rank the pool against genuinely shifting
    history — while staying fully deterministic (no RNG).
    """
    files = 3 + cycle % 3
    size = (2 + (cycle * 2) % 5) * MiB
    for table in catalog.database("db").tables.values():
        txn = table.new_append()
        for _ in range(files):
            txn.add_file(size, partition=(0,))
        txn.commit()
    catalog.clock.advance_by(HOUR)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="tiny CI-sized fleet")
    parser.add_argument("--tables", type=int, default=None, help="fleet size override")
    parser.add_argument(
        "--converge-budget",
        type=int,
        default=10,
        help="max live cycles the promoter gets to land STABLE off the dud",
    )
    parser.add_argument("--seed", type=int, default=20250730)
    parser.add_argument("--json", default=None, help="write measured metrics here")
    args = parser.parse_args(argv)

    tables = args.tables or (4 if args.smoke else 12)
    guard_cycles = 2
    budget = args.converge_budget
    print(
        _banner(
            f"Self-driving policy — promote / guard / rollback loop, "
            f"{tables}-table fleet",
            f"Target: converge off the dud boot policy within {budget} cycles; "
            f"zero promotions under guard; injected degradation rolls back; "
            f"audit replays clean",
        )
    )

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        catalog = build_fleet(tables)
        pipeline = openhouse_pipeline(
            catalog, Cluster("maint", executors=3), min_table_age_s=0.0
        )
        service = AutoCompService(pipeline)
        locks = LockManager(os.path.join(tmp, "locks"), stale_after_s=30.0)
        store = PolicyStore(os.path.join(tmp, "policy"))
        # The boot variant's small-file floor filters every candidate:
        # zero realised efficiency, so any real challenger is a clear win.
        dud = PolicyVariant(name="dud", k=10, min_small_files=500)
        pool = [
            dud,
            PolicyVariant(name="eager-k25", k=25),
            PolicyVariant(name="steady-k10", k=10),
            PolicyVariant(name="lazy-k2", k=2),
        ]
        store.initialize(dud, pool=pool)
        promoter = PolicyPromoter(
            store, guard_cycles=guard_cycles, min_history_cycles=2
        )
        daemon = AutoCompDaemon(
            service, locks, interval_s=3600.0, promoter=promoter
        )

        guard_violations = 0
        healthy_baseline: dict | None = None
        cycles_to_converge = 0
        eval_wall = time.perf_counter()

        def tick(cycle: int) -> dict | None:
            """One promoter tick, with the no-churn-under-guard check."""
            nonlocal guard_violations
            state_before = store.state
            decision = daemon.run_promoter_once()
            if decision is not None:
                print(f"  cycle {cycle:>2}: [{state_before}] {decision['action']}", end="")
                if decision["action"] == "promote":
                    print(f" {decision['over']} -> {decision['variant']}", end="")
                print()
            if state_before == "GUARD" and (decision or {}).get("action") != "guard_wait":
                guard_violations += 1
            return decision

        daemon.start()
        try:
            print("phase 1: converge off the dud boot policy")
            for cycle in range(1, budget + 1):
                churn(catalog, cycle)
                daemon.run_once()
                if (
                    store.state == "STABLE"
                    and store.active.name != "dud"
                    and promoter.guard_passes >= 1
                ):
                    cycles_to_converge = cycle
                    healthy_baseline = (promoter.last_decision or {}).get("metrics")
                    break
                tick(cycle)
            winner = store.active.name
            converged = cycles_to_converge > 0
            print(
                f"converged on {winner!r} in {cycles_to_converge} cycles"
                if converged
                else f"NO CONVERGENCE within {budget} cycles (state {store.state})"
            )
            if not converged:
                failures.append(f"promoter did not converge within {budget} cycles")

            print("\nphase 2: operator promotes the dud back — guard must roll back")
            rollback_cycles = 0
            if converged and healthy_baseline:
                store.promote(
                    dud,
                    guard={
                        "cycles": guard_cycles,
                        "baseline": healthy_baseline,
                        "shadow": {"winner": 0.0, "active": 0.0},
                    },
                )
                for cycle in range(1, 2 * guard_cycles + 3):
                    churn(catalog, budget + cycle)
                    daemon.run_once()
                    if promoter.rollbacks >= 1:
                        rollback_cycles = cycle
                        break
                    tick(budget + cycle)
            rolled_back = promoter.rollbacks == 1
            if rolled_back:
                evidence = (promoter.last_decision or {}).get("degraded", [])
                print(
                    f"rolled back to {store.active.name!r} after "
                    f"{rollback_cycles} guarded cycles: {'; '.join(evidence)}"
                )
            else:
                failures.append("injected degradation did not trigger a rollback")
            if store.state != "STABLE":
                failures.append(f"loop ended in state {store.state}, not STABLE")
            if store.active.name != winner:
                failures.append(
                    f"rollback restored {store.active.name!r}, expected {winner!r}"
                )
        finally:
            daemon.stop()
        wall_s = time.perf_counter() - eval_wall

        if guard_violations:
            failures.append(
                f"{guard_violations} promoter tick(s) promoted under an open guard"
            )

        summary = verify_promotions(store.store_dir)
        print(
            f"\naudit replay: {summary.promotions} promotions, "
            f"{summary.rollbacks} rollbacks, {summary.guard_passes} guard passes, "
            f"{len(summary.violations)} violations"
        )
        for violation in summary.violations:
            failures.append(f"promotion audit: {violation}")

        telemetry = pipeline.telemetry
        tracked_version = telemetry.series("autocomp.promoter.active_version").last()
        if tracked_version != store.version:
            failures.append(
                f"telemetry tracks version {tracked_version}, store is at "
                f"{store.version}"
            )

        if args.json:
            payload = {
                "bench": "promoter",
                "config": {
                    "tables": tables,
                    "guard_cycles": guard_cycles,
                    "converge_budget": budget,
                    "pool": len(pool),
                    "seed": args.seed,
                    "smoke": args.smoke,
                    "cores": os.cpu_count() or 1,
                },
                "metrics": {
                    "converged": int(converged),
                    "cycles_to_converge": cycles_to_converge,
                    "guard_violations": guard_violations,
                    "rollback_cycles": rollback_cycles,
                    "promotions": summary.promotions,
                    "rollbacks": summary.rollbacks,
                    "guard_passes": summary.guard_passes,
                    "audit_violations": len(summary.violations),
                    "final_version": store.version,
                    "shadow_evals": promoter.shadow_evals,
                    "loop_wall_s": wall_s,
                },
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
