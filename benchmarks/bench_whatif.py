"""Policy Lab: what-if policy search over one recorded trace.

The paper's evaluation is trace-driven: policies are judged by replaying a
realistic write workload and comparing file-count reduction against GBHr
cost.  This bench exercises the full Policy Lab loop on either plane:

1. **record** — run the workload under a conservative AutoComp policy with
   a recorder attached, producing a versioned, seed-stamped JSONL trace
   (fleet: :class:`~repro.replay.TraceRecorder`; ``--connector lst``:
   a §6 CAB catalog run through
   :class:`~repro.replay.CatalogTraceRecorder`, chunked + compressed);
2. **verify** — replay the trace verbatim and check the reconstructed
   state matches the live one exactly, and replay one variant twice and
   check the cycle reports are byte-identical (the determinism guarantee;
   catalog mode additionally checks the recorded run replays its *own*
   reports back byte-for-byte);
3. **search** — sweep policy variants over the trace with the
   :class:`~repro.replay.WhatIfRunner` and print the ranked comparison.

Fleet mode also rewrites the recorded trace through the chunked gzip
writer and reports the on-disk compression ratio (gated >=2x — the
month-scale trace-growth fix).

Run as a script::

    PYTHONPATH=src python benchmarks/bench_whatif.py [--smoke]
        [--connector fleet|lst] [--json BENCH_whatif.json]

``--smoke`` runs a tiny workload (CI-sized) and skips the speedup
assertion; the full fleet run sweeps >=8 variants and asserts parallel
what-if execution is >=2x faster than sequential when at least 4 CPU cores
are available (the speedup target is defined on a 4-core runner).
``--json`` writes the measured metrics for the CI perf-regression gate
(``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import (
    CatalogReplayer,
    CatalogTraceRecorder,
    PolicyVariant,
    TraceReader,
    TraceRecorder,
    TraceReplayer,
    TraceWriter,
    WhatIfRunner,
    serialize_cycle_report,
    trace_size_bytes,
    variant_grid,
)
from repro.replay.catalog_replay import verify_catalog_deterministic
from repro.replay.replayer import verify_deterministic
from repro.simulation import Simulator, TapBus
from repro.units import DAY, HOUR, MiB


def _banner(title: str, claim: str) -> str:
    line = "=" * 78
    return f"\n{line}\n{title}\n{claim}\n{line}"


def record_trace(path: str, tables: int, days: int, seed: int) -> FleetSimulator:
    """Run the source fleet under AutoComp k=10, recording to ``path``."""
    taps = TapBus()
    config = FleetConfig(initial_tables=tables, onboarded_per_month=tables // 8, seed=seed)
    recorder = TraceRecorder(path, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=10))
    sim.run_days(days)
    recorder.close()
    return sim


def verify_round_trip(path: str, sim: FleetSimulator) -> bool:
    """Verbatim replay reconstructs the live fleet's file counts exactly."""
    replayed = TraceReplayer(path).replay_verbatim()
    source = sim.model
    return (
        replayed.count == source.count
        and replayed.total_files == source.total_files
        and np.array_equal(
            replayed.tiny_files[: replayed.count], source.tiny_files[: source.count]
        )
        and np.array_equal(
            replayed.large_bytes[: replayed.count], source.large_bytes[: source.count]
        )
    )


def verify_determinism(path: str) -> bool:
    """Two replays of the same trace + variant are byte-identical."""
    return verify_deterministic(path, PolicyVariant(name="determinism-probe", k=10))


def rewrite_chunked(src: str, dst: str, segments: int = 8) -> None:
    """Re-write a recorded trace through the chunked gzip writer."""
    trace = TraceReader(src).read()
    per_segment = max(1, (len(trace.events) + segments - 1) // segments)
    writer = TraceWriter(dst, segment_records=per_segment, compress=True)
    try:
        writer.write(trace.header)
        for event in trace.events:
            writer.write(event)
    finally:
        writer.close()


# --- catalog (`--connector lst`) mode -----------------------------------------


def record_catalog_trace(path: str, databases: int, hours: int, seed: int):
    """Run a §6 CAB catalog workload under AutoComp k=10, recording to ``path``.

    Cycles run synchronously on an hourly cadence (the recordable
    step-then-compact setting); the trace is chunked + gzip-compressed,
    rotating on hour boundaries.
    """
    from repro.catalog import Catalog
    from repro.engine import Cluster, EngineSession
    from repro.workloads import CabConfig, CabWorkload

    config = CabConfig(
        databases=databases,
        data_bytes_per_db=256 * MiB,
        duration_s=hours * HOUR,
        lineitem_months=12,
        ro_rate_per_hour=2.0,
        rw_rate_per_hour=3.0,
        write_spike_hour=min(4.0, hours - 1.0),
        spike_events_per_db=2.0,
        insert_bytes_mean=24 * MiB,
        shuffle_partitions=16,
        seed=seed,
    )
    taps = TapBus()
    catalog = Catalog(taps=taps)
    cluster = Cluster("compaction", executors=3)
    recorder = CatalogTraceRecorder(
        path, taps, seed=seed, catalog=catalog, cluster=cluster, compress=True
    )
    session = EngineSession(
        Cluster("query", executors=8),
        telemetry=catalog.telemetry,
        clock=catalog.clock,
        seed=seed,
    )
    session.attach_filesystem(catalog.fs)
    workload = CabWorkload(catalog, session, config)
    workload.load()
    simulator = Simulator(catalog.clock)
    workload.attach(simulator)
    variant = PolicyVariant(name="w0.70-k10", k=10)
    pipeline = variant.build_catalog_pipeline(catalog, cluster)
    pipeline.taps = taps
    reports = []
    for hour in range(1, hours + 1):
        simulator.run_until(hour * HOUR)
        reports.append(pipeline.run_cycle(now=catalog.clock.now))
        recorder.rotate()  # checkpoint-delimited hourly segments
    simulator.run_until(config.duration_s + HOUR)
    recorder.close()
    return catalog, reports, variant


def catalog_layout(catalog) -> dict:
    return {
        str(table.identifier): sorted(
            (f.file_id, f.size_bytes, f.partition) for f in table.live_files()
        )
        for table in catalog.all_tables()
    }


def catalog_main(args) -> int:
    databases = args.tables or (2 if args.smoke else 6)
    hours = args.days or (3 if args.smoke else 5)
    workers = args.workers or min(os.cpu_count() or 1, 4)
    variants = [
        PolicyVariant(name="w0.70-k10", k=10),
        PolicyVariant(name="w0.70-k25", k=25),
        PolicyVariant(name="quota-k10", ranking="quota_aware", k=10),
        PolicyVariant(name="hybrid-k25", k=25, generation="hybrid"),
    ]
    print(
        _banner(
            f"Policy Lab — LST-catalog what-if search, {databases} CAB databases, "
            f"{hours} recorded hours",
            f"Target: byte-identical record->replay of a §6 catalog run; ranked "
            f"sweep of {len(variants)} variants without re-running the catalog",
        )
    )
    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "catalog.trace.jsonl")
        start = time.perf_counter()
        catalog, live_reports, recorded_variant = record_catalog_trace(
            path, databases, hours, args.seed
        )
        record_s = time.perf_counter() - start
        trace = TraceReader(path).read()
        size = trace_size_bytes(path)
        bytes_per_day = size * DAY / (hours * HOUR)
        print(
            f"recorded {len(trace.events)} events ({size // 1024} KiB chunked+gz, "
            f"{bytes_per_day / 1024:.0f} KiB/simulated-day) in {record_s:.2f}s"
        )

        print("round-trip: verbatim replay reconstructs the catalog ...", end=" ")
        round_trip_ok = (
            catalog_layout(CatalogReplayer(trace).replay_verbatim())
            == catalog_layout(catalog)
        )
        print("exact" if round_trip_ok else "MISMATCH")
        if not round_trip_ok:
            failures.append("verbatim replay did not reconstruct the catalog exactly")

        print("identity: recorded run replayed under its own policy ...", end=" ")
        live_bytes = "\n".join(
            json.dumps(serialize_cycle_report(r), sort_keys=True, separators=(",", ":"))
            for r in live_reports
        ).encode("utf-8")
        replay_bytes = CatalogReplayer(trace).replay(recorded_variant).report_bytes()
        identical = replay_bytes == live_bytes
        print("byte-identical" if identical else "DIVERGED")
        if not identical:
            failures.append("record->replay did not reproduce the recorded reports")

        print("determinism: same trace + same variant replayed twice ...", end=" ")
        deterministic = verify_catalog_deterministic(
            trace, PolicyVariant(name="determinism-probe", k=10)
        )
        print("byte-identical" if deterministic else "DIVERGED")
        if not deterministic:
            failures.append("catalog replay is not byte-identical")

        start = time.perf_counter()
        with WhatIfRunner(path, variants) as runner:
            report = runner.run(workers=workers)
        sweep_s = time.perf_counter() - start
        print(f"\nsweep: {len(variants)} variants in {sweep_s:.2f}s ({runner.worker_mode})\n")
        print(report.render())
        best = report.best()

        if args.json:
            payload = {
                "bench": "whatif_lst",
                "config": {
                    "databases": databases,
                    "hours": hours,
                    "variants": len(variants),
                    "workers": workers,
                    "seed": args.seed,
                    "smoke": args.smoke,
                    "cores": os.cpu_count() or 1,
                },
                "metrics": {
                    "round_trip": int(round_trip_ok),
                    "record_replay_identical": int(identical),
                    "deterministic": int(deterministic),
                    "best_files_reduced": best.files_reduced,
                    "catalog_sweep_wall_s": sweep_s,
                    "trace_bytes_per_day": bytes_per_day,
                },
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized run, no speedup assertion"
    )
    parser.add_argument(
        "--connector",
        choices=("fleet", "lst"),
        default="fleet",
        help="workload plane: the §7 fleet simulation (default) or the §6 "
        "LST-catalog CAB run",
    )
    parser.add_argument(
        "--tables", type=int, default=None, help="fleet size / CAB database count override"
    )
    parser.add_argument("--days", type=int, default=None, help="recorded days / CAB hours")
    parser.add_argument("--workers", type=int, default=None, help="parallel pool width")
    parser.add_argument("--seed", type=int, default=20250730)
    parser.add_argument(
        "--json", default=None, help="write measured metrics to this path"
    )
    args = parser.parse_args()

    if args.connector == "lst":
        return catalog_main(args)

    tables = args.tables or (150 if args.smoke else 1200)
    days = args.days or (6 if args.smoke else 30)
    if args.smoke:
        variants = [
            PolicyVariant(name="w0.70-k10", k=10),
            PolicyVariant(name="quota-k10", ranking="quota_aware", k=10),
        ]
    else:
        variants = variant_grid(
            benefit_weights=(0.5, 0.7, 0.9),
            ks=(5, 10, 25),
            rankings=("weighted", "quota_aware"),
        )
    workers = args.workers or min(os.cpu_count() or 1, 4)

    print(
        _banner(
            f"Policy Lab — what-if search, {tables}-table fleet, {days} recorded days",
            f"Target: {len(variants)} variants over one trace; parallel sweep >=2x "
            "faster than sequential on a 4-core runner; byte-identical replays",
        )
    )

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fleet.trace.jsonl")
        start = time.perf_counter()
        sim = record_trace(path, tables, days, args.seed)
        record_s = time.perf_counter() - start
        trace = TraceReader(path).read()
        print(
            f"recorded {len(trace.events)} events "
            f"({os.path.getsize(path) // 1024} KiB) in {record_s:.2f}s"
        )

        print("round-trip: recorder -> replayer reconstructs fleet ...", end=" ")
        round_trip_ok = verify_round_trip(path, sim)
        print("exact" if round_trip_ok else "MISMATCH")
        if not round_trip_ok:
            failures.append("verbatim replay did not reconstruct the fleet exactly")

        print("determinism: same trace + same variant replayed twice ...", end=" ")
        deterministic = verify_determinism(path)
        print("byte-identical" if deterministic else "DIVERGED")
        if not deterministic:
            failures.append("replay is not byte-identical")

        chunked_path = os.path.join(tmp, "fleet.chunked.jsonl")
        rewrite_chunked(path, chunked_path)
        plain_bytes = trace_size_bytes(path)
        chunked_bytes = trace_size_bytes(chunked_path)
        compression = plain_bytes / chunked_bytes if chunked_bytes else float("inf")
        chunked_matches = TraceReader(chunked_path).read().events == trace.events
        print(
            f"chunked trace: {plain_bytes // 1024} KiB plain -> "
            f"{chunked_bytes // 1024} KiB in segments ({compression:.1f}x, "
            f"{'identical events' if chunked_matches else 'EVENT MISMATCH'})"
        )
        if not chunked_matches:
            failures.append("chunked rewrite changed the event stream")
        if compression < 2.0:
            failures.append(
                f"chunked trace compression {compression:.2f}x below the 2x target"
            )

        runner = WhatIfRunner(path, variants)
        start = time.perf_counter()
        sequential = runner.run(workers=1)
        sequential_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = runner.run(workers=workers)
        parallel_s = time.perf_counter() - start
        runner.close()
        speedup = sequential_s / parallel_s if parallel_s else float("inf")
        print(
            f"\nsweep: {len(variants)} variants — sequential {sequential_s:.2f}s, "
            f"parallel({workers}) {parallel_s:.2f}s, speedup {speedup:.2f}x\n"
        )
        print(parallel.render())
        print(f"\noffline priors for autotune: {parallel.to_priors()}")

        parallel_matches = [s.report_digest for s in sequential.scores] == [
            s.report_digest for s in parallel.scores
        ]
        if not parallel_matches:
            failures.append("parallel scores diverged from sequential")
        cores = os.cpu_count() or 1
        if not args.smoke:
            if cores >= 4:
                if speedup < 2.0:
                    failures.append(f"parallel speedup {speedup:.2f}x below the 2x target")
            else:
                print(f"(speedup assertion skipped: only {cores} CPU core(s) available)")

        if args.json:
            best = parallel.best()
            payload = {
                "bench": "whatif",
                "config": {
                    "tables": tables,
                    "days": days,
                    "variants": len(variants),
                    "workers": workers,
                    "seed": args.seed,
                    "smoke": args.smoke,
                    "cores": cores,
                },
                "metrics": {
                    "round_trip": int(round_trip_ok),
                    "deterministic": int(deterministic),
                    "parallel_matches_sequential": int(parallel_matches),
                    "best_files_reduced": best.files_reduced,
                    "best_efficiency": best.efficiency,
                    "parallel_speedup": speedup,
                    "trace_compression_ratio": compression,
                },
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
