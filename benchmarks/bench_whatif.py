"""Policy Lab: what-if policy search over one recorded fleet trace.

The paper's evaluation is trace-driven: policies are judged by replaying a
realistic write workload and comparing file-count reduction against GBHr
cost.  This bench exercises the full Policy Lab loop:

1. **record** — run a fleet under a conservative AutoComp policy with a
   :class:`~repro.replay.TraceRecorder` attached, producing a versioned,
   seed-stamped JSONL trace;
2. **verify** — replay the trace verbatim and check the reconstructed
   fleet matches the live one exactly, and replay one variant twice and
   check the cycle reports are byte-identical (the determinism guarantee);
3. **search** — sweep a grid of policy variants over the trace with the
   :class:`~repro.replay.WhatIfRunner`, sequentially and in parallel, and
   print the ranked comparison.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_whatif.py [--smoke]
        [--json BENCH_whatif.json]

``--smoke`` runs a tiny fleet with 2 variants (CI-sized) and skips the
speedup assertion; the full run sweeps >=8 variants and asserts parallel
what-if execution is >=2x faster than sequential when at least 4 CPU cores
are available (the speedup target is defined on a 4-core runner).
``--json`` writes the measured metrics for the CI perf-regression gate
(``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile
import time

import numpy as np

from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import (
    PolicyVariant,
    TraceReader,
    TraceRecorder,
    TraceReplayer,
    WhatIfRunner,
    variant_grid,
)
from repro.replay.replayer import verify_deterministic
from repro.simulation import TapBus


def _banner(title: str, claim: str) -> str:
    line = "=" * 78
    return f"\n{line}\n{title}\n{claim}\n{line}"


def record_trace(path: str, tables: int, days: int, seed: int) -> FleetSimulator:
    """Run the source fleet under AutoComp k=10, recording to ``path``."""
    taps = TapBus()
    config = FleetConfig(initial_tables=tables, onboarded_per_month=tables // 8, seed=seed)
    recorder = TraceRecorder(path, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=10))
    sim.run_days(days)
    recorder.close()
    return sim


def verify_round_trip(path: str, sim: FleetSimulator) -> bool:
    """Verbatim replay reconstructs the live fleet's file counts exactly."""
    replayed = TraceReplayer(path).replay_verbatim()
    source = sim.model
    return (
        replayed.count == source.count
        and replayed.total_files == source.total_files
        and np.array_equal(
            replayed.tiny_files[: replayed.count], source.tiny_files[: source.count]
        )
        and np.array_equal(
            replayed.large_bytes[: replayed.count], source.large_bytes[: source.count]
        )
    )


def verify_determinism(path: str) -> bool:
    """Two replays of the same trace + variant are byte-identical."""
    return verify_deterministic(path, PolicyVariant(name="determinism-probe", k=10))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="tiny CI-sized run, no speedup assertion"
    )
    parser.add_argument("--tables", type=int, default=None, help="fleet size override")
    parser.add_argument("--days", type=int, default=None, help="recorded days")
    parser.add_argument("--workers", type=int, default=None, help="parallel pool width")
    parser.add_argument("--seed", type=int, default=20250730)
    parser.add_argument(
        "--json", default=None, help="write measured metrics to this path"
    )
    args = parser.parse_args()

    tables = args.tables or (150 if args.smoke else 1200)
    days = args.days or (6 if args.smoke else 30)
    if args.smoke:
        variants = [
            PolicyVariant(name="w0.70-k10", k=10),
            PolicyVariant(name="quota-k10", ranking="quota_aware", k=10),
        ]
    else:
        variants = variant_grid(
            benefit_weights=(0.5, 0.7, 0.9),
            ks=(5, 10, 25),
            rankings=("weighted", "quota_aware"),
        )
    workers = args.workers or min(os.cpu_count() or 1, 4)

    print(
        _banner(
            f"Policy Lab — what-if search, {tables}-table fleet, {days} recorded days",
            f"Target: {len(variants)} variants over one trace; parallel sweep >=2x "
            "faster than sequential on a 4-core runner; byte-identical replays",
        )
    )

    failures: list[str] = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "fleet.trace.jsonl")
        start = time.perf_counter()
        sim = record_trace(path, tables, days, args.seed)
        record_s = time.perf_counter() - start
        trace = TraceReader(path).read()
        print(
            f"recorded {len(trace.events)} events "
            f"({os.path.getsize(path) // 1024} KiB) in {record_s:.2f}s"
        )

        print("round-trip: recorder -> replayer reconstructs fleet ...", end=" ")
        round_trip_ok = verify_round_trip(path, sim)
        print("exact" if round_trip_ok else "MISMATCH")
        if not round_trip_ok:
            failures.append("verbatim replay did not reconstruct the fleet exactly")

        print("determinism: same trace + same variant replayed twice ...", end=" ")
        deterministic = verify_determinism(path)
        print("byte-identical" if deterministic else "DIVERGED")
        if not deterministic:
            failures.append("replay is not byte-identical")

        runner = WhatIfRunner(path, variants)
        start = time.perf_counter()
        sequential = runner.run(workers=1)
        sequential_s = time.perf_counter() - start
        start = time.perf_counter()
        parallel = runner.run(workers=workers)
        parallel_s = time.perf_counter() - start
        runner.close()
        speedup = sequential_s / parallel_s if parallel_s else float("inf")
        print(
            f"\nsweep: {len(variants)} variants — sequential {sequential_s:.2f}s, "
            f"parallel({workers}) {parallel_s:.2f}s, speedup {speedup:.2f}x\n"
        )
        print(parallel.render())
        print(f"\noffline priors for autotune: {parallel.to_priors()}")

        parallel_matches = [s.report_digest for s in sequential.scores] == [
            s.report_digest for s in parallel.scores
        ]
        if not parallel_matches:
            failures.append("parallel scores diverged from sequential")
        cores = os.cpu_count() or 1
        if not args.smoke:
            if cores >= 4:
                if speedup < 2.0:
                    failures.append(f"parallel speedup {speedup:.2f}x below the 2x target")
            else:
                print(f"(speedup assertion skipped: only {cores} CPU core(s) available)")

        if args.json:
            best = parallel.best()
            payload = {
                "bench": "whatif",
                "config": {
                    "tables": tables,
                    "days": days,
                    "variants": len(variants),
                    "workers": workers,
                    "seed": args.seed,
                    "smoke": args.smoke,
                    "cores": cores,
                },
                "metrics": {
                    "round_trip": int(round_trip_ok),
                    "deterministic": int(deterministic),
                    "parallel_matches_sequential": int(parallel_matches),
                    "best_files_reduced": best.files_reduced,
                    "best_efficiency": best.efficiency,
                    "parallel_speedup": speedup,
                },
            }
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
