"""Daemon soak: two concurrent AutoComp daemons, one catalog, zero collisions.

The §7 production rule the daemonized control plane must uphold is
*no unit is ever double-compacted*, however many AutoComp instances share
a warehouse.  This soak runs two :class:`~repro.core.daemon.AutoCompDaemon`
instances against one live catalog and one shared lock directory while an
ingest thread keeps re-fragmenting every table (so both daemons always
want the same work), injects a recurring worker failure into one of them
(a daemon must outlive bad cycles), then drains both gracefully and
replays the shared lock audit log.

The exit code *is* the verdict: 0 when
:func:`~repro.core.locks.verify_audit` finds a clean log (every
compaction under a held lock, no key double-held, no (key, trigger) pair
compacted twice) and every liveness check holds; 1 otherwise.

Daemon alpha additionally runs the full observability plane — a
:class:`~repro.obs.tracing.Tracer` on its pipeline and a
:class:`~repro.obs.exporter.MetricsExporter` flushing to ``--obs-dir``
throughout the soak — and the final ``metrics.prom`` must round-trip
through the strict Prometheus checker (:mod:`repro.obs.promcheck`), so
the soak also proves the exporter stays valid under concurrent load.

Alpha also carries the self-driving policy plane: a
:class:`~repro.core.promoter.PolicyPromoter` over a durable
:class:`~repro.core.promoter.PolicyStore` ticks on its own cadence
thread while cycles, ingest and the injected failures are all running.
The soak fails unless the promoter actually shadow-evaluated under load
and the full promotion history replays clean
(:func:`~repro.core.promoter.verify_promotions`) — promotions and
rollbacks are allowed (the workload is adversarial), inconsistency is
not.

Run as a script::

    PYTHONPATH=src python benchmarks/soak_daemon.py [--duration 60]
        [--interval 0.05] [--tables 3] [--databases 2]
        [--json BENCH_daemon_soak.json] [--obs-dir DIR]

CI runs the 60-second soak next to the perf-regression gate (uploading
``--obs-dir`` as an artifact); use a small ``--duration`` (>= 2s) for a
local smoke.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.catalog import Catalog
from repro.core import (
    AdmissionController,
    AutoCompDaemon,
    AutoCompService,
    LockManager,
    PolicyPromoter,
    PolicyStore,
    openhouse_pipeline,
    verify_audit,
    verify_promotions,
)
from repro.core.locks import LOCK_SUFFIX
from repro.engine import Cluster
from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema
from repro.obs.promcheck import check_exposition
from repro.obs.tracing import Tracer
from repro.replay import PolicyVariant
from repro.units import HOUR, MiB


def build_fleet(databases: int, tables: int) -> tuple[Catalog, list]:
    catalog = Catalog()
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    fleet_tables = []
    for d in range(databases):
        catalog.create_database(f"db{d}", quota_objects=1_000_000)
        for t in range(tables):
            table = catalog.create_table(f"db{d}.t{t}", schema, spec=spec)
            txn = table.new_append()
            for _ in range(8):
                txn.add_file(8 * MiB, partition=(0,))
            txn.commit()
            fleet_tables.append(table)
    catalog.clock.advance_by(2 * HOUR)  # age past the recent-table filter
    return catalog, fleet_tables


def build_daemon(catalog, lock_dir, owner, interval_s, **daemon_kwargs):
    pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=3))
    service = AutoCompService(pipeline)
    locks = LockManager(lock_dir, owner=owner, stale_after_s=30.0)
    return AutoCompDaemon(service, locks, interval_s=interval_s, **daemon_kwargs)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="two-daemon lock-audit soak")
    parser.add_argument("--duration", type=float, default=60.0, help="soak seconds")
    parser.add_argument("--interval", type=float, default=0.05, help="cycle cadence")
    parser.add_argument("--databases", type=int, default=2)
    parser.add_argument("--tables", type=int, default=3, help="tables per database")
    parser.add_argument(
        "--failure-every",
        type=int,
        default=5,
        help="inject a worker failure into daemon beta every Nth cycle",
    )
    parser.add_argument("--json", help="write the soak metrics JSON here")
    parser.add_argument(
        "--obs-dir",
        help="daemon alpha's observability export directory "
        "(default: a subdirectory of the soak workdir)",
    )
    args = parser.parse_args(argv)
    if args.duration < 2.0:
        parser.error("--duration must be >= 2 seconds to observe any cadence")

    catalog, fleet_tables = build_fleet(args.databases, args.tables)
    workdir = tempfile.mkdtemp(prefix="autocomp-soak-")
    lock_dir = os.path.join(workdir, "locks")
    spill_path = os.path.join(workdir, "history.spill.jsonl")

    obs_dir = args.obs_dir or os.path.join(workdir, "obs")
    # Alpha's self-driving policy plane: durable store, a boot policy
    # matching the constructed pipeline plus two live challengers.
    store = PolicyStore(os.path.join(workdir, "policy"))
    boot = PolicyVariant(name="boot-k10", k=10)
    store.initialize(
        boot,
        pool=[
            boot,
            PolicyVariant(name="eager-k25", k=25),
            PolicyVariant(name="lazy-k5", k=5),
        ],
    )
    promoter = PolicyPromoter(store, guard_cycles=3, min_history_cycles=2)
    alpha = build_daemon(
        catalog,
        lock_dir,
        owner="alpha",
        interval_s=args.interval,
        admission=AdmissionController(max_per_database=2),
        spill_path=spill_path,
        tracer=Tracer(),
        obs_dir=obs_dir,
        export_interval_s=max(args.interval * 4, 0.5),
        promoter=promoter,
        promoter_interval_s=max(args.interval * 10, 0.5),
    )
    alpha.service.enable_history(segment_cycles=4, max_segments=4)
    beta = build_daemon(catalog, lock_dir, owner="beta", interval_s=args.interval)

    # Injected worker failure: beta's every Nth cycle raises mid-service.
    # The daemon must count it, swallow it, and keep its cadence.
    real_run_cycle = beta.service.run_cycle
    cycle_calls = [0]

    def flaky_run_cycle(now=0.0, simulator=None):
        cycle_calls[0] += 1
        if args.failure_every and cycle_calls[0] % args.failure_every == 0:
            raise RuntimeError("injected worker failure")
        return real_run_cycle(now=now, simulator=simulator)

    beta.service.run_cycle = flaky_run_cycle

    stop_ingest = threading.Event()

    def ingest():
        # Keep every table fragmented so both daemons always contend.
        while not stop_ingest.wait(0.01):
            for table in fleet_tables:
                txn = table.new_append()
                for _ in range(3):
                    txn.add_file(4 * MiB, partition=(0,))
                txn.commit()

    ingester = threading.Thread(target=ingest, daemon=True)
    started = time.monotonic()
    alpha.start()
    beta.start()
    ingester.start()
    time.sleep(args.duration)
    stop_ingest.set()
    ingester.join(timeout=10.0)
    alpha.stop()  # graceful drain: finish in-flight work, spill history
    beta.stop()
    elapsed = time.monotonic() - started

    summary = verify_audit(lock_dir)
    promotion_summary = verify_promotions(store.store_dir)
    leftover_locks = [
        name for name in os.listdir(lock_dir) if name.endswith(LOCK_SUFFIX)
    ]

    # The exporter's final flush ran inside alpha.stop(); the on-disk
    # exposition must satisfy the strict Prometheus checker, and the
    # trace dump must hold the spans of every alpha cycle.
    prom_path = alpha.exporter.prom_path
    prom_errors = ["metrics.prom was never written"]
    if os.path.exists(prom_path):
        with open(prom_path, encoding="utf-8") as stream:
            prom_errors = check_exposition(stream.read())
    trace_spans = 0
    trace_path = alpha.exporter.trace_jsonl_path
    if os.path.exists(trace_path):
        with open(trace_path, encoding="utf-8") as stream:
            trace_spans = sum(1 for line in stream if line.strip())

    metrics = {
        "duration_s": round(elapsed, 3),
        "cycles_alpha": alpha.cycles_run,
        "cycles_beta": beta.cycles_run,
        "cycle_errors_beta": beta.cycle_errors,
        "audit_events": summary.events,
        "acquires": summary.acquires,
        "contends": summary.contends,
        "compact_commits": summary.compact_commits,
        "double_compactions": summary.double_compactions,
        "violations": summary.violations,
        "leftover_locks": leftover_locks,
        "history_spilled": os.path.exists(spill_path)
        and os.path.getsize(spill_path) > 0,
        "exports": alpha.exporter.exports,
        "export_errors": alpha.exporter.export_errors,
        "prom_errors": prom_errors,
        "trace_spans": trace_spans,
        "obs_dir": obs_dir,
        "promoter_steps": alpha.promoter_steps,
        "promoter_errors": alpha.promoter_errors,
        "shadow_evals": promoter.shadow_evals,
        "promotions": promoter.promotions,
        "rollbacks": promoter.rollbacks,
        "guard_passes": promoter.guard_passes,
        "policy_version": store.version,
        "promotion_violations": promotion_summary.violations,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as stream:
            json.dump(metrics, stream, indent=2, sort_keys=True)
    print(json.dumps(metrics, indent=2, sort_keys=True))

    failures = []
    if not summary.ok:
        failures.append(f"lock audit violations: {summary.violations}")
    if summary.compact_commits == 0:
        failures.append("soak compacted nothing — no coverage")
    if alpha.cycles_run + beta.cycles_run < 4:
        failures.append("fewer than 4 combined cycles — cadence never ran")
    if args.failure_every and beta.cycle_errors == 0 and cycle_calls[0] >= args.failure_every:
        failures.append("injected failures were not counted")
    if beta.cycles_run == 0 and cycle_calls[0] > args.failure_every:
        failures.append("beta never completed a cycle after injected failures")
    if leftover_locks:
        failures.append(f"locks leaked past graceful drain: {leftover_locks}")
    if not metrics["history_spilled"]:
        failures.append("graceful drain did not spill the history ring")
    if prom_errors:
        failures.append(f"prometheus exposition invalid: {prom_errors[:3]}")
    if alpha.exporter.exports == 0:
        failures.append("metrics exporter never exported")
    if trace_spans == 0:
        failures.append("tracer produced no spans across the whole soak")
    if promoter.shadow_evals == 0:
        failures.append("promoter never shadow-evaluated under load")
    if alpha.promoter_errors:
        failures.append(f"{alpha.promoter_errors} promoter step(s) raised")
    if promotion_summary.violations:
        failures.append(
            f"promotion audit violations: {promotion_summary.violations}"
        )
    if failures:
        print("SOAK FAILED:", "; ".join(failures), file=sys.stderr)
        return 1
    print(
        f"SOAK OK: {alpha.cycles_run + beta.cycles_run} cycles, "
        f"{summary.compact_commits} commits, {summary.contends} lock contentions, "
        f"{beta.cycle_errors} injected errors survived, "
        f"{promoter.shadow_evals} shadow evals "
        f"({promoter.promotions} promoted, {promoter.rollbacks} rolled back), "
        f"audits clean"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
