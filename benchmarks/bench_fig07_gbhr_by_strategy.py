"""Figure 7: mean GBHrApp per compaction application by strategy.

Paper claims (§6.1): table-level compaction is effective when tables are
highly fragmented but each application is expensive; the hybrid
(partition-level) approach compacts at a slower pace, with lower and more
stable GBHrApp per application.
"""

from __future__ import annotations

import statistics

from repro.analysis import bar_chart, render_table

from benchmarks.harness import banner, cab_run


def _gbhr_samples(strategy: str) -> list[float]:
    result = cab_run(strategy)
    return list(result.catalog.telemetry.series("engine.compaction.gbhr").values)


def test_fig07_gbhr_by_strategy(benchmark):
    samples = benchmark.pedantic(
        lambda: {name: _gbhr_samples(name) for name in ("table-10", "hybrid-50", "hybrid-500")},
        rounds=1,
        iterations=1,
    )

    print(
        banner(
            "Figure 7 — mean GBHrApp per compaction application",
            "table-scope applications cost more (whole-table rewrites); "
            "hybrid applications are cheaper and more stable",
        )
    )
    rows = []
    means = {}
    for name, values in samples.items():
        mean = statistics.mean(values)
        stdev = statistics.stdev(values) if len(values) > 1 else 0.0
        means[name] = mean
        rows.append(
            [
                name,
                len(values),
                f"{mean:.3f}",
                f"{stdev:.3f}",
                f"{stdev / mean:.2f}" if mean else "-",
            ]
        )
    print(
        render_table(
            ["strategy", "apps", "mean GBHr/app", "stdev", "coeff. of variation"], rows
        )
    )
    print()
    print(bar_chart(list(means), list(means.values()), width=40, unit=" GBHr"))

    # Shape assertions: table-scope apps are the most expensive; hybrid apps
    # are cheaper per application and relatively more stable.
    assert means["table-10"] > means["hybrid-500"]
    assert means["table-10"] > means["hybrid-50"]
    cv_table = statistics.stdev(samples["table-10"]) / means["table-10"]
    cv_hybrid = statistics.stdev(samples["hybrid-500"]) / means["hybrid-500"]
    assert cv_hybrid < cv_table * 1.5, "hybrid GBHr should not be wildly less stable"
