"""Figure 3: TPC-DS — execution time before and after compaction.

Paper claim (§2): after a data-maintenance phase modifying ~3% of the data
(deletes + inserts), the single-user phase slows down by 1.53×; manually
triggering compaction restores performance to levels comparable to the
initial execution.
"""

from __future__ import annotations

from repro.analysis import bar_chart, render_table
from repro.workloads import TpcdsExperiment

from benchmarks.harness import banner


def _run():
    return TpcdsExperiment(scale_factor=8.0, query_count=60, seed=7).run()


def test_fig03_tpcds_before_after_compaction(benchmark):
    timings = benchmark.pedantic(_run, rounds=1, iterations=1)

    print(
        banner(
            "Figure 3 — TPC-DS single-user runtime around maintenance/compaction",
            "maintenance degrades the single-user phase 1.53x; compaction "
            "restores it to ~1.0x of the initial run",
        )
    )
    rows = [
        ["initial single-user", f"{timings.single_user_initial_s:.0f}s", "1.00x", "1.00x"],
        [
            "after 3% maintenance",
            f"{timings.single_user_degraded_s:.0f}s",
            f"{timings.degradation_factor:.2f}x",
            "1.53x",
        ],
        [
            "after compaction",
            f"{timings.single_user_restored_s:.0f}s",
            f"{timings.restoration_factor:.2f}x",
            "~1.0x",
        ],
    ]
    print(render_table(["phase", "runtime", "vs initial (measured)", "paper"], rows))
    print()
    print(
        bar_chart(
            ["initial", "degraded", "restored"],
            [
                timings.single_user_initial_s,
                timings.single_user_degraded_s,
                timings.single_user_restored_s,
            ],
            width=40,
            unit="s",
        )
    )
    print(f"\nmaintenance phase: {timings.maintenance_s:.0f}s, "
          f"compaction: {timings.compaction_s:.0f}s")

    assert 1.3 < timings.degradation_factor < 2.1, "paper: 1.53x degradation"
    assert 0.7 < timings.restoration_factor < 1.15, "paper: restored to ~initial"
