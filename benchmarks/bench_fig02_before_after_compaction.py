"""Figure 2: OpenHouse file-size distribution before/after compaction.

Paper claims: 83% of files were below 128 MB before any compaction; manual
compaction dropped that to 62% but plateaued (months 2–3 unchanged);
AutoComp's rollout accelerated the shift toward the target — up to a 44%
reduction in the number of files smaller than 128 MB.
"""

from __future__ import annotations

from repro.analysis import render_table, sparkline
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetSimulator,
    ManualCompactionStrategy,
)
from repro.units import DAY

from benchmarks.harness import banner

MONTH_DAYS = 30


def _run():
    config = FleetConfig(initial_tables=1200, onboarded_per_month=120, seed=77)
    simulator = FleetSimulator(config)
    # Month 0-2: nothing.  Months 3-7: manual top-100.  Month 8+: AutoComp.
    simulator.set_strategy(3 * MONTH_DAYS, ManualCompactionStrategy(k=100))
    simulator.set_strategy(8 * MONTH_DAYS, AutoCompStrategy(simulator.model, k=10))
    simulator.set_strategy(
        10 * MONTH_DAYS,
        AutoCompStrategy(simulator.model, k=None, budget_gbhr=800.0),
    )
    simulator.run_days(12 * MONTH_DAYS)
    return simulator


def test_fig02_before_after_compaction(benchmark):
    simulator = benchmark.pedantic(_run, rounds=1, iterations=1)
    share = simulator.telemetry.series("fleet.small_file_fraction")
    below = simulator.telemetry.series("fleet.files_below_128")

    def at_month(series, month):
        return series.value_at(month * MONTH_DAYS * DAY - 1)

    before = at_month(share, 3)
    manual_m5 = at_month(share, 5)
    manual_m6 = at_month(share, 6)
    manual_end = at_month(share, 8)
    autocomp_end = share.last()

    print(
        banner(
            "Figure 2 — file size distribution before/after compaction",
            "83% of files <128MB before; 62% after manual compaction "
            "(plateauing between months 2-3 of manual); AutoComp "
            "accelerates the shift (up to 44% reduction)",
        )
    )
    rows = [
        ["before compaction (month 3)", f"{before:.0%}", "83%"],
        ["manual, after 2 months", f"{manual_m5:.0%}", "approaching 62%"],
        ["manual, after 3 months", f"{manual_m6:.0%}", "plateau (unchanged)"],
        ["manual, final (month 8)", f"{manual_end:.0%}", "62%"],
        ["AutoComp, final (month 12)", f"{autocomp_end:.0%}", "< 62%"],
    ]
    print(render_table(["state", "% files <128MiB (measured)", "paper"], rows))

    files_at_manual_end = at_month(below, 8)
    reduction = (files_at_manual_end - below.last()) / files_at_manual_end
    print(f"\nsmall-file COUNT reduction during the AutoComp phase: {reduction:.0%} "
          "(paper: up to 44%)")
    print(f"\n%<128MiB monthly: "
          f"{sparkline([at_month(share, m) for m in range(1, 13)])}")

    # Shape assertions.
    assert before > 0.75, "fleet should start badly fragmented (~83%)"
    assert manual_end < before - 0.08, "manual compaction visibly helps"
    assert abs(manual_m6 - manual_m5) < 0.05, "manual plateaus by month 3"
    assert autocomp_end < manual_end, "AutoComp pushes further than manual"
    assert reduction > 0.2, "meaningful small-file count reduction under AutoComp"
