"""CI perf-regression gate: compare bench JSON against a committed baseline.

The smoke benchmarks (``bench_scaleout.py --smoke --json …``,
``bench_whatif.py --smoke --json …``) emit a ``metrics`` mapping; this
script compares it against a baseline file under ``benchmarks/baselines/``
and exits non-zero on regression, failing the workflow.

Baselines declare, per metric, *how* to compare — because CI runners are
shared and noisy, timing-derived metrics get tolerance bands while
seed-deterministic metrics are held (near-)exact:

* ``exact`` — current must equal the baseline value (determinism flags,
  selection counts);
* ``min_ratio`` — current must be at least ``value * (1 - tolerance)``
  (speedups, hit rates: may improve freely, may degrade only within the
  band);
* ``max_ratio`` — current must be at most ``value * (1 + tolerance)``
  (latencies, costs);
* ``ratio`` — current must be within ``±tolerance`` (relative) of the
  value (deterministic floats that may drift slightly across library
  versions);
* ``max`` — current must be at most ``value``, an *absolute* ceiling
  with no tolerance band (overhead ratios with a hard budget, e.g.
  ``tracing_overhead`` must stay under 1.05);
* ``min`` — current must be at least ``value``, an absolute floor.

Metrics present in the run but absent from the baseline are informational
only; metrics promised by the baseline but missing from the run fail the
gate (a silently dropped metric is itself a regression).

A metric spec may carry ``min_cores``: the check applies only when the
run's ``config.cores`` is at least that many, and is reported as skipped
otherwise.  This keeps hardware-dependent floors honest — e.g. the
process-vs-thread worker speedup needs real cores to parallelise across,
so its ``min`` floor binds on multi-core CI runners without producing
false regressions on single-core sandboxes.

Baselines also pin the bench ``config`` keys that make runs comparable
(tables, days, seed, smoke …).  A run whose config differs on a pinned
key fails with an explicit mismatch — comparing a full run against a
smoke baseline is a usage error, not a perf regression.  Machine-shaped
keys (``cores``) are deliberately not pinned.

Usage::

    python benchmarks/check_regression.py BENCH_scaleout.json \
        --baseline benchmarks/baselines/scaleout.json

``--write-baseline PATH`` writes a baseline skeleton from the current run
(exact for integer metrics, ``min_ratio`` 0.5 for floats) for maintainers
to hand-tune when intentionally moving a baseline.  The skeleton is
written atomically (tmp + ``os.replace`` — baselines are committed gate
inputs, and ``repro.lint``'s RL002 enforces the idiom for every durable
file in the tree).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

#: Supported comparison kinds.
CHECKS = ("exact", "min_ratio", "max_ratio", "ratio", "max", "min")


def compare(name: str, current: float, spec: dict) -> tuple[bool, str]:
    """One metric's verdict: (ok, human-readable explanation)."""
    value = spec["value"]
    check = spec.get("check", "exact")
    tolerance = float(spec.get("tolerance", 0.0))
    if check not in CHECKS:
        return False, f"{name}: unknown check kind {check!r}"
    if check == "exact":
        ok = current == value
        bound = f"== {value}"
    elif check == "min_ratio":
        floor = value * (1.0 - tolerance)
        ok = current >= floor
        bound = f">= {floor:.6g} ({value} - {tolerance:.0%})"
    elif check == "max_ratio":
        ceiling = value * (1.0 + tolerance)
        ok = current <= ceiling
        bound = f"<= {ceiling:.6g} ({value} + {tolerance:.0%})"
    elif check == "max":
        ok = current <= value
        bound = f"<= {value} (absolute)"
    elif check == "min":
        ok = current >= value
        bound = f">= {value} (absolute)"
    else:  # ratio
        ok = abs(current - value) <= tolerance * abs(value)
        bound = f"within ±{tolerance:.0%} of {value}"
    status = "ok" if ok else "REGRESSION"
    return ok, f"{name:<30} {current:>14.6g}  {bound:<34} {status}"


def check(current: dict, baseline: dict) -> list[str]:
    """All failures of ``current`` against ``baseline`` (empty = pass)."""
    failures: list[str] = []
    current_metrics = current.get("metrics", {})
    baseline_metrics = baseline.get("metrics", {})
    if current.get("bench") != baseline.get("bench"):
        failures.append(
            f"bench mismatch: run is {current.get('bench')!r}, "
            f"baseline is {baseline.get('bench')!r}"
        )
    current_config = current.get("config", {})
    mismatched = [
        f"{key}: run={current_config.get(key)!r} baseline={pinned!r}"
        for key, pinned in sorted(baseline.get("config", {}).items())
        if current_config.get(key) != pinned
    ]
    if mismatched:
        failures.append(
            "config mismatch — run is not comparable to this baseline "
            f"({'; '.join(mismatched)}); re-run the bench with the "
            "baseline's configuration or refresh the baseline"
        )
        for line in mismatched:
            print(f"config {line}  MISMATCH")
        return failures
    cores = current_config.get("cores", 1)
    for name, spec in sorted(baseline_metrics.items()):
        if name not in current_metrics:
            failures.append(f"{name}: promised by baseline but missing from run")
            print(f"{name:<30} {'<missing>':>14}  {'':<34} REGRESSION")
            continue
        min_cores = spec.get("min_cores")
        if min_cores is not None and cores < min_cores:
            print(
                f"{name:<30} {current_metrics[name]:>14.6g}  "
                f"{'needs >= ' + str(min_cores) + ' cores, run has ' + str(cores):<34} "
                "skipped"
            )
            continue
        ok, line = compare(name, current_metrics[name], spec)
        print(line)
        if not ok:
            failures.append(line)
    extras = sorted(set(current_metrics) - set(baseline_metrics))
    for name in extras:
        print(f"{name:<30} {current_metrics[name]:>14.6g}  (informational, not gated)")
    return failures


def write_baseline(current: dict, path: str) -> None:
    """A baseline skeleton from the current run, for hand-tuning."""
    metrics = {}
    for name, value in sorted(current.get("metrics", {}).items()):
        if isinstance(value, int):
            metrics[name] = {"value": value, "check": "exact"}
        else:
            metrics[name] = {"value": value, "check": "min_ratio", "tolerance": 0.5}
    config = {
        key: value
        for key, value in sorted(current.get("config", {}).items())
        if key != "cores"  # machine-shaped, never pinned
    }
    payload = {"bench": current.get("bench"), "config": config, "metrics": metrics}
    # Write-then-rename: baselines are committed gate inputs, and a crash
    # mid-dump must not leave a torn half-baseline behind.
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)
    print(f"wrote baseline skeleton to {path}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="bench JSON produced by a --json run")
    parser.add_argument("--baseline", help="committed baseline to compare against")
    parser.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write a baseline skeleton from the current run and exit",
    )
    args = parser.parse_args()

    with open(args.current, encoding="utf-8") as handle:
        current = json.load(handle)
    if args.write_baseline:
        write_baseline(current, args.write_baseline)
        return 0
    if not args.baseline:
        parser.error("--baseline is required (or use --write-baseline)")
    with open(args.baseline, encoding="utf-8") as handle:
        baseline = json.load(handle)

    print(f"perf-regression gate: {current.get('bench')} vs {args.baseline}")
    failures = check(current, baseline)
    if failures:
        print(f"\n{len(failures)} regression(s):")
        for failure in failures:
            print(f"  FAIL: {failure}")
        return 1
    print("\nno regressions")
    return 0


if __name__ == "__main__":
    sys.exit(main())
