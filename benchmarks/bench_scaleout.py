"""Scale-out control plane: cycle latency vs fleet size, shards and workers.

The §7 deployment holds a daily cycle cadence while the fleet grows by
thousands of tables per month, so control-plane cycle latency must stay
sub-linear in fleet size.  This bench measures steady-state daily cycle
latency for:

* the **unsharded sequential baseline** — the seed
  :class:`~repro.fleet.AutoCompStrategy`: every candidate re-observed from
  scratch, every cycle;
* the **sharded control plane** —
  :class:`~repro.fleet.ShardedAutoCompStrategy`: consistent-hash sharding
  plus per-shard incremental observation caches (version-token
  invalidation), global selection;
* (with ``--workers processes``) **thread- vs process-mode shard
  workers** under a CPU-bound observe workload (``--observe-cost`` burns
  deterministic per-candidate CPU emulating real statistics-collection
  cost): threads serialize that work on the GIL, process workers spread
  it across cores via picklable :class:`~repro.core.workers.ShardWorkSpec`
  round trips.

All configurations run the same decisions (global selection is exactly
equivalent to the unsharded pipeline, and worker modes produce identical
cycle reports), so measured latency differences are pure control-plane
overhead.

With ``--connector lst`` the same worker-mode comparison runs over the
*realistic* catalog path instead of the vectorised fleet model: a
:class:`~repro.core.connectors.LstConnector` over live simulated tables,
exporting frozen :class:`~repro.catalog.snapshot.CatalogObservationSlice`
shard work, with ``selection="local"`` so process cycles exercise
worker-side decide — and a payload measurement comparing the shipped-back
bytes/candidates with decide in the worker vs on the coordinator.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scaleout.py [--smoke]
        [--workers processes] [--observe-cost N] [--connector lst]
        [--json BENCH_scaleout.json]

``--smoke`` runs a small fleet (CI-sized) and skips the speedup
assertions; the full run asserts the >=2x sharding speedup at 4 shards on
a 2,000-table fleet, that sharded selections are deterministic across
repeated runs, and — under ``--workers processes`` on a >=4-core host —
that process workers beat thread workers by >=1.5x on the CPU-bound
observe workload.  ``--json`` writes the measured metrics for the CI
perf-regression gate (``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pickle
import statistics
import time

from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetModel,
    ShardedAutoCompStrategy,
)
from repro.units import DAY, MiB

#: Selection budget per daily cycle (the paper's conservative rollout k).
TOP_K = 10

#: Default per-candidate CPU units for the worker-mode comparison: enough
#: that observation dominates the cycle (the regime process workers exist
#: for), small enough that smoke runs stay CI-sized.
OBSERVE_COST = 100


def _banner(title: str, claim: str) -> str:
    line = "=" * 78
    return f"\n{line}\n{title}\n{claim}\n{line}"


def _fresh_model(tables: int, seed: int) -> FleetModel:
    model = FleetModel(FleetConfig(initial_tables=tables, seed=seed))
    model.step_day()  # give day-0 fragmentation something to observe
    return model


def measure(tables: int, shard_counts: list[int], days: int, seed: int) -> dict:
    """Latency table: baseline plus one row per shard count.

    All configurations run over identical (independent) fleets and are
    *interleaved* day by day, so low-frequency machine noise lands on every
    configuration alike; the per-configuration median then discards the
    remaining spikes (GC is also disabled around the timed region,
    identically for all configurations).
    """
    configs: list[tuple[str, object, FleetModel]] = []
    baseline_model = _fresh_model(tables, seed)
    configs.append(("baseline", AutoCompStrategy(baseline_model, k=TOP_K), baseline_model))
    for n in shard_counts:
        model = _fresh_model(tables, seed)
        configs.append((f"sharded-{n}", ShardedAutoCompStrategy(model, n_shards=n, k=TOP_K), model))

    latencies: dict[str, list[float]] = {name: [] for name, _, _ in configs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches, discarded
            for name, strategy, model in configs:
                day = model.day
                start = time.perf_counter()
                strategy.run_day(model, day)
                elapsed = time.perf_counter() - start
                model.step_day()
                if cycle > 0:
                    latencies[name].append(elapsed)
    finally:
        gc.enable()
        for _, strategy, _ in configs[1:]:
            strategy.close()

    rows: dict[str, dict] = {}
    base_latency = statistics.median(latencies["baseline"])
    rows["baseline"] = {"latency_s": base_latency, "speedup": 1.0}
    for name, strategy, _ in configs[1:]:
        median = statistics.median(latencies[name])
        hits = sum(c.hits for c in strategy.caches)
        misses = sum(c.misses for c in strategy.caches)
        rows[name] = {
            "latency_s": median,
            "speedup": base_latency / median,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    return rows


def measure_worker_modes(
    tables: int, n_shards: int, days: int, seed: int, observe_cost: int
) -> dict:
    """Thread- vs process-mode sharded latency under CPU-bound observation.

    Both modes run identical fleets with the same ``observe_cost`` burned
    per statistics rebuild (in the coordinator for threads, in the worker
    processes for processes), interleaved day by day; per-cycle selections
    are recorded and compared, so the table demonstrates both the
    multi-core speedup and the modes' identical decisions.
    """
    runs: list[tuple[str, ShardedAutoCompStrategy, FleetModel]] = []
    for mode in ("threads", "processes"):
        model = _fresh_model(tables, seed)
        strategy = ShardedAutoCompStrategy(
            model,
            n_shards=n_shards,
            k=TOP_K,
            workers=mode,
            # Explicit width: the process path must engage even when the
            # host advertises a single core (correctness is measured
            # everywhere; the speedup assertion is gated on cores).
            max_workers=n_shards,
            observe_cost=observe_cost,
        )
        runs.append((mode, strategy, model))

    latencies: dict[str, list[float]] = {mode: [] for mode, _, _ in runs}
    selections: dict[str, list[tuple]] = {mode: [] for mode, _, _ in runs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches + pools
            for mode, strategy, model in runs:
                now = float(model.day) * DAY
                start = time.perf_counter()
                sharded = strategy.pipeline.run_cycle(now=now)
                elapsed = time.perf_counter() - start
                model.step_day()
                selections[mode].append(
                    tuple(str(key) for key in sharded.report.selected)
                )
                if cycle > 0:
                    latencies[mode].append(elapsed)
    finally:
        gc.enable()
        for _, strategy, _ in runs:
            strategy.close()

    thread_latency = statistics.median(latencies["threads"])
    process_latency = statistics.median(latencies["processes"])
    return {
        "threads": {"latency_s": thread_latency, "speedup": 1.0},
        "processes": {
            "latency_s": process_latency,
            "speedup": thread_latency / process_latency,
        },
        "identical_selections": selections["threads"] == selections["processes"],
    }


def measure_tracing_overhead(
    tables: int, n_shards: int, days: int, seed: int, observe_cost: int
) -> float:
    """Median per-day cycle-latency ratio, tracer attached vs detached.

    Two *identical* fleets (same seed; tracing never changes decisions)
    run interleaved day by day, one with a tracer on its sharded pipeline
    and one without, so each day yields a traced/untraced latency pair
    measured back to back under the same machine conditions and the same
    cache/fragmentation state.  The arms' run order alternates each day
    (ABBA) and the reported overhead is the median of per-day ratios —
    pairing and alternation make position effects and low-frequency
    runner noise cancel instead of landing on one arm.

    The workload is the bench's CPU-bound observe configuration
    (``observe_cost`` units burned per candidate, as in the worker-mode
    comparison): span cost is O(shards + selected) per cycle, so the
    production-shaped cycle — where observation does real per-candidate
    work — is the denominator the <5% overhead promise is made against.
    The ratio is gated absolutely (``check: max``) by the CI
    perf-regression baseline.
    """
    from repro.obs.tracing import Tracer

    # The median of per-day ratios needs a handful of pairs to be stable
    # on shared CI runners; stretch short (smoke) runs accordingly.
    cycles = max(days * 4, 12)
    tracer = Tracer()
    runs = []
    for traced in (False, True):
        model = _fresh_model(tables, seed)
        strategy = ShardedAutoCompStrategy(
            model, n_shards=n_shards, k=TOP_K, observe_cost=observe_cost
        )
        strategy.pipeline.tracer = tracer if traced else None
        runs.append((traced, strategy, model))
    pairs: list[dict[bool, float]] = []
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + cycles):  # first cycle warms caches, discarded
            order = runs if cycle % 2 == 0 else list(reversed(runs))
            pair: dict[bool, float] = {}
            for traced, strategy, model in order:
                day = model.day
                start = time.perf_counter()
                strategy.pipeline.run_cycle(now=float(day) * DAY)
                pair[traced] = time.perf_counter() - start
                model.step_day()
            tracer.clear()
            if cycle > 0:
                pairs.append(pair)
    finally:
        gc.enable()
        for _, strategy, _ in runs:
            strategy.close()
    return statistics.median(pair[True] / pair[False] for pair in pairs)


def _build_lst_catalog(tables: int, seed: int):
    """A deterministic catalog: two tenants, mixed partitioned/flat tables."""
    from repro.catalog import Catalog
    from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema

    catalog = Catalog()
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    monthly = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    catalog.create_database("tenant0", quota_objects=tables * 200)
    catalog.create_database("tenant1")
    for i in range(tables):
        db = f"tenant{i % 2}"
        files = 3 + (i * 7 + seed) % 6
        if i % 4 == 0:
            table = catalog.create_table(f"{db}.part{i:04d}", schema, spec=monthly)
            partitions = [(0,), (1,)]
        else:
            table = catalog.create_table(f"{db}.flat{i:04d}", schema)
            partitions = [()]
        _append_files(table, partitions, files)
    return catalog


def _append_files(table, partitions, files_per_partition, file_size=8 * MiB):
    txn = table.new_append()
    for partition in partitions:
        for _ in range(files_per_partition):
            txn.add_file(file_size, partition=partition)
    txn.commit()


def _lst_daily_writes(catalog, day: int) -> None:
    """Dirty a deterministic rotating ~10% of the tables, then advance a day."""
    names = sorted(str(ident) for ident in catalog.list_tables())
    dirty = max(len(names) // 10, 1)
    for offset in range(dirty):
        table = catalog.load_table(names[(day * dirty + offset) % len(names)])
        partition = (0,) if table.spec.is_partitioned else ()
        _append_files(table, [partition], 2)
    catalog.clock.advance_by(DAY)


def _lst_pipeline(catalog, n_shards, workers, max_workers=None, worker_decide=None):
    from repro.core import IndexedCandidateCache, openhouse_sharded_pipeline
    from repro.engine import Cluster

    return openhouse_sharded_pipeline(
        catalog,
        Cluster("maint", executors=2),
        n_shards=n_shards,
        stats_cache=IndexedCandidateCache(),
        selection="local",
        workers=workers,
        worker_decide=worker_decide,
        max_workers=max_workers,
        k=TOP_K,
        min_table_age_s=0.0,
    )


def measure_lst_worker_modes(tables: int, n_shards: int, days: int, seed: int) -> dict:
    """Thread- vs process-mode sharded cycles over the live-catalog connector.

    Unlike the fleet rows, LST observation is real per-table Python work
    (file listing, policy lookup, statistics from raw sizes), so this is
    the paper-shaped workload; ``selection="local"`` lets process cycles
    run worker-side decide (the default), so the comparison covers the
    full in-worker OODA path.
    """
    runs = []
    for mode in ("threads", "processes"):
        catalog = _build_lst_catalog(tables, seed)
        pipeline = _lst_pipeline(catalog, n_shards, mode, max_workers=n_shards)
        runs.append((mode, catalog, pipeline))

    latencies: dict[str, list[float]] = {mode: [] for mode, _, _ in runs}
    selections: dict[str, list[tuple]] = {mode: [] for mode, _, _ in runs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches + pools
            for mode, catalog, pipeline in runs:
                start = time.perf_counter()
                sharded = pipeline.run_cycle(now=catalog.clock.now)
                elapsed = time.perf_counter() - start
                selections[mode].append(
                    tuple(str(key) for key in sharded.report.selected)
                )
                _lst_daily_writes(catalog, cycle)
                if cycle > 0:
                    latencies[mode].append(elapsed)
    finally:
        gc.enable()
        for _, _, pipeline in runs:
            pipeline.close()

    thread_latency = statistics.median(latencies["threads"])
    process_latency = statistics.median(latencies["processes"])
    return {
        "threads": {"latency_s": thread_latency, "speedup": 1.0},
        "processes": {
            "latency_s": process_latency,
            "speedup": thread_latency / process_latency,
        },
        "identical_selections": selections["threads"] == selections["processes"],
        "selected_total": sum(len(day) for day in selections["threads"]),
    }


def measure_lst_payload(tables: int, n_shards: int, seed: int) -> dict:
    """Shipped-back payload, decide-on-coordinator vs decide-in-worker.

    Replays one cold shard cycle's export → worker → result sequence
    inline (no pool, so the results can be pickled and sized exactly) and
    compares what crosses back: all observed candidates without worker
    decide, only the selected ones with it.
    """
    from repro.core import (
        ShardDecideSpec,
        TopKSelector,
        run_shard_work,
        shard_for_key,
        split_selector,
    )

    sizes: dict[bool, dict[str, int]] = {}
    for decide in (False, True):
        import dataclasses

        catalog = _build_lst_catalog(tables, seed)
        pipeline = _lst_pipeline(catalog, n_shards, "threads")
        try:
            shard0 = pipeline.shards[0]
            keys = shard0.connector.list_candidates(shard0.generation)
            selectors = split_selector(TopKSelector(TOP_K), n_shards)
            total_bytes = 0
            total_candidates = 0
            for i, shard in enumerate(pipeline.shards):
                subset = [k for k in keys if shard_for_key(k, n_shards) == i]
                placed, spec = shard.connector.export_shard_work(subset, i, shard.traits)
                if spec is None:
                    continue
                if decide:
                    spec = dataclasses.replace(
                        spec,
                        decide=ShardDecideSpec(
                            policy=shard.policy,
                            selector=selectors[i],
                            stats_filters=tuple(shard.stats_filters),
                            trait_filters=tuple(shard.trait_filters),
                            hits=tuple(placed),
                        ),
                    )
                result = run_shard_work(spec)
                total_bytes += len(pickle.dumps(result))
                total_candidates += len(
                    result.decision.selected if decide else result.candidates
                )
        finally:
            pipeline.close()
        sizes[decide] = {"bytes": total_bytes, "candidates": total_candidates}
    return {
        "coordinator_decide": sizes[False],
        "worker_decide": sizes[True],
        "bytes_reduction": sizes[False]["bytes"] / max(sizes[True]["bytes"], 1),
    }


def selected_keys_per_day(tables: int, n_shards: int, days: int, seed: int) -> list[tuple]:
    """The sharded control plane's daily selections, as hashable tuples."""
    model = _fresh_model(tables, seed)
    with ShardedAutoCompStrategy(model, n_shards=n_shards, k=TOP_K) as strategy:
        selections = []
        for _ in range(days):
            day = model.day
            sharded = strategy.pipeline.run_cycle(now=float(day) * DAY)
            selections.append(tuple(str(key) for key in sharded.report.selected))
            model.step_day()
    return selections


def _print_rows(rows: dict) -> None:
    header = f"{'configuration':<14} {'cycle latency':>14} {'speedup':>9} {'cache hit rate':>15}"
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        if not isinstance(row, dict):
            continue
        hit = f"{row['hit_rate']:.0%}" if "hit_rate" in row else "-"
        print(
            f"{name:<14} {row['latency_s'] * 1e3:>12.2f}ms {row['speedup']:>8.2f}x {hit:>15}"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-sized run, no speedup assertion"
    )
    parser.add_argument("--tables", type=int, default=None, help="fleet size override")
    parser.add_argument("--days", type=int, default=None, help="measured cycles")
    parser.add_argument("--seed", type=int, default=20250730)
    parser.add_argument(
        "--workers",
        choices=["threads", "processes"],
        default=None,
        help="also compare shard worker modes (threads vs processes) "
        "under a CPU-bound observe workload",
    )
    parser.add_argument(
        "--observe-cost",
        type=int,
        default=OBSERVE_COST,
        help="per-candidate CPU units for the worker-mode comparison",
    )
    parser.add_argument(
        "--connector",
        choices=["fleet", "lst"],
        default="fleet",
        help="fleet: vectorised fleet model (default); lst: the realistic "
        "live-catalog connector with picklable snapshot export and "
        "worker-side decide",
    )
    parser.add_argument(
        "--json", default=None, help="write measured metrics to this path"
    )
    args = parser.parse_args()

    if args.connector == "lst":
        return main_lst(args)

    tables = args.tables or (500 if args.smoke else 2000)
    days = args.days or (2 if args.smoke else 7)
    shard_counts = [2] if args.smoke else [1, 2, 4, 8]
    worker_shards = 2 if args.smoke else 4
    cores = os.cpu_count() or 1

    print(
        _banner(
            f"Scale-out control plane — cycle latency, {tables}-table fleet",
            "Target: >=2x steady-state cycle-latency speedup at 4 shards "
            "(sharding + incremental observation) vs the unsharded baseline; "
            ">=1.5x process-worker speedup over threads on CPU-bound observe "
            "(4-core host)",
        )
    )
    rows = measure(tables, shard_counts, days, args.seed)
    _print_rows(rows)

    worker_rows = None
    if args.workers is not None:
        print(
            f"\nworker modes — {worker_shards} shards, observe cost "
            f"{args.observe_cost} units/candidate (CPU-bound observe):"
        )
        worker_rows = measure_worker_modes(
            tables, worker_shards, days, args.seed, args.observe_cost
        )
        _print_rows(worker_rows)
        print(
            "worker-mode selections: "
            + ("identical" if worker_rows["identical_selections"] else "DIVERGED")
        )

    tracing_overhead = measure_tracing_overhead(
        tables, worker_shards, days, args.seed, args.observe_cost
    )
    print(
        f"\ntracing overhead — tracer-on vs tracer-off interleaved cycles "
        f"(observe cost {args.observe_cost}): {tracing_overhead:.3f}x "
        f"(budget: <1.05x)"
    )

    print("\ndeterminism: repeated sharded runs with the same seed ...", end=" ")
    reference = selected_keys_per_day(tables, shard_counts[-1], days, args.seed)
    repeat = selected_keys_per_day(tables, shard_counts[-1], days, args.seed)
    identical = reference == repeat
    print("identical selections" if identical else "DIVERGED")

    failures = []
    if not identical:
        failures.append("sharded selections are not deterministic")
    if worker_rows is not None and not worker_rows["identical_selections"]:
        failures.append("process-mode selections diverged from thread mode")
    if not args.smoke:
        speedup = rows["sharded-4"]["speedup"]
        if speedup < 2.0:
            failures.append(f"sharded-4 speedup {speedup:.2f}x below the 2x target")
        if worker_rows is not None:
            worker_speedup = worker_rows["processes"]["speedup"]
            if cores >= 4:
                if worker_speedup < 1.5:
                    failures.append(
                        f"process-worker speedup {worker_speedup:.2f}x below the "
                        "1.5x target"
                    )
            else:
                print(
                    f"(worker speedup assertion skipped: only {cores} CPU core(s))"
                )

    if args.json:
        sharded_key = f"sharded-{shard_counts[-1]}"
        metrics: dict[str, float] = {
            "sharded_speedup": rows[sharded_key]["speedup"],
            "cache_hit_rate": rows[sharded_key]["hit_rate"],
            "deterministic": int(identical),
            "selected_total": sum(len(day) for day in reference),
            "tracing_overhead": tracing_overhead,
        }
        if worker_rows is not None:
            metrics["worker_speedup"] = worker_rows["processes"]["speedup"]
            metrics["worker_modes_identical"] = int(
                worker_rows["identical_selections"]
            )
        payload = {
            "bench": "scaleout",
            "config": {
                "tables": tables,
                "days": days,
                "seed": args.seed,
                "shards": shard_counts,
                "smoke": args.smoke,
                "cores": cores,
            },
            "metrics": metrics,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


def main_lst(args) -> int:
    """The ``--connector lst`` flow: live-catalog worker modes + payload."""
    tables = args.tables or (120 if args.smoke else 400)
    days = args.days or (2 if args.smoke else 5)
    n_shards = 2 if args.smoke else 4
    cores = os.cpu_count() or 1

    print(
        _banner(
            f"Scale-out control plane — LST catalog connector, {tables} tables",
            "Realistic catalog path on process workers: snapshot export, "
            "worker-side decide (selection='local'), O(selected) return "
            "payload; selections must be identical across worker modes",
        )
    )
    rows = measure_lst_worker_modes(tables, n_shards, days, args.seed)
    _print_rows(rows)
    print(
        "worker-mode selections: "
        + ("identical" if rows["identical_selections"] else "DIVERGED")
    )

    payload = measure_lst_payload(tables, n_shards, args.seed)
    coordinator, worker = payload["coordinator_decide"], payload["worker_decide"]
    print(
        f"\ncold-cycle return payload — decide on coordinator: "
        f"{coordinator['candidates']} candidates / {coordinator['bytes']} B; "
        f"decide in worker: {worker['candidates']} candidates / "
        f"{worker['bytes']} B ({payload['bytes_reduction']:.1f}x smaller)"
    )

    failures = []
    if not rows["identical_selections"]:
        failures.append("LST process-mode selections diverged from thread mode")
    if worker["bytes"] >= coordinator["bytes"]:
        failures.append("worker-side decide did not shrink the return payload")

    if args.json:
        payload_metrics = {
            "lst_worker_speedup": rows["processes"]["speedup"],
            "lst_modes_identical": int(rows["identical_selections"]),
            "lst_selected_total": rows["selected_total"],
            "lst_returned_coordinator_decide": coordinator["candidates"],
            "lst_returned_worker_decide": worker["candidates"],
            "lst_payload_bytes_reduction": payload["bytes_reduction"],
        }
        blob = {
            "bench": "scaleout_lst",
            "config": {
                "tables": tables,
                "days": days,
                "seed": args.seed,
                "shards": n_shards,
                "smoke": args.smoke,
                "cores": cores,
            },
            "metrics": payload_metrics,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(blob, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
