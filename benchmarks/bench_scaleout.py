"""Scale-out control plane: cycle latency vs fleet size, shards and workers.

The §7 deployment holds a daily cycle cadence while the fleet grows by
thousands of tables per month, so control-plane cycle latency must stay
sub-linear in fleet size.  This bench measures steady-state daily cycle
latency for:

* the **unsharded sequential baseline** — the seed
  :class:`~repro.fleet.AutoCompStrategy`: every candidate re-observed from
  scratch, every cycle;
* the **sharded control plane** —
  :class:`~repro.fleet.ShardedAutoCompStrategy`: consistent-hash sharding
  plus per-shard incremental observation caches (version-token
  invalidation), global selection;
* (with ``--workers processes``) **thread- vs process-mode shard
  workers** under a CPU-bound observe workload (``--observe-cost`` burns
  deterministic per-candidate CPU emulating real statistics-collection
  cost): threads serialize that work on the GIL, process workers spread
  it across cores via picklable :class:`~repro.core.workers.ShardWorkSpec`
  round trips.

All configurations run the same decisions (global selection is exactly
equivalent to the unsharded pipeline, and worker modes produce identical
cycle reports), so measured latency differences are pure control-plane
overhead.

With ``--connector lst`` the same worker-mode comparison runs over the
*realistic* catalog path instead of the vectorised fleet model: a
:class:`~repro.core.connectors.LstConnector` over live simulated tables
with realistic per-table file populations, shipping shard work over the
negotiated :class:`~repro.core.transport.WorkerTransport` (columnar
shared-memory statistics arrays by default, ``--transport pickle`` for
the legacy per-object path), with ``selection="local"`` so process
cycles exercise worker-side decide.  Two extra tables accompany it: a
pickle-vs-columnar transport comparison on identical process fleets,
and a payload measurement comparing the shipped-back bytes/candidates
with decide in the worker vs on the coordinator.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scaleout.py [--smoke]
        [--workers processes] [--observe-cost N] [--connector lst]
        [--json BENCH_scaleout.json]

``--smoke`` runs a small fleet (CI-sized) and skips the speedup
assertions; the full run asserts the >=2x sharding speedup at 4 shards on
a 2,000-table fleet, that sharded selections are deterministic across
repeated runs, and — under ``--workers processes`` on a >=4-core host —
that process workers beat thread workers by >=1.5x on the CPU-bound
observe workload.  ``--json`` writes the measured metrics for the CI
perf-regression gate (``benchmarks/check_regression.py``).
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import pickle
import statistics
import time

from repro.core.traits import Trait
from repro.core.workers import burn_cpu
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetModel,
    ShardedAutoCompStrategy,
)
from repro.units import DAY, MiB

#: Selection budget per daily cycle (the paper's conservative rollout k).
TOP_K = 10

#: Default per-candidate CPU units for the worker-mode comparison: enough
#: that observation dominates the cycle (the regime process workers exist
#: for), small enough that smoke runs stay CI-sized.
OBSERVE_COST = 100

#: Default per-candidate CPU units for the LST worker-mode comparison
#: (``--connector lst``).  The simulated catalog hands observation a
#: ready-made size list, so the per-candidate statistics-collection cost a
#: production connector pays (manifest parsing, column-stat decoding —
#: milliseconds per table) is emulated by :class:`ObserveCostTrait`;
#: 600 units is ~0.3ms per observed candidate, still conservative.
LST_OBSERVE_COST = 600

#: Steady-state file sizes for the LST catalog: mostly small files below
#: the 512 MiB default target plus some already-compacted ones at it.
LST_SIZE_MIX = (8 * MiB, 24 * MiB, 64 * MiB, 200 * MiB, 512 * MiB)


def _banner(title: str, claim: str) -> str:
    line = "=" * 78
    return f"\n{line}\n{title}\n{claim}\n{line}"


def _fresh_model(tables: int, seed: int) -> FleetModel:
    model = FleetModel(FleetConfig(initial_tables=tables, seed=seed))
    model.step_day()  # give day-0 fragmentation something to observe
    return model


def measure(tables: int, shard_counts: list[int], days: int, seed: int) -> dict:
    """Latency table: baseline plus one row per shard count.

    All configurations run over identical (independent) fleets and are
    *interleaved* day by day, so low-frequency machine noise lands on every
    configuration alike; the per-configuration median then discards the
    remaining spikes (GC is also disabled around the timed region,
    identically for all configurations).
    """
    configs: list[tuple[str, object, FleetModel]] = []
    baseline_model = _fresh_model(tables, seed)
    configs.append(("baseline", AutoCompStrategy(baseline_model, k=TOP_K), baseline_model))
    for n in shard_counts:
        model = _fresh_model(tables, seed)
        configs.append((f"sharded-{n}", ShardedAutoCompStrategy(model, n_shards=n, k=TOP_K), model))

    latencies: dict[str, list[float]] = {name: [] for name, _, _ in configs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches, discarded
            for name, strategy, model in configs:
                day = model.day
                start = time.perf_counter()
                strategy.run_day(model, day)
                elapsed = time.perf_counter() - start
                model.step_day()
                if cycle > 0:
                    latencies[name].append(elapsed)
    finally:
        gc.enable()
        for _, strategy, _ in configs[1:]:
            strategy.close()

    rows: dict[str, dict] = {}
    base_latency = statistics.median(latencies["baseline"])
    rows["baseline"] = {"latency_s": base_latency, "speedup": 1.0}
    for name, strategy, _ in configs[1:]:
        median = statistics.median(latencies[name])
        hits = sum(c.hits for c in strategy.caches)
        misses = sum(c.misses for c in strategy.caches)
        rows[name] = {
            "latency_s": median,
            "speedup": base_latency / median,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    return rows


def measure_worker_modes(
    tables: int, n_shards: int, days: int, seed: int, observe_cost: int
) -> dict:
    """Thread- vs process-mode sharded latency under CPU-bound observation.

    Both modes run identical fleets with the same ``observe_cost`` burned
    per statistics rebuild (in the coordinator for threads, in the worker
    processes for processes), interleaved day by day; per-cycle selections
    are recorded and compared, so the table demonstrates both the
    multi-core speedup and the modes' identical decisions.
    """
    runs: list[tuple[str, ShardedAutoCompStrategy, FleetModel]] = []
    for mode in ("threads", "processes"):
        model = _fresh_model(tables, seed)
        strategy = ShardedAutoCompStrategy(
            model,
            n_shards=n_shards,
            k=TOP_K,
            workers=mode,
            # Explicit width: the process path must engage even when the
            # host advertises a single core (correctness is measured
            # everywhere; the speedup assertion is gated on cores).
            max_workers=n_shards,
            observe_cost=observe_cost,
        )
        runs.append((mode, strategy, model))

    latencies: dict[str, list[float]] = {mode: [] for mode, _, _ in runs}
    selections: dict[str, list[tuple]] = {mode: [] for mode, _, _ in runs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches + pools
            for mode, strategy, model in runs:
                now = float(model.day) * DAY
                start = time.perf_counter()
                sharded = strategy.pipeline.run_cycle(now=now)
                elapsed = time.perf_counter() - start
                model.step_day()
                selections[mode].append(
                    tuple(str(key) for key in sharded.report.selected)
                )
                if cycle > 0:
                    latencies[mode].append(elapsed)
    finally:
        gc.enable()
        for _, strategy, _ in runs:
            strategy.close()

    thread_latency = statistics.median(latencies["threads"])
    process_latency = statistics.median(latencies["processes"])
    return {
        "threads": {"latency_s": thread_latency, "speedup": 1.0},
        "processes": {
            "latency_s": process_latency,
            "speedup": thread_latency / process_latency,
        },
        "identical_selections": selections["threads"] == selections["processes"],
    }


def measure_tracing_overhead(
    tables: int, n_shards: int, days: int, seed: int, observe_cost: int
) -> float:
    """Median per-day cycle-latency ratio, tracer attached vs detached.

    Two *identical* fleets (same seed; tracing never changes decisions)
    run interleaved day by day, one with a tracer on its sharded pipeline
    and one without, so each day yields a traced/untraced latency pair
    measured back to back under the same machine conditions and the same
    cache/fragmentation state.  The arms' run order alternates each day
    (ABBA) and the reported overhead is the median of per-day ratios —
    pairing and alternation make position effects and low-frequency
    runner noise cancel instead of landing on one arm.

    The workload is the bench's CPU-bound observe configuration
    (``observe_cost`` units burned per candidate, as in the worker-mode
    comparison): span cost is O(shards + selected) per cycle, so the
    production-shaped cycle — where observation does real per-candidate
    work — is the denominator the <5% overhead promise is made against.
    The ratio is gated absolutely (``check: max``) by the CI
    perf-regression baseline.
    """
    from repro.obs.tracing import Tracer

    # The median of per-day ratios needs a handful of pairs to be stable
    # on shared CI runners; stretch short (smoke) runs accordingly.
    cycles = max(days * 4, 12)
    tracer = Tracer()
    runs = []
    for traced in (False, True):
        model = _fresh_model(tables, seed)
        strategy = ShardedAutoCompStrategy(
            model, n_shards=n_shards, k=TOP_K, observe_cost=observe_cost
        )
        strategy.pipeline.tracer = tracer if traced else None
        runs.append((traced, strategy, model))
    pairs: list[dict[bool, float]] = []
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + cycles):  # first cycle warms caches, discarded
            order = runs if cycle % 2 == 0 else list(reversed(runs))
            pair: dict[bool, float] = {}
            for traced, strategy, model in order:
                day = model.day
                start = time.perf_counter()
                strategy.pipeline.run_cycle(now=float(day) * DAY)
                pair[traced] = time.perf_counter() - start
                model.step_day()
            tracer.clear()
            if cycle > 0:
                pairs.append(pair)
    finally:
        gc.enable()
        for _, strategy, _ in runs:
            strategy.close()
    return statistics.median(pair[True] / pair[False] for pair in pairs)


class ObserveCostTrait(Trait):
    """Deterministic per-candidate CPU burn emulating real observation cost.

    The simulated catalog hands observation a ready-made file-size list,
    so the statistics-collection work a production connector pays per
    candidate (manifest parsing, column-stat decoding) is absent.  This
    trait burns :func:`~repro.core.workers.burn_cpu` rounds keyed on the
    candidate's file count — bit-identical across the per-object and
    columnar paths — and stores the checksum as an inert trait value (the
    policy's objectives only read the two named OpenHouse traits).  Thread
    workers serialize the burn on the GIL; process workers spread it.
    """

    name = "observe_cost_checksum"

    def __init__(self, units: int) -> None:
        self.units = units

    def compute(self, statistics) -> float:
        return float(burn_cpu(self.units, str(statistics.file_count).encode()))

    def compute_columnar(self, block):
        return [
            float(burn_cpu(self.units, str(int(count)).encode()))
            for count in block.column("file_count")
        ]


def _build_lst_catalog(tables: int, seed: int):
    """A deterministic catalog: two tenants, mixed partitioned/flat tables.

    Tables carry realistic file populations — 80–240 files each, sizes
    mostly below the 512 MiB compaction target with some already at it —
    so observation rows, worker transports and statistics all see
    production-shaped inputs rather than toy three-file tables.
    """
    from repro.catalog import Catalog
    from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema

    catalog = Catalog()
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    monthly = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    catalog.create_database("tenant0", quota_objects=tables * 2000)
    catalog.create_database("tenant1")
    for i in range(tables):
        db = f"tenant{i % 2}"
        files = 80 + (i * 37 + seed) % 160
        if i % 4 == 0:
            table = catalog.create_table(f"{db}.part{i:04d}", schema, spec=monthly)
            partitions = [(0,), (1,)]
        else:
            table = catalog.create_table(f"{db}.flat{i:04d}", schema)
            partitions = [()]
        _append_files(table, partitions, files, salt=i)
    return catalog


def _append_files(table, partitions, files_per_partition, salt=0):
    txn = table.new_append()
    for partition in partitions:
        for j in range(files_per_partition):
            size = LST_SIZE_MIX[(j + salt) % len(LST_SIZE_MIX)]
            txn.add_file(size, partition=partition)
    txn.commit()


def _lst_daily_writes(catalog, day: int) -> None:
    """Dirty a deterministic rotating half of the tables, then advance a day.

    Half the fleet ingests daily (streaming tenants), half sits warm in
    the incremental cache — so cycles exercise both the miss path (fresh
    observation) and the hit path (cached candidates crossing the worker
    transport).
    """
    names = sorted(str(ident) for ident in catalog.list_tables())
    dirty = max(len(names) // 2, 1)
    for offset in range(dirty):
        table = catalog.load_table(names[(day * dirty + offset) % len(names)])
        partition = (0,) if table.spec.is_partitioned else ()
        _append_files(table, [partition], 4, salt=day + offset)
    catalog.clock.advance_by(DAY)


def _lst_pipeline(
    catalog,
    n_shards,
    workers,
    max_workers=None,
    worker_decide=None,
    transport=None,
    observe_cost=0,
):
    from repro.core import IndexedCandidateCache, openhouse_sharded_pipeline
    from repro.engine import Cluster

    pipeline = openhouse_sharded_pipeline(
        catalog,
        Cluster("maint", executors=2),
        n_shards=n_shards,
        stats_cache=IndexedCandidateCache(),
        selection="local",
        workers=workers,
        worker_decide=worker_decide,
        transport=transport,
        max_workers=max_workers,
        k=TOP_K,
        min_table_age_s=0.0,
    )
    if observe_cost:
        # Shards share one registry; the burn trait rides the same
        # transport as the built-ins (pickled registry or columnar matrix).
        pipeline.shards[0].traits.register(ObserveCostTrait(observe_cost))
    return pipeline


def _interleaved_lst_cycles(runs: list[tuple], days: int) -> tuple[dict, dict]:
    """Run ``1 + days`` daily cycles for each configuration, interleaved.

    Returns per-configuration cycle latencies (first warm-up cycle
    discarded) and per-cycle selection tuples.
    """
    latencies: dict[str, list[float]] = {name: [] for name, _, _ in runs}
    selections: dict[str, list[tuple]] = {name: [] for name, _, _ in runs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches + pools
            for name, catalog, pipeline in runs:
                start = time.perf_counter()
                sharded = pipeline.run_cycle(now=catalog.clock.now)
                elapsed = time.perf_counter() - start
                selections[name].append(
                    tuple(str(key) for key in sharded.report.selected)
                )
                _lst_daily_writes(catalog, cycle)
                if cycle > 0:
                    latencies[name].append(elapsed)
    finally:
        gc.enable()
        for _, _, pipeline in runs:
            pipeline.close()
    return latencies, selections


def measure_lst_worker_modes(
    tables: int,
    n_shards: int,
    days: int,
    seed: int,
    observe_cost: int,
    transport: str | None = None,
) -> dict:
    """Thread- vs process-mode sharded cycles over the live-catalog connector.

    Unlike the fleet rows, LST observation is real per-table Python work
    (file listing, policy lookup, statistics from raw sizes — plus the
    :class:`ObserveCostTrait` emulation of production statistics
    collection), so this is the paper-shaped workload; ``selection="local"``
    lets process cycles run worker-side decide (the default), so the
    comparison covers the full in-worker OODA path.
    """
    runs = []
    for mode in ("threads", "processes"):
        catalog = _build_lst_catalog(tables, seed)
        pipeline = _lst_pipeline(
            catalog,
            n_shards,
            mode,
            max_workers=n_shards,
            transport=transport if mode == "processes" else None,
            observe_cost=observe_cost,
        )
        runs.append((mode, catalog, pipeline))
    latencies, selections = _interleaved_lst_cycles(runs, days)

    thread_latency = statistics.median(latencies["threads"])
    process_latency = statistics.median(latencies["processes"])
    return {
        "threads": {"latency_s": thread_latency, "speedup": 1.0},
        "processes": {
            "latency_s": process_latency,
            "speedup": thread_latency / process_latency,
        },
        "identical_selections": selections["threads"] == selections["processes"],
        "selected_total": sum(len(day) for day in selections["threads"]),
    }


def measure_lst_transport_modes(
    tables: int, n_shards: int, days: int, seed: int, observe_cost: int
) -> dict:
    """Legacy pickle vs columnar transport, both on process workers.

    Same fleet, same cycles, same worker mode — the only variable is how
    shard work crosses the process boundary: per-object pickled snapshot
    slices (``transport="pickle"``) or flat shared-memory statistics
    arrays with stats-only deltas (``transport="columnar"``, the
    negotiated default).  Selections must be byte-identical.
    """
    runs = []
    for transport in ("pickle", "columnar"):
        catalog = _build_lst_catalog(tables, seed)
        pipeline = _lst_pipeline(
            catalog,
            n_shards,
            "processes",
            max_workers=n_shards,
            transport=transport,
            observe_cost=observe_cost,
        )
        runs.append((transport, catalog, pipeline))
    latencies, selections = _interleaved_lst_cycles(runs, days)

    pickle_latency = statistics.median(latencies["pickle"])
    columnar_latency = statistics.median(latencies["columnar"])
    return {
        "pickle": {"latency_s": pickle_latency, "speedup": 1.0},
        "columnar": {
            "latency_s": columnar_latency,
            "speedup": pickle_latency / columnar_latency,
        },
        "identical_selections": selections["pickle"] == selections["columnar"],
    }


def measure_lst_payload(tables: int, n_shards: int, seed: int) -> dict:
    """Shipped-back payload, decide-on-coordinator vs decide-in-worker.

    Replays one cold shard cycle's export → worker → result sequence
    inline (no pool, so the results can be pickled and sized exactly) and
    compares what crosses back: all observed candidates without worker
    decide, only the selected ones with it.
    """
    from repro.core import (
        ShardDecideSpec,
        TopKSelector,
        run_shard_work,
        shard_for_key,
        split_selector,
    )

    sizes: dict[bool, dict[str, int]] = {}
    for decide in (False, True):
        import dataclasses

        catalog = _build_lst_catalog(tables, seed)
        pipeline = _lst_pipeline(catalog, n_shards, "threads")
        try:
            shard0 = pipeline.shards[0]
            keys = shard0.connector.list_candidates(shard0.generation)
            selectors = split_selector(TopKSelector(TOP_K), n_shards)
            total_bytes = 0
            total_candidates = 0
            for i, shard in enumerate(pipeline.shards):
                subset = [k for k in keys if shard_for_key(k, n_shards) == i]
                placed, spec = shard.connector.export_shard_work(subset, i, shard.traits)
                if spec is None:
                    continue
                if decide:
                    spec = dataclasses.replace(
                        spec,
                        decide=ShardDecideSpec(
                            policy=shard.policy,
                            selector=selectors[i],
                            stats_filters=tuple(shard.stats_filters),
                            trait_filters=tuple(shard.trait_filters),
                            hits=tuple(placed),
                        ),
                    )
                result = run_shard_work(spec)
                total_bytes += len(pickle.dumps(result))
                total_candidates += len(
                    result.decision.selected if decide else result.candidates
                )
        finally:
            pipeline.close()
        sizes[decide] = {"bytes": total_bytes, "candidates": total_candidates}
    return {
        "coordinator_decide": sizes[False],
        "worker_decide": sizes[True],
        "bytes_reduction": sizes[False]["bytes"] / max(sizes[True]["bytes"], 1),
    }


def selected_keys_per_day(tables: int, n_shards: int, days: int, seed: int) -> list[tuple]:
    """The sharded control plane's daily selections, as hashable tuples."""
    model = _fresh_model(tables, seed)
    with ShardedAutoCompStrategy(model, n_shards=n_shards, k=TOP_K) as strategy:
        selections = []
        for _ in range(days):
            day = model.day
            sharded = strategy.pipeline.run_cycle(now=float(day) * DAY)
            selections.append(tuple(str(key) for key in sharded.report.selected))
            model.step_day()
    return selections


def _print_rows(rows: dict) -> None:
    header = f"{'configuration':<14} {'cycle latency':>14} {'speedup':>9} {'cache hit rate':>15}"
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        if not isinstance(row, dict):
            continue
        hit = f"{row['hit_rate']:.0%}" if "hit_rate" in row else "-"
        print(
            f"{name:<14} {row['latency_s'] * 1e3:>12.2f}ms {row['speedup']:>8.2f}x {hit:>15}"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-sized run, no speedup assertion"
    )
    parser.add_argument("--tables", type=int, default=None, help="fleet size override")
    parser.add_argument("--days", type=int, default=None, help="measured cycles")
    parser.add_argument("--seed", type=int, default=20250730)
    parser.add_argument(
        "--workers",
        choices=["threads", "processes"],
        default=None,
        help="also compare shard worker modes (threads vs processes) "
        "under a CPU-bound observe workload",
    )
    parser.add_argument(
        "--observe-cost",
        type=int,
        default=None,
        help="per-candidate CPU units for the worker-mode comparison "
        f"(default: {OBSERVE_COST} fleet, {LST_OBSERVE_COST} lst)",
    )
    parser.add_argument(
        "--transport",
        choices=["pickle", "columnar"],
        default=None,
        help="pin the worker transport for the LST worker-mode comparison "
        "(default: negotiated, i.e. columnar for process workers)",
    )
    parser.add_argument(
        "--connector",
        choices=["fleet", "lst"],
        default="fleet",
        help="fleet: vectorised fleet model (default); lst: the realistic "
        "live-catalog connector with picklable snapshot export and "
        "worker-side decide",
    )
    parser.add_argument(
        "--json", default=None, help="write measured metrics to this path"
    )
    args = parser.parse_args()

    if args.connector == "lst":
        return main_lst(args)

    tables = args.tables or (500 if args.smoke else 2000)
    days = args.days or (2 if args.smoke else 7)
    shard_counts = [2] if args.smoke else [1, 2, 4, 8]
    worker_shards = 2 if args.smoke else 4
    cores = os.cpu_count() or 1
    observe_cost = (
        args.observe_cost if args.observe_cost is not None else OBSERVE_COST
    )

    print(
        _banner(
            f"Scale-out control plane — cycle latency, {tables}-table fleet",
            "Target: >=2x steady-state cycle-latency speedup at 4 shards "
            "(sharding + incremental observation) vs the unsharded baseline; "
            ">=1.5x process-worker speedup over threads on CPU-bound observe "
            "(4-core host)",
        )
    )
    rows = measure(tables, shard_counts, days, args.seed)
    _print_rows(rows)

    worker_rows = None
    if args.workers is not None:
        print(
            f"\nworker modes — {worker_shards} shards, observe cost "
            f"{observe_cost} units/candidate (CPU-bound observe):"
        )
        worker_rows = measure_worker_modes(
            tables, worker_shards, days, args.seed, observe_cost
        )
        _print_rows(worker_rows)
        print(
            "worker-mode selections: "
            + ("identical" if worker_rows["identical_selections"] else "DIVERGED")
        )

    tracing_overhead = measure_tracing_overhead(
        tables, worker_shards, days, args.seed, observe_cost
    )
    print(
        f"\ntracing overhead — tracer-on vs tracer-off interleaved cycles "
        f"(observe cost {observe_cost}): {tracing_overhead:.3f}x "
        f"(budget: <1.05x)"
    )

    print("\ndeterminism: repeated sharded runs with the same seed ...", end=" ")
    reference = selected_keys_per_day(tables, shard_counts[-1], days, args.seed)
    repeat = selected_keys_per_day(tables, shard_counts[-1], days, args.seed)
    identical = reference == repeat
    print("identical selections" if identical else "DIVERGED")

    failures = []
    if not identical:
        failures.append("sharded selections are not deterministic")
    if worker_rows is not None and not worker_rows["identical_selections"]:
        failures.append("process-mode selections diverged from thread mode")
    if not args.smoke:
        speedup = rows["sharded-4"]["speedup"]
        if speedup < 2.0:
            failures.append(f"sharded-4 speedup {speedup:.2f}x below the 2x target")
        if worker_rows is not None:
            worker_speedup = worker_rows["processes"]["speedup"]
            if cores >= 4:
                if worker_speedup < 1.5:
                    failures.append(
                        f"process-worker speedup {worker_speedup:.2f}x below the "
                        "1.5x target"
                    )
            else:
                print(
                    f"(worker speedup assertion skipped: only {cores} CPU core(s))"
                )

    if args.json:
        sharded_key = f"sharded-{shard_counts[-1]}"
        metrics: dict[str, float] = {
            "sharded_speedup": rows[sharded_key]["speedup"],
            "cache_hit_rate": rows[sharded_key]["hit_rate"],
            "deterministic": int(identical),
            "selected_total": sum(len(day) for day in reference),
            "tracing_overhead": tracing_overhead,
        }
        if worker_rows is not None:
            metrics["worker_speedup"] = worker_rows["processes"]["speedup"]
            metrics["worker_modes_identical"] = int(
                worker_rows["identical_selections"]
            )
        payload = {
            "bench": "scaleout",
            "config": {
                "tables": tables,
                "days": days,
                "seed": args.seed,
                "shards": shard_counts,
                "smoke": args.smoke,
                "cores": cores,
            },
            "metrics": metrics,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


def main_lst(args) -> int:
    """The ``--connector lst`` flow: worker modes, transports, payload."""
    tables = args.tables or (240 if args.smoke else 400)
    days = args.days or (2 if args.smoke else 5)
    n_shards = 2 if args.smoke else 4
    cores = os.cpu_count() or 1
    observe_cost = (
        args.observe_cost if args.observe_cost is not None else LST_OBSERVE_COST
    )

    print(
        _banner(
            f"Scale-out control plane — LST catalog connector, {tables} tables",
            "Realistic catalog path on process workers: columnar shared-memory "
            "transport, worker-side decide (selection='local'), O(selected) "
            "return payload; selections must be identical across worker modes "
            "and transports",
        )
    )
    print(
        f"\nworker modes — {n_shards} shards, observe cost {observe_cost} "
        f"units/candidate, transport {args.transport or 'negotiated'}:"
    )
    rows = measure_lst_worker_modes(
        tables, n_shards, days, args.seed, observe_cost, args.transport
    )
    _print_rows(rows)
    print(
        "worker-mode selections: "
        + ("identical" if rows["identical_selections"] else "DIVERGED")
    )

    print(f"\nworker transports — process workers, {n_shards} shards:")
    transports = measure_lst_transport_modes(
        tables, n_shards, days, args.seed, observe_cost
    )
    _print_rows(transports)
    print(
        "transport selections: "
        + ("identical" if transports["identical_selections"] else "DIVERGED")
    )

    payload = measure_lst_payload(tables, n_shards, args.seed)
    coordinator, worker = payload["coordinator_decide"], payload["worker_decide"]
    print(
        f"\ncold-cycle return payload — decide on coordinator: "
        f"{coordinator['candidates']} candidates / {coordinator['bytes']} B; "
        f"decide in worker: {worker['candidates']} candidates / "
        f"{worker['bytes']} B ({payload['bytes_reduction']:.1f}x smaller)"
    )

    failures = []
    if not rows["identical_selections"]:
        failures.append("LST process-mode selections diverged from thread mode")
    if not transports["identical_selections"]:
        failures.append("LST columnar-transport selections diverged from pickle")
    if worker["bytes"] >= coordinator["bytes"]:
        failures.append("worker-side decide did not shrink the return payload")
    if not args.smoke:
        transport_speedup = transports["columnar"]["speedup"]
        if transport_speedup < 1.0:
            failures.append(
                f"columnar transport {transport_speedup:.2f}x vs pickle — "
                "below the 1.0x floor"
            )
        worker_speedup = rows["processes"]["speedup"]
        if cores >= 4:
            if worker_speedup < 1.0:
                failures.append(
                    f"LST process-worker speedup {worker_speedup:.2f}x — "
                    "process mode must not lose to threads"
                )
        else:
            print(f"(worker speedup assertion skipped: only {cores} CPU core(s))")

    if args.json:
        payload_metrics = {
            "lst_worker_speedup": rows["processes"]["speedup"],
            "lst_modes_identical": int(rows["identical_selections"]),
            "lst_transport_speedup": transports["columnar"]["speedup"],
            "lst_transports_identical": int(transports["identical_selections"]),
            "lst_selected_total": rows["selected_total"],
            "lst_returned_coordinator_decide": coordinator["candidates"],
            "lst_returned_worker_decide": worker["candidates"],
            "lst_payload_bytes_reduction": payload["bytes_reduction"],
        }
        blob = {
            "bench": "scaleout_lst",
            "config": {
                "tables": tables,
                "days": days,
                "seed": args.seed,
                "shards": n_shards,
                "smoke": args.smoke,
                "cores": cores,
                "observe_cost": observe_cost,
                "transport": args.transport or "negotiated",
            },
            "metrics": payload_metrics,
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(blob, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"\nwrote metrics to {args.json}")

    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
