"""Scale-out control plane: cycle latency vs fleet size and shard count.

The §7 deployment holds a daily cycle cadence while the fleet grows by
thousands of tables per month, so control-plane cycle latency must stay
sub-linear in fleet size.  This bench measures steady-state daily cycle
latency for:

* the **unsharded sequential baseline** — the seed
  :class:`~repro.fleet.AutoCompStrategy`: every candidate re-observed from
  scratch, every cycle;
* the **sharded control plane** —
  :class:`~repro.fleet.ShardedAutoCompStrategy`: consistent-hash sharding
  plus per-shard incremental observation caches (version-token
  invalidation), global selection.

Both run the same decisions (global selection is exactly equivalent to the
unsharded pipeline), so measured latency differences are pure control-plane
overhead.  On a single-core host the speedup comes from the incremental
observe path (O(dirty tables), vectorised batch statistics for the
misses); on multi-core hosts the per-shard thread pool adds to it.

Run as a script::

    PYTHONPATH=src python benchmarks/bench_scaleout.py [--smoke]

``--smoke`` runs a small fleet (CI-sized) and skips the speedup assertion;
the full run asserts the >=2x speedup at 4 shards on a 2,000-table fleet
and that sharded selections are deterministic across repeated runs.
"""

from __future__ import annotations

import argparse
import gc
import statistics
import time

from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetModel,
    ShardedAutoCompStrategy,
)
from repro.units import DAY

#: Selection budget per daily cycle (the paper's conservative rollout k).
TOP_K = 10


def _banner(title: str, claim: str) -> str:
    line = "=" * 78
    return f"\n{line}\n{title}\n{claim}\n{line}"


def _fresh_model(tables: int, seed: int) -> FleetModel:
    model = FleetModel(FleetConfig(initial_tables=tables, seed=seed))
    model.step_day()  # give day-0 fragmentation something to observe
    return model


def measure(tables: int, shard_counts: list[int], days: int, seed: int) -> dict:
    """Latency table: baseline plus one row per shard count.

    All configurations run over identical (independent) fleets and are
    *interleaved* day by day, so low-frequency machine noise lands on every
    configuration alike; the per-configuration median then discards the
    remaining spikes (GC is also disabled around the timed region,
    identically for all configurations).
    """
    configs: list[tuple[str, object, FleetModel]] = []
    baseline_model = _fresh_model(tables, seed)
    configs.append(("baseline", AutoCompStrategy(baseline_model, k=TOP_K), baseline_model))
    for n in shard_counts:
        model = _fresh_model(tables, seed)
        configs.append((f"sharded-{n}", ShardedAutoCompStrategy(model, n_shards=n, k=TOP_K), model))

    latencies: dict[str, list[float]] = {name: [] for name, _, _ in configs}
    gc.collect()
    gc.disable()
    try:
        for cycle in range(1 + days):  # first cycle warms caches, discarded
            for name, strategy, model in configs:
                day = model.day
                start = time.perf_counter()
                strategy.run_day(model, day)
                elapsed = time.perf_counter() - start
                model.step_day()
                if cycle > 0:
                    latencies[name].append(elapsed)
    finally:
        gc.enable()

    rows: dict[str, dict] = {}
    base_latency = statistics.median(latencies["baseline"])
    rows["baseline"] = {"latency_s": base_latency, "speedup": 1.0}
    for name, strategy, _ in configs[1:]:
        median = statistics.median(latencies[name])
        hits = sum(c.hits for c in strategy.caches)
        misses = sum(c.misses for c in strategy.caches)
        rows[name] = {
            "latency_s": median,
            "speedup": base_latency / median,
            "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        }
    return rows


def selected_keys_per_day(tables: int, n_shards: int, days: int, seed: int) -> list[tuple]:
    """The sharded control plane's daily selections, as hashable tuples."""
    model = _fresh_model(tables, seed)
    strategy = ShardedAutoCompStrategy(model, n_shards=n_shards, k=TOP_K)
    selections = []
    for _ in range(days):
        day = model.day
        sharded = strategy.pipeline.run_cycle(now=float(day) * DAY)
        selections.append(tuple(str(key) for key in sharded.report.selected))
        model.step_day()
    return selections


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="small CI-sized run, no speedup assertion"
    )
    parser.add_argument("--tables", type=int, default=None, help="fleet size override")
    parser.add_argument("--days", type=int, default=None, help="measured cycles")
    parser.add_argument("--seed", type=int, default=20250730)
    args = parser.parse_args()

    tables = args.tables or (500 if args.smoke else 2000)
    days = args.days or (2 if args.smoke else 7)
    shard_counts = [2] if args.smoke else [1, 2, 4, 8]

    print(
        _banner(
            f"Scale-out control plane — cycle latency, {tables}-table fleet",
            "Target: >=2x steady-state cycle-latency speedup at 4 shards "
            "(sharding + incremental observation) vs the unsharded baseline",
        )
    )
    rows = measure(tables, shard_counts, days, args.seed)
    header = f"{'configuration':<14} {'cycle latency':>14} {'speedup':>9} {'cache hit rate':>15}"
    print(header)
    print("-" * len(header))
    for name, row in rows.items():
        hit = f"{row['hit_rate']:.0%}" if "hit_rate" in row else "-"
        print(
            f"{name:<14} {row['latency_s'] * 1e3:>12.2f}ms {row['speedup']:>8.2f}x {hit:>15}"
        )

    print("\ndeterminism: repeated sharded runs with the same seed ...", end=" ")
    reference = selected_keys_per_day(tables, shard_counts[-1], days, args.seed)
    repeat = selected_keys_per_day(tables, shard_counts[-1], days, args.seed)
    identical = reference == repeat
    print("identical selections" if identical else "DIVERGED")

    failures = []
    if not identical:
        failures.append("sharded selections are not deterministic")
    if not args.smoke:
        speedup = rows["sharded-4"]["speedup"]
        if speedup < 2.0:
            failures.append(f"sharded-4 speedup {speedup:.2f}x below the 2x target")
    for failure in failures:
        print(f"FAIL: {failure}")
    if not failures:
        print("OK")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
