"""Figure 6: compaction-strategy impact on file count over time.

Paper claims (§6.1): without compaction the file count rises steadily
(≈2,640 files/hour at paper scale, with a write spike near hour 4); with
AutoComp every strategy produces a sharp initial decline that then
flattens; the hybrid (partition-scope) strategies decline more gradually
than table-scope top-10 because each round compacts fewer entities.
"""

from __future__ import annotations

import pytest

from repro.analysis import render_table, sparkline

from benchmarks.harness import CAB_STRATEGIES, banner, cab_run, hourly_file_counts


@pytest.mark.parametrize("strategy", list(CAB_STRATEGIES))
def test_fig06_run_strategy(benchmark, strategy):
    """Execute (and time) the 5-hour CAB run for one strategy."""
    result = benchmark.pedantic(cab_run, args=(strategy,), rounds=1, iterations=1)
    assert result.workload.counters.ro_queries > 0


def test_fig06_file_count_over_time(benchmark):
    results = {name: cab_run(name) for name in CAB_STRATEGIES}
    counts = benchmark.pedantic(
        lambda: {name: hourly_file_counts(r) for name, r in results.items()},
        rounds=1,
        iterations=1,
    )

    print(
        banner(
            "Figure 6 — file count over time per compaction strategy",
            "no-compaction grows steadily; compaction falls sharply then "
            "flattens; hybrid declines more gradually than table-10",
        )
    )
    hours = len(counts["none"])
    rows = []
    for name, series in counts.items():
        rows.append([name] + [f"{v:.0f}" for v in series] + [sparkline(series)])
    print(render_table(["strategy"] + [f"h{h + 1}" for h in range(hours)] + ["trend"], rows))

    none = counts["none"]
    growth_per_hour = (none[-1] - none[0]) / (hours - 1)
    print(f"\nno-compaction growth: {growth_per_hour:.0f} files/hour "
          "(paper: ~2,640 at 20-database scale)")

    # --- shape assertions -----------------------------------------------------
    # (i) Baseline grows.
    assert none[-1] > none[0]
    # (ii) Aggressive strategies end far below the baseline; the
    # deliberately throttled hybrid-50 still ends clearly below it.
    for name in ("table-10", "hybrid-500"):
        assert counts[name][-1] < 0.3 * none[-1], name
    assert counts["hybrid-50"][-1] < 0.8 * none[-1]
    # (iii) Sharp initial decline for the aggressive strategies.
    for name in ("table-10", "hybrid-500"):
        assert counts[name][1] < 0.5 * counts[name][0], name
    # (iv) The hybrid strategies decline more gradually per round than the
    # table-scope strategy (fewer entities compacted each time).
    drop_table = counts["table-10"][0] - counts["table-10"][1]
    drop_500 = counts["hybrid-500"][0] - counts["hybrid-500"][1]
    drop_50 = counts["hybrid-50"][0] - counts["hybrid-50"][1]
    assert drop_50 < drop_500 < drop_table
    # (v) hybrid-50's controlled pace: monotone decline, no sharp cliff.
    series_50 = counts["hybrid-50"]
    assert all(b < a for a, b in zip(series_50, series_50[1:]))
