"""Figure 10: AutoComp behaviour and impact on the production fleet (§7).

Paper claims:

* 10a — switching from manual k=100 to AutoComp k=10 (week 3 of a 6-week
  window) *increased* total files reduced (6.59M → 7.44M, +12%) while
  raising compute cost — ten times fewer tables, better chosen;
* 10b — switching from static k to budget-driven dynamic k (week 22)
  compacted k≈2500 tables per cycle within a 226 TBHr budget, again
  increasing files reduced;
* 10c — over 12 months of deployment growth, file counts fall after the
  manual rollout (month 4) and again after AutoComp (month 9).
"""

from __future__ import annotations

from repro.analysis import render_table, sparkline
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetSimulator,
    ManualCompactionStrategy,
)

from benchmarks.harness import banner

WEEK = 7
MONTH = 30


def _run_fig10a():
    """6 weeks: manual k=100 for weeks 0-2, then AutoComp k=10."""
    simulator = FleetSimulator(FleetConfig(initial_tables=1200, seed=1001))
    simulator.set_strategy(0, ManualCompactionStrategy(k=100))
    simulator.set_strategy(3 * WEEK, AutoCompStrategy(simulator.model, k=10))
    simulator.run_days(6 * WEEK, onboard_monthly=False)
    return (
        simulator.weekly_totals("fleet.files_reduced"),
        simulator.weekly_totals("fleet.gbhr"),
    )


def _run_fig10b():
    """4 weeks: static k=100 for 2 weeks, then budget-driven dynamic k."""
    simulator = FleetSimulator(FleetConfig(initial_tables=1200, seed=1002))
    simulator.set_strategy(0, AutoCompStrategy(simulator.model, k=100, quota_aware=True))
    simulator.set_strategy(
        2 * WEEK, AutoCompStrategy(simulator.model, k=None, budget_gbhr=3_000.0)
    )
    simulator.run_days(4 * WEEK, onboard_monthly=False)
    return (
        simulator.weekly_totals("fleet.files_reduced"),
        simulator.weekly_totals("fleet.gbhr"),
        simulator.weekly_totals("fleet.tables_compacted"),
    )


def _run_fig10c():
    """12 months: none -> manual (month 4) -> AutoComp (month 9), growing.

    A counterfactual run (same seed, never compacting) provides the
    baseline the rollouts are judged against.
    """
    def build(with_strategies: bool) -> FleetSimulator:
        simulator = FleetSimulator(
            FleetConfig(initial_tables=1200, onboarded_per_month=150, seed=1003)
        )
        if with_strategies:
            simulator.set_strategy(4 * MONTH, ManualCompactionStrategy(k=100))
            simulator.set_strategy(9 * MONTH, AutoCompStrategy(simulator.model, k=10))
            simulator.set_strategy(
                10 * MONTH,
                AutoCompStrategy(simulator.model, k=None, budget_gbhr=2_000.0),
            )
        simulator.run_days(12 * MONTH)
        return simulator

    def monthly(simulator, name):
        values = simulator.telemetry.series(name).values
        return [values[min(m * MONTH, len(values) - 1)] for m in range(1, 13)]

    deployed = build(True)
    counterfactual = build(False)
    return (
        monthly(deployed, "fleet.total_files"),
        monthly(deployed, "fleet.deployment_size"),
        monthly(counterfactual, "fleet.total_files"),
    )


def test_fig10a_manual_to_auto(benchmark):
    reduced, cost = benchmark.pedantic(_run_fig10a, rounds=1, iterations=1)
    print(
        banner(
            "Figure 10a — files reduced & compute cost: manual k=100 -> auto k=10",
            "the week-3 switch to AutoComp top-10 reduces MORE files than "
            "manual top-100 (+12% in production: 6.59M -> 7.44M) at higher "
            "compute cost",
        )
    )
    rows = [
        [f"week {w + 1}", "manual k=100" if w < 3 else "auto k=10",
         f"{reduced[w]:.0f}", f"{cost[w]:.1f}"]
        for w in range(6)
    ]
    print(render_table(["week", "strategy", "files reduced", "GBHr"], rows))
    manual_steady = sum(reduced[1:3]) / 2  # skip the week-1 backlog clear
    auto_steady = sum(reduced[3:6]) / 3
    print(f"\nsteady-state weekly reduction: manual={manual_steady:.0f}, "
          f"auto={auto_steady:.0f} ({auto_steady / manual_steady - 1:+.0%}; paper: +12%)")

    # Auto top-10 beats manual top-100 once the manual backlog is cleared.
    assert auto_steady > manual_steady
    # And costs more compute per week (it picks bigger, better candidates).
    assert sum(cost[3:6]) / 3 > sum(cost[1:3]) / 2


def test_fig10b_dynamic_k(benchmark):
    reduced, cost, tables = benchmark.pedantic(_run_fig10b, rounds=1, iterations=1)
    print(
        banner(
            "Figure 10b — static k=100 -> budget-driven dynamic k",
            "with a fixed compute budget the dynamic selector compacts far "
            "more tables per cycle (k~2500 at 226 TBHr in production) and "
            "reduces more files",
        )
    )
    rows = [
        [f"week {w + 1}", "static k=100" if w < 2 else "dynamic k (budget)",
         f"{reduced[w]:.0f}", f"{cost[w]:.1f}", f"{tables[w] / 7:.0f}"]
        for w in range(4)
    ]
    print(render_table(["week", "strategy", "files reduced", "GBHr", "tables/day"], rows))

    static_daily_tables = tables[1] / 7
    dynamic_daily_tables = tables[2] / 7
    print(f"\ntables per day: static={static_daily_tables:.0f} -> "
          f"dynamic={dynamic_daily_tables:.0f}")
    # Dynamic k admits far more tables per cycle within the budget...
    assert dynamic_daily_tables > 1.5 * static_daily_tables
    # ...and reduces more files than the static steady state (week 2 —
    # week 1 is the backlog clear and not comparable).
    assert reduced[2] > reduced[1]


def test_fig10c_deployment_timeline(benchmark):
    monthly_files, monthly_size, counterfactual = benchmark.pedantic(
        _run_fig10c, rounds=1, iterations=1
    )
    print(
        banner(
            "Figure 10c — 12-month deployment: file count vs deployment size",
            "despite continuous onboarding, total file count drops after the "
            "manual rollout (month 4) and again after AutoComp (month 9)",
        )
    )
    rows = [
        [f"m{m + 1}", f"{monthly_files[m]:.0f}", f"{counterfactual[m]:.0f}",
         f"{monthly_size[m]:.0f}",
         ("" if m < 3 else "manual" if m < 8 else "autocomp")]
        for m in range(12)
    ]
    print(
        render_table(
            ["month", "total files", "no-comp counterfactual", "fleet size", "strategy"],
            rows,
        )
    )
    print(f"\nfile count (deployed) : {sparkline(monthly_files)}")
    print(f"file count (no comp)  : {sparkline(counterfactual)}")
    print(f"deployment size       : {sparkline(monthly_size)}")

    # Deployment only grows.
    assert monthly_size[-1] > monthly_size[0]
    # The manual rollout visibly bends the curve vs the counterfactual.
    assert monthly_files[7] < 0.85 * counterfactual[7]
    # AutoComp pushes file counts DOWN despite continued onboarding.
    assert monthly_files[-1] < monthly_files[8]
    assert monthly_files[-1] < 0.5 * counterfactual[-1]
