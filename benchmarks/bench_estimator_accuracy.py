"""§7 "Model Accuracy and Estimation Errors".

Paper claims: comparing predicted and actual values across production
compactions, compute cost was underestimated (~19% in the reported
example: 108 vs 129 TBHr) while file-count reduction was overestimated
(~28%) — because table-level ΔF_c estimates ignore partition boundaries
(compaction does not cross partitions).

Two measurements here:

* the *mechanism*, on live LST tables: the paper's table-level ΔF_c versus
  the partition-aware plan's achievable reduction;
* the *aggregate*, on the fleet: mean estimator errors across hundreds of
  compactions.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.catalog import Catalog
from repro.engine import Cluster, EngineSession, MisconfiguredShuffleWriter
from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema
from repro.lst.maintenance import estimate_table_level_reduction, plan_table_rewrite
from repro.units import MiB

from benchmarks.harness import banner


def _mechanism_samples():
    """ΔF_c vs achievable reduction on real partitioned tables."""
    catalog = Catalog()
    catalog.create_database("db")
    schema = Schema.of(Field("id", "long"), Field("d", "date"))
    spec = PartitionSpec.of(PartitionField("d", MonthTransform()))
    session = EngineSession(
        Cluster("q", executors=8), telemetry=catalog.telemetry, clock=catalog.clock, seed=5
    )
    samples = []
    for i in range(12):
        table = catalog.create_table(f"db.t{i}", schema, spec=spec)
        months = [(m,) for m in range(2 + i)]
        session.write(
            table, (64 + 16 * i) * MiB, MisconfiguredShuffleWriter(24), partitions=months
        )
        estimate = estimate_table_level_reduction(table.live_files(), table.target_file_size)
        actual = plan_table_rewrite(table, min_input_files=1).file_count_reduction
        samples.append((str(table.identifier), estimate, actual))
    return samples


def _fleet_accuracy():
    simulator = FleetSimulator(FleetConfig(initial_tables=900, seed=3003))
    simulator.set_strategy(0, AutoCompStrategy(simulator.model, k=40))
    simulator.run_days(12, onboard_monthly=False)
    return simulator.estimator_accuracy()


def test_estimator_accuracy(benchmark):
    mechanism, fleet = benchmark.pedantic(
        lambda: (_mechanism_samples(), _fleet_accuracy()), rounds=1, iterations=1
    )

    print(
        banner(
            "§7 model accuracy — predicted vs actual reduction and cost",
            "file-count reduction overestimated ~28% (partition boundaries); "
            "compute cost underestimated ~19%",
        )
    )
    rows = [
        [name, estimate, actual, f"{(estimate - actual) / actual:+.0%}" if actual else "-"]
        for name, estimate, actual in mechanism
    ]
    print(render_table(["table", "ΔF_c estimate", "achievable", "error"], rows))

    overestimates = [
        (estimate - actual) / actual for _, estimate, actual in mechanism if actual
    ]
    print(f"\nmechanism: table-level ΔF_c overestimates by "
          f"{np.mean(overestimates):.0%} on these tables")
    print(f"fleet aggregate: reduction overestimated by "
          f"{fleet['reduction_overestimate']:.1%} (paper: ~28%), "
          f"cost underestimated by {fleet['cost_underestimate']:.1%} (paper: ~19%)")

    # The estimator never under-counts (ΔF_c is an upper bound)...
    for _, estimate, actual in mechanism:
        assert estimate >= actual
    # ...and systematically over-counts on partitioned tables.
    assert np.mean(overestimates) > 0.05
    # Fleet-scale errors land near the paper's reported magnitudes.
    assert 0.15 < fleet["reduction_overestimate"] < 0.45
    assert 0.10 < fleet["cost_underestimate"] < 0.30
