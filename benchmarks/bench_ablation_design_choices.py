"""Ablations of AutoComp's design choices.

Not a paper figure — these sweeps probe the sensitivity of the decisions
DESIGN.md calls out, on one frozen fleet state:

* **MOOP weight sweep** — the paper fixes w₁=0.7/w₂=0.3 (§6); how do files
  reduced and compute spent move as the benefit weight slides from
  cost-obsessed to benefit-obsessed?
* **Ranking-policy ablation** — weighted-sum (deployed), quota-aware (§7),
  and the §8 Pareto-frontier policy, all under the same top-k budget.
* **Selector ablation** — fixed k versus budget-driven dynamic k at equal
  realised compute.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import render_table
from repro.core import (
    BudgetSelector,
    Objective,
    ParetoFrontPolicy,
    ParetoObjective,
    QuotaAwareWeightedSumPolicy,
    TopKSelector,
    WeightedSumPolicy,
)
from repro.core.pipeline import AutoCompPipeline
from repro.core.scheduling import SequentialScheduler
from repro.core.traits import ComputeCostTrait, FileCountReductionTrait, TraitRegistry
from repro.fleet import FleetBackend, FleetConfig, FleetConnector, FleetModel

from benchmarks.harness import banner


def _fresh_model() -> FleetModel:
    model = FleetModel(FleetConfig(initial_tables=600, seed=555))
    for _ in range(30):
        model.step_day()
    return model


def _run_policy(policy, selector):
    """One AutoComp cycle over an identically seeded fleet."""
    model = _fresh_model()
    connector = FleetConnector(model, min_small_files=2)
    pipeline = AutoCompPipeline(
        connector=connector,
        backend=FleetBackend(model),
        traits=TraitRegistry(
            [
                FileCountReductionTrait(),
                ComputeCostTrait(
                    executor_memory_gb=model.config.executor_memory_gb,
                    rewrite_bytes_per_hour=model.config.rewrite_bytes_per_hour,
                ),
            ]
        ),
        policy=policy,
        selector=selector,
        scheduler=SequentialScheduler(),
    )
    report = pipeline.run_cycle(now=0.0)
    return report.total_files_reduced, report.total_gbhr, len(report.selected)


def _weight_policy(benefit_weight: float) -> WeightedSumPolicy:
    return WeightedSumPolicy(
        [
            Objective("file_count_reduction", benefit_weight, maximize=True),
            Objective("compute_cost_gbhr", 1.0 - benefit_weight, maximize=False),
        ]
    )


def test_ablation_moop_weights(benchmark):
    weights = [0.1, 0.3, 0.5, 0.7, 0.9]
    results = benchmark.pedantic(
        lambda: {w: _run_policy(_weight_policy(w), TopKSelector(25)) for w in weights},
        rounds=1,
        iterations=1,
    )
    print(
        banner(
            "Ablation — MOOP benefit weight sweep (top-25 fixed)",
            "the paper deploys w1=0.7; higher benefit weight should buy "
            "more reduction at more compute",
        )
    )
    rows = [
        [f"w1={w}", f"{reduced}", f"{gbhr:.1f}", f"{reduced / gbhr:.0f}" if gbhr else "-"]
        for w, (reduced, gbhr, _) in results.items()
    ]
    print(render_table(["weights", "files reduced", "GBHr", "files/GBHr"], rows))

    reduced_by_weight = [results[w][0] for w in weights]
    gbhr_by_weight = [results[w][1] for w in weights]
    # More benefit weight -> at least as much reduction, trending up.
    assert reduced_by_weight[-1] > reduced_by_weight[0]
    assert gbhr_by_weight[-1] > gbhr_by_weight[0]
    # Cost-efficiency (files per GBHr) is best at LOW benefit weights —
    # the trade-off that makes the weighting a genuine knob.
    efficiency = [r / g for r, g in zip(reduced_by_weight, gbhr_by_weight)]
    assert efficiency[0] > efficiency[-1]


def test_ablation_ranking_policies(benchmark):
    policies = {
        "weighted-sum 0.7/0.3": _weight_policy(0.7),
        "quota-aware (§7)": QuotaAwareWeightedSumPolicy(),
        "pareto frontier (§8)": ParetoFrontPolicy(
            [
                ParetoObjective("file_count_reduction", maximize=True),
                ParetoObjective("compute_cost_gbhr", maximize=False),
            ],
            keep_dominated=True,
        ),
    }
    results = benchmark.pedantic(
        lambda: {
            name: _run_policy(policy, TopKSelector(25))
            for name, policy in policies.items()
        },
        rounds=1,
        iterations=1,
    )
    print(
        banner(
            "Ablation — ranking policies at equal k",
            "all three rank fragmentation-heavy tables first; the Pareto "
            "policy trades a little raw reduction for frontier coverage",
        )
    )
    rows = [
        [name, reduced, f"{gbhr:.1f}", selected]
        for name, (reduced, gbhr, selected) in results.items()
    ]
    print(render_table(["policy", "files reduced", "GBHr", "selected"], rows))

    values = [reduced for reduced, _, _ in results.values()]
    # Every policy achieves substantial reduction on this fleet...
    assert min(values) > 0.3 * max(values)
    # ...and selects a full k of candidates.
    assert all(selected == 25 for _, _, selected in results.values())


def test_ablation_fixed_vs_dynamic_k(benchmark):
    def run():
        # First, find what the fixed-k run actually spends...
        _, fixed_gbhr, _ = _run_policy(_weight_policy(0.7), TopKSelector(25))
        fixed = _run_policy(_weight_policy(0.7), TopKSelector(25))
        # ...then give the budget selector exactly that compute.
        dynamic = _run_policy(_weight_policy(0.7), BudgetSelector(budget=fixed_gbhr))
        return fixed, dynamic

    (fixed, dynamic) = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        banner(
            "Ablation — fixed k=25 vs dynamic k at the same compute budget",
            "dynamic selection packs more (cheaper) candidates into the "
            "same budget (the §7 week-22 transition)",
        )
    )
    rows = [
        ["fixed k=25", fixed[0], f"{fixed[1]:.1f}", fixed[2]],
        ["dynamic (same GBHr)", dynamic[0], f"{dynamic[1]:.1f}", dynamic[2]],
    ]
    print(render_table(["selector", "files reduced", "GBHr", "tables"], rows))

    # The budget selector admits at least as many tables within the budget.
    assert dynamic[2] >= fixed[2]
    # And never exceeds the budget it was given (estimates may realise
    # higher, but the estimated spend fits by construction).
    assert dynamic[1] <= fixed[1] * 1.5
