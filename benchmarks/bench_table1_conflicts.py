"""Table 1: client- and cluster-side conflicts per execution hour.

Paper claims (§6.2): client-side (versioning) conflicts occur even without
compaction, correlating with write spikes; table-scope compaction causes
early cluster-side conflicts against stale metadata that taper off once
the hot tables are compacted; the hybrid strategy shows NO cluster-side
conflicts — smaller candidates are less likely to be disrupted.
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.units import HOUR

from benchmarks.harness import banner, cab_run


def _hourly(series, hours=5):
    return [len(series.between(h * HOUR, (h + 1) * HOUR)) for h in range(hours)]


def _collect():
    out = {}
    for name in ("none", "table-10", "hybrid-500"):
        result = cab_run(name)
        telemetry = result.catalog.telemetry
        out[name] = {
            "client": _hourly(telemetry.series("engine.conflicts.client")),
            "cluster": _hourly(telemetry.series("engine.conflicts.cluster")),
            "writes": [
                result.workload.counters.write_queries_by_hour.get(h, 0) for h in range(5)
            ],
        }
    return out


def test_table1_conflicts(benchmark):
    data = benchmark.pedantic(_collect, rounds=1, iterations=1)

    print(
        banner(
            "Table 1 — client and cluster-side conflicts per execution hour",
            "client conflicts exist even without compaction and track write "
            "spikes; Table-10 sees early cluster conflicts that taper; "
            "Hybrid-500 sees zero cluster conflicts",
        )
    )
    rows = []
    for hour in range(5):
        rows.append(
            [
                f"h{hour + 1}",
                data["none"]["writes"][hour],
                data["none"]["client"][hour],
                data["table-10"]["client"][hour],
                data["hybrid-500"]["client"][hour],
                data["table-10"]["cluster"][hour],
                data["hybrid-500"]["cluster"][hour],
            ]
        )
    print(
        render_table(
            [
                "hour",
                "#writes",
                "client NoComp",
                "client Table-10",
                "client Hybrid-500",
                "cluster Table-10",
                "cluster Hybrid-500",
            ],
            rows,
        )
    )

    total = {
        name: {side: sum(values) for side, values in sides.items()}
        for name, sides in data.items()
    }
    print(f"\ntotals: {total}")

    # (i) Hybrid's partition-serial scheduling eliminates cluster conflicts.
    assert total["hybrid-500"]["cluster"] == 0
    # (ii) Table-scope compaction does hit cluster-side conflicts.
    assert total["table-10"]["cluster"] > 0
    # (iii) Compaction induces client-side conflicts beyond the baseline.
    assert total["table-10"]["client"] >= total["none"]["client"]
    # (iv) The baseline never sees cluster-side conflicts (no compaction).
    assert sum(data["none"]["cluster"]) == 0
