"""Flamegraph harness for the LST shard-worker transport.

Answers "where does a worker-mode cycle actually spend its time?" the way
Arc's ingestion-profiling script does: run the realistic workload under a
sampling profiler and keep the artifact next to the bench baselines, so a
perf claim in ``benchmarks/baselines/scaleout_lst.json`` is always backed
by a committed profile (see the baseline's ``profiles`` key).

Profiler selection:

* **py-spy** (preferred): when the ``py-spy`` binary is on PATH, the
  harness re-executes itself under ``py-spy record --subprocesses`` —
  the ``--subprocesses`` flag is what captures the forked process-mode
  shard workers — and writes a flamegraph SVG.
* **cProfile** (fallback): hermetic environments without py-spy get a
  deterministic cProfile run instead: a ``.pstats`` dump plus a
  cumulative-time top table as text.  cProfile only sees the coordinator
  process, which is still the right lens for the transport: pack, pickle,
  merge and cache-delta application all happen coordinator-side.

Usage::

    python benchmarks/profile_workers.py --mode processes --label after
    python benchmarks/profile_workers.py --mode threads --transport columnar

Artifacts land in ``benchmarks/profiles/`` as
``lst_<mode>[_<transport>]_<label>.{svg,pstats,txt}``.
"""

from __future__ import annotations

import argparse
import cProfile
import inspect
import io
import os
import pstats
import shutil
import subprocess
import sys

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
sys.path.insert(0, BENCH_DIR)
sys.path.insert(0, os.path.join(os.path.dirname(BENCH_DIR), "src"))

#: How many stack frames the text fallback keeps per sort order.
TOP_FRAMES = 40


def _supports_kwarg(fn, name: str) -> bool:
    """Whether ``fn`` accepts keyword argument ``name`` (API-drift guard)."""
    try:
        return name in inspect.signature(fn).parameters
    except (TypeError, ValueError):
        return False


def run_workload(mode: str, transport: str | None, tables: int, days: int, seed: int) -> dict:
    """The profiled region: warm-up plus ``days`` measured LST cycles."""
    from bench_scaleout import _build_lst_catalog, _lst_daily_writes, _lst_pipeline

    kwargs = {}
    if transport is not None and _supports_kwarg(_lst_pipeline, "transport"):
        kwargs["transport"] = transport
    catalog = _build_lst_catalog(tables, seed)
    pipeline = _lst_pipeline(catalog, 2, mode, max_workers=2, **kwargs)
    selected = 0
    try:
        for cycle in range(1 + days):  # first cycle warms caches + pools
            report = pipeline.run_cycle(now=catalog.clock.now)
            selected += len(report.selected)
            _lst_daily_writes(catalog, cycle)
    finally:
        pipeline.close()
    return {"cycles": 1 + days, "selected": selected}


def _artifact_stem(args) -> str:
    parts = ["lst", args.mode]
    if args.transport:
        parts.append(args.transport)
    parts.append(args.label)
    return "_".join(parts)


def record_pyspy(args, out_dir: str) -> int:
    """Re-exec the workload under ``py-spy record`` (flamegraph SVG)."""
    out = os.path.join(out_dir, f"{_artifact_stem(args)}.svg")
    inner = [
        sys.executable,
        os.path.abspath(__file__),
        "--inner",
        "--mode",
        args.mode,
        "--tables",
        str(args.tables),
        "--days",
        str(args.days),
        "--seed",
        str(args.seed),
    ]
    if args.transport:
        inner += ["--transport", args.transport]
    command = [
        "py-spy",
        "record",
        "--subprocesses",  # capture the forked process-mode shard workers
        "--rate",
        str(args.rate),
        "--format",
        "flamegraph",
        "-o",
        out,
        "--",
        *inner,
    ]
    print(f"profiling under py-spy -> {out}")
    code = subprocess.call(command)
    if code == 0:
        print(f"wrote {out}")
    return code


def record_cprofile(args, out_dir: str) -> int:
    """cProfile fallback: ``.pstats`` dump + cumulative top table as text."""
    stem = _artifact_stem(args)
    pstats_path = os.path.join(out_dir, f"{stem}.pstats")
    text_path = os.path.join(out_dir, f"{stem}.txt")
    profiler = cProfile.Profile()
    profiler.enable()
    summary = run_workload(args.mode, args.transport, args.tables, args.days, args.seed)
    profiler.disable()
    profiler.dump_stats(pstats_path)

    buffer = io.StringIO()
    buffer.write(
        f"# LST worker-transport profile (cProfile fallback; py-spy not on PATH)\n"
        f"# mode={args.mode} transport={args.transport or 'default'} "
        f"tables={args.tables} days={args.days} seed={args.seed}\n"
        f"# cycles={summary['cycles']} selected={summary['selected']}\n"
        f"# coordinator-process view: pack/pickle/merge/cache-delta costs "
        f"are coordinator-side, worker CPU appears as executor waits\n\n"
    )
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs()
    for sort in ("cumulative", "tottime"):
        buffer.write(f"## top {TOP_FRAMES} by {sort}\n")
        stats.sort_stats(sort).print_stats(TOP_FRAMES)
        buffer.write("\n")
    with open(text_path, "w", encoding="utf-8") as handle:
        handle.write(buffer.getvalue())
    print(f"wrote {pstats_path}")
    print(f"wrote {text_path}")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--mode", choices=["threads", "processes"], default="processes")
    parser.add_argument(
        "--transport",
        choices=["pickle", "columnar"],
        default=None,
        help="worker transport under test (omit for the pipeline default)",
    )
    parser.add_argument("--tables", type=int, default=120)
    parser.add_argument("--days", type=int, default=8)
    parser.add_argument("--seed", type=int, default=20250730)
    parser.add_argument("--label", default="profile", help="artifact suffix, e.g. before/after")
    parser.add_argument("--rate", type=int, default=250, help="py-spy sample rate (Hz)")
    parser.add_argument("--out-dir", default=os.path.join(BENCH_DIR, "profiles"))
    parser.add_argument(
        "--no-pyspy",
        action="store_true",
        help="force the cProfile fallback even when py-spy is available",
    )
    parser.add_argument(
        "--inner", action="store_true", help=argparse.SUPPRESS
    )  # the re-exec'd workload child under py-spy
    args = parser.parse_args()

    if args.inner:
        summary = run_workload(args.mode, args.transport, args.tables, args.days, args.seed)
        print(f"workload done: {summary}")
        return 0

    os.makedirs(args.out_dir, exist_ok=True)
    if not args.no_pyspy and shutil.which("py-spy"):
        return record_pyspy(args, args.out_dir)
    if not args.no_pyspy:
        print("py-spy not on PATH; falling back to cProfile (coordinator-only view)")
    return record_cprofile(args, args.out_dir)


if __name__ == "__main__":
    raise SystemExit(main())
