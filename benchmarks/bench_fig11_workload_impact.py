"""Figure 11: impact of AutoComp on workload metrics and HDFS operations.

Paper claims:

* 11a — over a 30-day window, compaction runs that reduce file counts are
  followed by drops in files scanned, query time and query cost; tables
  not re-selected re-accumulate small files, yielding a sawtooth;
* 11b — filesystem open() pressure falls after the manual rollout
  (month 4) and the AutoComp rollout (month 9), despite deployment growth.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import moving_average, normalize_series, render_table, sparkline
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetSimulator,
    ManualCompactionStrategy,
)

from benchmarks.harness import banner

MONTH = 30


def _run_fig11a():
    """30 days of AutoComp top-k over a mid-sized fleet (plus a
    never-compacted counterfactual with the same seed)."""
    def build(with_autocomp: bool) -> FleetSimulator:
        simulator = FleetSimulator(FleetConfig(initial_tables=800, seed=2001))
        if with_autocomp:
            simulator.set_strategy(0, AutoCompStrategy(simulator.model, k=25))
        simulator.run_days(30, onboard_monthly=False)
        return simulator

    deployed = build(True)
    counterfactual = build(False)
    telemetry = deployed.telemetry
    return {
        "files_scanned": telemetry.series("fleet.files_scanned").values,
        "query_time": telemetry.series("fleet.query_time").values,
        "query_cost": telemetry.series("fleet.query_cost").values,
        "files_reduced": telemetry.series("fleet.files_reduced").values,
        "nocomp_scanned": counterfactual.telemetry.series("fleet.files_scanned").values,
    }


def _run_fig11b():
    """14 months with the §7 rollout schedule, fleet growing monthly."""
    simulator = FleetSimulator(
        FleetConfig(initial_tables=1000, onboarded_per_month=120, seed=2002)
    )
    simulator.set_strategy(4 * MONTH, ManualCompactionStrategy(k=100))
    simulator.set_strategy(9 * MONTH, AutoCompStrategy(simulator.model, k=10))
    simulator.set_strategy(
        10 * MONTH, AutoCompStrategy(simulator.model, k=None, budget_gbhr=1_500.0)
    )
    simulator.run_days(14 * MONTH)
    telemetry = simulator.telemetry
    opens = telemetry.series("fleet.open_calls").values
    size = telemetry.series("fleet.deployment_size").values
    monthly_opens = [float(np.mean(opens[m * MONTH : (m + 1) * MONTH])) for m in range(14)]
    monthly_size = [size[min((m + 1) * MONTH - 1, len(size) - 1)] for m in range(14)]
    return monthly_opens, monthly_size


def test_fig11a_workload_metrics(benchmark):
    series = benchmark.pedantic(_run_fig11a, rounds=1, iterations=1)
    print(
        banner(
            "Figure 11a — daily workload metrics under periodic AutoComp",
            "files-reduced spikes are followed by dips in files scanned / "
            "query time / query cost; unselected tables re-accumulate "
            "(sawtooth)",
        )
    )
    smoothed = {
        name: moving_average(normalize_series(values), 3)
        for name, values in series.items()
        if name != "nocomp_scanned"
    }
    for name, values in smoothed.items():
        print(f"  {name:>13} {sparkline(values)}")

    scanned = np.array(series["files_scanned"])
    time = np.array(series["query_time"])
    cost = np.array(series["query_cost"])
    nocomp = np.array(series["nocomp_scanned"])

    # Query time and cost track files scanned (the paper's "closely
    # corresponds") — per-file overheads dominate fragmented scans.
    assert np.corrcoef(scanned, time)[0, 1] > 0.8
    assert np.corrcoef(scanned, cost)[0, 1] > 0.8

    # Sawtooth: the scanned series both falls (post-compaction dips) and
    # rises (re-accumulation) across the window.
    diffs = np.diff(scanned)
    assert (diffs < 0).any(), "compaction dips expected"
    assert (diffs > 0).any(), "re-accumulation expected"

    # Compaction keeps scanning pressure well below the never-compacted
    # counterfactual with the identical workload.
    print(f"\nday-30 files scanned: with AutoComp {scanned[-1]:.0f}, "
          f"counterfactual {nocomp[-1]:.0f}")
    assert scanned[-1] < 0.8 * nocomp[-1]


def test_fig11b_hdfs_open_calls(benchmark):
    monthly_opens, monthly_size = benchmark.pedantic(_run_fig11b, rounds=1, iterations=1)
    print(
        banner(
            "Figure 11b — HDFS open() calls across the deployment timeline",
            "file-access pressure drops at the manual rollout (month 4) and "
            "again with AutoComp (month 9+) despite deployment growth",
        )
    )
    rows = [
        [f"m{m + 1}", f"{monthly_opens[m]:.0f}", f"{monthly_size[m]:.0f}",
         ("" if m < 4 else "manual" if m < 9 else "autocomp")]
        for m in range(14)
    ]
    print(render_table(["month", "mean open()/day", "fleet size", "strategy"], rows))
    print(f"\nopen calls : {sparkline(monthly_opens)}")
    print(f"fleet size : {sparkline(monthly_size)}")

    # Growth-only era rises month over month.
    assert monthly_opens[3] > monthly_opens[0]
    # Manual era bends the curve relative to the pre-rollout slope.
    pre_slope = (monthly_opens[3] - monthly_opens[0]) / 3
    manual_slope = (monthly_opens[8] - monthly_opens[4]) / 4
    assert manual_slope < pre_slope
    # The AutoComp era drops opens below the month-9 peak despite growth.
    assert min(monthly_opens[10:]) < monthly_opens[8]
    assert monthly_size[-1] > monthly_size[8]
