"""Shared infrastructure for the reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure from the paper's
evaluation.  The expensive scenario here is the §6 CAB experiment — a
5-simulated-hour, multi-database run per compaction strategy — which
Figures 6, 7, 8 and Table 1 all read from; :func:`cab_run` executes each
strategy once per process and caches the result so the four benches share
it.

Scale note: the paper runs 20 databases × 25 GB on 16 Azure nodes; we run
8 databases × 1 GiB on the simulated engine.  All reproduced claims are
relative (who wins, by what factor, where crossovers fall).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

from repro.catalog import Catalog
from repro.core import PeriodicTrigger
from repro.core.pipeline import CycleReport
from repro.core.scheduling import ConcurrentScheduler
from repro.core.service import openhouse_pipeline
from repro.engine import Cluster, EngineSession
from repro.simulation import Simulator
from repro.units import GiB, HOUR, MiB
from repro.workloads import CabConfig, CabWorkload

#: The §6 strategy matrix: label -> (generation, top-k).
CAB_STRATEGIES: dict[str, tuple[str, int] | None] = {
    "none": None,
    "table-10": ("table", 10),
    "hybrid-50": ("hybrid", 50),
    "hybrid-500": ("hybrid", 500),
}

#: Paper-matching MOOP weights.
BENEFIT_WEIGHT = 0.7


def cab_scheduler(generation: str) -> ConcurrentScheduler:
    """The act-phase scheduler for a CAB strategy run.

    The §6 benches now go through the scale-out
    :class:`~repro.core.scheduling.ConcurrentScheduler` with parameters
    that preserve the paper's scheduling semantics on the Iceberg v1.2.0
    profile (table-serial chains, since distinct-partition rewrites of one
    table conflict there):

    * ``hybrid`` — all table chains launch concurrently, partitions of one
      table stay sequential: exactly the hybrid-strategy behaviour
      previously expressed with ``PartitionSerialScheduler``;
    * ``table`` — chains launch one at a time (``max_parallelism=1``),
      matching the shared-cluster sequential ordering previously expressed
      with ``SequentialScheduler``.
    """
    return ConcurrentScheduler(
        table_serial=True, max_parallelism=1 if generation == "table" else None
    )


def banner(title: str, paper: str) -> str:
    """Standard header printed by every bench: experiment + paper claim."""
    line = "=" * 78
    return f"\n{line}\n{title}\nPaper: {paper}\n{line}"


@dataclass
class CabRunResult:
    """Everything the CAB-derived benches need from one strategy run."""

    strategy: str
    catalog: Catalog
    workload: CabWorkload
    reports: list[CycleReport]
    makespan_s: float


def _cab_config() -> CabConfig:
    return CabConfig(
        databases=8,
        data_bytes_per_db=1 * GiB,
        duration_s=5 * HOUR,
        # dbgen ship dates span ~7 years: 84 monthly partitions, making the
        # hybrid top-500 selection genuinely constrained (8x84 lineitem
        # partitions + 56 table-scope units > 500), as at paper scale.
        lineitem_months=84,
        ro_rate_per_hour=5.0,
        rw_rate_per_hour=2.0,
        write_spike_hour=4.0,
        spike_events_per_db=3.0,
        insert_bytes_mean=48 * MiB,
        shuffle_partitions=48,
        sample_interval_s=600.0,
        seed=424242,
    )


@functools.lru_cache(maxsize=None)
def cab_run(strategy: str) -> CabRunResult:
    """Run the §6 CAB experiment under one compaction strategy (cached).

    Args:
        strategy: one of :data:`CAB_STRATEGIES`.

    Returns:
        The completed run, including the catalog (telemetry) and AutoComp
        cycle reports.
    """
    if strategy not in CAB_STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; expected {list(CAB_STRATEGIES)}")
    config = _cab_config()
    catalog = Catalog()
    session = EngineSession(
        Cluster("query", executors=15, cores_per_executor=8),
        telemetry=catalog.telemetry,
        clock=catalog.clock,
        seed=config.seed,
    )
    session.attach_filesystem(catalog.fs)
    workload = CabWorkload(catalog, session, config)
    workload.load()
    simulator = Simulator(catalog.clock)
    workload.attach(simulator)

    reports: list[CycleReport] = []
    if CAB_STRATEGIES[strategy] is not None:
        generation, k = CAB_STRATEGIES[strategy]
        # Hybrid runs use the §3.3 write-activity filter at partition
        # granularity: hot partitions are skipped, which is what keeps the
        # hybrid strategies free of cluster-side conflicts in Table 1.
        quiesce = 45 * 60.0 if generation == "hybrid" else 0.0
        pipeline = openhouse_pipeline(
            catalog,
            compaction_cluster=Cluster("compaction", executors=3),
            generation=generation,
            k=k,
            benefit_weight=BENEFIT_WEIGHT,
            min_table_age_s=0.0,
            quiesce_s=quiesce,
            scheduler=cab_scheduler(generation),
        )
        trigger = PeriodicTrigger(pipeline, HOUR, until=config.duration_s).attach(simulator)
        reports = trigger.reports

    simulator.run_until(config.duration_s + HOUR)
    return CabRunResult(
        strategy=strategy,
        catalog=catalog,
        workload=workload,
        reports=reports,
        makespan_s=max(workload.counters.last_completion, config.duration_s),
    )


def hourly_file_counts(result: CabRunResult) -> list[float]:
    """End-of-hour data-file counts for a CAB run (Figure 6 series)."""
    series = result.catalog.telemetry.series("cab.data_file_count")
    return [
        value
        for _, value in series.bucket(HOUR, end=_cab_config().duration_s, agg="last")
    ]


def hourly_latencies(result: CabRunResult, label: str) -> list[list[float]]:
    """Per-hour query latencies for a CAB run (Figure 8 candlesticks)."""
    series = result.catalog.telemetry.series(f"engine.query.{label}.latency")
    duration = _cab_config().duration_s
    return [series.between(h * HOUR, (h + 1) * HOUR) for h in range(int(duration // HOUR))]
