"""Tests for the discrete-event simulator loop."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.simulation import SimClock, Simulator


class TestScheduling:
    def test_at_and_run_until(self):
        sim = Simulator()
        fired = []
        sim.at(5.0, lambda: fired.append(sim.now))
        sim.at(10.0, lambda: fired.append(sim.now))
        sim.run_until(7.0)
        assert fired == [5.0]
        assert sim.now == 7.0
        sim.run_until(20.0)
        assert fired == [5.0, 10.0]
        assert sim.now == 20.0

    def test_after_relative(self):
        sim = Simulator(SimClock(start=100.0))
        fired = []
        sim.after(2.5, lambda: fired.append(sim.now))
        sim.run_until(200.0)
        assert fired == [102.5]

    def test_past_scheduling_rejected(self):
        sim = Simulator(SimClock(start=50.0))
        with pytest.raises(ValidationError):
            sim.at(49.0, lambda: None)
        with pytest.raises(ValidationError):
            sim.after(-1.0, lambda: None)

    def test_callbacks_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def chain():
            fired.append(sim.now)
            if len(fired) < 3:
                sim.after(1.0, chain)

        sim.after(1.0, chain)
        sim.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_cancel(self):
        sim = Simulator()
        fired = []
        event = sim.at(5.0, lambda: fired.append("x"))
        sim.cancel(event)
        sim.run_until(10.0)
        assert fired == []


class TestEvery:
    def test_recurring_fires_at_interval(self):
        sim = Simulator()
        fired = []
        sim.every(10.0, lambda: fired.append(sim.now))
        sim.run_until(35.0)
        assert fired == [10.0, 20.0, 30.0]

    def test_recurring_with_explicit_start(self):
        sim = Simulator()
        fired = []
        sim.every(10.0, lambda: fired.append(sim.now), start=5.0)
        sim.run_until(30.0)
        assert fired == [5.0, 15.0, 25.0]

    def test_recurring_until_bound(self):
        sim = Simulator()
        fired = []
        sim.every(10.0, lambda: fired.append(sim.now), until=25.0)
        sim.run_until(100.0)
        assert fired == [10.0, 20.0]

    def test_until_before_first_firing_schedules_nothing(self):
        sim = Simulator()
        fired = []
        sim.every(10.0, lambda: fired.append(sim.now), until=5.0)
        sim.run_until(100.0)
        assert fired == []

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ValidationError):
            Simulator().every(0.0, lambda: None)


class TestRun:
    def test_run_drains_queue(self):
        sim = Simulator()
        fired = []
        for t in (3.0, 1.0, 2.0):
            sim.at(t, lambda t=t: fired.append(t))
        sim.run()
        assert fired == [1.0, 2.0, 3.0]
        assert sim.events_fired == 3

    def test_run_guards_against_infinite_loops(self):
        sim = Simulator()

        def rearm():
            sim.after(1.0, rearm)

        sim.after(1.0, rearm)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_run_until_backwards_rejected(self):
        sim = Simulator(SimClock(start=10.0))
        with pytest.raises(ValidationError):
            sim.run_until(5.0)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_equal_time_events_fire_in_schedule_order(self):
        sim = Simulator()
        fired = []
        for name in "abc":
            sim.at(1.0, lambda n=name: fired.append(n))
        sim.run()
        assert fired == ["a", "b", "c"]
