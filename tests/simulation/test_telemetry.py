"""Tests for telemetry counters and series."""

from __future__ import annotations

import math

import pytest

from repro.simulation import MetricSeries, Telemetry


class TestCounters:
    def test_default_zero(self):
        assert Telemetry().counter("nope") == 0.0

    def test_increment(self):
        telemetry = Telemetry()
        telemetry.increment("a")
        telemetry.increment("a", 2.5)
        assert telemetry.counter("a") == 3.5

    def test_prefix_query(self):
        telemetry = Telemetry()
        telemetry.increment("storage.rpc.open", 3)
        telemetry.increment("storage.rpc.create")
        telemetry.increment("engine.queries")
        rpc = telemetry.counters_with_prefix("storage.rpc.")
        assert rpc == {"storage.rpc.open": 3.0, "storage.rpc.create": 1.0}


class TestMetricSeries:
    def test_record_and_iterate(self):
        series = MetricSeries("m")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]
        assert len(series) == 2

    def test_out_of_order_records_inserted_sorted(self):
        series = MetricSeries("m")
        series.record(5.0, 1.0)
        series.record(4.0, 2.0)  # a late report from an earlier start time
        series.record(6.0, 3.0)
        assert series.times == [4.0, 5.0, 6.0]
        assert series.values == [2.0, 1.0, 3.0]

    def test_equal_times_allowed(self):
        series = MetricSeries("m")
        series.record(5.0, 1.0)
        series.record(5.0, 2.0)
        assert series.values == [1.0, 2.0]

    def test_last(self):
        series = MetricSeries("m")
        assert math.isnan(series.last())
        assert series.last(default=-1.0) == -1.0
        series.record(1.0, 42.0)
        assert series.last() == 42.0

    def test_between_half_open(self):
        series = MetricSeries("m")
        for t in range(5):
            series.record(float(t), float(t * 10))
        assert series.between(1.0, 3.0) == [10.0, 20.0]
        assert series.between(0.0, 10.0) == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert series.between(4.5, 9.0) == []

    def test_value_at_step_function(self):
        series = MetricSeries("m")
        series.record(10.0, 1.0)
        series.record(20.0, 2.0)
        assert math.isnan(series.value_at(5.0))
        assert series.value_at(10.0) == 1.0
        assert series.value_at(15.0) == 1.0
        assert series.value_at(25.0) == 2.0


class TestBucketing:
    def _series(self):
        series = MetricSeries("m")
        for t, v in [(0.5, 1.0), (1.5, 3.0), (1.8, 5.0), (3.2, 7.0)]:
            series.record(t, v)
        return series

    def test_mean_buckets(self):
        buckets = self._series().bucket(1.0, end=4.0, agg="mean")
        assert buckets[0] == (0.0, 1.0)
        assert buckets[1] == (1.0, 4.0)
        assert math.isnan(buckets[2][1])
        assert buckets[3] == (3.0, 7.0)

    def test_sum_and_count(self):
        series = self._series()
        sums = [v for _, v in series.bucket(2.0, end=4.0, agg="sum")]
        counts = [v for _, v in series.bucket(2.0, end=4.0, agg="count")]
        assert sums == [9.0, 7.0]
        assert counts == [3.0, 1.0]

    def test_min_max_last(self):
        series = self._series()
        assert [v for _, v in series.bucket(2.0, end=2.0, agg="min")] == [1.0]
        assert [v for _, v in series.bucket(2.0, end=2.0, agg="max")] == [5.0]
        assert [v for _, v in series.bucket(2.0, end=2.0, agg="last")] == [5.0]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            self._series().bucket(0.0)

    def test_unknown_agg(self):
        with pytest.raises(ValueError):
            self._series().bucket(1.0, agg="median")


class TestTelemetrySeries:
    def test_series_auto_created(self):
        telemetry = Telemetry()
        assert len(telemetry.series("fresh")) == 0
        telemetry.record("fresh", 1.0, 2.0)
        assert telemetry.series("fresh").values == [2.0]

    def test_series_names_prefix(self):
        telemetry = Telemetry()
        telemetry.record("a.x", 0.0, 1.0)
        telemetry.record("a.y", 0.0, 1.0)
        telemetry.record("b.z", 0.0, 1.0)
        assert telemetry.series_names("a.") == ["a.x", "a.y"]

    def test_merge_values(self):
        telemetry = Telemetry()
        telemetry.record("a", 0.0, 1.0)
        telemetry.record("b", 0.0, 2.0)
        telemetry.record("a", 1.0, 3.0)
        assert telemetry.merge_values(["a", "b"]) == [1.0, 3.0, 2.0]


class TestScopedTelemetry:
    def test_writes_and_reads_are_prefixed(self):
        telemetry = Telemetry()
        shard = telemetry.scoped("autocomp.shard00")
        shard.increment("cycles")
        shard.record("candidates", 1.0, 42.0)
        assert telemetry.counter("autocomp.shard00.cycles") == 1
        assert telemetry.series("autocomp.shard00.candidates").last() == 42.0
        assert shard.counter("cycles") == 1
        assert shard.series("candidates").last() == 42.0
        assert shard.prefix == "autocomp.shard00"

    def test_nested_scopes_compose(self):
        telemetry = Telemetry()
        inner = telemetry.scoped("fleet").scoped("shard01")
        inner.record("observe_wall_s", 0.0, 0.5)
        assert telemetry.series("fleet.shard01.observe_wall_s").values == [0.5]

    def test_trailing_dot_is_normalised(self):
        telemetry = Telemetry()
        telemetry.scoped("a.").increment("x")
        assert telemetry.counter("a.x") == 1

    def test_empty_prefix_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            Telemetry().scoped("")
