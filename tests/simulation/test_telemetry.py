"""Tests for telemetry counters, series, histograms and thread safety."""

from __future__ import annotations

import math
import pickle
import threading

import pytest

from repro.simulation import Histogram, MetricSeries, Telemetry, exponential_bounds
from repro.simulation.telemetry import (
    BYTES_BOUNDS,
    COUNT_BOUNDS,
    LATENCY_BOUNDS_S,
    RATIO_BOUNDS,
)


class TestCounters:
    def test_default_zero(self):
        assert Telemetry().counter("nope") == 0.0

    def test_increment(self):
        telemetry = Telemetry()
        telemetry.increment("a")
        telemetry.increment("a", 2.5)
        assert telemetry.counter("a") == 3.5

    def test_prefix_query(self):
        telemetry = Telemetry()
        telemetry.increment("storage.rpc.open", 3)
        telemetry.increment("storage.rpc.create")
        telemetry.increment("engine.queries")
        rpc = telemetry.counters_with_prefix("storage.rpc.")
        assert rpc == {"storage.rpc.open": 3.0, "storage.rpc.create": 1.0}


class TestMetricSeries:
    def test_record_and_iterate(self):
        series = MetricSeries("m")
        series.record(1.0, 10.0)
        series.record(2.0, 20.0)
        assert list(series) == [(1.0, 10.0), (2.0, 20.0)]
        assert len(series) == 2

    def test_out_of_order_records_inserted_sorted(self):
        series = MetricSeries("m")
        series.record(5.0, 1.0)
        series.record(4.0, 2.0)  # a late report from an earlier start time
        series.record(6.0, 3.0)
        assert series.times == [4.0, 5.0, 6.0]
        assert series.values == [2.0, 1.0, 3.0]

    def test_equal_times_allowed(self):
        series = MetricSeries("m")
        series.record(5.0, 1.0)
        series.record(5.0, 2.0)
        assert series.values == [1.0, 2.0]

    def test_last(self):
        series = MetricSeries("m")
        assert math.isnan(series.last())
        assert series.last(default=-1.0) == -1.0
        series.record(1.0, 42.0)
        assert series.last() == 42.0

    def test_between_half_open(self):
        series = MetricSeries("m")
        for t in range(5):
            series.record(float(t), float(t * 10))
        assert series.between(1.0, 3.0) == [10.0, 20.0]
        assert series.between(0.0, 10.0) == [0.0, 10.0, 20.0, 30.0, 40.0]
        assert series.between(4.5, 9.0) == []

    def test_value_at_step_function(self):
        series = MetricSeries("m")
        series.record(10.0, 1.0)
        series.record(20.0, 2.0)
        assert math.isnan(series.value_at(5.0))
        assert series.value_at(10.0) == 1.0
        assert series.value_at(15.0) == 1.0
        assert series.value_at(25.0) == 2.0


class TestBucketing:
    def _series(self):
        series = MetricSeries("m")
        for t, v in [(0.5, 1.0), (1.5, 3.0), (1.8, 5.0), (3.2, 7.0)]:
            series.record(t, v)
        return series

    def test_mean_buckets(self):
        buckets = self._series().bucket(1.0, end=4.0, agg="mean")
        assert buckets[0] == (0.0, 1.0)
        assert buckets[1] == (1.0, 4.0)
        assert math.isnan(buckets[2][1])
        assert buckets[3] == (3.0, 7.0)

    def test_sum_and_count(self):
        series = self._series()
        sums = [v for _, v in series.bucket(2.0, end=4.0, agg="sum")]
        counts = [v for _, v in series.bucket(2.0, end=4.0, agg="count")]
        assert sums == [9.0, 7.0]
        assert counts == [3.0, 1.0]

    def test_min_max_last(self):
        series = self._series()
        assert [v for _, v in series.bucket(2.0, end=2.0, agg="min")] == [1.0]
        assert [v for _, v in series.bucket(2.0, end=2.0, agg="max")] == [5.0]
        assert [v for _, v in series.bucket(2.0, end=2.0, agg="last")] == [5.0]

    def test_invalid_width(self):
        with pytest.raises(ValueError):
            self._series().bucket(0.0)

    def test_unknown_agg(self):
        with pytest.raises(ValueError):
            self._series().bucket(1.0, agg="median")

    def test_empty_series_zero_horizon_returns_no_buckets(self):
        # No observations and no explicit end: nothing to bucket, not
        # "one NaN bucket".
        assert MetricSeries("m").bucket(1.0) == []

    def test_explicit_zero_end_returns_no_buckets(self):
        assert self._series().bucket(1.0, end=0.0) == []

    def test_observations_at_or_before_zero_bucket_nothing(self):
        series = MetricSeries("m")
        series.record(-2.0, 1.0)
        series.record(0.0, 2.0)
        assert series.bucket(1.0) == []

    @pytest.mark.parametrize("end", [-1.0, math.inf, -math.inf, math.nan])
    def test_invalid_end_raises(self, end):
        with pytest.raises(ValueError):
            self._series().bucket(1.0, end=end)

    @pytest.mark.parametrize("width", [0.0, -1.0, math.inf, math.nan])
    def test_invalid_width_raises(self, width):
        with pytest.raises(ValueError):
            self._series().bucket(width)

    def test_empty_series_with_explicit_end_still_buckets(self):
        buckets = MetricSeries("m").bucket(1.0, end=2.0)
        assert [t for t, _ in buckets] == [0.0, 1.0]
        assert all(math.isnan(v) for _, v in buckets)


class TestTelemetrySeries:
    def test_series_auto_created(self):
        telemetry = Telemetry()
        assert len(telemetry.series("fresh")) == 0
        telemetry.record("fresh", 1.0, 2.0)
        assert telemetry.series("fresh").values == [2.0]

    def test_series_names_prefix(self):
        telemetry = Telemetry()
        telemetry.record("a.x", 0.0, 1.0)
        telemetry.record("a.y", 0.0, 1.0)
        telemetry.record("b.z", 0.0, 1.0)
        assert telemetry.series_names("a.") == ["a.x", "a.y"]

    def test_merge_values(self):
        telemetry = Telemetry()
        telemetry.record("a", 0.0, 1.0)
        telemetry.record("b", 0.0, 2.0)
        telemetry.record("a", 1.0, 3.0)
        assert telemetry.merge_values(["a", "b"]) == [1.0, 3.0, 2.0]


class TestExponentialBounds:
    def test_values(self):
        assert exponential_bounds(0.001, 2, 4) == (0.001, 0.002, 0.004, 0.008)

    @pytest.mark.parametrize("args", [(0.0, 2, 4), (1.0, 1.0, 4), (1.0, 2, 0)])
    def test_invalid_args(self, args):
        with pytest.raises(ValueError):
            exponential_bounds(*args)

    def test_default_bound_tables_are_valid(self):
        # Every canned bound table must satisfy Histogram's own validation.
        for bounds in (LATENCY_BOUNDS_S, BYTES_BOUNDS, RATIO_BOUNDS, COUNT_BOUNDS):
            hist = Histogram("h", bounds=bounds)
            assert hist.bounds == tuple(bounds)
            assert list(bounds) == sorted(set(bounds))


class TestHistogram:
    def test_observe_and_summary(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0, 10.0):
            hist.observe(v)
        assert hist.count == 5
        assert hist.total == pytest.approx(16.5)
        assert hist.min == 0.5
        assert hist.max == 10.0
        assert hist.counts == [1, 2, 1, 1]  # last slot is the +Inf overflow
        summary = hist.summary()
        assert summary["count"] == 5.0
        assert summary["sum"] == pytest.approx(16.5)
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= 10.0

    def test_empty_summary_is_nan(self):
        summary = Histogram("h", bounds=(1.0,)).summary()
        assert summary["count"] == 0.0
        assert math.isnan(summary["p50"])
        assert math.isnan(summary["min"])
        assert math.isnan(summary["max"])

    def test_non_finite_observations_are_dropped(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(math.nan)
        hist.observe(math.inf)
        hist.observe(0.5)
        assert hist.count == 1
        assert hist.dropped == 2
        assert hist.total == 0.5

    def test_boundary_value_lands_in_its_bucket(self):
        # bisect_left: a value exactly on a bound lands in that bound's
        # bucket, matching Prometheus' le= (less-or-equal) semantics.
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(1.0)
        assert hist.counts == [1, 0, 0]

    def test_quantile_clamps_to_observed_range(self):
        hist = Histogram("h", bounds=(10.0, 20.0))
        hist.observe(12.0)
        hist.observe(13.0)
        assert 12.0 <= hist.quantile(0.5) <= 13.0
        assert hist.quantile(0.0) >= 12.0
        assert hist.quantile(1.0) <= 13.0

    def test_quantile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0,)).quantile(1.5)

    def test_quantile_empty_is_nan(self):
        assert math.isnan(Histogram("h", bounds=(1.0,)).quantile(0.5))

    def test_merge_exact(self):
        a = Histogram("a", bounds=(1.0, 2.0))
        b = Histogram("b", bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(5.0)
        b.observe(math.nan)
        a.merge(b)
        assert a.count == 3
        assert a.counts == [1, 1, 1]
        assert a.total == pytest.approx(7.0)
        assert a.min == 0.5
        assert a.max == 5.0
        assert a.dropped == 1

    def test_merge_mismatched_bounds_raises(self):
        with pytest.raises(ValueError):
            Histogram("a", bounds=(1.0,)).merge(Histogram("b", bounds=(2.0,)))

    def test_copy_is_independent(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        clone = hist.copy()
        clone.observe(0.5)
        assert hist.count == 1
        assert clone.count == 2

    def test_pickle_round_trip(self):
        # Workers ship their local histograms back across the process
        # boundary; the round trip must preserve every field.
        hist = Histogram("h", bounds=(1.0, 2.0))
        hist.observe(0.5)
        hist.observe(math.inf)
        clone = pickle.loads(pickle.dumps(hist))
        assert clone == hist
        clone.observe(1.5)
        assert clone.count == hist.count + 1

    @pytest.mark.parametrize(
        "bounds",
        [(), (1.0, 1.0), (2.0, 1.0), (math.inf,), (math.nan, 1.0)],
    )
    def test_invalid_bounds_raise(self, bounds):
        with pytest.raises(ValueError):
            Histogram("h", bounds=bounds)

    def test_mismatched_counts_length_raises(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(1.0, 2.0), counts=[0, 0])


class TestTelemetryHistograms:
    def test_observe_creates_and_fills(self):
        telemetry = Telemetry()
        telemetry.observe("lat", 0.01)
        telemetry.observe("lat", 0.02)
        hist = telemetry.histogram("lat")
        assert hist.count == 2
        assert hist.bounds == LATENCY_BOUNDS_S

    def test_first_observe_picks_bounds_later_calls_ignore(self):
        telemetry = Telemetry()
        telemetry.observe("n", 3.0, bounds=(1.0, 10.0))
        telemetry.observe("n", 4.0, bounds=(99.0,))  # ignored: layout is fixed
        assert telemetry.histogram("n").bounds == (1.0, 10.0)
        assert telemetry.histogram("n").count == 2

    def test_merge_histogram_creates_or_folds(self):
        telemetry = Telemetry()
        remote = Histogram("w", bounds=(1.0,))
        remote.observe(0.5)
        telemetry.merge_histogram(remote)
        remote.observe(0.5)  # the sink must have copied, not aliased
        assert telemetry.histogram("w").count == 1
        telemetry.merge_histogram(remote)
        assert telemetry.histogram("w").count == 3

    def test_histogram_names_prefix(self):
        telemetry = Telemetry()
        telemetry.observe("a.x", 1.0)
        telemetry.observe("a.y", 1.0)
        telemetry.observe("b.z", 1.0)
        assert telemetry.histogram_names("a.") == ["a.x", "a.y"]

    def test_snapshot_is_a_consistent_copy(self):
        telemetry = Telemetry()
        telemetry.increment("c", 2)
        telemetry.record("s", 1.0, 10.0)
        telemetry.observe("h", 0.5)
        snap = telemetry.snapshot()
        telemetry.increment("c")
        telemetry.record("s", 2.0, 20.0)
        telemetry.observe("h", 0.5)
        assert snap["counters"] == {"c": 2.0}
        assert snap["series"]["s"] == ([1.0], [10.0])
        assert snap["histograms"]["h"].count == 1


class TestThreadSafety:
    def test_eight_thread_hammer(self):
        # Regression: Telemetry once used no lock; concurrent increments on
        # one counter lost updates.  Eight writer threads hammer a shared
        # counter, series and histogram; the totals must be exact.
        telemetry = Telemetry()
        threads, per_thread = 8, 2_000
        barrier = threading.Barrier(threads)

        def hammer(tid):
            barrier.wait()  # maximise interleaving
            scope = telemetry.scoped(f"t{tid}")
            for i in range(per_thread):
                telemetry.increment("shared.count")
                telemetry.observe("shared.lat", 0.001 * (i % 10 + 1))
                telemetry.record("shared.series", float(i), float(tid))
                scope.increment("own")

        workers = [
            threading.Thread(target=hammer, args=(tid,)) for tid in range(threads)
        ]
        for w in workers:
            w.start()
        for w in workers:
            w.join()

        total = threads * per_thread
        assert telemetry.counter("shared.count") == total
        assert telemetry.histogram("shared.lat").count == total
        assert len(telemetry.series("shared.series")) == total
        for tid in range(threads):
            assert telemetry.counter(f"t{tid}.own") == per_thread

    def test_snapshot_during_writes_never_tears(self):
        telemetry = Telemetry()
        stop = threading.Event()

        def writer():
            i = 0
            while not stop.is_set():
                telemetry.observe("h", 0.001)
                telemetry.record("s", float(i), 1.0)
                i += 1

        w = threading.Thread(target=writer)
        w.start()
        try:
            for _ in range(200):
                snap = telemetry.snapshot()
                times, values = snap["series"].get("s", ([], []))
                # A torn mid-insert read would desynchronise the lists.
                assert len(times) == len(values)
                hist = snap["histograms"].get("h")
                if hist is not None:
                    assert sum(hist.counts) == hist.count
        finally:
            stop.set()
            w.join()


class TestScopedTelemetry:
    def test_writes_and_reads_are_prefixed(self):
        telemetry = Telemetry()
        shard = telemetry.scoped("autocomp.shard00")
        shard.increment("cycles")
        shard.record("candidates", 1.0, 42.0)
        assert telemetry.counter("autocomp.shard00.cycles") == 1
        assert telemetry.series("autocomp.shard00.candidates").last() == 42.0
        assert shard.counter("cycles") == 1
        assert shard.series("candidates").last() == 42.0
        assert shard.prefix == "autocomp.shard00"

    def test_nested_scopes_compose(self):
        telemetry = Telemetry()
        inner = telemetry.scoped("fleet").scoped("shard01")
        inner.record("observe_wall_s", 0.0, 0.5)
        assert telemetry.series("fleet.shard01.observe_wall_s").values == [0.5]

    def test_trailing_dot_is_normalised(self):
        telemetry = Telemetry()
        telemetry.scoped("a.").increment("x")
        assert telemetry.counter("a.x") == 1

    def test_empty_prefix_rejected(self):
        with pytest.raises(ValueError):
            Telemetry().scoped("")

    def test_deeply_nested_scopes_compose(self):
        telemetry = Telemetry()
        leaf = telemetry.scoped("fleet").scoped("shard01").scoped("worker")
        leaf.increment("jobs")
        assert leaf.prefix == "fleet.shard01.worker"
        assert telemetry.counter("fleet.shard01.worker.jobs") == 1
        assert leaf.counter("jobs") == 1

    def test_counters_with_prefix_respects_namespace_boundary(self):
        # The satellite regression: a plain string prefix "autocomp.shard1"
        # also matches "autocomp.shard10.*"; the scoped view must not.
        telemetry = Telemetry()
        telemetry.increment("autocomp.shard1.files", 1)
        telemetry.increment("autocomp.shard10.files", 10)
        telemetry.increment("autocomp.shard1", 100)  # exact-name counter

        # Raw Telemetry prefix match is (documented) greedy...
        raw = telemetry.counters_with_prefix("autocomp.shard1")
        assert set(raw) == {
            "autocomp.shard1.files",
            "autocomp.shard10.files",
            "autocomp.shard1",
        }
        # ...while the scope stops at the dotted boundary.
        scoped = telemetry.scoped("autocomp.shard1").counters_with_prefix()
        assert scoped == {
            "autocomp.shard1.files": 1.0,
            "autocomp.shard1": 100.0,
        }

    def test_counters_with_prefix_inner_narrowing_keeps_boundary(self):
        telemetry = Telemetry()
        scope = telemetry.scoped("autocomp")
        telemetry.increment("autocomp.shard1.files", 1)
        telemetry.increment("autocomp.shard10.files", 10)
        assert scope.counters_with_prefix("shard1") == {
            "autocomp.shard1.files": 1.0
        }

    def test_histogram_and_observe_delegate_with_prefix(self):
        telemetry = Telemetry()
        shard = telemetry.scoped("autocomp.shard00")
        shard.observe("observe_wall_s", 0.01, bounds=(1.0,))
        assert telemetry.histogram("autocomp.shard00.observe_wall_s").count == 1
        assert shard.histogram("observe_wall_s").count == 1
        assert shard.histogram("observe_wall_s").bounds == (1.0,)
