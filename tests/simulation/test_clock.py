"""Tests for the simulated clock."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.simulation import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(start=100.0).now == 100.0

    def test_negative_start_rejected(self):
        with pytest.raises(ValidationError):
            SimClock(start=-1.0)

    def test_advance_to(self):
        clock = SimClock()
        clock.advance_to(42.5)
        assert clock.now == 42.5

    def test_advance_to_same_time_ok(self):
        clock = SimClock(start=10.0)
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_backwards_rejected(self):
        clock = SimClock(start=10.0)
        with pytest.raises(ValidationError):
            clock.advance_to(9.9)

    def test_advance_by(self):
        clock = SimClock()
        clock.advance_by(5.0)
        clock.advance_by(2.5)
        assert clock.now == 7.5

    def test_advance_by_zero_ok(self):
        clock = SimClock(start=3.0)
        clock.advance_by(0.0)
        assert clock.now == 3.0

    def test_advance_by_negative_rejected(self):
        with pytest.raises(ValidationError):
            SimClock().advance_by(-0.1)

    def test_repr_mentions_time(self):
        assert "12.5" in repr(SimClock(start=12.5))
