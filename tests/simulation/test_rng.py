"""Tests for deterministic RNG derivation (NFR2 foundation)."""

from __future__ import annotations

from repro.simulation import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "a", "b") == derive_seed(42, "a", "b")

    def test_differs_by_root_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_differs_by_key(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_differs_by_key_depth(self):
        assert derive_seed(42, "a", "b") != derive_seed(42, "ab")

    def test_accepts_non_string_keys(self):
        assert derive_seed(42, 1, 2.5, ("x",)) == derive_seed(42, 1, 2.5, ("x",))

    def test_known_stable_value(self):
        # Pin the derivation so accidental algorithm changes are caught:
        # this value must never change across releases (it would silently
        # re-randomise every experiment).
        assert derive_seed(0) == derive_seed(0)
        first = derive_seed(123, "fleet-model")
        assert first == derive_seed(123, "fleet-model")
        assert 0 <= first < 2**64


class TestDeriveRng:
    def test_same_path_same_stream(self):
        a = derive_rng(7, "x").integers(0, 1000, size=10)
        b = derive_rng(7, "x").integers(0, 1000, size=10)
        assert (a == b).all()

    def test_sibling_streams_differ(self):
        a = derive_rng(7, "x").integers(0, 1_000_000, size=20)
        b = derive_rng(7, "y").integers(0, 1_000_000, size=20)
        assert (a != b).any()

    def test_new_consumer_does_not_perturb_existing(self):
        before = derive_rng(7, "existing").uniform(size=5)
        derive_rng(7, "brand-new").uniform(size=100)
        after = derive_rng(7, "existing").uniform(size=5)
        assert (before == after).all()
