"""Tests for the event queue."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.simulation import EventQueue


class TestEventQueue:
    def test_empty_queue(self):
        queue = EventQueue()
        assert len(queue) == 0
        assert not queue
        assert queue.peek_time() is None

    def test_push_and_pop_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.push(3.0, lambda: fired.append("c"))
        queue.push(1.0, lambda: fired.append("a"))
        queue.push(2.0, lambda: fired.append("b"))
        while queue:
            queue.pop().action()
        assert fired == ["a", "b", "c"]

    def test_equal_times_fire_in_schedule_order(self):
        queue = EventQueue()
        fired = []
        for name in "abcde":
            queue.push(5.0, lambda n=name: fired.append(n))
        while queue:
            queue.pop().action()
        assert fired == list("abcde")

    def test_negative_time_rejected(self):
        with pytest.raises(ValidationError):
            EventQueue().push(-1.0, lambda: None)

    def test_peek_time(self):
        queue = EventQueue()
        queue.push(7.0, lambda: None)
        queue.push(2.0, lambda: None)
        assert queue.peek_time() == 2.0

    def test_cancel_skips_event(self):
        queue = EventQueue()
        fired = []
        keep = queue.push(1.0, lambda: fired.append("keep"))
        drop = queue.push(2.0, lambda: fired.append("drop"))
        queue.cancel(drop)
        assert len(queue) == 1
        while queue:
            queue.pop().action()
        assert fired == ["keep"]
        del keep

    def test_cancel_head_updates_peek(self):
        queue = EventQueue()
        head = queue.push(1.0, lambda: None)
        queue.push(5.0, lambda: None)
        queue.cancel(head)
        assert queue.peek_time() == 5.0

    def test_cancel_twice_is_noop(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None)
        queue.cancel(event)
        queue.cancel(event)
        assert len(queue) == 0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_event_names(self):
        queue = EventQueue()
        event = queue.push(1.0, lambda: None, name="tick")
        assert event.name == "tick"
