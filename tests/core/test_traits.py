"""Tests for the orient-phase traits (paper §4.2 formulas)."""

from __future__ import annotations

import pytest

from repro.core import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    ComputeCostTrait,
    DeleteFileCountTrait,
    FileCountReductionTrait,
    FileEntropyTrait,
    RelativeFileCountReductionTrait,
    SmallFileBytesTrait,
    TraitRegistry,
)
from repro.core.traits import BENEFIT, COST
from repro.errors import ValidationError
from repro.units import GiB, MiB

TARGET = 512 * MiB


def _stats(sizes, **kwargs):
    return CandidateStatistics.from_file_sizes(sizes, target_file_size=TARGET, **kwargs)


def _candidate(sizes, **kwargs):
    return Candidate(
        key=CandidateKey("db", "t", CandidateScope.TABLE),
        statistics=_stats(sizes, **kwargs),
    )


class TestFileCountReduction:
    def test_paper_formula_counts_small_files(self):
        """ΔF_c = Σ 1[size < target]."""
        trait = FileCountReductionTrait()
        stats = _stats([MiB, 100 * MiB, TARGET, TARGET + 1])
        assert trait.compute(stats) == 2.0

    def test_direction_is_benefit(self):
        assert FileCountReductionTrait.direction == BENEFIT

    def test_empty_candidate(self):
        assert FileCountReductionTrait().compute(_stats([])) == 0.0


class TestRelativeReduction:
    def test_fraction(self):
        trait = RelativeFileCountReductionTrait()
        assert trait.compute(_stats([MiB, MiB, TARGET, TARGET])) == 0.5

    def test_empty(self):
        assert RelativeFileCountReductionTrait().compute(_stats([])) == 0.0


class TestFileEntropy:
    def test_zero_for_target_sized_files(self):
        assert FileEntropyTrait().compute(_stats([TARGET, TARGET + MiB])) == 0.0

    def test_near_empty_files_contribute_one_each(self):
        entropy = FileEntropyTrait().compute(_stats([1, 1, 1]))
        assert entropy == pytest.approx(3.0, rel=1e-4)

    def test_half_sized_file_contributes_quarter(self):
        entropy = FileEntropyTrait().compute(_stats([TARGET // 2]))
        assert entropy == pytest.approx(0.25)

    def test_monotone_in_small_file_count(self):
        trait = FileEntropyTrait()
        assert trait.compute(_stats([MiB] * 10)) > trait.compute(_stats([MiB] * 5))

    def test_empty(self):
        assert FileEntropyTrait().compute(_stats([])) == 0.0


class TestComputeCost:
    def test_paper_formula_verbatim(self):
        """GBHr_c = ExecutorMemoryGB × DataSize_c / RewriteBytesPerHour."""
        trait = ComputeCostTrait(executor_memory_gb=192.0, rewrite_bytes_per_hour=1 * GiB)
        stats = _stats([100 * MiB, 100 * MiB, TARGET])  # DataSize_c = small bytes
        expected = 192.0 * (200 * MiB / (1 * GiB))
        assert trait.compute(stats) == pytest.approx(expected)

    def test_direction_is_cost(self):
        assert ComputeCostTrait.direction == COST

    def test_validation(self):
        with pytest.raises(ValidationError):
            ComputeCostTrait(executor_memory_gb=0, rewrite_bytes_per_hour=1)
        with pytest.raises(ValidationError):
            ComputeCostTrait(executor_memory_gb=1, rewrite_bytes_per_hour=0)


class TestAuxiliaryTraits:
    def test_small_file_bytes(self):
        assert SmallFileBytesTrait().compute(_stats([MiB, TARGET])) == float(MiB)

    def test_delete_file_count(self):
        stats = _stats([MiB], delete_file_count=7)
        assert DeleteFileCountTrait().compute(stats) == 7.0


class TestTraitRegistry:
    def test_annotate_all(self):
        registry = TraitRegistry([FileCountReductionTrait(), FileEntropyTrait()])
        candidates = [_candidate([MiB, MiB]), _candidate([TARGET])]
        registry.annotate_all(candidates)
        assert candidates[0].traits["file_count_reduction"] == 2.0
        assert candidates[1].traits["file_count_reduction"] == 0.0
        assert "file_entropy" in candidates[0].traits

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            TraitRegistry([FileCountReductionTrait(), FileCountReductionTrait()])

    def test_get_and_names(self):
        registry = TraitRegistry([FileEntropyTrait()])
        assert registry.names() == ["file_entropy"]
        assert isinstance(registry.get("file_entropy"), FileEntropyTrait)
        with pytest.raises(ValidationError):
            registry.get("nope")

    def test_annotate_requires_statistics(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        with pytest.raises(ValidationError):
            FileCountReductionTrait().annotate(candidate)

    def test_custom_trait_extension(self):
        """NFR1: a user-defined trait plugs in without framework changes."""

        class AccessRateTrait(FileCountReductionTrait):
            name = "access_rate"

            def compute(self, statistics):
                return statistics.custom.get("access_rate", 0.0)

        registry = TraitRegistry([AccessRateTrait()])
        candidate = _candidate([MiB], custom={"access_rate": 9.0})
        registry.annotate_all([candidate])
        assert candidate.traits["access_rate"] == 9.0
