"""Tests for the shard worker subsystem (process-boundary contracts)."""

from __future__ import annotations

import dataclasses
import pickle

import pytest

from repro.core import (
    CacheDelta,
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    ComputeCostTrait,
    FileCountReductionTrait,
    IndexedCandidateCache,
    ShardCycleResult,
    ShardedPipeline,
    ShardWorkSpec,
    StatsCache,
    TraitRegistry,
    WorkerPool,
    run_shard_work,
)
from repro.core.workers import WORK_SPEC_VERSION, burn_cpu
from repro.errors import ValidationError
from repro.fleet import FleetConfig, FleetModel, ShardedAutoCompStrategy
from repro.units import DAY, GiB


def _registry() -> TraitRegistry:
    return TraitRegistry(
        [
            FileCountReductionTrait(),
            ComputeCostTrait(executor_memory_gb=192.0, rewrite_bytes_per_hour=768 * GiB),
        ]
    )


def _spec(n: int = 3, observe_cost: int = 0) -> ShardWorkSpec:
    keys = tuple(
        CandidateKey("db", f"table{i:06d}", CandidateScope.TABLE) for i in range(n)
    )
    return ShardWorkSpec(
        shard_index=1,
        keys=keys,
        columns={
            "file_count": tuple(10 + i for i in range(n)),
            "total_bytes": tuple((10 + i) * 1024 for i in range(n)),
            "small_file_count": tuple(5 + i for i in range(n)),
            "small_file_bytes": tuple((5 + i) * 512 for i in range(n)),
            "partition_count": (1,) * n,
            "created_at": (0.0,) * n,
            "last_modified_at": tuple(float(i) * DAY for i in range(n)),
            "quota_utilization": (0.25,) * n,
        },
        slots=tuple(range(n)),
        tokens=tuple(7 + i for i in range(n)),
        target_file_size=512,
        now=2.0 * DAY,
        traits=_registry(),
        observe_cost=observe_cost,
    )


class TestWorkerPool:
    def test_rejects_unknown_mode_and_bad_width(self):
        with pytest.raises(ValidationError):
            WorkerPool(mode="fibers")  # repro-lint: disable=RL006 -- constructor validation raises before any resource is acquired
        with pytest.raises(ValidationError):
            WorkerPool(max_workers=0)  # repro-lint: disable=RL006 -- constructor validation raises before any resource is acquired

    def test_threads_run_closures_in_order(self):
        with WorkerPool(mode="threads", max_workers=2) as pool:
            results = pool.run_tasks([lambda i=i: i * i for i in range(5)])
            assert results == [0, 1, 4, 9, 16]
            assert pool.started

    def test_executor_persists_across_submissions(self):
        pool = WorkerPool(mode="threads", max_workers=1)
        try:
            pool.submit(int).result()
            first = pool._executor
            pool.submit(int).result()
            assert pool._executor is first, "pool must be reused, not respawned"
        finally:
            pool.close()
        assert not pool.started
        pool.close()  # idempotent

    def test_process_pool_rejects_closures(self):
        pool = WorkerPool(mode="processes", max_workers=1)
        try:
            with pytest.raises(ValidationError):
                pool.run_tasks([lambda: 1])
            assert not pool.started, "validation must not spawn processes"
        finally:
            pool.close()

    def test_process_pool_runs_module_level_work(self):
        spec = _spec()
        with WorkerPool(mode="processes", max_workers=1) as pool:
            result = pool.submit(run_shard_work, spec).result()
        assert isinstance(result, ShardCycleResult)
        assert [c.key for c in result.candidates] == list(spec.keys)


class TestWorkerPoolDrain:
    """Regression: close() mid-flight hung on slow work and orphaned children."""

    def test_timed_close_does_not_wait_for_slow_process_work(self):
        import multiprocessing
        import time as _time

        pool = WorkerPool(mode="processes", max_workers=2)
        pool.submit(_time.sleep, 30)
        pool.submit(_time.sleep, 30)
        started = _time.monotonic()
        pool.close(timeout=0.3)  # old close would block ~30s
        elapsed = _time.monotonic() - started
        assert elapsed < 10.0
        assert not pool.started
        # Children were terminated and joined, not orphaned to interpreter
        # teardown (where the executor machinery may already be gone).
        assert multiprocessing.active_children() == []
        pool.close(timeout=0.3)  # idempotent

    def test_timed_close_cancels_queued_thread_work(self):
        import time as _time

        pool = WorkerPool(mode="threads", max_workers=1)
        running = pool.submit(_time.sleep, 0.2)
        queued = pool.submit(_time.sleep, 0.2)
        pool.close(timeout=5.0)
        assert running.done()
        assert queued.cancelled() or queued.done()

    def test_untimed_close_still_waits(self):
        import time as _time

        pool = WorkerPool(mode="threads", max_workers=1)
        future = pool.submit(_time.sleep, 0.05)
        pool.close()  # historical behaviour: wait for running work
        assert future.done() and not future.cancelled()

    def test_future_tracking_is_pruned(self):
        pool = WorkerPool(mode="threads", max_workers=2)
        try:
            for _ in range(300):
                pool.submit(int).result()
            assert len(pool._futures) <= 65
        finally:
            pool.close()


class TestShardWorkContracts:
    def test_spec_validates_column_shape(self):
        spec = _spec()
        with pytest.raises(ValidationError):
            ShardWorkSpec(
                shard_index=0,
                keys=spec.keys,
                columns={"file_count": (1,) * len(spec.keys)},  # missing columns
                slots=spec.slots,
                tokens=spec.tokens,
                target_file_size=512,
                now=0.0,
                traits=_registry(),
            )
        with pytest.raises(ValidationError):
            dataclasses.replace(spec, tokens=(1,))  # ragged tokens

    def test_spec_and_result_pickle_round_trip(self):
        spec = _spec()
        thawed = pickle.loads(pickle.dumps(spec))
        assert thawed.keys == spec.keys
        assert thawed.columns == spec.columns
        assert thawed.tokens == spec.tokens
        assert thawed.traits.names() == spec.traits.names()
        result = run_shard_work(spec)
        revived = pickle.loads(pickle.dumps(result))
        assert revived.version == WORK_SPEC_VERSION
        assert [c.key for c in revived.candidates] == list(spec.keys)
        assert [c.traits for c in revived.candidates] == [
            c.traits for c in result.candidates
        ]
        assert revived.cache_delta.slots == spec.slots
        assert revived.cache_delta.tokens == spec.tokens

    def test_statistics_pickle_preserves_custom_mapping(self):
        stats = CandidateStatistics(
            file_count=4,
            total_bytes=100,
            small_file_count=2,
            small_file_bytes=40,
            target_file_size=64,
            custom={"scans_per_day": 3.5},
        )
        revived = pickle.loads(pickle.dumps(stats))
        assert revived == stats
        assert dict(revived.custom) == {"scans_per_day": 3.5}
        with pytest.raises(TypeError):
            revived.custom["x"] = 1.0  # stays frozen after the round trip

    def test_worker_rejects_foreign_contract_version(self):
        from repro.errors import WorkerError

        spec = dataclasses.replace(_spec(), version=WORK_SPEC_VERSION + 1)
        with pytest.raises(WorkerError, match="handshake"):
            run_shard_work(spec)

    def test_worker_output_matches_inline_observation(self):
        spec = _spec()
        result = run_shard_work(spec)
        registry = _registry()
        for i, candidate in enumerate(result.candidates):
            assert candidate.statistics.file_count == spec.columns["file_count"][i]
            expected = Candidate(key=candidate.key, statistics=candidate.statistics)
            registry.annotate_all([expected])
            assert candidate.traits == expected.traits

    def test_observe_cost_is_deterministic_and_result_neutral(self):
        cheap = run_shard_work(_spec())
        costly = run_shard_work(_spec(observe_cost=5))
        assert [c.statistics for c in cheap.candidates] == [
            c.statistics for c in costly.candidates
        ]
        assert burn_cpu(5, b"x") == burn_cpu(5, b"x")


class TestCacheDeltaMerge:
    def test_indexed_cache_learns_worker_observations(self):
        spec = _spec()
        result = run_shard_work(spec)
        cache = IndexedCandidateCache()
        assert cache.apply_delta(result.cache_delta, result.candidates) == len(spec.keys)
        for i in range(len(spec.keys)):
            assert cache.get(i, now=spec.now, token=spec.tokens[i]) is result.candidates[i]
            # A bumped version token must still evict (freshness survived).
            assert cache.get(i, now=spec.now, token=spec.tokens[i] + 1) is None

    def test_stats_cache_learns_worker_observations(self):
        spec = _spec()
        result = run_shard_work(spec)
        cache = StatsCache()
        statistics = [c.statistics for c in result.candidates]
        keyed_delta = CacheDelta(
            slots=spec.keys, tokens=spec.tokens, stored_at=spec.now
        )
        assert cache.apply_delta(keyed_delta, statistics) == len(spec.keys)
        for key, token, stats in zip(spec.keys, spec.tokens, statistics):
            assert cache.get(key, now=spec.now, token=token) is stats
        assert cache.get(spec.keys[0], now=spec.now, token=spec.tokens[0] + 1) is None

    def test_misaligned_delta_is_rejected(self):
        spec = _spec()
        result = run_shard_work(spec)
        with pytest.raises(ValidationError):
            IndexedCandidateCache().apply_delta(result.cache_delta, result.candidates[:-1])
        with pytest.raises(ValidationError):
            StatsCache().apply_delta(
                CacheDelta(slots=spec.keys, tokens=spec.tokens, stored_at=0.0),
                [c.statistics for c in result.candidates[:-1]],
            )


class TestShardedPipelineWorkerModes:
    def test_process_mode_requires_worker_observe_support(self):
        from repro.catalog import Catalog
        from repro.core import (
            AutoCompPipeline,
            Connector,
            LstConnector,
            LstExecutionBackend,
            SequentialScheduler,
            TopKSelector,
            WeightedSumPolicy,
            Objective,
        )
        from repro.engine import Cluster

        class LiveOnlyConnector(Connector):
            """A connector whose observation cannot leave the process."""

            def list_candidates(self, strategy="table"):
                return []

            def collect_statistics(self, key):
                raise NotImplementedError

        connector = LiveOnlyConnector()
        assert not connector.supports_worker_observe
        # The catalog connector, by contrast, snapshots to picklable slices.
        assert LstConnector(Catalog()).supports_worker_observe
        lst = LstConnector(Catalog())
        pipeline = AutoCompPipeline(
            connector=connector,
            backend=LstExecutionBackend(lst, Cluster("maint", executors=1)),
            traits=_registry(),
            policy=WeightedSumPolicy(
                [Objective("file_count_reduction", 1.0, maximize=True)]
            ),
            selector=TopKSelector(3),
            scheduler=SequentialScheduler(),
        )
        with pytest.raises(ValidationError, match="worker"):
            ShardedPipeline([pipeline], workers="processes")
        with pytest.raises(ValidationError, match="worker"):
            connector.export_shard_work([], 0, _registry())
        with pytest.raises(ValidationError, match="worker"):
            connector.merge_shard_result([], None)
        with pytest.raises(ValidationError, match="worker"):
            connector.apply_shard_delta(None)

    def test_rejects_unknown_worker_mode(self):
        model = FleetModel(FleetConfig(initial_tables=50, seed=1))
        strategy = ShardedAutoCompStrategy(model, n_shards=1, k=3)
        with pytest.raises(ValidationError):
            ShardedPipeline(strategy.pipeline.shards, workers="quantum")

    def test_pool_lifecycle_is_pipeline_scoped(self):
        model = FleetModel(FleetConfig(initial_tables=120, seed=4))
        model.step_day()
        with ShardedAutoCompStrategy(
            model, n_shards=2, k=5, workers="processes", max_workers=2
        ) as strategy:
            pipeline = strategy.pipeline
            pipeline.run_cycle(now=0.0)
            executor = pipeline._pool("processes")._executor
            assert executor is not None
            model.step_day()
            pipeline.run_cycle(now=DAY)
            assert pipeline._pool("processes")._executor is executor, (
                "the worker pool must persist across cycles"
            )
        assert not pipeline._pools

    def test_process_cycles_stay_incremental_via_cache_delta(self):
        model = FleetModel(FleetConfig(initial_tables=150, seed=11))
        model.step_day()
        with ShardedAutoCompStrategy(
            model, n_shards=2, k=5, workers="processes", max_workers=2
        ) as strategy:
            strategy.pipeline.run_cycle(now=0.0)
            cache = strategy.caches[0]
            assert cache.misses > 0 and cache.hits == 0
            model.step_day()
            strategy.pipeline.run_cycle(now=DAY)
            assert cache.hits > 0, (
                "worker observations must land in the coordinator cache"
            )


class TestWorkerSideDecide:
    """The decide contract: filter → orient → rank → select in the worker."""

    def _decided_spec(self, k: int = 2):
        from repro.core import ShardDecideSpec, TopKSelector, WeightedSumPolicy, Objective

        spec = _spec(4)
        decide = ShardDecideSpec(
            policy=WeightedSumPolicy(
                [Objective("file_count_reduction", 1.0, maximize=True)]
            ),
            selector=TopKSelector(k),
            hits=(None,) * 4,  # every key missed the coordinator cache
        )
        return dataclasses.replace(spec, decide=decide)

    def test_decision_matches_coordinator_side_decide(self):
        spec = self._decided_spec(k=2)
        result = run_shard_work(spec)
        assert result.decision is not None
        # Coordinator-side reference: observe + orient + rank + select the
        # same inputs with the same components.
        reference = run_shard_work(dataclasses.replace(spec, decide=None))
        ranked = spec.decide.policy.rank(list(reference.candidates))
        expected = spec.decide.selector.select(ranked)
        assert [c.key for c in result.decision.selected] == [c.key for c in expected]
        assert [c.statistics for c in result.decision.selected] == [
            c.statistics for c in expected
        ]
        assert result.decision.ranked == len(ranked)
        assert result.decision.after_stats_filters == 4
        assert result.decision.after_trait_filters == 4

    def test_return_payload_shrinks_to_selected(self):
        spec = self._decided_spec(k=1)
        result = run_shard_work(spec)
        # Only the selected miss crosses back — candidates and the cache
        # delta are O(selected), not O(shard candidates).
        assert len(result.candidates) == 1
        assert len(result.cache_delta) == 1
        assert result.candidates[0] is result.decision.selected[0]
        undecided = run_shard_work(dataclasses.replace(spec, decide=None))
        assert len(undecided.candidates) == 4
        assert len(pickle.dumps(result)) < len(pickle.dumps(undecided))

    def test_delta_slots_follow_the_selected_misses(self):
        spec = self._decided_spec(k=4)
        result = run_shard_work(spec)
        # TopK(4) selects all four misses; the delta must carry each one's
        # original slot/token pairing, in rank order.
        key_to_slot = dict(zip(spec.keys, spec.slots))
        assert list(result.cache_delta.slots) == [
            key_to_slot[c.key] for c in result.candidates
        ]

    def test_decide_spec_validates_hole_count(self):
        from repro.core import ShardDecideSpec, TopKSelector, WeightedSumPolicy, Objective

        spec = _spec(3)
        decide = ShardDecideSpec(
            policy=WeightedSumPolicy(
                [Objective("file_count_reduction", 1.0, maximize=True)]
            ),
            selector=TopKSelector(1),
            hits=(None,),  # 1 hole for 3 miss keys
        )
        with pytest.raises(ValidationError, match="hole"):
            dataclasses.replace(spec, decide=decide)

    def test_worker_decide_requires_local_selection(self):
        model = FleetModel(FleetConfig(initial_tables=50, seed=1))
        strategy = ShardedAutoCompStrategy(model, n_shards=2, k=4)
        with pytest.raises(ValidationError, match="local"):
            ShardedPipeline(
                strategy.pipeline.shards, selection="global", worker_decide=True
            )


class TestWorkerFailureHandling:
    def test_poisoned_spec_surfaces_worker_error_and_drains_futures(self):
        from repro.errors import WorkerError

        model = FleetModel(FleetConfig(initial_tables=120, seed=6))
        model.step_day()
        with ShardedAutoCompStrategy(
            model,
            n_shards=3,
            k=5,
            workers="processes",
            max_workers=2,
            # Pin the pickle transport: the poison patches its export hook.
            transport="pickle",
        ) as strategy:
            pipeline = strategy.pipeline
            victim = pipeline.shards[1].connector
            original = victim.export_shard_work

            def poisoned(keys, shard_index, traits):
                placed, spec = original(keys, shard_index, traits)
                if spec is not None:
                    spec = dataclasses.replace(spec, version=99)
                return placed, spec

            victim.export_shard_work = poisoned
            with pytest.raises(WorkerError, match="shard 1"):
                pipeline.run_cycle(now=0.0)
            # Outstanding sibling futures were cancelled/drained: the pool
            # is immediately reusable and the next cycle completes.
            del victim.export_shard_work
            model.step_day()
            report = pipeline.run_cycle(now=DAY)
            assert report.report.candidates_generated > 0

    def test_worker_error_chains_the_original_exception(self):
        from repro.errors import WorkerError

        model = FleetModel(FleetConfig(initial_tables=80, seed=7))
        model.step_day()
        with ShardedAutoCompStrategy(
            model,
            n_shards=2,
            k=5,
            workers="processes",
            max_workers=2,
            transport="pickle",
        ) as strategy:
            pipeline = strategy.pipeline
            victim = pipeline.shards[0].connector
            original = victim.export_shard_work
            victim.export_shard_work = lambda keys, i, traits: (_ for _ in ()).throw(
                RuntimeError("export exploded")
            )
            try:
                pipeline.run_cycle(now=0.0)
                raise AssertionError("expected WorkerError")
            except WorkerError as exc:
                assert isinstance(exc.__cause__, RuntimeError)
            finally:
                victim.export_shard_work = original


class TestAutoWorkerMode:
    def _pipeline(self, **kwargs):
        model = FleetModel(FleetConfig(initial_tables=100, seed=2))
        model.step_day()
        strategy = ShardedAutoCompStrategy(
            model, n_shards=2, k=5, workers="auto", max_workers=2, **kwargs
        )
        return model, strategy

    def test_warmup_probes_threads_then_processes(self):
        model, strategy = self._pipeline()
        with strategy:
            pipeline = strategy.pipeline
            assert pipeline._cycle_worker_mode() == "threads"
            pipeline.run_cycle(now=0.0)
            assert pipeline._mode_walls["threads"] is not None
            assert pipeline._cycle_worker_mode() == "processes"
            model.step_day()
            pipeline.run_cycle(now=DAY)
            assert pipeline._mode_walls["processes"] is not None

    def test_hysteresis_prevents_flapping(self):
        _, strategy = self._pipeline()
        with strategy:
            pipeline = strategy.pipeline
            pipeline._mode_walls.update({"threads": 1.0, "processes": 0.95})
            # 5% better does not clear the 20% hysteresis bar.
            assert pipeline._cycle_worker_mode() == "threads"
            pipeline._mode_walls["processes"] = 0.5
            assert pipeline._cycle_worker_mode() == "processes"
            # Once processes is the incumbent, a near-tie keeps it.
            pipeline._mode_walls["threads"] = 0.45
            assert pipeline._cycle_worker_mode() == "processes"
            pipeline._mode_walls["threads"] = 0.1
            assert pipeline._cycle_worker_mode() == "threads"

    def test_periodic_probe_refreshes_the_loser(self):
        """The non-incumbent mode's wall sample must be re-measured on a
        schedule — otherwise a cold-cache probe could latch the wrong mode
        forever."""
        _, strategy = self._pipeline()
        with strategy:
            pipeline = strategy.pipeline
            pipeline.auto_probe_interval = 3
            pipeline._mode_walls.update({"threads": 0.1, "processes": 5.0})
            modes = [pipeline._cycle_worker_mode() for _ in range(6)]
            assert modes == [
                "threads",
                "threads",
                "processes",  # probe cycle: refresh the loser's sample
                "threads",
                "threads",
                "processes",
            ]
            assert pipeline._auto_mode == "threads"  # incumbent unchanged

    def test_auto_reports_match_thread_reports(self):
        config = FleetConfig(initial_tables=140, seed=21)
        model_a, model_b = FleetModel(config), FleetModel(config)
        model_a.step_day()
        model_b.step_day()
        with ShardedAutoCompStrategy(
            model_a, n_shards=2, k=8, workers="threads"
        ) as threads, ShardedAutoCompStrategy(
            model_b, n_shards=2, k=8, workers="auto", max_workers=2
        ) as auto:
            for day in range(4):
                now = float(day) * DAY
                a = threads.pipeline.run_cycle(now=now)
                b = auto.pipeline.run_cycle(now=now)
                assert dataclasses.asdict(a.report) == dataclasses.asdict(b.report)
                model_a.step_day()
                model_b.step_day()
            # The adaptive choice is visible in telemetry.
            series = auto.pipeline.telemetry.series("autocomp.fleet.worker_mode")
            assert len(series) == 4

    def test_auto_degrades_to_threads_without_worker_observe(self):
        from repro.catalog import Catalog
        from repro.core import (
            AutoCompPipeline,
            Connector,
            LstConnector,
            LstExecutionBackend,
            SequentialScheduler,
            TopKSelector,
            WeightedSumPolicy,
            Objective,
        )
        from repro.engine import Cluster

        class LiveOnlyConnector(Connector):
            def list_candidates(self, strategy="table"):
                return []

            def collect_statistics(self, key):
                raise NotImplementedError

        lst = LstConnector(Catalog())
        pipeline = AutoCompPipeline(
            connector=LiveOnlyConnector(),
            backend=LstExecutionBackend(lst, Cluster("maint", executors=1)),
            traits=_registry(),
            policy=WeightedSumPolicy(
                [Objective("file_count_reduction", 1.0, maximize=True)]
            ),
            selector=TopKSelector(3),
            scheduler=SequentialScheduler(),
        )
        # auto does not hard-fail on unsupported connectors — it stays on
        # the thread pool (unlike workers="processes", which raises).
        with ShardedPipeline([pipeline, pipeline], workers="auto", max_workers=2) as sharded:
            assert sharded._cycle_worker_mode() == "threads"
            sharded.run_cycle(now=0.0)
