"""Tests for act-phase backends and schedulers."""

from __future__ import annotations

import pytest

from repro.core import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CompactionTask,
    ConcurrentScheduler,
    LstConnector,
    LstExecutionBackend,
    OffPeakScheduler,
    ParallelScheduler,
    PartitionSerialScheduler,
    SequentialScheduler,
)
from repro.engine import Cluster
from repro.errors import SchedulingError, ValidationError
from repro.simulation import Simulator
from repro.units import HOUR, MiB

from tests.conftest import fragment_table


@pytest.fixture
def world(catalog, simple_schema, monthly_spec):
    catalog.create_database("db")
    table_a = catalog.create_table("db.a", simple_schema, spec=monthly_spec)
    table_b = catalog.create_table("db.b", simple_schema, spec=monthly_spec)
    fragment_table(table_a, partitions=[(0,), (1,)], files_per_partition=6)
    fragment_table(table_b, partitions=[(0,)], files_per_partition=6)
    connector = LstConnector(catalog)
    backend = LstExecutionBackend(connector, Cluster("maint", executors=3))
    return catalog, connector, backend, table_a, table_b


def _table_task(db, name):
    return CompactionTask(
        candidate=Candidate(key=CandidateKey(db, name, CandidateScope.TABLE))
    )


def _partition_task(db, name, partition):
    return CompactionTask(
        candidate=Candidate(
            key=CandidateKey(db, name, CandidateScope.PARTITION, partition=partition)
        )
    )


class TestBackend:
    def test_prepare_table_scope(self, world):
        _, _, backend, table_a, _ = world
        job = backend.prepare(_table_task("db", "a"))
        assert job is not None
        duration = job.start()
        assert duration > 0
        result = job.finish()
        assert result.success
        assert result.actual_reduction == 10  # 12 files -> 2 (one per partition)

    def test_prepare_partition_scope(self, world):
        _, _, backend, table_a, _ = world
        job = backend.prepare(_partition_task("db", "a", (0,)))
        job.start()
        result = job.finish()
        assert result.success
        assert table_a.data_file_count == 7  # partition 0 merged to 1

    def test_prepare_empty_plan_returns_none(self, world):
        catalog, _, backend, *_ = world
        catalog.create_table("db.empty", catalog.load_table("db.a").schema)
        assert backend.prepare(_table_task("db", "empty")) is None


class TestSequentialSyncMode:
    def test_results_returned_in_order(self, world):
        _, _, backend, *_ = world
        tasks = [_table_task("db", "a"), _table_task("db", "b")]
        results = SequentialScheduler().schedule(tasks, backend)
        assert [str(r.candidate) for r in results] == ["db.a", "db.b"]
        assert all(r.success for r in results)

    def test_skipped_tasks_reported(self, world):
        catalog, _, backend, *_ = world
        catalog.create_table("db.empty", catalog.load_table("db.a").schema)
        results = SequentialScheduler().schedule([_table_task("db", "empty")], backend)
        assert len(results) == 1
        assert results[0].skipped

    def test_on_result_callback(self, world):
        _, _, backend, *_ = world
        seen = []
        SequentialScheduler().schedule(
            [_table_task("db", "a")], backend, on_result=seen.append
        )
        assert len(seen) == 1


class TestSimulatorMode:
    def test_sequential_chains_jobs(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        results = []
        out = SequentialScheduler().schedule(
            [_table_task("db", "a"), _table_task("db", "b")],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        assert out == []  # async mode
        simulator.run()
        assert len(results) == 2
        # Job 2 starts only after job 1 finishes.
        assert results[1].started_at >= results[0].finished_at
        assert all(r.success for r in results)

    def test_parallel_rewrites_conflict_on_iceberg(self, world):
        """Two concurrent table rewrites: the second hits the v1.2.0 quirk."""
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        results = []
        ParallelScheduler().schedule(
            [_table_task("db", "a"), _table_task("db", "b")],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        assert len(results) == 2
        # Different tables: both succeed (quirk is per-table).
        assert all(r.success for r in results)

    def test_parallel_partitions_same_table_conflict(self, world):
        """Distinct partitions of ONE table rewritten concurrently: the
        second commit aborts (cluster-side) — the paper's §4.4 finding."""
        catalog, _, backend, table_a, _ = world
        simulator = Simulator(catalog.clock)
        results = []
        ParallelScheduler().schedule(
            [_partition_task("db", "a", (0,)), _partition_task("db", "a", (1,))],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        outcomes = sorted((r.success for r in results))
        assert outcomes == [False, True]
        conflicted = next(r for r in results if not r.success)
        assert conflicted.conflict_reason is not None

    def test_partition_serial_avoids_conflicts(self, world):
        """The hybrid scheduler: same-table partitions run back-to-back."""
        catalog, _, backend, table_a, _ = world
        simulator = Simulator(catalog.clock)
        results = []
        PartitionSerialScheduler().schedule(
            [_partition_task("db", "a", (0,)), _partition_task("db", "a", (1,))],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        assert all(r.success for r in results)
        assert table_a.data_file_count == 2

    def test_partition_serial_parallel_across_tables(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        results = []
        PartitionSerialScheduler().schedule(
            [_partition_task("db", "a", (0,)), _table_task("db", "b")],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        # Both started at t=0 (no chaining across tables).
        assert all(r.started_at == 0.0 for r in results)


class TestOffPeakScheduler:
    def test_requires_simulator(self, world):
        _, _, backend, *_ = world
        scheduler = OffPeakScheduler(SequentialScheduler())
        with pytest.raises(SchedulingError):
            scheduler.schedule([_table_task("db", "a")], backend)

    def test_defers_to_window(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        scheduler = OffPeakScheduler(
            SequentialScheduler(), window_start_hour=2.0, window_end_hour=4.0
        )
        results = []
        scheduler.schedule(
            [_table_task("db", "a")], backend, simulator=simulator, on_result=results.append
        )
        simulator.run()
        assert len(results) == 1
        assert results[0].started_at >= 2 * HOUR

    def test_inside_window_runs_now(self, world):
        catalog, _, backend, *_ = world
        catalog.clock.advance_to(3 * HOUR)
        simulator = Simulator(catalog.clock)
        scheduler = OffPeakScheduler(
            SequentialScheduler(), window_start_hour=2.0, window_end_hour=4.0
        )
        results = []
        scheduler.schedule(
            [_table_task("db", "a")], backend, simulator=simulator, on_result=results.append
        )
        simulator.run()
        assert results[0].started_at == 3 * HOUR

    def test_wrapping_window(self):
        scheduler = OffPeakScheduler(
            SequentialScheduler(), window_start_hour=22.0, window_end_hour=2.0
        )
        assert scheduler.seconds_until_window(23 * HOUR) == 0.0
        assert scheduler.seconds_until_window(1 * HOUR) == 0.0
        assert scheduler.seconds_until_window(3 * HOUR) == 19 * HOUR


class TestTaskFromCandidate:
    def test_estimates_pulled_from_traits(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        candidate.traits["compute_cost_gbhr"] = 12.0
        candidate.traits["file_count_reduction"] = 80.0
        task = CompactionTask.from_candidate(candidate)
        assert task.estimated_gbhr == 12.0
        assert task.estimated_reduction == 80.0

    def test_defaults_when_traits_absent(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        task = CompactionTask.from_candidate(candidate)
        assert task.estimated_gbhr == 0.0


class TestConcurrentScheduler:
    """Scale-out act phase: independent chains in parallel, ordering kept."""

    def _partitioned_world(self, catalog, simple_schema, monthly_spec):
        table = catalog.create_table("db.wide", simple_schema, spec=monthly_spec)
        fragment_table(table, partitions=[(0,), (1,), (2,)], files_per_partition=6)
        connector = LstConnector(catalog)
        backend = LstExecutionBackend(connector, Cluster("maint", executors=6))
        return table, backend

    def test_sync_mode_without_workers_matches_sequential(self, world):
        _, _, backend, *_ = world
        tasks = [_table_task("db", "a"), _table_task("db", "b")]
        results = ConcurrentScheduler().schedule(tasks, backend)
        assert [str(r.candidate) for r in results] == ["db.a", "db.b"]
        assert all(r.success for r in results)

    def test_sync_mode_with_workers_keeps_chain_order(self, world):
        _, _, backend, *_ = world
        tasks = [_table_task("db", "a"), _table_task("db", "b")]
        seen = []
        results = ConcurrentScheduler(workers=2).schedule(
            tasks, backend, on_result=seen.append
        )
        # Results (and callbacks) are delivered in deterministic chain
        # order regardless of thread completion order.
        assert [str(r.candidate) for r in results] == ["db.a", "db.b"]
        assert [str(r.candidate) for r in seen] == ["db.a", "db.b"]

    def test_independent_chains_overlap_in_time(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        tasks = [_table_task("db", "a"), _table_task("db", "b")]
        results = []
        out = ConcurrentScheduler().schedule(
            tasks, backend, simulator=simulator, on_result=results.append
        )
        assert out == []
        simulator.run()
        assert len(results) == 2 and all(r.success for r in results)
        # Both chains started at t=0: independent tables run concurrently.
        assert {r.started_at for r in results} == {0.0}

    def test_same_partition_tasks_stay_ordered(
        self, catalog, simple_schema, monthly_spec
    ):
        catalog.create_database("db")
        table, backend = self._partitioned_world(catalog, simple_schema, monthly_spec)
        simulator = Simulator(catalog.clock)
        tasks = [
            _partition_task("db", "wide", (0,)),
            _partition_task("db", "wide", (0,)),
            _partition_task("db", "wide", (1,)),
        ]
        results = []
        ConcurrentScheduler().schedule(
            tasks, backend, simulator=simulator, on_result=results.append
        )
        simulator.run()
        same_partition = [r for r in results if r.candidate.partition == (0,)]
        assert same_partition[1].started_at >= same_partition[0].finished_at

    def test_max_parallelism_caps_concurrent_chains(
        self, catalog, simple_schema, monthly_spec
    ):
        catalog.create_database("db")
        _, backend = self._partitioned_world(catalog, simple_schema, monthly_spec)
        simulator = Simulator(catalog.clock)
        tasks = [_partition_task("db", "wide", (p,)) for p in (0, 1, 2)]
        results = []
        ConcurrentScheduler(max_parallelism=1).schedule(
            tasks, backend, simulator=simulator, on_result=results.append
        )
        simulator.run()
        assert len(results) == 3
        # With one slot the chains run back-to-back, like SequentialScheduler.
        ordered = sorted(results, key=lambda r: r.started_at)
        assert ordered[1].started_at >= ordered[0].finished_at
        assert ordered[2].started_at >= ordered[1].finished_at

    def test_table_serial_chains_by_table(self):
        scheduler = ConcurrentScheduler(table_serial=True)
        tasks = [
            _partition_task("db", "t", (0,)),
            _partition_task("db", "t", (1,)),
            _table_task("db", "u"),
        ]
        chains = scheduler._chains(tasks)
        assert [len(chain) for chain in chains] == [2, 1]

    def test_partition_chaining_by_default(self):
        scheduler = ConcurrentScheduler()
        tasks = [
            _partition_task("db", "t", (0,)),
            _partition_task("db", "t", (1,)),
            _partition_task("db", "t", (0,)),
        ]
        chains = scheduler._chains(tasks)
        assert [len(chain) for chain in chains] == [2, 1]

    def test_validation(self):
        with pytest.raises(ValidationError):
            ConcurrentScheduler(max_parallelism=0)
        with pytest.raises(ValidationError):
            ConcurrentScheduler(workers=0)


    def test_table_scope_task_serialises_with_partition_tasks(self):
        """A table-scope task touches every partition: it must never share
        a concurrency window with partition tasks of the same table."""
        scheduler = ConcurrentScheduler()
        tasks = [
            _partition_task("db", "t", (0,)),
            _table_task("db", "t"),
            _partition_task("db", "t", (1,)),
            _partition_task("db", "u", (0,)),
        ]
        chains = scheduler._chains(tasks)
        assert [len(chain) for chain in chains] == [3, 1]  # db.t collapsed


    def test_thousands_of_skipped_chains_do_not_overflow_the_stack(
        self, catalog
    ):
        """All-skipped chains complete synchronously; the capped launcher
        must iterate, not recurse, through them."""
        from repro.core.scheduling import ExecutionBackend

        class EmptyPlans(ExecutionBackend):
            def prepare(self, task):
                return None

        simulator = Simulator(catalog.clock)
        tasks = [_table_task("db", f"t{i}") for i in range(3000)]
        results = []
        ConcurrentScheduler(max_parallelism=1).schedule(
            tasks, EmptyPlans(), simulator=simulator, on_result=results.append
        )
        simulator.run()
        assert len(results) == 3000
        assert all(r.skipped for r in results)
