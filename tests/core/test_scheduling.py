"""Tests for act-phase backends and schedulers."""

from __future__ import annotations

import pytest

from repro.core import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CompactionTask,
    LstConnector,
    LstExecutionBackend,
    OffPeakScheduler,
    ParallelScheduler,
    PartitionSerialScheduler,
    SequentialScheduler,
)
from repro.engine import Cluster
from repro.errors import SchedulingError
from repro.simulation import Simulator
from repro.units import HOUR, MiB

from tests.conftest import fragment_table


@pytest.fixture
def world(catalog, simple_schema, monthly_spec):
    catalog.create_database("db")
    table_a = catalog.create_table("db.a", simple_schema, spec=monthly_spec)
    table_b = catalog.create_table("db.b", simple_schema, spec=monthly_spec)
    fragment_table(table_a, partitions=[(0,), (1,)], files_per_partition=6)
    fragment_table(table_b, partitions=[(0,)], files_per_partition=6)
    connector = LstConnector(catalog)
    backend = LstExecutionBackend(connector, Cluster("maint", executors=3))
    return catalog, connector, backend, table_a, table_b


def _table_task(db, name):
    return CompactionTask(
        candidate=Candidate(key=CandidateKey(db, name, CandidateScope.TABLE))
    )


def _partition_task(db, name, partition):
    return CompactionTask(
        candidate=Candidate(
            key=CandidateKey(db, name, CandidateScope.PARTITION, partition=partition)
        )
    )


class TestBackend:
    def test_prepare_table_scope(self, world):
        _, _, backend, table_a, _ = world
        job = backend.prepare(_table_task("db", "a"))
        assert job is not None
        duration = job.start()
        assert duration > 0
        result = job.finish()
        assert result.success
        assert result.actual_reduction == 10  # 12 files -> 2 (one per partition)

    def test_prepare_partition_scope(self, world):
        _, _, backend, table_a, _ = world
        job = backend.prepare(_partition_task("db", "a", (0,)))
        job.start()
        result = job.finish()
        assert result.success
        assert table_a.data_file_count == 7  # partition 0 merged to 1

    def test_prepare_empty_plan_returns_none(self, world):
        catalog, _, backend, *_ = world
        catalog.create_table("db.empty", catalog.load_table("db.a").schema)
        assert backend.prepare(_table_task("db", "empty")) is None


class TestSequentialSyncMode:
    def test_results_returned_in_order(self, world):
        _, _, backend, *_ = world
        tasks = [_table_task("db", "a"), _table_task("db", "b")]
        results = SequentialScheduler().schedule(tasks, backend)
        assert [str(r.candidate) for r in results] == ["db.a", "db.b"]
        assert all(r.success for r in results)

    def test_skipped_tasks_reported(self, world):
        catalog, _, backend, *_ = world
        catalog.create_table("db.empty", catalog.load_table("db.a").schema)
        results = SequentialScheduler().schedule([_table_task("db", "empty")], backend)
        assert len(results) == 1
        assert results[0].skipped

    def test_on_result_callback(self, world):
        _, _, backend, *_ = world
        seen = []
        SequentialScheduler().schedule(
            [_table_task("db", "a")], backend, on_result=seen.append
        )
        assert len(seen) == 1


class TestSimulatorMode:
    def test_sequential_chains_jobs(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        results = []
        out = SequentialScheduler().schedule(
            [_table_task("db", "a"), _table_task("db", "b")],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        assert out == []  # async mode
        simulator.run()
        assert len(results) == 2
        # Job 2 starts only after job 1 finishes.
        assert results[1].started_at >= results[0].finished_at
        assert all(r.success for r in results)

    def test_parallel_rewrites_conflict_on_iceberg(self, world):
        """Two concurrent table rewrites: the second hits the v1.2.0 quirk."""
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        results = []
        ParallelScheduler().schedule(
            [_table_task("db", "a"), _table_task("db", "b")],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        assert len(results) == 2
        # Different tables: both succeed (quirk is per-table).
        assert all(r.success for r in results)

    def test_parallel_partitions_same_table_conflict(self, world):
        """Distinct partitions of ONE table rewritten concurrently: the
        second commit aborts (cluster-side) — the paper's §4.4 finding."""
        catalog, _, backend, table_a, _ = world
        simulator = Simulator(catalog.clock)
        results = []
        ParallelScheduler().schedule(
            [_partition_task("db", "a", (0,)), _partition_task("db", "a", (1,))],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        outcomes = sorted((r.success for r in results))
        assert outcomes == [False, True]
        conflicted = next(r for r in results if not r.success)
        assert conflicted.conflict_reason is not None

    def test_partition_serial_avoids_conflicts(self, world):
        """The hybrid scheduler: same-table partitions run back-to-back."""
        catalog, _, backend, table_a, _ = world
        simulator = Simulator(catalog.clock)
        results = []
        PartitionSerialScheduler().schedule(
            [_partition_task("db", "a", (0,)), _partition_task("db", "a", (1,))],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        assert all(r.success for r in results)
        assert table_a.data_file_count == 2

    def test_partition_serial_parallel_across_tables(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        results = []
        PartitionSerialScheduler().schedule(
            [_partition_task("db", "a", (0,)), _table_task("db", "b")],
            backend,
            simulator=simulator,
            on_result=results.append,
        )
        simulator.run()
        # Both started at t=0 (no chaining across tables).
        assert all(r.started_at == 0.0 for r in results)


class TestOffPeakScheduler:
    def test_requires_simulator(self, world):
        _, _, backend, *_ = world
        scheduler = OffPeakScheduler(SequentialScheduler())
        with pytest.raises(SchedulingError):
            scheduler.schedule([_table_task("db", "a")], backend)

    def test_defers_to_window(self, world):
        catalog, _, backend, *_ = world
        simulator = Simulator(catalog.clock)
        scheduler = OffPeakScheduler(
            SequentialScheduler(), window_start_hour=2.0, window_end_hour=4.0
        )
        results = []
        scheduler.schedule(
            [_table_task("db", "a")], backend, simulator=simulator, on_result=results.append
        )
        simulator.run()
        assert len(results) == 1
        assert results[0].started_at >= 2 * HOUR

    def test_inside_window_runs_now(self, world):
        catalog, _, backend, *_ = world
        catalog.clock.advance_to(3 * HOUR)
        simulator = Simulator(catalog.clock)
        scheduler = OffPeakScheduler(
            SequentialScheduler(), window_start_hour=2.0, window_end_hour=4.0
        )
        results = []
        scheduler.schedule(
            [_table_task("db", "a")], backend, simulator=simulator, on_result=results.append
        )
        simulator.run()
        assert results[0].started_at == 3 * HOUR

    def test_wrapping_window(self):
        scheduler = OffPeakScheduler(
            SequentialScheduler(), window_start_hour=22.0, window_end_hour=2.0
        )
        assert scheduler.seconds_until_window(23 * HOUR) == 0.0
        assert scheduler.seconds_until_window(1 * HOUR) == 0.0
        assert scheduler.seconds_until_window(3 * HOUR) == 19 * HOUR


class TestTaskFromCandidate:
    def test_estimates_pulled_from_traits(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        candidate.traits["compute_cost_gbhr"] = 12.0
        candidate.traits["file_count_reduction"] = 80.0
        task = CompactionTask.from_candidate(candidate)
        assert task.estimated_gbhr == 12.0
        assert task.estimated_reduction == 80.0

    def test_defaults_when_traits_absent(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        task = CompactionTask.from_candidate(candidate)
        assert task.estimated_gbhr == 0.0
