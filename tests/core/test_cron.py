"""Tests for the crontab calendar cadence (repro.core.cron)."""

from __future__ import annotations

import time

import pytest

from repro.core import CronSchedule, as_schedule
from repro.errors import ValidationError


def at(year, month, day, hour=0, minute=0, second=0) -> float:
    """Epoch seconds for a local calendar time."""
    return time.mktime((year, month, day, hour, minute, second, 0, 0, -1))


class TestParsing:
    def test_star_fields_cover_full_ranges(self):
        s = CronSchedule.parse("* * * * *")
        assert s.minutes == frozenset(range(60))
        assert s.hours == frozenset(range(24))
        assert s.days == frozenset(range(1, 32))
        assert s.months == frozenset(range(1, 13))
        assert s.weekdays == frozenset(range(7))
        assert s.dom_star and s.dow_star

    def test_lists_ranges_and_steps_combine(self):
        s = CronSchedule.parse("0,30 2-4 */10 1,6-8 1-5")
        assert s.minutes == frozenset({0, 30})
        assert s.hours == frozenset({2, 3, 4})
        assert s.days == frozenset({1, 11, 21, 31})
        assert s.months == frozenset({1, 6, 7, 8})
        assert s.weekdays == frozenset({1, 2, 3, 4, 5})
        assert not s.dom_star and not s.dow_star

    def test_ranged_step(self):
        s = CronSchedule.parse("10-30/10 * * * *")
        assert s.minutes == frozenset({10, 20, 30})

    def test_sunday_is_both_0_and_7(self):
        assert CronSchedule.parse("0 0 * * 7").weekdays == frozenset({0})
        assert CronSchedule.parse("0 0 * * 0").weekdays == frozenset({0})

    def test_str_round_trips_spec(self):
        assert str(CronSchedule.parse("*/5 * * * *")) == "*/5 * * * *"

    def test_schedule_is_hashable(self):
        assert len({CronSchedule.parse("0 3 * * *"), CronSchedule.parse("0 3 * * *")}) == 1

    @pytest.mark.parametrize(
        "spec",
        [
            "* * * *",  # 4 fields
            "* * * * * *",  # 6 fields
            "60 * * * *",  # minute out of range
            "* 24 * * *",  # hour out of range
            "* * 0 * *",  # dom below range
            "* * * 13 *",  # month out of range
            "* * * * 8",  # dow out of range
            "5-1 * * * *",  # inverted range
            "*/0 * * * *",  # zero step
            "*/x * * * *",  # non-integer step
            "a * * * *",  # non-integer value
            "1,,2 * * * *",  # empty list item
            "0 0 31 2 *",  # unsatisfiable: Feb 31
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ValidationError):
            CronSchedule.parse(spec)


class TestMatching:
    def test_minute_granularity(self):
        s = CronSchedule.parse("30 3 * * *")
        assert s.matches(at(2026, 8, 10, 3, 30))
        assert s.matches(at(2026, 8, 10, 3, 30, second=59))
        assert not s.matches(at(2026, 8, 10, 3, 31))
        assert not s.matches(at(2026, 8, 10, 4, 30))

    def test_weekday_restriction(self):
        weekdays_only = CronSchedule.parse("0 9 * * 1-5")
        monday = at(2026, 8, 10, 9, 0)  # 2026-08-10 is a Monday
        sunday = at(2026, 8, 9, 9, 0)
        assert weekdays_only.matches(monday)
        assert not weekdays_only.matches(sunday)

    def test_dom_dow_or_rule(self):
        # Both restricted: fire on the 15th OR on Mondays (Vixie cron).
        s = CronSchedule.parse("0 0 15 * 1")
        assert s.matches(at(2026, 8, 15))  # a Saturday, but dom matches
        assert s.matches(at(2026, 8, 10))  # a Monday, but not the 15th
        assert not s.matches(at(2026, 8, 11))  # Tuesday the 11th: neither

    def test_only_restricted_day_field_decides(self):
        dom_only = CronSchedule.parse("0 0 15 * *")
        assert dom_only.matches(at(2026, 8, 15))
        assert not dom_only.matches(at(2026, 8, 10))
        dow_only = CronSchedule.parse("0 0 * * 1")
        assert dow_only.matches(at(2026, 8, 10))
        assert not dow_only.matches(at(2026, 8, 15))


class TestNextAfter:
    def test_strictly_after_and_minute_aligned(self):
        s = CronSchedule.parse("*/15 * * * *")
        t = s.next_after(at(2026, 8, 10, 3, 0))
        assert t == at(2026, 8, 10, 3, 15)
        # A timestamp exactly on a boundary advances to the next one.
        assert s.next_after(t) == at(2026, 8, 10, 3, 30)
        # Mid-minute timestamps round up to the next whole minute first.
        assert s.next_after(at(2026, 8, 10, 3, 14, second=30)) == at(2026, 8, 10, 3, 15)

    def test_rolls_over_hour_day_month(self):
        nightly = CronSchedule.parse("30 3 * * *")
        assert nightly.next_after(at(2026, 8, 10, 4, 0)) == at(2026, 8, 11, 3, 30)
        monthly = CronSchedule.parse("0 0 1 * *")
        assert monthly.next_after(at(2026, 8, 10)) == at(2026, 9, 1)
        assert monthly.next_after(at(2026, 12, 31, 23, 59)) == at(2027, 1, 1)

    def test_skips_to_matching_weekday(self):
        weekdays = CronSchedule.parse("0 9 * * 1-5")
        friday_ten = at(2026, 8, 14, 10, 0)  # past Friday's firing
        assert weekdays.next_after(friday_ten) == at(2026, 8, 17, 9, 0)  # Monday

    def test_far_future_match_resolves(self):
        leap = CronSchedule.parse("0 0 29 2 *")
        t = leap.next_after(at(2026, 8, 10))
        assert time.localtime(t)[:5] == (2028, 2, 29, 0, 0)

    def test_every_result_matches_the_schedule(self):
        s = CronSchedule.parse("*/20 1,13 * * *")
        t = at(2026, 8, 10)
        for _ in range(12):
            t = s.next_after(t)
            assert s.matches(t)


class TestAsSchedule:
    def test_none_passes_through(self):
        assert as_schedule(None) is None

    def test_string_parses(self):
        s = as_schedule("0 3 * * *")
        assert isinstance(s, CronSchedule)

    def test_duck_typed_object_accepted_as_is(self):
        class Fake:
            def next_after(self, ts):
                return ts + 1.0

        fake = Fake()
        assert as_schedule(fake) is fake

    def test_anything_else_raises(self):
        with pytest.raises(ValidationError):
            as_schedule(3600)
