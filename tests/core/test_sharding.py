"""Tests for the scale-out control plane (sharded parallel OODA cycles)."""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AllSelector,
    BudgetSelector,
    CandidateKey,
    CandidateScope,
    Selector,
    ShardedPipeline,
    TopKSelector,
    shard_for_key,
    split_selector,
)
from repro.errors import ValidationError
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetModel,
    ShardedAutoCompStrategy,
)
from repro.simulation import Telemetry
from repro.units import DAY

# --- consistent hashing -----------------------------------------------------------

_keys = st.builds(
    CandidateKey,
    database=st.text(min_size=1, max_size=12),
    table=st.text(min_size=1, max_size=12),
    scope=st.just(CandidateScope.TABLE),
)
_partition_keys = st.builds(
    CandidateKey,
    database=st.text(min_size=1, max_size=8),
    table=st.text(min_size=1, max_size=8),
    scope=st.just(CandidateScope.PARTITION),
    partition=st.tuples(st.integers(min_value=0, max_value=400)),
)


class TestShardForKey:
    @given(key=st.one_of(_keys, _partition_keys), n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=200)
    def test_every_key_lands_on_exactly_one_valid_shard(self, key, n):
        shard = shard_for_key(key, n)
        assert 0 <= shard < n
        # Stable: same key, same shard — and equal keys agree regardless of
        # object identity (content hashing, not id hashing).
        clone = CandidateKey(
            database=key.database,
            table=key.table,
            scope=key.scope,
            partition=key.partition,
            snapshot_id=key.snapshot_id,
        )
        assert shard_for_key(key, n) == shard
        assert shard_for_key(clone, n) == shard
        # Exactly one shard owns the key.
        assert sum(1 for s in range(n) if shard_for_key(key, n) == s) == 1

    def test_known_assignment_is_process_independent(self):
        # Pinned value: BLAKE2b content hashing must not vary across runs
        # or processes (unlike builtin str hashing).
        key = CandidateKey("db", "events", CandidateScope.TABLE)
        assert shard_for_key(key, 4) == shard_for_key(key, 4)
        assert [shard_for_key(key, n) for n in (1, 2, 3)] == [
            0,
            shard_for_key(key, 2),
            shard_for_key(key, 3),
        ]

    def test_distribution_is_not_degenerate(self):
        keys = [
            CandidateKey("db", f"table{i:06d}", CandidateScope.TABLE) for i in range(2000)
        ]
        counts = [0, 0, 0, 0]
        for key in keys:
            counts[shard_for_key(key, 4)] += 1
        assert sum(counts) == 2000
        # Each shard holds a reasonable share of a 2000-key fleet.
        assert all(300 < c < 700 for c in counts)

    def test_rejects_nonpositive_shard_count(self):
        key = CandidateKey("db", "t", CandidateScope.TABLE)
        with pytest.raises(ValidationError):
            shard_for_key(key, 0)


class TestSplitSelector:
    @given(k=st.integers(min_value=0, max_value=100), n=st.integers(min_value=1, max_value=9))
    @settings(max_examples=100)
    def test_topk_split_conserves_k(self, k, n):
        parts = split_selector(TopKSelector(k), n)
        assert len(parts) == n
        assert sum(p.k for p in parts) == max(k, 0)
        assert max(p.k for p in parts) - min(p.k for p in parts) <= 1

    def test_budget_split_conserves_budget_and_settings(self):
        selector = BudgetSelector(
            120.0, cost_trait="x", max_candidates=10, skip_unaffordable=False
        )
        parts = split_selector(selector, 4)
        assert sum(p.budget for p in parts) == pytest.approx(120.0)
        assert sum(p.max_candidates for p in parts) == 10
        assert all(p.cost_trait == "x" and not p.skip_unaffordable for p in parts)

    def test_all_selector_splits_to_all_selectors(self):
        assert all(isinstance(p, AllSelector) for p in split_selector(AllSelector(), 3))

    def test_unknown_selector_type_raises(self):
        class Weird(Selector):
            def select(self, ranked):
                return ranked

        with pytest.raises(ValidationError):
            split_selector(Weird(), 2)


# --- sharded / unsharded equivalence ----------------------------------------------


def _report_fields(report):
    # asdict recurses into the frozen keys/results, so equality here is a
    # field-for-field (bit-exact for floats) comparison.
    return dataclasses.asdict(report)


@pytest.mark.parametrize("n_shards", [1, 2, 4, 8])
def test_global_selection_equals_unsharded(n_shards):
    """The merged N-shard report must equal the unsharded report exactly."""
    config = FleetConfig(initial_tables=350, seed=91)
    model_a, model_b = FleetModel(config), FleetModel(config)
    model_a.step_day()
    model_b.step_day()
    unsharded = AutoCompStrategy(model_a, k=25)
    sharded = ShardedAutoCompStrategy(model_b, n_shards=n_shards, k=25)
    for day in range(3):
        now = float(day) * DAY
        single = unsharded.pipeline.run_cycle(now=now)
        merged = sharded.pipeline.run_cycle(now=now).report
        assert _report_fields(single) == _report_fields(merged)
        model_a.step_day()
        model_b.step_day()


def test_generation_merge_order_also_matches():
    config = FleetConfig(initial_tables=200, seed=17)
    model_a, model_b = FleetModel(config), FleetModel(config)
    model_a.step_day()
    model_b.step_day()
    unsharded = AutoCompStrategy(model_a, k=15)
    sharded = ShardedAutoCompStrategy(model_b, n_shards=3, k=15)
    sharded.pipeline.merge_order = "generation"
    single = unsharded.pipeline.run_cycle(now=0.0)
    merged = sharded.pipeline.run_cycle(now=0.0).report
    assert single.selected == merged.selected
    assert single.total_files_reduced == merged.total_files_reduced


def test_sharded_runs_are_deterministic():
    def selections():
        model = FleetModel(FleetConfig(initial_tables=250, seed=5))
        model.step_day()
        strategy = ShardedAutoCompStrategy(model, n_shards=4, k=20)
        out = []
        for day in range(3):
            out.append(tuple(strategy.pipeline.run_cycle(now=float(day) * DAY).selected))
            model.step_day()
        return out

    assert selections() == selections()


def test_shard_reports_partition_the_selection():
    model = FleetModel(FleetConfig(initial_tables=300, seed=8))
    model.step_day()
    strategy = ShardedAutoCompStrategy(model, n_shards=4, k=20)
    sharded = strategy.pipeline.run_cycle(now=0.0)
    per_shard = [key for report in sharded.shard_reports for key in report.selected]
    assert sorted(map(str, per_shard)) == sorted(map(str, sharded.report.selected))
    assert sum(r.candidates_generated for r in sharded.shard_reports) == (
        sharded.report.candidates_generated
    )


def test_local_selection_splits_the_budget():
    model = FleetModel(FleetConfig(initial_tables=300, seed=8))
    model.step_day()
    strategy = ShardedAutoCompStrategy(model, n_shards=4, k=20, selection="local")
    sharded = strategy.pipeline.run_cycle(now=0.0)
    assert len(sharded.report.selected) == 20
    assert all(len(r.selected) == 5 for r in sharded.shard_reports)
    assert len(sharded.report.results) == 20


def test_per_shard_telemetry_is_scoped():
    telemetry = Telemetry()
    model = FleetModel(FleetConfig(initial_tables=150, seed=3))
    model.step_day()
    strategy = ShardedAutoCompStrategy(model, n_shards=2, k=5, telemetry=telemetry)
    strategy.pipeline.run_cycle(now=0.0)
    assert telemetry.counter("autocomp.fleet.cycles") == 1
    assert len(telemetry.series("autocomp.fleet.cycle_wall_s")) == 1
    for shard in range(2):
        series = telemetry.series(f"autocomp.shard{shard:02d}.candidates")
        assert len(series) == 1
    total = sum(
        telemetry.series(f"autocomp.shard{s:02d}.candidates").last() for s in range(2)
    )
    assert total == telemetry.series("autocomp.fleet.candidates").last()


class TestShardedPipelineValidation:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ValidationError):
            ShardedPipeline([])

    def test_rejects_unknown_selection_mode(self):
        model = FleetModel(FleetConfig(initial_tables=50, seed=1))
        strategy = ShardedAutoCompStrategy(model, n_shards=1, k=3)
        with pytest.raises(ValidationError):
            ShardedPipeline(strategy.pipeline.shards, selection="quantum")

    def test_rejects_unknown_merge_order(self):
        model = FleetModel(FleetConfig(initial_tables=50, seed=1))
        strategy = ShardedAutoCompStrategy(model, n_shards=1, k=3)
        with pytest.raises(ValidationError):
            ShardedPipeline(strategy.pipeline.shards, merge_order="random")


def test_long_run_cached_equivalence_includes_quota_drift():
    """Quota drifts daily while many tables stay clean; re-stamping on hits
    keeps the cached sharded run exactly equal to the cold unsharded one."""
    config = FleetConfig(initial_tables=300, seed=23)
    model_a, model_b = FleetModel(config), FleetModel(config)
    model_a.step_day()
    model_b.step_day()
    unsharded = AutoCompStrategy(model_a, k=20)
    sharded = ShardedAutoCompStrategy(model_b, n_shards=4, k=20)
    for day in range(10):
        now = float(day) * DAY
        single = unsharded.pipeline.run_cycle(now=now)
        merged = sharded.pipeline.run_cycle(now=now).report
        assert _report_fields(single) == _report_fields(merged), f"diverged on day {day}"
        model_a.step_day()
        model_b.step_day()


def test_fleet_sharded_listing_matches_hash_filtered_listing():
    """FleetConnector's vectorised digest slice must agree exactly with the
    generic consistent-hash filter for every shard."""
    from repro.fleet import FleetConnector

    model = FleetModel(FleetConfig(initial_tables=400, seed=13))
    model.step_day()
    connector = FleetConnector(model, min_small_files=2)
    full = connector.list_candidates("table")
    for n in (1, 2, 4, 8):
        slices = [connector.list_candidates_sharded("table", n, s) for s in range(n)]
        expected = [[k for k in full if shard_for_key(k, n) == s] for s in range(n)]
        assert slices == expected
        assert sum(len(s) for s in slices) == len(full)


def test_shard_memo_is_bounded_for_fresh_key_objects():
    """Connectors that rebuild key objects each cycle must not grow the
    assignment memo (which pins keys) without bound."""
    model = FleetModel(FleetConfig(initial_tables=50, seed=1))
    strategy = ShardedAutoCompStrategy(model, n_shards=2, k=3)
    pipeline = strategy.pipeline
    pipeline._shard_memo_limit = 16
    for i in range(200):
        key = CandidateKey("db", f"fresh{i}", CandidateScope.TABLE)
        assert pipeline._shard_for(key) == shard_for_key(key, 2)
    assert len(pipeline._shard_of) <= 17
