"""Tests for per-database admission quotas and deficit round-robin."""

from __future__ import annotations

import pytest

from repro.core.candidates import Candidate, CandidateKey, CandidateScope, CandidateStatistics
from repro.core.fairness import AdmissionController
from repro.errors import ValidationError
from repro.simulation import Telemetry
from repro.units import MiB


def candidate(db: str, table: str) -> Candidate:
    key = CandidateKey(db, table, CandidateScope.TABLE)
    stats = CandidateStatistics.build_unchecked(
        file_count=10,
        total_bytes=80 * MiB,
        small_file_count=10,
        small_file_bytes=80 * MiB,
        target_file_size=128 * MiB,
        partition_count=1,
        created_at=0.0,
        last_modified_at=0.0,
        quota_utilization=0.0,
    )
    return Candidate(key=key, statistics=stats)


class TestPerDatabaseCap:
    def test_hot_tenant_is_capped(self):
        controller = AdmissionController(max_per_database=2)
        ranked = [candidate("hot", f"t{i}") for i in range(5)] + [candidate("cold", "t0")]
        controller.begin_cycle()
        admitted = controller.admit(ranked)
        assert [str(c.key) for c in admitted] == ["hot.t0", "hot.t1", "cold.t0"]
        assert controller.deferred_total == 3

    def test_cap_spans_gate_calls_within_a_cycle(self):
        # A sharded pipeline calls the gate once per shard; the per-db cap
        # must hold across all of them.
        controller = AdmissionController(max_per_database=2)
        controller.begin_cycle()
        first = controller.admit([candidate("db", "t0"), candidate("db", "t1")])
        second = controller.admit([candidate("db", "t2"), candidate("db", "t3")])
        assert len(first) == 2 and second == []

    def test_begin_cycle_resets(self):
        controller = AdmissionController(max_per_database=1)
        controller.begin_cycle()
        assert len(controller.admit([candidate("db", "t0"), candidate("db", "t1")])) == 1
        controller.begin_cycle()
        assert len(controller.admit([candidate("db", "t2")])) == 1

    def test_unlimited_passes_everything(self):
        controller = AdmissionController()
        ranked = [candidate("db", f"t{i}") for i in range(4)]
        controller.begin_cycle()
        assert controller.admit(ranked) == ranked


class TestGlobalCapAndDeficit:
    def test_rank_order_preserved(self):
        controller = AdmissionController(max_total=2)
        ranked = [candidate("a", "t0"), candidate("b", "t0"), candidate("c", "t0")]
        controller.begin_cycle()
        admitted = controller.admit(ranked)
        assert [str(c.key) for c in admitted] == ["a.t0", "b.t0"]

    def test_starved_database_moves_up_next_cycle(self):
        controller = AdmissionController(max_total=2)
        # Cycle 1: hot's two top-ranked candidates squeeze cold out.
        controller.begin_cycle()
        admitted = controller.admit(
            [candidate("hot", "t0"), candidate("hot", "t1"), candidate("cold", "t0")]
        )
        assert [c.key.database for c in admitted] == ["hot", "hot"]
        assert controller.deficits() == {"cold": 1}
        # Cycle 2, same ranking: cold's deficit pulls it ahead of hot's #2.
        controller.begin_cycle()
        admitted = controller.admit(
            [candidate("hot", "t0"), candidate("hot", "t1"), candidate("cold", "t0")]
        )
        assert sorted(c.key.database for c in admitted) == ["cold", "hot"]
        assert controller.deficits() == {"hot": 1}

    def test_deficit_drains_on_admission(self):
        controller = AdmissionController(max_total=1)
        controller.begin_cycle()
        controller.admit([candidate("a", "t0"), candidate("b", "t0")])
        assert controller.deficits() == {"b": 1}
        controller.begin_cycle()
        controller.admit([candidate("b", "t0")])
        assert controller.deficits() == {}

    def test_empty_input_is_noop(self):
        controller = AdmissionController(max_total=1)
        controller.begin_cycle()
        assert controller.admit([]) == []


class TestTelemetryAndValidation:
    def test_counters(self):
        telemetry = Telemetry()
        controller = AdmissionController(max_per_database=1, telemetry=telemetry)
        controller.begin_cycle()
        controller.admit([candidate("db", "t0"), candidate("db", "t1")])
        assert telemetry.counter("autocomp.admission.admitted") == 1
        assert telemetry.counter("autocomp.admission.deferred") == 1

    def test_validation(self):
        with pytest.raises(ValidationError):
            AdmissionController(max_per_database=0)
        with pytest.raises(ValidationError):
            AdmissionController(max_total=0)

    def test_callable_as_act_gate(self):
        controller = AdmissionController(max_per_database=1)
        controller.begin_cycle()
        assert len(controller([candidate("db", "t0"), candidate("db", "t1")])) == 1
