"""Tests for periodic and optimize-after-write triggers (FR3, §5)."""

from __future__ import annotations

import pytest

from repro.core import (
    LstConnector,
    LstExecutionBackend,
    OptimizeAfterWriteHook,
    PeriodicTrigger,
)
from repro.core.traits import FileCountReductionTrait, FileEntropyTrait
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.simulation import Simulator
from repro.units import HOUR, MiB

from tests.conftest import fragment_table
from tests.core.test_pipeline import _make_pipeline


@pytest.fixture
def hook_world(catalog, simple_schema, monthly_spec):
    catalog.create_database("db")
    table = catalog.create_table("db.t", simple_schema, spec=monthly_spec)
    connector = LstConnector(catalog)
    backend = LstExecutionBackend(connector, Cluster("maint", executors=2))
    return catalog, table, connector, backend


class TestPeriodicTrigger:
    def test_cycles_fire_on_schedule(self, catalog, simple_schema, monthly_spec):
        catalog.create_database("db")
        table = catalog.create_table("db.t", simple_schema, spec=monthly_spec)
        fragment_table(table, partitions=[(0,)], files_per_partition=8)
        pipeline = _make_pipeline(catalog)
        simulator = Simulator(catalog.clock)
        trigger = PeriodicTrigger(pipeline, HOUR, until=5 * HOUR).attach(simulator)
        simulator.run_until(6 * HOUR)
        assert len(trigger.reports) == 4  # hours 1..4 (until excludes 5h)
        assert trigger.reports[0].successes == 1

    def test_invalid_interval(self, catalog):
        pipeline = _make_pipeline(catalog)
        with pytest.raises(ValidationError):
            PeriodicTrigger(pipeline, 0.0)


class TestOptimizeAfterWriteHook:
    def test_below_threshold_does_nothing(self, hook_world):
        catalog, table, connector, backend = hook_world
        fragment_table(table, partitions=[(0,)], files_per_partition=3)
        hook = OptimizeAfterWriteHook(
            connector, FileCountReductionTrait(), threshold=10, backend=backend
        )
        decision = hook.on_write(table)
        assert not decision.triggered
        assert decision.trait_value == 3.0
        assert table.data_file_count == 3

    def test_trigger_compacts_immediately(self, hook_world):
        catalog, table, connector, backend = hook_world
        fragment_table(table, partitions=[(0,)], files_per_partition=12)
        hook = OptimizeAfterWriteHook(
            connector, FileCountReductionTrait(), threshold=10, backend=backend
        )
        decision = hook.on_write(table)
        assert decision.triggered
        assert decision.result is not None
        assert decision.result.success
        assert table.data_file_count == 1
        assert hook.trigger_count == 1

    def test_entropy_trait_trigger(self, hook_world):
        catalog, table, connector, backend = hook_world
        fragment_table(table, partitions=[(0,)], files_per_partition=20, file_size=MiB)
        hook = OptimizeAfterWriteHook(
            connector, FileEntropyTrait(), threshold=10.0, backend=backend
        )
        assert hook.on_write(table).triggered

    def test_cooldown_suppresses_repeat_triggers(self, hook_world):
        catalog, table, connector, backend = hook_world
        fragment_table(table, partitions=[(0,)], files_per_partition=12)
        hook = OptimizeAfterWriteHook(
            connector,
            FileCountReductionTrait(),
            threshold=2,
            backend=backend,
            cooldown_s=HOUR,
        )
        assert hook.on_write(table).triggered
        fragment_table(table, partitions=[(0,)], files_per_partition=12)
        assert not hook.on_write(table).triggered  # inside cooldown
        catalog.clock.advance_by(2 * HOUR)
        assert hook.on_write(table).triggered

    def test_notify_mode_decouples_scheduling(self, hook_world):
        """§5: the hook can just notify the service instead of compacting."""
        catalog, table, connector, backend = hook_world
        fragment_table(table, partitions=[(0,)], files_per_partition=12)
        inbox = []
        hook = OptimizeAfterWriteHook(
            connector,
            FileCountReductionTrait(),
            threshold=5,
            mode="notify",
            notify=inbox.append,
        )
        decision = hook.on_write(table)
        assert decision.triggered
        assert decision.result is None
        assert len(inbox) == 1
        assert inbox[0].qualified_table == "db.t"
        assert table.data_file_count == 12  # nothing compacted yet

    def test_skip_result_when_plan_empty(self, hook_world):
        catalog, table, connector, backend = hook_world
        # One big file: trait passes threshold 0 but nothing to rewrite.
        txn = table.new_append()
        txn.add_file(600 * MiB, partition=(0,))
        txn.commit()
        hook = OptimizeAfterWriteHook(
            connector, FileCountReductionTrait(), threshold=0, backend=backend
        )
        decision = hook.on_write(table)
        assert decision.triggered
        assert decision.result.skipped

    def test_mode_validation(self, hook_world):
        _, _, connector, backend = hook_world
        trait = FileCountReductionTrait()
        with pytest.raises(ValidationError):
            OptimizeAfterWriteHook(connector, trait, 1, mode="weird", backend=backend)
        with pytest.raises(ValidationError):
            OptimizeAfterWriteHook(connector, trait, 1, mode="immediate")
        with pytest.raises(ValidationError):
            OptimizeAfterWriteHook(connector, trait, 1, mode="notify")
        with pytest.raises(ValidationError):
            OptimizeAfterWriteHook(
                connector, trait, 1, backend=backend, cooldown_s=-1
            )

    def test_decisions_log_is_explainable(self, hook_world):
        """NFR2: every evaluation is recorded with its trait value."""
        catalog, table, connector, backend = hook_world
        fragment_table(table, partitions=[(0,)], files_per_partition=4)
        hook = OptimizeAfterWriteHook(
            connector, FileCountReductionTrait(), threshold=100, backend=backend
        )
        hook.on_write(table)
        hook.on_write(table)
        assert len(hook.decisions) == 2
        assert all(d.trait_value == 4.0 for d in hook.decisions)
