"""Unit tests for the WorkerTransport connector API.

Covers the three contracts the transport redesign introduced:

* **legacy shim** — connectors implementing the pre-transport method trio
  (``export_shard_work``/``merge_shard_result``/``apply_shard_delta``)
  keep working through :class:`~repro.core.transport.LegacyPickleTransport`
  behind a :class:`DeprecationWarning`;
* **handshake** — :meth:`~repro.core.workers.WorkerPool.negotiate` is the
  pool's single version check, raising one
  :class:`~repro.core.workers.WorkerError` that names both sides;
* **segment lifecycle** — shared-memory blocks tracked with a pool never
  outlive it, whether the pool closes normally or a worker crashed.
"""

from __future__ import annotations

import os
import signal
import warnings

import pytest

from repro.core.columnar import ColumnarMissBlock
from repro.core.connectors import Connector
from repro.core.transport import LegacyPickleTransport
from repro.core.workers import (
    TRANSPORT_KINDS,
    WORK_SPEC_VERSION,
    TransportContract,
    WorkerError,
    WorkerPool,
    process_workers_available,
)
from repro.errors import ValidationError


class _LegacyTrioConnector(Connector):
    """A third-party connector from before the WorkerTransport protocol."""

    supports_worker_observe = True

    def list_candidates(self, strategy: str = "table"):
        return []

    def collect_statistics(self, key):
        raise NotImplementedError

    def export_shard_work(self, keys, shard_index, traits):
        return [], None

    def merge_shard_result(self, placed, result):
        return []

    def apply_shard_delta(self, result):
        return None


class _PlainConnector(Connector):
    """No worker-observe support at all: thread-pool fallback territory."""

    def list_candidates(self, strategy: str = "table"):
        return []

    def collect_statistics(self, key):
        raise NotImplementedError


class TestLegacyShim:
    def test_legacy_trio_is_wrapped_with_deprecation_warning(self):
        connector = _LegacyTrioConnector()
        assert connector.worker_transport_kinds() == ("pickle",)
        with pytest.warns(DeprecationWarning, match="worker_transport"):
            transport = connector.worker_transport()
        assert isinstance(transport, LegacyPickleTransport)
        assert transport.kind == "pickle"
        assert transport.connector is connector

    def test_plain_connector_yields_no_transport_and_no_warning(self):
        connector = _PlainConnector()
        assert connector.worker_transport_kinds() == ()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert connector.worker_transport() is None

    def test_unsupported_kind_is_rejected_before_the_shim_engages(self):
        with pytest.raises(ValidationError, match="columnar"):
            _LegacyTrioConnector().worker_transport("columnar")


class TestHandshake:
    def test_thread_pool_negotiates_the_local_contract(self):
        with WorkerPool(mode="threads") as pool:
            contract = pool.negotiate("pickle")
            assert contract == TransportContract(
                version=WORK_SPEC_VERSION, transports=TRANSPORT_KINDS
            )

    @pytest.mark.skipif(
        not process_workers_available(), reason="process workers need fork"
    )
    def test_process_pool_handshake_round_trips_through_a_worker(self):
        with WorkerPool(mode="processes", max_workers=1) as pool:
            contract = pool.negotiate("columnar")
            assert contract.version == WORK_SPEC_VERSION
            assert "columnar" in contract.transports
            # Cached: the second call must not cost another round trip.
            assert pool.negotiate("pickle") is contract

    def test_version_mismatch_raises_one_error_naming_both_sides(self):
        pool = WorkerPool(mode="threads")
        try:
            # Simulate workers answering with an older build's contract.
            pool._contract = TransportContract(
                version=WORK_SPEC_VERSION - 1, transports=("pickle",)
            )
            with pytest.raises(WorkerError) as excinfo:
                pool.negotiate("pickle")
            message = str(excinfo.value)
            assert f"v{WORK_SPEC_VERSION}" in message  # coordinator side
            assert f"v{WORK_SPEC_VERSION - 1}" in message  # worker side
            assert "pickle" in message and "columnar" in message
        finally:
            pool.close()

    def test_unspoken_transport_raises_with_both_vocabularies(self):
        pool = WorkerPool(mode="threads")
        try:
            pool._contract = TransportContract(
                version=WORK_SPEC_VERSION, transports=("pickle",)
            )
            with pytest.raises(WorkerError, match="handshake"):
                pool.negotiate("columnar")
        finally:
            pool.close()


def _shm_block() -> ColumnarMissBlock:
    """A miss block forced onto shared memory (``min_shm_bytes=0``)."""
    n = 4
    return ColumnarMissBlock.from_sizes(
        [tuple(range(1, 401))] * n,
        targets=[512] * n,
        partition_counts=[1] * n,
        delete_file_counts=[0] * n,
        created_at=[0.0] * n,
        last_modified_at=[1.0] * n,
        quota_utilization=[0.5] * n,
        min_shm_bytes=0,
    )


def _segment_path(block: ColumnarMissBlock) -> str:
    name = block._block._shm_name
    assert name, "block should be shm-backed"
    return os.path.join("/dev/shm", name.lstrip("/"))


def _sigkill_self() -> None:
    os.kill(os.getpid(), signal.SIGKILL)


class TestSegmentLifecycle:
    def test_pool_close_unlinks_tracked_segments(self):
        block = _shm_block()
        assert block.backing == "shm"
        path = _segment_path(block)
        pool = WorkerPool(mode="threads")
        pool.track_resource(block)
        assert os.path.exists(path)
        pool.close()
        assert not os.path.exists(path)

    def test_untracked_segments_are_left_alone(self):
        block = _shm_block()
        path = _segment_path(block)
        pool = WorkerPool(mode="threads")
        pool.track_resource(block)
        pool.untrack_resource(block)  # the normal per-cycle release path
        pool.close()
        assert os.path.exists(path)
        block.dispose()
        assert not os.path.exists(path)

    @pytest.mark.skipif(
        not process_workers_available(), reason="process workers need fork"
    )
    def test_worker_crash_still_unlinks_segments(self):
        block = _shm_block()
        path = _segment_path(block)
        pool = WorkerPool(mode="processes", max_workers=1)
        try:
            pool.track_resource(block)
            future = pool.submit(_sigkill_self)
            with pytest.raises(Exception):
                future.result(timeout=60)
        finally:
            pool.close()
        assert not os.path.exists(path)
