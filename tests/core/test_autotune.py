"""Tests for the threshold auto-tuner (§6.3 FLAML/MLOS substitute)."""

from __future__ import annotations

import math

import pytest

from repro.core import CostFrugalOptimizer, Parameter, RandomSearchOptimizer
from repro.errors import ValidationError


def quadratic(params):
    """Minimum at x = 300."""
    return (params["x"] - 300.0) ** 2


class TestParameter:
    def test_clip(self):
        p = Parameter("x", 10, 100)
        assert p.clip(5) == 10
        assert p.clip(500) == 100
        assert p.clip(50) == 50

    def test_integer_rounding(self):
        p = Parameter("k", 1, 100, integer=True)
        assert p.clip(49.6) == 50.0

    def test_log_sampling_in_range(self):
        from repro.simulation import derive_rng

        p = Parameter("x", 1, 10_000, log=True)
        rng = derive_rng(0, "p")
        samples = [p.sample(rng) for _ in range(200)]
        assert all(1 <= s <= 10_000 for s in samples)
        # Log sampling should put a good share below sqrt(range).
        assert sum(1 for s in samples if s < 100) > 50

    def test_neighbor_stays_in_range(self):
        from repro.simulation import derive_rng

        p = Parameter("x", 0, 10)
        rng = derive_rng(1, "n")
        for _ in range(100):
            assert 0 <= p.neighbor(5.0, 0.5, rng) <= 10

    def test_validation(self):
        with pytest.raises(ValidationError):
            Parameter("x", 10, 10)
        with pytest.raises(ValidationError):
            Parameter("x", 0, 10, log=True)


class TestRandomSearch:
    def test_finds_reasonable_minimum(self):
        result = RandomSearchOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=60, seed=3
        )
        assert abs(result.best_params["x"] - 300) < 150
        assert result.iterations == 60

    def test_deterministic(self):
        a = RandomSearchOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=20, seed=9
        )
        b = RandomSearchOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=20, seed=9
        )
        assert a.best_params == b.best_params
        assert a.objective_series() == b.objective_series()

    def test_best_matches_trials(self):
        result = RandomSearchOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=15, seed=1
        )
        assert result.best_objective == min(t.objective for t in result.trials)


class TestCostFrugalOptimizer:
    def test_starts_at_low_end(self):
        result = CostFrugalOptimizer().optimize(
            quadratic, [Parameter("x", 50, 1000)], iterations=1, seed=0
        )
        assert result.trials[0].params["x"] == 50.0

    def test_improves_over_start(self):
        result = CostFrugalOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=40, seed=5
        )
        start_score = result.trials[0].objective
        assert result.best_objective < start_score
        assert abs(result.best_params["x"] - 300) < 120

    def test_beats_random_on_same_budget(self):
        """The CFO-style search should converge at least as well as random
        search on a smooth objective (the MLOS/FLAML premise)."""
        budget = 30
        space = [Parameter("x", 0, 1000)]
        cfo = CostFrugalOptimizer().optimize(quadratic, space, budget, seed=2)
        rnd = RandomSearchOptimizer().optimize(quadratic, space, budget, seed=2)
        assert cfo.best_objective <= rnd.best_objective * 2.0

    def test_deterministic(self):
        a = CostFrugalOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=25, seed=4
        )
        b = CostFrugalOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=25, seed=4
        )
        assert a.best_params == b.best_params

    def test_multi_dimensional(self):
        def bowl(params):
            return (params["x"] - 10) ** 2 + (params["y"] - 20) ** 2

        result = CostFrugalOptimizer().optimize(
            bowl,
            [Parameter("x", 0, 100), Parameter("y", 0, 100)],
            iterations=80,
            seed=6,
        )
        assert result.best_objective < bowl({"x": 0, "y": 0})

    def test_hyper_parameter_validation(self):
        with pytest.raises(ValidationError):
            CostFrugalOptimizer(shrink=1.5)
        with pytest.raises(ValidationError):
            CostFrugalOptimizer(initial_step=0)
        with pytest.raises(ValidationError):
            CostFrugalOptimizer(patience=0)


class TestTuningResult:
    def test_best_so_far_is_monotone(self):
        result = RandomSearchOptimizer().optimize(
            quadratic, [Parameter("x", 0, 1000)], iterations=30, seed=7
        )
        series = result.best_so_far_series()
        assert all(b <= a for a, b in zip(series, series[1:]))
        assert series[-1] == result.best_objective
        assert not math.isinf(series[0])


class TestValidation:
    def test_empty_parameters(self):
        with pytest.raises(ValidationError):
            RandomSearchOptimizer().optimize(quadratic, [], 10)

    def test_duplicate_parameters(self):
        with pytest.raises(ValidationError):
            RandomSearchOptimizer().optimize(
                quadratic, [Parameter("x", 0, 1), Parameter("x", 0, 1)], 10
            )

    def test_zero_iterations(self):
        with pytest.raises(ValidationError):
            CostFrugalOptimizer().optimize(quadratic, [Parameter("x", 0, 1)], 0)
