"""Tests for the AutoComp service and the OpenHouse reference wiring."""

from __future__ import annotations

import threading

import pytest

from repro.core import AutoCompService, BudgetSelector, TopKSelector, openhouse_pipeline
from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.scheduling import PartitionSerialScheduler, SequentialScheduler
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.simulation import Simulator
from repro.units import HOUR

from tests.conftest import fragment_table


@pytest.fixture
def fleet_catalog(catalog, simple_schema, monthly_spec):
    catalog.create_database("db", quota_objects=100_000)
    for i, count in enumerate([15, 8, 2]):
        table = catalog.create_table(f"db.t{i}", simple_schema, spec=monthly_spec)
        fragment_table(table, partitions=[(0,)], files_per_partition=count)
    catalog.clock.advance_by(2 * HOUR)  # age past the recent-table filter
    return catalog


class TestOpenhousePipeline:
    def test_default_wiring(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        assert isinstance(pipeline.selector, TopKSelector)
        assert isinstance(pipeline.scheduler, SequentialScheduler)
        assert set(pipeline.traits.names()) == {
            "file_count_reduction",
            "file_entropy",
            "compute_cost_gbhr",
        }

    def test_runs_and_compacts(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        report = pipeline.run_cycle(now=fleet_catalog.clock.now)
        # All three tables pass the >=2-small-files filter; each partition
        # packs down to one file.
        assert report.successes == 3
        assert report.total_files_reduced == 14 + 7 + 1

    def test_hybrid_uses_partition_serial_scheduler(self, fleet_catalog):
        pipeline = openhouse_pipeline(
            fleet_catalog, Cluster("maint", executors=3), generation="hybrid"
        )
        assert isinstance(pipeline.scheduler, PartitionSerialScheduler)

    def test_budget_mode(self, fleet_catalog):
        pipeline = openhouse_pipeline(
            fleet_catalog, Cluster("maint", executors=3), budget_gbhr=1000.0
        )
        assert isinstance(pipeline.selector, BudgetSelector)

    def test_weight_validation(self, fleet_catalog):
        with pytest.raises(ValidationError):
            openhouse_pipeline(
                fleet_catalog, Cluster("m", executors=1), benefit_weight=1.5
            )
        with pytest.raises(ValidationError):
            openhouse_pipeline(
                fleet_catalog, Cluster("m", executors=1), k=None, budget_gbhr=None
            )

    def test_min_small_files_filter(self, fleet_catalog):
        pipeline = openhouse_pipeline(
            fleet_catalog, Cluster("maint", executors=3), min_small_files=10
        )
        report = pipeline.run_cycle(now=fleet_catalog.clock.now)
        assert report.after_stats_filters == 1


class TestAutoCompService:
    def test_manual_cycle(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline, interval_s=HOUR)
        report = service.run_cycle(now=fleet_catalog.clock.now)
        assert report.successes == 3
        assert service.reports == [report]

    def test_periodic_attachment(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline, interval_s=HOUR)
        simulator = Simulator(fleet_catalog.clock)
        service.attach(simulator, until=fleet_catalog.clock.now + 3 * HOUR)
        simulator.run_until(fleet_catalog.clock.now + 4 * HOUR)
        assert len(service.reports) >= 2

    def test_notification_inbox(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline)
        key = CandidateKey("db", "t0", CandidateScope.TABLE)
        service.notify(key)
        assert service.notifications == [key]
        service.run_cycle(now=fleet_catalog.clock.now)
        assert service.notifications == []  # drained by the cycle


class TestNotificationRouting:
    """Inbox → connector routing, including the sharded-pipeline regression."""

    def test_notify_through_sharded_pipeline(self, fleet_catalog):
        """Regression: run_cycle used to crash with AttributeError because
        ShardedPipeline has no single ``connector`` to invalidate."""
        from repro.core.service import openhouse_sharded_pipeline
        from repro.core.statscache import StatsCache

        pipeline = openhouse_sharded_pipeline(
            fleet_catalog,
            Cluster("maint", executors=3),
            n_shards=2,
            stats_cache=StatsCache(),
            k=5,
        )
        with pipeline:
            service = AutoCompService(pipeline)
            key = CandidateKey("db", "t0", CandidateScope.TABLE)
            service.notify(key)
            report = service.run_cycle(now=fleet_catalog.clock.now)
        assert service.notifications == []
        assert report.report.candidates_generated == 3

    def test_sharded_invalidate_routes_to_owning_shard(self, fleet_catalog):
        """Each key's eviction lands on the shard the consistent hash owns."""
        from repro.core.sharding import ShardedPipeline, shard_for_key
        from repro.core.statscache import StatsCache

        def shard():
            pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
            pipeline.connector.stats_cache = StatsCache()
            return pipeline

        shards = [shard(), shard()]
        pipeline = ShardedPipeline(shards, max_workers=1)
        with pipeline:
            for i in range(3):
                key = CandidateKey("db", f"t{i}", CandidateScope.TABLE)
                owner = shard_for_key(key, 2)
                statistics = shards[owner].connector.collect_statistics(key)
                before = [s.connector.stats_cache.invalidations for s in shards]
                pipeline.invalidate(key)
                after = [s.connector.stats_cache.invalidations for s in shards]
                # Exactly the owner's cache dropped the (cached) entry.
                assert after[owner] == before[owner] + 1
                assert after[1 - owner] == before[1 - owner]
                assert statistics is not None

    def test_inbox_deduped_preserving_first_seen_order(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        drained: list[CandidateKey] = []
        pipeline.invalidate = drained.append  # shadow the bound method
        service = AutoCompService(pipeline)
        first = CandidateKey("db", "t0", CandidateScope.TABLE)
        second = CandidateKey("db", "t1", CandidateScope.TABLE)
        for key in (first, first, second, first, second):
            service.notify(key)
        service.run_cycle(now=fleet_catalog.clock.now)
        assert drained == [first, second]
        assert service.notifications == []


class TestInboxThreadSafety:
    """Regression: notify() racing run_cycle's drain lost or double-drained keys."""

    def test_hammered_inbox_loses_nothing(self, fleet_catalog):
        from repro.core.pipeline import CycleReport

        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        drained: list[CandidateKey] = []
        pipeline.invalidate = drained.append  # shadow the bound method
        pipeline.run_cycle = lambda now=0.0, simulator=None: CycleReport(
            cycle_index=0, started_at=now
        )
        service = AutoCompService(pipeline)

        n_threads, keys_per_thread = 8, 200
        start = threading.Barrier(n_threads + 1)

        def hammer(thread_index: int) -> None:
            start.wait()
            for i in range(keys_per_thread):
                service.notify(
                    CandidateKey("db", f"w{thread_index}_{i}", CandidateScope.TABLE)
                )

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        start.wait()
        # Drain concurrently with the producers: the old list-clear drain
        # dropped whatever arrived between the iteration and the clear.
        for _ in range(50):
            service.run_cycle(now=fleet_catalog.clock.now)
        for thread in threads:
            thread.join()
        service.run_cycle(now=fleet_catalog.clock.now)  # final sweep

        expected = {
            f"db.w{t}_{i}" for t in range(n_threads) for i in range(keys_per_thread)
        }
        drained_keys = [str(key) for key in drained]
        assert set(drained_keys) == expected  # nothing lost
        assert len(drained_keys) == len(expected)  # nothing double-invalidated
        assert service.notifications == []


class TestScheduleAnchoring:
    """Regression: attach() fired on a fixed grid and could overlap itself."""

    def test_next_fire_anchors_to_cycle_completion(self, fleet_catalog):
        from repro.core.pipeline import CycleReport

        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        long_cycle_s = HOUR / 2

        def slow_cycle(now=0.0, simulator=None):
            # A cycle that takes half an hour of simulated time.
            if simulator is not None:
                now = simulator.now
            fleet_catalog.clock.advance_by(long_cycle_s)
            return CycleReport(cycle_index=0, started_at=now)

        pipeline.run_cycle = slow_cycle
        service = AutoCompService(pipeline, interval_s=HOUR)
        simulator = Simulator(fleet_catalog.clock)
        base = fleet_catalog.clock.now
        service.attach(simulator, until=base + 5 * HOUR)
        simulator.run_until(base + 5 * HOUR)
        starts = [report.started_at for report in service.reports]
        # Completion-anchored: fires at base+1h, then every 1.5h (1h interval
        # after each 0.5h cycle) — not on the fixed 1h grid.
        assert starts[0] == base + HOUR
        spacings = [b - a for a, b in zip(starts, starts[1:])]
        assert spacings and all(s == HOUR + long_cycle_s for s in spacings)

    def test_overlapping_fire_skips_and_counts(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline, interval_s=HOUR)
        # Forge an unfinished cycle: selected work whose results are still
        # outstanding (async act in flight).
        stuck = pipeline.begin_cycle(fleet_catalog.clock.now)
        stuck.selected = [CandidateKey("db", "t0", CandidateScope.TABLE)]
        service.reports.append(stuck)
        assert service.cycle_in_flight()

        simulator = Simulator(fleet_catalog.clock)
        base = fleet_catalog.clock.now
        service.attach(simulator, until=base + 3 * HOUR)
        simulator.run_until(base + 4 * HOUR)
        # Fires at +1h and +2h (the +3h one falls at `until`): both skip.
        assert service.overlap_skips == 2
        assert service.reports == [stuck]
        assert (
            pipeline.telemetry.counter("autocomp.service.overlap_skips") == 2
        )

    def test_until_still_bounds_scheduling(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline, interval_s=HOUR)
        simulator = Simulator(fleet_catalog.clock)
        base = fleet_catalog.clock.now
        service.attach(simulator, until=base + 2.5 * HOUR)
        simulator.run_until(base + 10 * HOUR)
        assert len(service.reports) == 2  # fires at +1h and +2h only
