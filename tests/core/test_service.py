"""Tests for the AutoComp service and the OpenHouse reference wiring."""

from __future__ import annotations

import pytest

from repro.core import AutoCompService, BudgetSelector, TopKSelector, openhouse_pipeline
from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.scheduling import PartitionSerialScheduler, SequentialScheduler
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.simulation import Simulator
from repro.units import HOUR

from tests.conftest import fragment_table


@pytest.fixture
def fleet_catalog(catalog, simple_schema, monthly_spec):
    catalog.create_database("db", quota_objects=100_000)
    for i, count in enumerate([15, 8, 2]):
        table = catalog.create_table(f"db.t{i}", simple_schema, spec=monthly_spec)
        fragment_table(table, partitions=[(0,)], files_per_partition=count)
    catalog.clock.advance_by(2 * HOUR)  # age past the recent-table filter
    return catalog


class TestOpenhousePipeline:
    def test_default_wiring(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        assert isinstance(pipeline.selector, TopKSelector)
        assert isinstance(pipeline.scheduler, SequentialScheduler)
        assert set(pipeline.traits.names()) == {
            "file_count_reduction",
            "file_entropy",
            "compute_cost_gbhr",
        }

    def test_runs_and_compacts(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        report = pipeline.run_cycle(now=fleet_catalog.clock.now)
        # All three tables pass the >=2-small-files filter; each partition
        # packs down to one file.
        assert report.successes == 3
        assert report.total_files_reduced == 14 + 7 + 1

    def test_hybrid_uses_partition_serial_scheduler(self, fleet_catalog):
        pipeline = openhouse_pipeline(
            fleet_catalog, Cluster("maint", executors=3), generation="hybrid"
        )
        assert isinstance(pipeline.scheduler, PartitionSerialScheduler)

    def test_budget_mode(self, fleet_catalog):
        pipeline = openhouse_pipeline(
            fleet_catalog, Cluster("maint", executors=3), budget_gbhr=1000.0
        )
        assert isinstance(pipeline.selector, BudgetSelector)

    def test_weight_validation(self, fleet_catalog):
        with pytest.raises(ValidationError):
            openhouse_pipeline(
                fleet_catalog, Cluster("m", executors=1), benefit_weight=1.5
            )
        with pytest.raises(ValidationError):
            openhouse_pipeline(
                fleet_catalog, Cluster("m", executors=1), k=None, budget_gbhr=None
            )

    def test_min_small_files_filter(self, fleet_catalog):
        pipeline = openhouse_pipeline(
            fleet_catalog, Cluster("maint", executors=3), min_small_files=10
        )
        report = pipeline.run_cycle(now=fleet_catalog.clock.now)
        assert report.after_stats_filters == 1


class TestAutoCompService:
    def test_manual_cycle(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline, interval_s=HOUR)
        report = service.run_cycle(now=fleet_catalog.clock.now)
        assert report.successes == 3
        assert service.reports == [report]

    def test_periodic_attachment(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline, interval_s=HOUR)
        simulator = Simulator(fleet_catalog.clock)
        service.attach(simulator, until=fleet_catalog.clock.now + 3 * HOUR)
        simulator.run_until(fleet_catalog.clock.now + 4 * HOUR)
        assert len(service.reports) >= 2

    def test_notification_inbox(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        service = AutoCompService(pipeline)
        key = CandidateKey("db", "t0", CandidateScope.TABLE)
        service.notify(key)
        assert service.notifications == [key]
        service.run_cycle(now=fleet_catalog.clock.now)
        assert service.notifications == []  # drained by the cycle


class TestNotificationRouting:
    """Inbox → connector routing, including the sharded-pipeline regression."""

    def test_notify_through_sharded_pipeline(self, fleet_catalog):
        """Regression: run_cycle used to crash with AttributeError because
        ShardedPipeline has no single ``connector`` to invalidate."""
        from repro.core.service import openhouse_sharded_pipeline
        from repro.core.statscache import StatsCache

        pipeline = openhouse_sharded_pipeline(
            fleet_catalog,
            Cluster("maint", executors=3),
            n_shards=2,
            stats_cache=StatsCache(),
            k=5,
        )
        with pipeline:
            service = AutoCompService(pipeline)
            key = CandidateKey("db", "t0", CandidateScope.TABLE)
            service.notify(key)
            report = service.run_cycle(now=fleet_catalog.clock.now)
        assert service.notifications == []
        assert report.report.candidates_generated == 3

    def test_sharded_invalidate_routes_to_owning_shard(self, fleet_catalog):
        """Each key's eviction lands on the shard the consistent hash owns."""
        from repro.core.sharding import ShardedPipeline, shard_for_key
        from repro.core.statscache import StatsCache

        def shard():
            pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
            pipeline.connector.stats_cache = StatsCache()
            return pipeline

        shards = [shard(), shard()]
        pipeline = ShardedPipeline(shards, max_workers=1)
        with pipeline:
            for i in range(3):
                key = CandidateKey("db", f"t{i}", CandidateScope.TABLE)
                owner = shard_for_key(key, 2)
                statistics = shards[owner].connector.collect_statistics(key)
                before = [s.connector.stats_cache.invalidations for s in shards]
                pipeline.invalidate(key)
                after = [s.connector.stats_cache.invalidations for s in shards]
                # Exactly the owner's cache dropped the (cached) entry.
                assert after[owner] == before[owner] + 1
                assert after[1 - owner] == before[1 - owner]
                assert statistics is not None

    def test_inbox_deduped_preserving_first_seen_order(self, fleet_catalog):
        pipeline = openhouse_pipeline(fleet_catalog, Cluster("maint", executors=3))
        drained: list[CandidateKey] = []
        pipeline.invalidate = drained.append  # shadow the bound method
        service = AutoCompService(pipeline)
        first = CandidateKey("db", "t0", CandidateScope.TABLE)
        second = CandidateKey("db", "t1", CandidateScope.TABLE)
        for key in (first, first, second, first, second):
            service.notify(key)
        service.run_cycle(now=fleet_catalog.clock.now)
        assert drained == [first, second]
        assert service.notifications == []
