"""Tests for the AutoComp daemon, the resumable state machine, and locks-in-anger."""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro.core import (
    AdmissionController,
    AutoCompDaemon,
    AutoCompService,
    ResumableStateMachine,
    openhouse_pipeline,
    verify_audit,
)
from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.daemon import UNIT_STATES
from repro.core.locks import LockManager
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.units import HOUR, MiB

from tests.conftest import fragment_table


def build_catalog(catalog, simple_schema, monthly_spec, databases=("db",), tables=3):
    for db in databases:
        catalog.create_database(db, quota_objects=100_000)
        for i in range(tables):
            table = catalog.create_table(f"{db}.t{i}", simple_schema, spec=monthly_spec)
            fragment_table(table, partitions=[(0,)], files_per_partition=8)
    catalog.clock.advance_by(2 * HOUR)
    return catalog


def build_daemon(catalog, lock_dir, owner="d", **daemon_kwargs):
    pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=3))
    service = AutoCompService(pipeline, interval_s=HOUR)
    locks = LockManager(lock_dir, owner=owner, stale_after_s=30)
    return AutoCompDaemon(service, locks, **daemon_kwargs)


@pytest.fixture
def fleet(catalog, simple_schema, monthly_spec):
    return build_catalog(catalog, simple_schema, monthly_spec)


class TestResumableStateMachine:
    def test_register_claim_complete(self, tmp_path):
        machine = ResumableStateMachine(tmp_path / "state")
        assert machine.register(["u1", "u2", "u3"]) == 3
        assert machine.register(["u1"]) == 0  # idempotent
        chunk = machine.get_next_chunk(2)
        assert chunk == ["u1", "u2"]
        assert machine.state_of("u1") == "LOCKED"
        machine.mark_running("u1")
        machine.mark_complete("u1")
        assert machine.state_of("u1") == "COMPLETE"
        assert machine.counts() == {
            "INIT": 1,
            "LOCKED": 1,
            "RUNNING": 0,
            "COMPLETE": 1,
        }

    def test_state_survives_restart(self, tmp_path):
        first = ResumableStateMachine(tmp_path / "state")
        first.register(["u1", "u2"])
        first.get_next_chunk()
        first.mark_running("u1")
        first.mark_complete("u1")
        # Fresh instance over the same directory (post-kill restart).
        second = ResumableStateMachine(tmp_path / "state")
        assert second.state_of("u1") == "COMPLETE"
        assert second.state_of("u2") == "INIT"

    def test_recover_demotes_midflight_units(self, tmp_path):
        first = ResumableStateMachine(tmp_path / "state")
        first.register(["u1", "u2", "u3"])
        first.get_next_chunk(2)  # u1, u2 -> LOCKED
        first.mark_running("u1")  # u1 -> RUNNING
        second = ResumableStateMachine(tmp_path / "state")
        assert sorted(second.recover()) == ["u1", "u2"]
        assert second.state_of("u1") == "INIT"
        assert second.state_of("u3") == "INIT"
        # COMPLETE units are never demoted.
        second.get_next_chunk()
        second.mark_running("u1")
        second.mark_complete("u1")
        assert second.recover() == []
        assert second.state_of("u1") == "COMPLETE"

    def test_torn_state_file_reregisters_as_init(self, tmp_path):
        state_dir = tmp_path / "state"
        machine = ResumableStateMachine(state_dir)
        machine.register(["u1"])
        machine.get_next_chunk()
        path = machine._path_for("u1")
        with open(path, "w") as stream:
            stream.write('{"unit": "u1", "sta')  # kill -9 mid-write
        fresh = ResumableStateMachine(state_dir)
        assert fresh.state_of("u1") is None
        assert fresh.register(["u1"]) == 1
        assert fresh.state_of("u1") == "INIT"

    def test_attempts_count_reruns(self, tmp_path):
        machine = ResumableStateMachine(tmp_path / "state")
        machine.register(["u1"])
        machine.get_next_chunk()
        machine.mark_running("u1")
        machine.release("u1")
        machine.get_next_chunk()
        machine.mark_running("u1")
        record = json.loads(open(machine._path_for("u1")).read())
        assert record["attempts"] == 2

    def test_chunk_validation(self, tmp_path):
        machine = ResumableStateMachine(tmp_path / "state")
        with pytest.raises(ValidationError):
            machine.get_next_chunk(0)

    def test_states_constant(self):
        assert UNIT_STATES == ("INIT", "LOCKED", "RUNNING", "COMPLETE")


class TestDaemonCycle:
    def test_run_once_compacts_and_releases(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks")
        report = daemon.run_once()
        assert report.successes == 3
        assert daemon.locks.held_keys() == []  # every lock released
        assert daemon.cycles_run == 1
        summary = verify_audit(tmp_path / "locks")
        assert summary.ok, summary.violations
        assert summary.compact_commits == 3
        # Every commit was attributed to this daemon's cycle trigger.
        assert summary.acquires == 3

    def test_admission_gate_caps_and_counts(self, fleet, tmp_path):
        admission = AdmissionController(max_per_database=1)
        daemon = build_daemon(fleet, tmp_path / "locks", admission=admission)
        report = daemon.run_once()
        assert report.successes == 1
        assert report.gated == 2
        assert admission.deferred_total == 2

    def test_gates_install_once_and_uninstall(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks", interval_s=60)
        pipeline = daemon.service.pipeline
        daemon.start()
        daemon._install_gates()  # second install must not duplicate
        assert len(pipeline.act_gates) == 1
        daemon.stop()
        assert pipeline.act_gates == []

    def test_scheduler_thread_ticks(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks", interval_s=0.05)
        daemon.start()
        deadline = time.monotonic() + 5.0
        while daemon.cycles_run < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        daemon.stop()
        assert daemon.cycles_run >= 2
        assert verify_audit(tmp_path / "locks").ok

    def test_cycle_error_is_counted_not_fatal(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks")

        def boom(now=0.0, simulator=None):
            raise RuntimeError("injected")

        daemon.service.run_cycle = boom
        assert daemon.run_once() is None
        assert daemon.cycle_errors == 1
        assert daemon.locks.held_keys() == []

    def test_validation(self, fleet, tmp_path):
        with pytest.raises(ValidationError):
            build_daemon(fleet, tmp_path / "locks", interval_s=0)
        with pytest.raises(ValidationError):
            build_daemon(fleet, tmp_path / "locks", drain_timeout_s=0)

    def test_start_is_idempotent_and_context_manager(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks", interval_s=60)
        with daemon as entered:
            assert entered is daemon
            assert daemon.start() is daemon  # second start: no-op
        assert daemon.locks.held_keys() == []

    def test_history_spills_on_stop_and_restores_on_start(self, fleet, tmp_path):
        spill = tmp_path / "history.trace.jsonl"
        daemon = build_daemon(fleet, tmp_path / "locks", interval_s=60, spill_path=spill)
        daemon.service.enable_history(segment_cycles=1, seed=3)
        daemon.start()
        daemon.run_once()
        fleet.clock.advance_by(HOUR)
        daemon.run_once()
        events_before = daemon.service._history.trace().events
        daemon.stop()
        assert spill.exists()
        # A fresh daemon (fresh service over the same catalog) restores it.
        revived = build_daemon(fleet, tmp_path / "locks", owner="d2", interval_s=60,
                               spill_path=spill)
        revived.service.enable_history(segment_cycles=1, seed=3)
        revived.start()
        try:
            assert revived.service._history.trace().events == events_before
        finally:
            revived.stop()


class FakeSchedule:
    """Duck-typed cadence: fires every `period` seconds of wall time."""

    def __init__(self, period: float):
        self.period = period
        self.calls = 0

    def next_after(self, ts: float) -> float:
        self.calls += 1
        return ts + self.period

    def __str__(self) -> str:
        return f"fake/{self.period}"


class TestCalendarCadence:
    def test_cron_string_is_parsed_and_surfaced_in_status(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks", schedule="30 3 * * 1-5")
        assert str(daemon.schedule) == "30 3 * * 1-5"
        assert daemon.status()["schedule"] == "30 3 * * 1-5"

    def test_bad_cron_string_fails_at_construction(self, fleet, tmp_path):
        with pytest.raises(ValidationError):
            build_daemon(fleet, tmp_path / "locks", schedule="61 * * * *")

    def test_interval_cadence_reports_no_schedule(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks")
        assert daemon.schedule is None
        assert daemon.status()["schedule"] is None

    def test_scheduler_thread_ticks_on_calendar_boundaries(self, fleet, tmp_path):
        schedule = FakeSchedule(period=0.05)
        daemon = build_daemon(fleet, tmp_path / "locks", interval_s=60,
                              schedule=schedule)
        daemon.start()
        deadline = time.monotonic() + 5.0
        while daemon.cycles_run < 2 and time.monotonic() < deadline:
            time.sleep(0.01)
        daemon.stop()
        assert daemon.cycles_run >= 2
        # The delay was recomputed from the schedule, not interval_s.
        assert schedule.calls >= daemon.cycles_run

    def test_overdue_boundary_fires_immediately(self, fleet, tmp_path):
        class Overdue:
            def next_after(self, ts):
                return ts - 100.0  # boundary already passed

        daemon = build_daemon(fleet, tmp_path / "locks", schedule=Overdue())
        assert daemon._next_delay(daemon.schedule, daemon.interval_s) == 0.0


class TestDaemonPromoter:
    def build_promoter_daemon(self, fleet, tmp_path, **daemon_kwargs):
        from repro.core import PolicyPromoter, PolicyStore
        from repro.replay import PolicyVariant

        store = PolicyStore(tmp_path / "policy")
        store.initialize(
            PolicyVariant(name="dud", k=10, min_small_files=500),
            pool=[
                PolicyVariant(name="dud", k=10, min_small_files=500),
                PolicyVariant(name="k10", k=10),
                PolicyVariant(name="k2", k=2),
            ],
        )
        promoter = PolicyPromoter(store, guard_cycles=1, min_history_cycles=1)
        daemon = build_daemon(
            fleet, tmp_path / "locks", promoter=promoter, **daemon_kwargs
        )
        return daemon, promoter, store

    def test_start_attaches_and_step_promotes(self, fleet, tmp_path):
        daemon, promoter, store = self.build_promoter_daemon(
            fleet, tmp_path, interval_s=60
        )
        daemon.start()
        try:
            assert promoter.service is daemon.service
            daemon.run_once()
            fleet.clock.advance_by(HOUR)
            daemon.run_once()
            decision = daemon.run_promoter_once()
            assert decision["action"] == "promote"
            assert daemon.promoter_steps == 1
            status = daemon.status()["promoter"]
            assert status["store"]["state"] == "GUARD"
            assert status["steps_run"] == 1
            assert status["interval_s"] == 60
        finally:
            daemon.stop()

    def test_promoter_thread_ticks_on_its_own_cadence(self, fleet, tmp_path):
        daemon, promoter, _ = self.build_promoter_daemon(
            fleet, tmp_path, interval_s=60, promoter_interval_s=0.05
        )
        daemon.start()
        try:
            deadline = time.monotonic() + 5.0
            while daemon.promoter_steps < 2 and time.monotonic() < deadline:
                time.sleep(0.01)
        finally:
            daemon.stop()
        # Without recorded cycles every tick holds — but the cadence ran.
        assert daemon.promoter_steps >= 2
        assert promoter.holds >= 2

    def test_promoter_step_error_is_counted_not_fatal(self, fleet, tmp_path):
        daemon, promoter, _ = self.build_promoter_daemon(fleet, tmp_path)
        daemon.service.enable_history()

        def boom(now=None):
            raise RuntimeError("injected")

        promoter.attach(daemon.service)
        promoter.step = boom
        assert daemon.run_promoter_once() is None
        assert daemon.promoter_errors == 1
        assert promoter.step_errors == 1
        telemetry = daemon.service.pipeline.telemetry
        assert telemetry.counter("autocomp.promoter.step_errors") == 1

    def test_no_promoter_is_a_noop(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks")
        assert daemon.run_promoter_once() is None
        assert "promoter" not in daemon.status()

    def test_promoter_interval_validation(self, fleet, tmp_path):
        with pytest.raises(ValidationError):
            build_daemon(fleet, tmp_path / "locks", promoter_interval_s=0)


class TestConcurrentDaemons:
    def test_two_instances_never_double_compact(
        self, catalog, simple_schema, monthly_spec, tmp_path
    ):
        """Two daemons, one catalog, one lock directory: the audit stays clean."""
        fleet = build_catalog(
            catalog, simple_schema, monthly_spec, databases=("db0", "db1"), tables=3
        )
        lock_dir = tmp_path / "locks"
        first = build_daemon(fleet, lock_dir, owner="alpha", interval_s=0.02)
        second = build_daemon(fleet, lock_dir, owner="beta", interval_s=0.02)
        tables = [t for db in ("db0", "db1") for t in fleet.database(db).tables.values()]
        stop_ingest = threading.Event()

        def ingest():
            # Keep re-fragmenting so cycles always find work (and both
            # daemons keep wanting the same tables).
            while not stop_ingest.wait(0.01):
                for table in tables:
                    fragment_table(table, partitions=[(0,)], files_per_partition=3,
                                   file_size=4 * MiB)

        ingester = threading.Thread(target=ingest, daemon=True)
        first.start()
        second.start()
        ingester.start()
        deadline = time.monotonic() + 10.0
        while (
            first.cycles_run + second.cycles_run < 8 and time.monotonic() < deadline
        ):
            time.sleep(0.02)
        stop_ingest.set()
        ingester.join(timeout=5.0)
        first.stop()
        second.stop()
        summary = verify_audit(lock_dir)
        assert summary.ok, summary.violations
        assert summary.compact_commits > 0
        assert first.cycles_run + second.cycles_run >= 8


class TestBackfill:
    def keys(self, fleet):
        return [
            CandidateKey("db", f"t{i}", CandidateScope.TABLE) for i in range(3)
        ]

    def test_backfill_compacts_everything_once(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks")
        counts = daemon.backfill(self.keys(fleet), tmp_path / "state")
        assert counts["COMPLETE"] == 3 and counts["INIT"] == 0
        summary = verify_audit(tmp_path / "locks")
        assert summary.ok, summary.violations
        assert summary.compact_commits == 3

    def test_rerun_skips_complete_units(self, fleet, tmp_path):
        daemon = build_daemon(fleet, tmp_path / "locks")
        daemon.backfill(self.keys(fleet), tmp_path / "state")
        commits = verify_audit(tmp_path / "locks").compact_commits
        counts = daemon.backfill(self.keys(fleet), tmp_path / "state")
        assert counts["COMPLETE"] == 3
        assert verify_audit(tmp_path / "locks").compact_commits == commits

    def test_contended_unit_is_left_for_the_holder(self, fleet, tmp_path):
        blocker = LockManager(tmp_path / "locks", owner="other")
        key = CandidateKey("db", "t0", CandidateScope.TABLE)
        assert blocker.acquire(key)
        daemon = build_daemon(fleet, tmp_path / "locks")
        counts = daemon.backfill(self.keys(fleet), tmp_path / "state")
        assert counts["COMPLETE"] == 2
        assert counts["INIT"] == 1  # back for a later pass, no spin
        blocker.release(key)
        counts = daemon.backfill(self.keys(fleet), tmp_path / "state")
        assert counts["COMPLETE"] == 3

    def test_resume_after_recover(self, fleet, tmp_path):
        state_dir = tmp_path / "state"
        machine = ResumableStateMachine(state_dir)
        machine.register([str(k) for k in self.keys(fleet)])
        machine.get_next_chunk()  # db.t0 claimed by a "killed" run
        daemon = build_daemon(fleet, tmp_path / "locks")
        counts = daemon.backfill(self.keys(fleet), state_dir)
        assert counts == {"INIT": 0, "LOCKED": 0, "RUNNING": 0, "COMPLETE": 3}

    def test_unknown_unit_does_not_spin(self, fleet, tmp_path):
        state_dir = tmp_path / "state"
        machine = ResumableStateMachine(state_dir)
        machine.register(["ghost.unit"])
        daemon = build_daemon(fleet, tmp_path / "locks")
        counts = daemon.backfill(self.keys(fleet), state_dir)
        assert counts["COMPLETE"] == 3
        assert counts["INIT"] == 1  # the ghost stays INIT for its real owner


class TestLockGateUnderContention:
    def test_selected_but_locked_candidates_are_gated(self, fleet, tmp_path):
        blocker = LockManager(tmp_path / "locks", owner="other")
        assert blocker.acquire(CandidateKey("db", "t0", CandidateScope.TABLE))
        daemon = build_daemon(fleet, tmp_path / "locks")
        report = daemon.run_once()
        assert report.successes == 2  # t1, t2 — t0 was lock-gated
        assert report.gated == 1
        telemetry = daemon.service.pipeline.telemetry
        assert telemetry.counter("autocomp.daemon.lock_contended") == 1
