"""Tests for decide-phase ranking policies (paper §4.3 and §7)."""

from __future__ import annotations

import pytest

from repro.core import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    Objective,
    QuotaAwareWeightedSumPolicy,
    ThresholdPolicy,
    WeightedSumPolicy,
    min_max_normalize,
)
from repro.errors import ValidationError
from repro.units import MiB

TARGET = 512 * MiB


def _candidate(name, traits, quota=0.0):
    candidate = Candidate(
        key=CandidateKey("db", name, CandidateScope.TABLE),
        statistics=CandidateStatistics.from_file_sizes(
            [MiB], target_file_size=TARGET, quota_utilization=quota
        ),
    )
    candidate.traits.update(traits)
    return candidate


class TestMinMaxNormalize:
    def test_paper_formula(self):
        assert min_max_normalize([10.0, 20.0, 30.0]) == [0.0, 0.5, 1.0]

    def test_constant_column_drops_to_zero(self):
        assert min_max_normalize([5.0, 5.0, 5.0]) == [0.0, 0.0, 0.0]

    def test_empty(self):
        assert min_max_normalize([]) == []

    def test_range_is_unit_interval(self):
        values = [3.7, -2.0, 100.0, 0.0]
        normalized = min_max_normalize(values)
        assert min(normalized) == 0.0
        assert max(normalized) == 1.0
        assert all(0 <= v <= 1 for v in normalized)


class TestThresholdPolicy:
    def test_filters_and_orders_by_trait(self):
        """The §4.3 unconstrained scenario: trigger at ΔF ≥ 10%."""
        policy = ThresholdPolicy("relative_file_count_reduction", 0.10)
        a = _candidate("a", {"relative_file_count_reduction": 0.50})
        b = _candidate("b", {"relative_file_count_reduction": 0.05})
        c = _candidate("c", {"relative_file_count_reduction": 0.20})
        ranked = policy.rank([a, b, c])
        assert [r.key.table for r in ranked] == ["a", "c"]
        assert ranked[0].score == 0.50

    def test_boundary_inclusive(self):
        policy = ThresholdPolicy("x", 1.0)
        assert len(policy.rank([_candidate("a", {"x": 1.0})])) == 1

    def test_missing_trait_raises(self):
        policy = ThresholdPolicy("ghost", 0.0)
        with pytest.raises(ValidationError):
            policy.rank([_candidate("a", {})])


class TestWeightedSumPolicy:
    def _policy(self):
        return WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.7, maximize=True),
                Objective("compute_cost_gbhr", 0.3, maximize=False),
            ]
        )

    def test_benefit_dominates_with_paper_weights(self):
        """S_c = 0.7·T'₁ − 0.3·T'₂ (the §6 configuration)."""
        policy = self._policy()
        big_cheap = _candidate("big_cheap", {"file_count_reduction": 200, "compute_cost_gbhr": 1})
        big_pricey = _candidate("big_pricey", {"file_count_reduction": 200, "compute_cost_gbhr": 9})
        small_cheap = _candidate("small_cheap", {"file_count_reduction": 10, "compute_cost_gbhr": 1})
        ranked = policy.rank([big_pricey, small_cheap, big_cheap])
        assert [r.key.table for r in ranked] == ["big_cheap", "big_pricey", "small_cheap"]

    def test_scores_match_hand_computation(self):
        policy = self._policy()
        a = _candidate("a", {"file_count_reduction": 100, "compute_cost_gbhr": 10})
        b = _candidate("b", {"file_count_reduction": 0, "compute_cost_gbhr": 0})
        policy.rank([a, b])
        # a: benefit norm 1, cost norm 1 -> 0.7 - 0.3 = 0.4; b: 0 - 0 = 0.
        assert a.score == pytest.approx(0.4)
        assert b.score == pytest.approx(0.0)

    def test_cost_only_differs(self):
        """Same benefit, different cost: the paper's §4.2 example —
        the benefit/cost ratio favours the cheaper candidate."""
        policy = self._policy()
        cheap = _candidate("cheap", {"file_count_reduction": 100, "compute_cost_gbhr": 5})
        pricey = _candidate("pricey", {"file_count_reduction": 100, "compute_cost_gbhr": 50})
        ranked = policy.rank([pricey, cheap])
        assert ranked[0].key.table == "cheap"

    def test_deterministic_tie_break(self):
        policy = self._policy()
        twin_a = _candidate("twin_a", {"file_count_reduction": 5, "compute_cost_gbhr": 1})
        twin_b = _candidate("twin_b", {"file_count_reduction": 5, "compute_cost_gbhr": 1})
        first = [r.key.table for r in policy.rank([twin_b, twin_a])]
        second = [r.key.table for r in policy.rank([twin_a, twin_b])]
        assert first == second == ["twin_a", "twin_b"]

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValidationError):
            WeightedSumPolicy(
                [
                    Objective("a", 0.7),
                    Objective("b", 0.7),
                ]
            )

    def test_duplicate_traits_rejected(self):
        with pytest.raises(ValidationError):
            WeightedSumPolicy([Objective("a", 0.5), Objective("a", 0.5)])

    def test_negative_weight_rejected(self):
        with pytest.raises(ValidationError):
            Objective("a", -0.1)

    def test_empty_objectives_rejected(self):
        with pytest.raises(ValidationError):
            WeightedSumPolicy([])

    def test_empty_candidates(self):
        assert self._policy().rank([]) == []

    def test_single_candidate_normalises_to_zero(self):
        policy = self._policy()
        only = _candidate("only", {"file_count_reduction": 42, "compute_cost_gbhr": 7})
        ranked = policy.rank([only])
        assert ranked[0].score == 0.0


class TestQuotaAwarePolicy:
    def test_weight_formula(self):
        """w₁ = 0.5 × (1 + UsedQuota/TotalQuota) — §7 verbatim."""
        weight = QuotaAwareWeightedSumPolicy.benefit_weight
        assert weight(0.0) == 0.5
        assert weight(0.5) == 0.75
        assert weight(1.0) == 1.0
        assert weight(2.0) == 1.0  # clamped
        assert weight(-1.0) == 0.5  # clamped

    def test_quota_pressure_jumps_queue(self):
        """A tenant near quota breach outranks a bigger-benefit tenant with
        plenty of headroom."""
        policy = QuotaAwareWeightedSumPolicy()
        relaxed = _candidate(
            "relaxed", {"file_count_reduction": 100, "compute_cost_gbhr": 10}, quota=0.0
        )
        squeezed = _candidate(
            "squeezed", {"file_count_reduction": 90, "compute_cost_gbhr": 10}, quota=0.95
        )
        anchor = _candidate(
            "anchor", {"file_count_reduction": 0, "compute_cost_gbhr": 0}, quota=0.0
        )
        ranked = policy.rank([relaxed, squeezed, anchor])
        assert ranked[0].key.table == "squeezed"

    def test_identical_candidates_tie_deterministically(self):
        policy = QuotaAwareWeightedSumPolicy()
        a = _candidate("aa", {"file_count_reduction": 5, "compute_cost_gbhr": 1}, quota=0.3)
        b = _candidate("bb", {"file_count_reduction": 5, "compute_cost_gbhr": 1}, quota=0.3)
        assert [r.key.table for r in policy.rank([b, a])] == ["aa", "bb"]

    def test_empty(self):
        assert QuotaAwareWeightedSumPolicy().rank([]) == []

    def test_custom_trait_names(self):
        policy = QuotaAwareWeightedSumPolicy(benefit_trait="b", cost_trait="c")
        one = _candidate("one", {"b": 10, "c": 2}, quota=0.2)
        two = _candidate("two", {"b": 1, "c": 2}, quota=0.2)
        ranked = policy.rank([two, one])
        assert ranked[0].key.table == "one"


class TestQuotaAwareBenefitWeightOverride:
    def test_overridden_benefit_weight_is_honoured(self):
        """The vectorised rank must not bypass a subclass's benefit_weight."""
        from repro.core.candidates import Candidate, CandidateKey, CandidateScope

        class FlatWeight(QuotaAwareWeightedSumPolicy):
            @staticmethod
            def benefit_weight(quota_utilization):
                return 1.0  # benefit-only, cost ignored

        def _candidate(name, benefit, cost):
            c = Candidate(key=CandidateKey("db", name, CandidateScope.TABLE))
            c.traits["file_count_reduction"] = benefit
            c.traits["compute_cost_gbhr"] = cost
            return c

        # High benefit but terrible cost: base policy ranks it below, the
        # flat-weight override ranks it first.
        expensive = _candidate("expensive", 100.0, 1000.0)
        balanced = _candidate("balanced", 90.0, 0.0)
        base = QuotaAwareWeightedSumPolicy().rank([expensive, balanced])
        flat = FlatWeight().rank([_candidate("expensive", 100.0, 1000.0),
                                  _candidate("balanced", 90.0, 0.0)])
        assert [str(c.key) for c in base] == ["db.balanced", "db.expensive"]
        assert [str(c.key) for c in flat] == ["db.expensive", "db.balanced"]

    def test_instance_level_benefit_weight_override_is_honoured(self):
        from repro.core.candidates import Candidate, CandidateKey, CandidateScope

        def _candidate(name, benefit, cost):
            c = Candidate(key=CandidateKey("db", name, CandidateScope.TABLE))
            c.traits["file_count_reduction"] = benefit
            c.traits["compute_cost_gbhr"] = cost
            return c

        policy = QuotaAwareWeightedSumPolicy()
        policy.benefit_weight = lambda u: 1.0  # instance attribute override
        ranked = policy.rank(
            [_candidate("expensive", 100.0, 1000.0), _candidate("balanced", 90.0, 0.0)]
        )
        assert [str(c.key) for c in ranked] == ["db.expensive", "db.balanced"]
