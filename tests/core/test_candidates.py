"""Tests for candidates, keys, and the standardized statistics layout."""

from __future__ import annotations

import pytest

from repro.core import Candidate, CandidateKey, CandidateScope, CandidateStatistics
from repro.errors import ValidationError
from repro.units import MiB

TARGET = 512 * MiB


class TestCandidateKey:
    def test_table_scope(self):
        key = CandidateKey("db", "t", CandidateScope.TABLE)
        assert key.qualified_table == "db.t"
        assert str(key) == "db.t"

    def test_partition_scope_requires_partition(self):
        with pytest.raises(ValidationError):
            CandidateKey("db", "t", CandidateScope.PARTITION)
        key = CandidateKey("db", "t", CandidateScope.PARTITION, partition=(3,))
        assert "partition=(3,)" in str(key)

    def test_snapshot_scope_requires_id(self):
        with pytest.raises(ValidationError):
            CandidateKey("db", "t", CandidateScope.SNAPSHOT)
        key = CandidateKey("db", "t", CandidateScope.SNAPSHOT, snapshot_id=9)
        assert "snapshot=9" in str(key)

    def test_keys_hashable_and_equal(self):
        a = CandidateKey("db", "t", CandidateScope.TABLE)
        b = CandidateKey("db", "t", CandidateScope.TABLE)
        assert a == b
        assert hash(a) == hash(b)
        assert a != CandidateKey("db", "t", CandidateScope.PARTITION, partition=(0,))


class TestCandidateStatistics:
    def test_from_file_sizes(self):
        stats = CandidateStatistics.from_file_sizes(
            [MiB, 100 * MiB, 600 * MiB], target_file_size=TARGET
        )
        assert stats.file_count == 3
        assert stats.small_file_count == 2
        assert stats.small_file_bytes == 101 * MiB
        assert stats.total_bytes == 701 * MiB
        assert stats.small_file_fraction == pytest.approx(2 / 3)

    def test_empty(self):
        stats = CandidateStatistics.from_file_sizes([], target_file_size=TARGET)
        assert stats.file_count == 0
        assert stats.small_file_fraction == 0.0

    def test_boundary_file_not_small(self):
        stats = CandidateStatistics.from_file_sizes([TARGET], target_file_size=TARGET)
        assert stats.small_file_count == 0

    def test_validation(self):
        with pytest.raises(ValidationError):
            CandidateStatistics(
                file_count=1,
                total_bytes=1,
                small_file_count=2,  # > file_count
                small_file_bytes=0,
                target_file_size=TARGET,
            )
        with pytest.raises(ValidationError):
            CandidateStatistics(
                file_count=-1,
                total_bytes=0,
                small_file_count=0,
                small_file_bytes=0,
                target_file_size=TARGET,
            )
        with pytest.raises(ValidationError):
            CandidateStatistics(
                file_count=0,
                total_bytes=0,
                small_file_count=0,
                small_file_bytes=0,
                target_file_size=0,
            )

    def test_custom_mapping_frozen(self):
        stats = CandidateStatistics.from_file_sizes(
            [MiB], target_file_size=TARGET, custom={"access_rate": 5.0}
        )
        assert stats.custom["access_rate"] == 5.0
        with pytest.raises(TypeError):
            stats.custom["access_rate"] = 6.0


class TestCandidate:
    def test_trait_access(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        candidate.traits["x"] = 1.5
        assert candidate.trait("x") == 1.5
        with pytest.raises(ValidationError):
            candidate.trait("missing")

    def test_str(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        assert str(candidate) == "db.t"
