"""Tests for the OODA pipeline end to end."""

from __future__ import annotations

import pytest

from repro.core import (
    AutoCompPipeline,
    LstConnector,
    LstExecutionBackend,
    MinSmallFileCountFilter,
    MinTableAgeFilter,
    MinTraitFilter,
    Objective,
    SequentialScheduler,
    TopKSelector,
    WeightedSumPolicy,
)
from repro.core.traits import (
    ComputeCostTrait,
    FileCountReductionTrait,
    TraitRegistry,
)
from repro.engine import Cluster
from repro.units import GiB, HOUR, MiB

from tests.conftest import fragment_table


def _make_pipeline(catalog, generation="table", k=10, stats_filters=(), trait_filters=(), hooks=()):
    connector = LstConnector(catalog)
    cluster = Cluster("maint", executors=3)
    backend = LstExecutionBackend(connector, cluster)
    traits = TraitRegistry(
        [
            FileCountReductionTrait(),
            ComputeCostTrait(executor_memory_gb=192.0, rewrite_bytes_per_hour=1 * GiB),
        ]
    )
    policy = WeightedSumPolicy(
        [
            Objective("file_count_reduction", 0.7, maximize=True),
            Objective("compute_cost_gbhr", 0.3, maximize=False),
        ]
    )
    return AutoCompPipeline(
        connector=connector,
        backend=backend,
        traits=traits,
        policy=policy,
        selector=TopKSelector(k),
        scheduler=SequentialScheduler(),
        generation=generation,
        stats_filters=list(stats_filters),
        trait_filters=list(trait_filters),
        telemetry=catalog.telemetry,
        feedback_hooks=list(hooks),
    )


@pytest.fixture
def fragmented_catalog(catalog, simple_schema, monthly_spec):
    catalog.create_database("db")
    for i, count in enumerate([20, 5, 0]):
        table = catalog.create_table(f"db.t{i}", simple_schema, spec=monthly_spec)
        if count:
            fragment_table(table, partitions=[(0,)], files_per_partition=count)
    return catalog


class TestRunCycle:
    def test_full_ooda_pass(self, fragmented_catalog):
        pipeline = _make_pipeline(fragmented_catalog)
        report = pipeline.run_cycle(now=HOUR)
        assert report.candidates_generated == 3
        assert report.after_stats_filters == 3
        assert report.ranked == 3
        assert len(report.selected) == 3
        # t2 is empty: its plan is skipped; t0 and t1 compact.
        assert report.successes == 2
        assert report.total_files_reduced == (20 - 1) + (5 - 1)

    def test_priority_order_matches_benefit(self, fragmented_catalog):
        pipeline = _make_pipeline(fragmented_catalog, k=1)
        report = pipeline.run_cycle(now=HOUR)
        assert [str(k) for k in report.selected] == ["db.t0"]

    def test_stats_filters_reduce_pool(self, fragmented_catalog):
        pipeline = _make_pipeline(
            fragmented_catalog, stats_filters=[MinSmallFileCountFilter(10)]
        )
        report = pipeline.run_cycle(now=HOUR)
        assert report.after_stats_filters == 1

    def test_age_filter_uses_now(self, fragmented_catalog):
        pipeline = _make_pipeline(
            fragmented_catalog, stats_filters=[MinTableAgeFilter(HOUR)]
        )
        early = pipeline.run_cycle(now=60.0)
        assert early.after_stats_filters == 0
        late = pipeline.run_cycle(now=2 * HOUR)
        assert late.after_stats_filters == 3

    def test_trait_filters_apply_after_orient(self, fragmented_catalog):
        pipeline = _make_pipeline(
            fragmented_catalog, trait_filters=[MinTraitFilter("file_count_reduction", 10)]
        )
        report = pipeline.run_cycle(now=HOUR)
        assert report.after_trait_filters == 1

    def test_cycle_report_totals(self, fragmented_catalog):
        pipeline = _make_pipeline(fragmented_catalog)
        report = pipeline.run_cycle(now=HOUR)
        assert report.total_gbhr > 0
        assert report.conflicts == 0

    def test_telemetry_recorded(self, fragmented_catalog):
        pipeline = _make_pipeline(fragmented_catalog)
        pipeline.run_cycle(now=HOUR)
        telemetry = fragmented_catalog.telemetry
        assert telemetry.counter("autocomp.cycles") == 1
        assert telemetry.counter("autocomp.results.success") == 2
        assert telemetry.counter("autocomp.results.skipped") == 1
        assert telemetry.series("autocomp.cycle.candidates").last() == 3

    def test_feedback_hooks_invoked(self, fragmented_catalog):
        seen = []
        pipeline = _make_pipeline(fragmented_catalog, hooks=[seen.append])
        pipeline.run_cycle(now=HOUR)
        assert len(seen) == 1
        assert seen[0].cycle_index == 0

    def test_cycle_index_increments(self, fragmented_catalog):
        pipeline = _make_pipeline(fragmented_catalog)
        assert pipeline.run_cycle(now=HOUR).cycle_index == 0
        assert pipeline.run_cycle(now=2 * HOUR).cycle_index == 1

    def test_second_cycle_finds_nothing_new(self, fragmented_catalog):
        """After a clean first cycle there is nothing left to compact —
        the diminishing-returns effect of §2."""
        pipeline = _make_pipeline(fragmented_catalog)
        first = pipeline.run_cycle(now=HOUR)
        second = pipeline.run_cycle(now=2 * HOUR)
        assert first.total_files_reduced > 0
        assert second.total_files_reduced == 0

    def test_hybrid_generation(self, fragmented_catalog, simple_schema):
        pipeline = _make_pipeline(fragmented_catalog, generation="hybrid")
        report = pipeline.run_cycle(now=HOUR)
        # Partitioned tables contribute partition-scope candidates.
        assert any(k.partition is not None for k in report.selected)

    def test_trait_list_accepted(self, fragmented_catalog):
        connector = LstConnector(fragmented_catalog)
        backend = LstExecutionBackend(connector, Cluster("m", executors=2))
        pipeline = AutoCompPipeline(
            connector=connector,
            backend=backend,
            traits=[FileCountReductionTrait()],
            policy=WeightedSumPolicy([Objective("file_count_reduction", 1.0)]),
            selector=TopKSelector(5),
            scheduler=SequentialScheduler(),
        )
        report = pipeline.run_cycle(now=HOUR)
        assert report.successes == 2


class TestDeterminism:
    def test_identical_inputs_identical_decisions(self, simple_schema, monthly_spec):
        """NFR2: same state in, same selection out."""
        from repro.catalog import Catalog

        def build():
            catalog = Catalog()
            catalog.create_database("db")
            for i, count in enumerate([12, 7, 3]):
                table = catalog.create_table(f"db.t{i}", simple_schema, spec=monthly_spec)
                fragment_table(table, partitions=[(0,)], files_per_partition=count)
            return _make_pipeline(catalog)

        first = build().run_cycle(now=HOUR)
        second = build().run_cycle(now=HOUR)
        assert [str(k) for k in first.selected] == [str(k) for k in second.selected]
        assert first.total_files_reduced == second.total_files_reduced
