"""Tests for selectors (top-k and budget-constrained dynamic k)."""

from __future__ import annotations

import pytest

from repro.core import AllSelector, BudgetSelector, Candidate, CandidateKey, CandidateScope, TopKSelector
from repro.errors import ValidationError


def _ranked(costs):
    candidates = []
    for i, cost in enumerate(costs):
        candidate = Candidate(key=CandidateKey("db", f"t{i}", CandidateScope.TABLE))
        candidate.traits["compute_cost_gbhr"] = cost
        candidate.score = float(len(costs) - i)
        candidates.append(candidate)
    return candidates


class TestTopK:
    def test_takes_first_k(self):
        ranked = _ranked([1, 1, 1, 1])
        assert [c.key.table for c in TopKSelector(2).select(ranked)] == ["t0", "t1"]

    def test_k_larger_than_pool(self):
        assert len(TopKSelector(10).select(_ranked([1, 1]))) == 2

    def test_zero_or_negative_k(self):
        assert TopKSelector(0).select(_ranked([1])) == []
        assert TopKSelector(-5).select(_ranked([1])) == []


class TestBudgetSelector:
    def test_greedy_packing(self):
        """The paper's heuristic: fit as many high-priority tasks as fit."""
        ranked = _ranked([50, 30, 40, 10])
        selected = BudgetSelector(budget=90).select(ranked)
        # 50 + 30 fit; 40 does not (80+40 > 90); 10 still fits.
        assert [c.key.table for c in selected] == ["t0", "t1", "t3"]

    def test_strict_priority_mode_stops_at_overflow(self):
        ranked = _ranked([50, 60, 10])
        selected = BudgetSelector(budget=90, skip_unaffordable=False).select(ranked)
        assert [c.key.table for c in selected] == ["t0"]

    def test_dynamic_k_scales_with_budget(self):
        """Figure 10b: a larger budget admits many more candidates."""
        ranked = _ranked([10.0] * 100)
        small = BudgetSelector(budget=50).select(ranked)
        large = BudgetSelector(budget=500).select(ranked)
        assert len(small) == 5
        assert len(large) == 50

    def test_max_candidates_cap(self):
        ranked = _ranked([1.0] * 10)
        selected = BudgetSelector(budget=100, max_candidates=3).select(ranked)
        assert len(selected) == 3

    def test_zero_budget_selects_zero_cost_only(self):
        ranked = _ranked([0.0, 1.0, 0.0])
        selected = BudgetSelector(budget=0.0).select(ranked)
        assert [c.key.table for c in selected] == ["t0", "t2"]

    def test_negative_cost_rejected(self):
        ranked = _ranked([-1.0])
        with pytest.raises(ValidationError):
            BudgetSelector(budget=10).select(ranked)

    def test_missing_cost_trait_raises(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        with pytest.raises(ValidationError):
            BudgetSelector(budget=10).select([candidate])

    def test_validation(self):
        with pytest.raises(ValidationError):
            BudgetSelector(budget=-1)
        with pytest.raises(ValidationError):
            BudgetSelector(budget=1, max_candidates=-1)

    def test_custom_cost_trait(self):
        candidate = Candidate(key=CandidateKey("db", "t", CandidateScope.TABLE))
        candidate.traits["tbhr"] = 5.0
        selected = BudgetSelector(budget=10, cost_trait="tbhr").select([candidate])
        assert selected == [candidate]


class TestAllSelector:
    def test_selects_everything(self):
        ranked = _ranked([1, 2, 3])
        assert AllSelector().select(ranked) == ranked
