"""Tests for the per-table lock files, stale recovery, and the audit log."""

from __future__ import annotations

import json
import os

import pytest

from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.locks import (
    AUDIT_LOG,
    LockManager,
    default_owner,
    lock_slug,
    read_audit,
    verify_audit,
)
from repro.errors import ValidationError


@pytest.fixture
def lock_dir(tmp_path):
    return str(tmp_path / "locks")


class TestSlug:
    def test_distinct_keys_never_alias(self):
        # Sanitisation collapses both to the same prefix; the hash differs.
        assert lock_slug("db.t/x") != lock_slug("db.t:x")

    def test_filesystem_safe(self):
        slug = lock_slug("db.t[partition=2024/07]")
        assert "/" not in slug and "[" not in slug

    def test_candidate_key_slug_matches_str(self):
        key = CandidateKey("db", "t0", CandidateScope.TABLE)
        assert lock_slug(key) == lock_slug(str(key))


class TestAcquireRelease:
    def test_acquire_then_contend(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        b = LockManager(lock_dir, owner="b")
        assert a.acquire("db.t0")
        assert not b.acquire("db.t0")  # lock file already exists
        assert not a.acquire("db.t0")  # even the holder re-acquiring contends
        assert a.holds("db.t0") and not b.holds("db.t0")

    def test_release_frees_for_other_owner(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        b = LockManager(lock_dir, owner="b")
        assert a.acquire("db.t0")
        assert a.release("db.t0")
        assert b.acquire("db.t0")

    def test_release_unheld_is_false(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        assert not a.release("db.t0")

    def test_release_all(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        for i in range(3):
            assert a.acquire(f"db.t{i}")
        assert a.release_all() == 3
        assert a.held_keys() == []

    def test_candidate_key_lock_covers_qualified_table(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        key = CandidateKey("db", "t0", CandidateScope.TABLE)
        assert a.acquire(key, context="cycle:0")
        info = a.inspect_table("db.t0")
        assert info is not None
        assert info.owner == "a"
        assert info.context == "cycle:0"

    def test_validation(self, lock_dir):
        with pytest.raises(ValidationError):
            LockManager(lock_dir, stale_after_s=0)
        with pytest.raises(ValidationError):
            LockManager(lock_dir, heartbeat_interval_s=-1)

    def test_default_owners_are_distinct(self):
        assert default_owner() != default_owner()


class TestStaleRecovery:
    def test_dead_pid_is_reclaimed(self, lock_dir):
        a = LockManager(lock_dir, owner="crashed")
        assert a.acquire("db.t0")
        # Forge a dead owner: rewrite the lock file with an impossible pid,
        # then forget it locally (simulating the crashed process).
        path = a._path_for("db.t0")
        payload = json.loads(open(path).read())
        payload["pid"] = 2**22 + 12345  # beyond default pid_max
        with open(path, "w") as stream:
            json.dump(payload, stream)
        a._held.clear()

        b = LockManager(lock_dir, owner="restarted")
        assert b.recover_stale() == ["db.t0"]
        assert b.acquire("db.t0")

    def test_live_fresh_lock_is_not_reclaimed(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        assert a.acquire("db.t0")
        b = LockManager(lock_dir, owner="b")
        assert b.recover_stale() == []  # same live pid, fresh mtime

    def test_stale_heartbeat_is_reclaimed_even_with_live_pid(self, lock_dir):
        now = [1000.0]
        a = LockManager(lock_dir, owner="hung", stale_after_s=30, clock=lambda: now[0])
        assert a.acquire("db.t0")
        os.utime(a._path_for("db.t0"), (0, 0))  # heartbeat mtime long ago
        a._held.clear()  # hung instance won't defend it
        b = LockManager(lock_dir, owner="b", stale_after_s=30, clock=lambda: now[0])
        assert b.recover_stale() == ["db.t0"]

    def test_never_reclaims_own_held_lock(self, lock_dir):
        now = [1000.0]
        a = LockManager(lock_dir, owner="a", stale_after_s=30, clock=lambda: now[0])
        assert a.acquire("db.t0")
        os.utime(a._path_for("db.t0"), (0, 0))
        assert a.recover_stale() == []  # own locks are exempt
        assert a.holds("db.t0")

    def test_heartbeat_defends_against_mtime_staleness(self, lock_dir):
        now = [1000.0]
        a = LockManager(lock_dir, owner="a", stale_after_s=30, clock=lambda: now[0])
        assert a.acquire("db.t0")
        os.utime(a._path_for("db.t0"), (0, 0))
        assert a.heartbeat() == 1  # refreshes mtime
        b = LockManager(lock_dir, owner="b", stale_after_s=30, clock=lambda: now[0])
        # pid alive + fresh mtime -> not stale (ignore own-lock exemption
        # by checking from the sibling's perspective).
        assert b.recover_stale() == []

    def test_heartbeat_thread_start_stop_idempotent(self, lock_dir):
        a = LockManager(lock_dir, owner="a", heartbeat_interval_s=0.01)
        a.start_heartbeat()
        a.start_heartbeat()
        a.stop_heartbeat()
        a.stop_heartbeat()

    def test_close_releases_everything(self, lock_dir):
        with LockManager(lock_dir, owner="a") as a:
            a.acquire("db.t0")
            a.start_heartbeat()
        assert a.held_keys() == []
        assert a.list_locks() == []


class TestAudit:
    def test_clean_lifecycle_verifies(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        b = LockManager(lock_dir, owner="b")
        a.context = "cycle:0"
        assert a.acquire("db.t0")
        assert not b.acquire("db.t0")
        a.audit_compaction("db.t0", version=2)
        a.release("db.t0")
        assert b.acquire("db.t0", context="cycle:1")
        b.audit_compaction("db.t0", version=3)
        b.release("db.t0")
        summary = verify_audit(lock_dir)
        assert summary.ok, summary.violations
        assert summary.acquires == 2
        assert summary.releases == 2
        assert summary.contends == 1
        assert summary.compact_commits == 2
        assert summary.double_compactions == {}

    def test_unlocked_compaction_is_a_violation(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        a.audit_compaction("db.t0", version=2)  # no lock held by anyone
        summary = verify_audit(lock_dir)
        assert not summary.ok
        assert "without a lock" in summary.violations[0]

    def test_double_compaction_same_trigger_is_a_violation(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        assert a.acquire("db.t0", context="cycle:7")
        a.audit_compaction("db.t0", version=2)
        a.audit_compaction("db.t0", version=3)  # same key, same trigger
        a.release("db.t0")
        summary = verify_audit(lock_dir)
        assert not summary.ok
        assert summary.double_compactions == {"db.t0/cycle:7": 2}

    def test_same_key_different_triggers_is_clean(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        for cycle in range(2):
            assert a.acquire("db.t0", context=f"cycle:{cycle}")
            a.audit_compaction("db.t0", version=cycle + 2)
            a.release("db.t0")
        summary = verify_audit(lock_dir)
        assert summary.ok, summary.violations

    def test_reclaim_is_recorded_and_clean(self, lock_dir):
        a = LockManager(lock_dir, owner="crashed")
        assert a.acquire("db.t0")
        path = a._path_for("db.t0")
        payload = json.loads(open(path).read())
        payload["pid"] = 2**22 + 99
        with open(path, "w") as stream:
            json.dump(payload, stream)
        a._held.clear()
        b = LockManager(lock_dir, owner="b")
        b.recover_stale()
        assert b.acquire("db.t0")
        b.release("db.t0")
        summary = verify_audit(lock_dir)
        assert summary.ok, summary.violations
        assert summary.reclaims == 1

    def test_read_audit_missing_log(self, tmp_path):
        assert read_audit(tmp_path / "nope") == []

    def test_audit_lines_are_json(self, lock_dir):
        a = LockManager(lock_dir, owner="a")
        a.acquire("db.t0")
        a.release("db.t0")
        with open(os.path.join(lock_dir, AUDIT_LOG)) as stream:
            for line in stream:
                record = json.loads(line)
                assert record["owner"] == "a"
