"""Tests for Pareto-frontier selection (§8 future direction)."""

from __future__ import annotations

import pytest

from repro.core import Candidate, CandidateKey, CandidateScope
from repro.core.pareto import (
    ParetoFrontPolicy,
    ParetoObjective,
    knee_point,
    pareto_front,
)
from repro.errors import ValidationError

OBJECTIVES = [
    ParetoObjective("benefit", maximize=True),
    ParetoObjective("cost", maximize=False),
]


def _candidate(name, benefit, cost):
    candidate = Candidate(key=CandidateKey("db", name, CandidateScope.TABLE))
    candidate.traits["benefit"] = float(benefit)
    candidate.traits["cost"] = float(cost)
    return candidate


class TestParetoFront:
    def test_dominated_points_excluded(self):
        a = _candidate("a", benefit=10, cost=5)
        b = _candidate("b", benefit=8, cost=6)  # dominated by a
        c = _candidate("c", benefit=12, cost=9)
        front = pareto_front([a, b, c], OBJECTIVES)
        assert {str(x.key) for x in front} == {"db.a", "db.c"}

    def test_non_dominated_property(self):
        """Improving one objective on the frontier worsens another (§8)."""
        candidates = [
            _candidate(f"t{i}", benefit, cost)
            for i, (benefit, cost) in enumerate(
                [(1, 1), (2, 3), (3, 6), (4, 10), (2, 2), (3, 9)]
            )
        ]
        front = pareto_front(candidates, OBJECTIVES)
        for a in front:
            for b in front:
                if a is b:
                    continue
                better_benefit = a.trait("benefit") > b.trait("benefit")
                worse_cost = a.trait("cost") > b.trait("cost")
                if better_benefit:
                    assert worse_cost

    def test_identical_points_all_on_front(self):
        twins = [_candidate(f"t{i}", 5, 5) for i in range(3)]
        assert len(pareto_front(twins, OBJECTIVES)) == 3

    def test_single_candidate(self):
        only = _candidate("only", 1, 1)
        assert pareto_front([only], OBJECTIVES) == [only]

    def test_empty(self):
        assert pareto_front([], OBJECTIVES) == []

    def test_no_objectives_rejected(self):
        with pytest.raises(ValidationError):
            pareto_front([_candidate("a", 1, 1)], [])

    def test_three_objectives(self):
        objectives = OBJECTIVES + [ParetoObjective("freshness", maximize=True)]
        a = _candidate("a", 10, 5)
        a.traits["freshness"] = 1.0
        b = _candidate("b", 10, 5)
        b.traits["freshness"] = 2.0  # dominates a on the third axis
        front = pareto_front([a, b], objectives)
        assert front == [b]


class TestKneePoint:
    def test_balanced_point_selected(self):
        extreme_benefit = _candidate("big", benefit=100, cost=100)
        extreme_cheap = _candidate("cheap", benefit=1, cost=1)
        balanced = _candidate("balanced", benefit=80, cost=30)
        knee = knee_point([extreme_benefit, extreme_cheap, balanced], OBJECTIVES)
        assert str(knee.key) == "db.balanced"

    def test_empty_returns_none(self):
        assert knee_point([], OBJECTIVES) is None

    def test_single(self):
        only = _candidate("only", 5, 5)
        assert knee_point([only], OBJECTIVES) is only

    def test_deterministic(self):
        candidates = [
            _candidate(f"t{i}", benefit, cost)
            for i, (benefit, cost) in enumerate([(10, 2), (8, 1), (12, 4)])
        ]
        first = knee_point(list(candidates), OBJECTIVES)
        second = knee_point(list(reversed(candidates)), OBJECTIVES)
        assert str(first.key) == str(second.key)


class TestParetoFrontPolicy:
    def test_frontier_ranked_first(self):
        a = _candidate("a", 10, 5)
        dominated = _candidate("dom", 8, 6)
        c = _candidate("c", 12, 9)
        policy = ParetoFrontPolicy(OBJECTIVES, keep_dominated=True)
        ranked = policy.rank([dominated, a, c])
        names = [r.key.table for r in ranked]
        assert set(names[:2]) == {"a", "c"}
        assert names[2] == "dom"

    def test_dominated_dropped_by_default(self):
        a = _candidate("a", 10, 5)
        dominated = _candidate("dom", 8, 6)
        ranked = ParetoFrontPolicy(OBJECTIVES).rank([a, dominated])
        assert [r.key.table for r in ranked] == ["a"]

    def test_scores_assigned(self):
        a = _candidate("a", 10, 5)
        b = _candidate("b", 5, 1)
        ranked = ParetoFrontPolicy(OBJECTIVES).rank([a, b])
        assert all(r.score is not None for r in ranked)

    def test_empty(self):
        assert ParetoFrontPolicy(OBJECTIVES).rank([]) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            ParetoFrontPolicy([])

    def test_usable_in_pipeline_selector_chain(self):
        """ParetoFrontPolicy composes with TopK like any other policy."""
        from repro.core import TopKSelector

        candidates = [
            _candidate(f"t{i}", benefit, cost)
            # Three genuinely non-dominated points plus one dominated one.
            for i, (benefit, cost) in enumerate([(10, 3), (9, 2), (8, 1), (1, 50)])
        ]
        ranked = ParetoFrontPolicy(OBJECTIVES).rank(candidates)
        assert len(ranked) == 3
        top = TopKSelector(2).select(ranked)
        assert len(top) == 2
