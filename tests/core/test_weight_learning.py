"""Tests for feedback-driven weight adaptation (§8)."""

from __future__ import annotations

import pytest

from repro.core import Objective, WeightedSumPolicy
from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.pipeline import CycleReport
from repro.core.scheduling import ExecutionResult
from repro.core.weight_learning import WeightLearner
from repro.errors import ValidationError


def _policy(benefit=0.7):
    return WeightedSumPolicy(
        [
            Objective("file_count_reduction", benefit, maximize=True),
            Objective("compute_cost_gbhr", 1.0 - benefit, maximize=False),
        ]
    )


def _report(index, reduced, gbhr, results=1):
    report = CycleReport(cycle_index=index, started_at=float(index))
    for i in range(results):
        report.results.append(
            ExecutionResult(
                candidate=CandidateKey("db", f"t{i}", CandidateScope.TABLE),
                success=True,
                skipped=False,
                conflict_reason=None,
                started_at=0.0,
                finished_at=0.0,
                duration_s=1.0,
                gbhr=gbhr / results,
                files_before=100,
                files_after=100 - reduced // results,
                estimated_reduction=float(reduced),
                actual_reduction=reduced // results,
                rewritten_bytes=0,
                estimated_gbhr=gbhr / results,
            )
        )
    return report


class TestWeightLearner:
    def test_warmup_holds_weights(self):
        learner = WeightLearner(_policy(), warmup_cycles=3)
        for i in range(3):
            learner.observe(_report(i, reduced=100, gbhr=10))
        assert learner.benefit_weight == 0.7
        assert learner.updates == []

    def test_improving_efficiency_raises_benefit_weight(self):
        learner = WeightLearner(_policy(), warmup_cycles=1, learning_rate=0.05)
        learner.observe(_report(0, reduced=50, gbhr=10))   # eff 5
        learner.observe(_report(1, reduced=200, gbhr=10))  # eff 20 > mean
        assert learner.benefit_weight > 0.7
        assert len(learner.updates) == 1

    def test_degrading_efficiency_lowers_benefit_weight(self):
        learner = WeightLearner(_policy(), warmup_cycles=1, learning_rate=0.05)
        learner.observe(_report(0, reduced=200, gbhr=10))
        learner.observe(_report(1, reduced=10, gbhr=10))
        assert learner.benefit_weight < 0.7

    def test_weights_stay_clamped(self):
        learner = WeightLearner(
            _policy(), warmup_cycles=0, learning_rate=0.3, min_weight=0.4, max_weight=0.8
        )
        for i in range(10):
            learner.observe(_report(i, reduced=10 * (i + 1) ** 2, gbhr=10))
        assert 0.4 <= learner.benefit_weight <= 0.8

    def test_policy_weights_always_sum_to_one(self):
        learner = WeightLearner(_policy(), warmup_cycles=0, learning_rate=0.1)
        for i in range(5):
            learner.observe(_report(i, reduced=100 + 50 * i, gbhr=10))
        total = sum(o.weight for o in learner.policy.objectives)
        assert total == pytest.approx(1.0)

    def test_zero_cost_cycles_ignored(self):
        learner = WeightLearner(_policy(), warmup_cycles=0)
        learner.observe(_report(0, reduced=0, gbhr=0))
        assert learner.updates == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            WeightLearner(_policy(), learning_rate=0.9)
        with pytest.raises(ValidationError):
            WeightLearner(_policy(), min_weight=0.8, max_weight=0.5)
        with pytest.raises(ValidationError):
            WeightLearner(_policy(), warmup_cycles=-1)

    def test_regression_fit(self):
        learner = WeightLearner(_policy())
        reports = [
            _report(0, reduced=100, gbhr=10),
            _report(1, reduced=220, gbhr=20),
            _report(2, reduced=290, gbhr=30),
        ]
        slope, intercept = learner.regress_efficiency(reports)
        # Reduction grows roughly 10 files per GBHr in this data.
        assert 7 < slope < 12

    def test_regression_needs_two_distinct_samples(self):
        learner = WeightLearner(_policy())
        assert learner.regress_efficiency([]) is None
        assert learner.regress_efficiency([_report(0, 100, 10)]) is None


class TestPipelineIntegration:
    def test_learner_as_feedback_hook(self, catalog, simple_schema):
        """The §3.3 feedback loop: act-phase outcomes adjust decide-phase
        weights on the next cycle."""
        from repro.core import (
            AutoCompPipeline,
            LstConnector,
            LstExecutionBackend,
            SequentialScheduler,
            TopKSelector,
        )
        from repro.core.traits import (
            ComputeCostTrait,
            FileCountReductionTrait,
        )
        from repro.engine import Cluster
        from repro.units import GiB, MiB

        from tests.conftest import fragment_table

        catalog.create_database("db")
        for i in range(3):
            table = catalog.create_table(f"db.t{i}", simple_schema)
            fragment_table(table, partitions=[()], files_per_partition=10 + 5 * i)

        policy = _policy()
        learner = WeightLearner(policy, warmup_cycles=0, learning_rate=0.05)
        connector = LstConnector(catalog)
        pipeline = AutoCompPipeline(
            connector=connector,
            backend=LstExecutionBackend(connector, Cluster("m", executors=2)),
            traits=[
                FileCountReductionTrait(),
                ComputeCostTrait(executor_memory_gb=64.0, rewrite_bytes_per_hour=1 * GiB),
            ],
            policy=policy,
            selector=TopKSelector(1),
            scheduler=SequentialScheduler(),
            feedback_hooks=[learner.observe],
        )
        pipeline.run_cycle(now=0.0)
        first_weight = learner.benefit_weight
        # Fragment another table so the second cycle has work too.
        table = catalog.create_table("db.t9", simple_schema)
        fragment_table(table, partitions=[()], files_per_partition=40)
        pipeline.run_cycle(now=1.0)
        assert learner.benefit_weight != first_weight or learner.updates
