"""Tests for the policy plane: PolicyStore, audit replay, PolicyPromoter."""

from __future__ import annotations

import json
import os
from types import SimpleNamespace

import pytest

from repro.core import (
    AutoCompService,
    MinTableAgeFilter,
    PolicyPromoter,
    PolicyStore,
    apply_variant,
    openhouse_pipeline,
    openhouse_sharded_pipeline,
    read_promotions,
    replay_promotions,
    verify_promotions,
)
from repro.core.filters import MinSmallFileCountFilter, QuiescenceFilter
from repro.core.weight_learning import WeightLearner
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.replay import PolicyVariant
from repro.units import HOUR, MiB

from tests.conftest import fragment_table

ACTIVE = PolicyVariant(name="boot", k=10)
CHALLENGER = PolicyVariant(name="eager", k=20, benefit_weight=0.8)
THIRD = PolicyVariant(name="lazy", k=4, trigger_interval_days=2)


# --- PolicyStore ------------------------------------------------------------------


class TestPolicyStore:
    def test_initialize_is_idempotent(self, tmp_path):
        store = PolicyStore(tmp_path)
        assert store.version is None and store.state is None and store.active is None
        assert store.initialize(ACTIVE, pool=[CHALLENGER])
        assert not store.initialize(CHALLENGER)  # restart must not clobber
        assert store.version == 1
        assert store.state == "STABLE"
        assert store.active == ACTIVE
        assert store.pool() == [CHALLENGER]

    def test_variant_round_trips_through_disk(self, tmp_path):
        PolicyStore(tmp_path).initialize(CHALLENGER)
        assert PolicyStore(tmp_path).active == CHALLENGER

    def test_pool_names_must_be_unique(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        with pytest.raises(ValidationError):
            store.set_pool([CHALLENGER, CHALLENGER.renamed("eager")])

    def test_promote_guard_confirm_lifecycle(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        version = store.promote(CHALLENGER, guard={"cycles": 2})
        assert version == 2
        assert store.state == "GUARD"
        assert store.active == CHALLENGER
        assert store.previous == ACTIVE
        assert store.guard == {"cycles": 2}
        store.confirm(metrics={"efficiency": 1.0})
        assert store.state == "STABLE"
        assert store.version == 2  # confirm keeps the promoted version
        assert store.previous is None and store.guard is None

    def test_rollback_restores_previous(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store.promote(CHALLENGER)
        version = store.rollback(reason="degraded", metrics={"efficiency": 0.1})
        assert version == 3  # rollback is its own version bump
        assert store.state == "STABLE"
        assert store.active == ACTIVE

    def test_transition_preconditions(self, tmp_path):
        store = PolicyStore(tmp_path)
        with pytest.raises(ValidationError):
            store.promote(CHALLENGER)  # not initialised
        store.initialize(ACTIVE)
        with pytest.raises(ValidationError):
            store.rollback()  # STABLE has nothing to roll back
        with pytest.raises(ValidationError):
            store.confirm()
        store.promote(CHALLENGER)
        with pytest.raises(ValidationError):
            store.promote(THIRD)  # no stacking promotions under GUARD

    def test_snapshot_is_json_safe(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE, pool=[CHALLENGER, THIRD])
        store.promote(CHALLENGER, guard={"cycles": 3})
        snapshot = store.snapshot()
        json.dumps(snapshot)
        assert snapshot["version"] == 2
        assert snapshot["state"] == "GUARD"
        assert snapshot["active"] == "eager"
        assert snapshot["previous"] == "boot"
        assert snapshot["pool"] == ["eager", "lazy"]

    def test_state_survives_reopen_mid_guard(self, tmp_path):
        first = PolicyStore(tmp_path)
        first.initialize(ACTIVE)
        first.promote(CHALLENGER, guard={"cycles": 2, "baseline": {"efficiency": 5.0}})
        second = PolicyStore(tmp_path)
        assert second.recovered_action is None  # clean log: nothing to do
        assert second.state == "GUARD"
        assert second.guard["baseline"] == {"efficiency": 5.0}
        second.rollback(reason="after restart")
        assert second.active == ACTIVE


# --- crash recovery ---------------------------------------------------------------


class TestCrashRecovery:
    def crash_between_intent_and_flip(self, tmp_path, op="promote"):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        if op == "rollback":
            store.promote(CHALLENGER)

        def die(op_name, variant_name):
            raise KeyboardInterrupt  # stands in for kill -9 inside the window

        store.promote_hook = die
        with pytest.raises(KeyboardInterrupt):
            if op == "promote":
                store.promote(THIRD)
            else:
                store.rollback(reason="x")
        return store.version

    def test_intent_without_flip_is_aborted(self, tmp_path):
        version_before = self.crash_between_intent_and_flip(tmp_path, op="promote")
        reopened = PolicyStore(tmp_path)
        assert reopened.recovered_action.startswith("aborted promote")
        assert reopened.version == version_before
        assert reopened.state == "STABLE"
        assert verify_promotions(tmp_path).violations == []
        # The aborted attempt leaves the store fully usable.
        reopened.promote(THIRD)
        assert reopened.active == THIRD

    def test_rollback_intent_without_flip_is_aborted(self, tmp_path):
        self.crash_between_intent_and_flip(tmp_path, op="rollback")
        reopened = PolicyStore(tmp_path)
        assert reopened.recovered_action.startswith("aborted rollback")
        assert reopened.state == "GUARD"  # still judging the promotion
        assert verify_promotions(tmp_path).violations == []

    def test_flip_without_commit_line_is_completed(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store.promote(CHALLENGER)
        # Drop the trailing commit line: the crash landed after the
        # active.json flip but before the audit append.
        with open(store.audit_path, encoding="utf-8") as stream:
            lines = stream.read().splitlines()
        assert json.loads(lines[-1])["event"] == "promote"
        with open(store.audit_path, "w", encoding="utf-8") as stream:
            stream.write("\n".join(lines[:-1]) + "\n")
        reopened = PolicyStore(tmp_path)
        assert reopened.recovered_action == "completed promote v2"
        assert reopened.version == 2
        assert reopened.active == CHALLENGER
        events = read_promotions(tmp_path)
        assert events[-1]["event"] == "promote" and events[-1]["recovered"]
        assert verify_promotions(tmp_path).violations == []

    def test_guard_pass_flip_lost_is_completed(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store.promote(CHALLENGER)
        # confirm() audits first, flips second; emulate dying in between.
        store._audit("guard_pass", version=2, variant="eager", metrics={})
        reopened = PolicyStore(tmp_path)
        assert reopened.recovered_action == "completed guard_pass v2"
        assert reopened.state == "STABLE"
        assert reopened.version == 2
        assert reopened.active == CHALLENGER
        assert verify_promotions(tmp_path).violations == []

    def test_torn_active_file_resolves_via_abort(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store._audit("promote_intent", to_version=2, variant="eager", from_variant="boot")
        with open(os.path.join(tmp_path, "active.json"), "w") as stream:  # repro-lint: disable=RL002 -- deliberately torn write: the test simulates a crashed non-atomic writer
            stream.write('{"version": 2, "sta')  # kill -9 mid-rewrite... of a non-atomic writer
        reopened = PolicyStore(tmp_path)
        assert reopened.recovered_action.startswith("aborted promote")
        assert reopened.version is None  # torn file reads as missing


# --- audit replay / verification --------------------------------------------------


class TestPromotionReplay:
    def test_clean_history_counts_and_final_state(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE, pool=[CHALLENGER])
        store.record_shadow({"decision": "hold"})
        store.promote(CHALLENGER)
        store.confirm()
        store.promote(THIRD)
        store.rollback(reason="bad")
        summary = verify_promotions(tmp_path)
        assert summary.violations == []
        assert summary.promotions == 2
        assert summary.rollbacks == 1
        assert summary.guard_passes == 1
        assert summary.shadows == 1
        assert summary.final_version == 4
        assert summary.final_state == "STABLE"
        assert summary.final_variant == "eager"

    def test_replay_flags_commit_without_intent(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store._audit("promote", version=2, variant="eager")
        summary = replay_promotions(tmp_path)
        assert any("no matching intent" in v for v in summary.violations)

    def test_replay_flags_version_skip(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store._audit("promote_intent", to_version=5, variant="eager", from_variant="boot")
        store._audit("promote", version=5, variant="eager")
        summary = replay_promotions(tmp_path)
        assert any("does not follow" in v for v in summary.violations)

    def test_replay_flags_unresolved_intent(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        store._audit("promote_intent", to_version=2, variant="eager", from_variant="boot")
        summary = replay_promotions(tmp_path)
        assert any("unresolved" in v for v in summary.violations)

    def test_verify_flags_active_file_divergence(self, tmp_path):
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        record = dict(store._active)
        record["version"] = 7
        store._write_json(store._active_path, record)
        summary = verify_promotions(tmp_path)
        assert any("active.json v7" in v for v in summary.violations)

    def test_missing_log_and_torn_lines_are_tolerated(self, tmp_path):
        assert read_promotions(tmp_path) == []
        store = PolicyStore(tmp_path)
        store.initialize(ACTIVE)
        with open(store.audit_path, "a", encoding="utf-8") as stream:
            stream.write('{"event": "prom')  # torn tail line
        assert [e["event"] for e in read_promotions(tmp_path)] == ["init"]
        assert verify_promotions(tmp_path).violations == []


# --- applying variants to live pipelines ------------------------------------------


def build_fleet(catalog, simple_schema, monthly_spec, tables=3):
    catalog.create_database("db", quota_objects=100_000)
    for i in range(tables):
        table = catalog.create_table(f"db.t{i}", simple_schema, spec=monthly_spec)
        fragment_table(table, partitions=[(0,)], files_per_partition=8)
    catalog.clock.advance_by(2 * HOUR)
    return catalog


class TestApplyVariant:
    def test_swaps_policy_selector_and_policy_filters(
        self, catalog, simple_schema, monthly_spec
    ):
        fleet = build_fleet(catalog, simple_schema, monthly_spec)
        pipeline = openhouse_pipeline(fleet, Cluster("maint", executors=2))
        variant = PolicyVariant(
            name="v", k=3, min_small_files=4, quiesce_days=2.0, generation="partition"
        )
        apply_variant(pipeline, variant)
        assert pipeline.selector.k == 3
        assert pipeline.generation == "partition"
        small = [f for f in pipeline.stats_filters if isinstance(f, MinSmallFileCountFilter)]
        assert len(small) == 1 and small[0].min_small_files == 4
        assert any(isinstance(f, QuiescenceFilter) for f in pipeline.stats_filters)
        # Deployment-owned filters survive the swap.
        assert any(isinstance(f, MinTableAgeFilter) for f in pipeline.stats_filters)
        # Re-applying replaces rather than stacks the policy filters.
        apply_variant(pipeline, PolicyVariant(name="w", k=5, quiesce_days=0.0))
        assert (
            len([f for f in pipeline.stats_filters if isinstance(f, MinSmallFileCountFilter)])
            == 1
        )
        assert not any(isinstance(f, QuiescenceFilter) for f in pipeline.stats_filters)

    def test_sharded_pipeline_updates_every_shard(
        self, catalog, simple_schema, monthly_spec
    ):
        fleet = build_fleet(catalog, simple_schema, monthly_spec)
        pipeline = openhouse_sharded_pipeline(
            fleet, Cluster("maint", executors=2), n_shards=2, max_workers=1
        )
        try:
            apply_variant(pipeline, PolicyVariant(name="v", k=3))
            assert all(shard.selector.k == 3 for shard in pipeline.shards)
            assert pipeline.selector.k == 3
            report = pipeline.run_cycle()  # still runs end to end
            assert report.report.cycle_index == 0
        finally:
            pipeline.close()


# --- the promoter against a scripted service --------------------------------------


class FakeScore(SimpleNamespace):
    pass


def score(variant, efficiency, gbhr=1.0, files_reduced=10):
    return FakeScore(
        variant=variant, efficiency=efficiency, gbhr=gbhr, files_reduced=files_reduced
    )


class FakeReport:
    def __init__(self, scores):
        self.scores = scores

    def ranked(self):
        return sorted(self.scores, key=lambda s: -s.efficiency)

    def best(self):
        return self.ranked()[0]

    def to_priors(self):
        best = self.best()
        return {"k": float(best.variant.k or 0), "benefit_weight": best.variant.benefit_weight}

    def prior_efficiencies(self):
        return [s.efficiency for s in self.scores]


class FakeService:
    """Just the surface PolicyPromoter.attach()/step() touch."""

    def __init__(self, report=None, history_cycles=5):
        self.pipeline = SimpleNamespace(telemetry=None, tracer=None)
        self.cycle_hooks = []
        self.policy_store = None
        self._history = SimpleNamespace(
            trace=lambda window=None: SimpleNamespace(
                events=[{"kind": "cycle"}] * history_cycles
            )
        )
        self._history_taps = None
        self.report = report
        self.eval_calls = 0

    def use_policy_store(self, store):
        self.policy_store = store

    def enable_history(self):
        return self._history

    def evaluate_recent(self, variants, window=None, rank_by="efficiency", workers=1, perturb=None):
        self.eval_calls += 1
        return self.report


def live_report(files=20, gbhr=2.0, rewritten=100 * MiB, candidates=5):
    result = SimpleNamespace(rewritten_bytes=rewritten, success=True)
    return SimpleNamespace(
        candidates_generated=candidates,
        results=[result],
        total_files_reduced=files,
        total_gbhr=gbhr,
    )


def make_promoter(tmp_path, report=None, pool=(CHALLENGER,), **kwargs):
    store = PolicyStore(tmp_path)
    store.initialize(ACTIVE, pool=list(pool))
    promoter = PolicyPromoter(store, **kwargs)
    service = FakeService(report=report)
    promoter.attach(service)
    return promoter, store, service


class TestPromoterStep:
    def test_step_requires_attachment_and_initialised_store(self, tmp_path):
        promoter = PolicyPromoter(PolicyStore(tmp_path))
        with pytest.raises(ValidationError):
            promoter.step()
        promoter.attach(FakeService())
        with pytest.raises(ValidationError):
            promoter.step()  # store never initialised

    def test_attach_is_idempotent_but_single_service(self, tmp_path):
        promoter, _, service = make_promoter(tmp_path)
        assert promoter.attach(service) is promoter
        assert service.cycle_hooks == [promoter.observe_cycle]  # not doubled
        with pytest.raises(ValidationError):
            promoter.attach(FakeService())

    def test_empty_pool_holds(self, tmp_path):
        promoter, _, service = make_promoter(tmp_path, pool=[ACTIVE])
        decision = promoter.step()
        assert decision == {"action": "hold", "reason": "empty_pool"}
        assert service.eval_calls == 0
        assert promoter.holds == 1

    def test_insufficient_history_holds(self, tmp_path):
        report = FakeReport([score(ACTIVE, 1.0), score(CHALLENGER, 9.0)])
        promoter, _, service = make_promoter(
            tmp_path, report=report, min_history_cycles=10
        )
        decision = promoter.step()
        assert decision["reason"] == "insufficient_history"
        assert service.eval_calls == 0

    def test_no_clear_winner_never_churns(self, tmp_path):
        # 3% better than active: inside the 5% margin, so hold — repeatedly.
        report = FakeReport([score(ACTIVE, 1.00), score(CHALLENGER, 1.03)])
        promoter, store, _ = make_promoter(tmp_path, report=report, promote_margin=0.05)
        for _ in range(3):
            decision = promoter.step()
            assert decision["action"] == "hold"
            assert decision["reason"] == "no_clear_winner"
        assert store.version == 1  # the active policy was never touched
        assert promoter.shadow_evals == 3
        summary = verify_promotions(store.store_dir)
        assert summary.shadows == 3 and summary.promotions == 0

    def test_clear_winner_promotes_with_guard_baseline(self, tmp_path):
        report = FakeReport([score(ACTIVE, 1.0), score(CHALLENGER, 2.0)])
        learner = WeightLearner(
            PolicyVariant(name="p").build_policy(), warmup_cycles=0
        )
        promoter, store, _ = make_promoter(
            tmp_path, report=report, guard_cycles=2, learner=learner
        )
        promoter.observe_cycle(live_report(files=30, gbhr=3.0))  # pre-promotion live metric
        decision = promoter.step()
        assert decision["action"] == "promote"
        assert decision["variant"] == "eager"
        assert decision["over"] == "boot"
        assert store.state == "GUARD"
        assert store.version == 2
        guard = store.guard
        assert guard["cycles"] == 2
        assert guard["baseline"]["efficiency"] == pytest.approx(10.0)
        assert guard["shadow"] == {"winner": 2.0, "active": 1.0}
        assert promoter.warm_start["k"] == float(CHALLENGER.k)
        assert learner._efficiencies  # shadow efficiencies absorbed as priors

    def test_guard_window_blocks_further_promotions(self, tmp_path):
        report = FakeReport([score(ACTIVE, 1.0), score(CHALLENGER, 2.0)])
        promoter, store, service = make_promoter(tmp_path, report=report)
        promoter.step()
        calls = service.eval_calls
        decision = promoter.step()
        assert decision["action"] == "guard_wait"
        assert service.eval_calls == calls  # no shadow evaluation during GUARD
        assert store.version == 2

    def test_gbhr_ranking_inverts_the_margin(self, tmp_path):
        cheap = score(CHALLENGER, 1.0, gbhr=0.5)
        pricey = score(ACTIVE, 1.0, gbhr=1.0)

        class ByGbhr(FakeReport):
            def ranked(self):
                return sorted(self.scores, key=lambda s: s.gbhr)

        promoter, store, _ = make_promoter(
            tmp_path, report=ByGbhr([pricey, cheap]), rank_by="gbhr"
        )
        assert promoter.step()["action"] == "promote"
        assert store.active == CHALLENGER

    def test_status_is_json_safe(self, tmp_path):
        report = FakeReport([score(ACTIVE, 1.0), score(CHALLENGER, 2.0)])
        promoter, _, _ = make_promoter(tmp_path, report=report)
        promoter.step()
        status = promoter.status()
        json.dumps(status)
        assert status["attached"] and status["promotions"] == 1
        assert status["store"]["state"] == "GUARD"

    def test_validation(self, tmp_path):
        store = PolicyStore(tmp_path)
        with pytest.raises(ValidationError):
            PolicyPromoter(store, guard_cycles=0)
        with pytest.raises(ValidationError):
            PolicyPromoter(store, promote_margin=-0.1)
        with pytest.raises(ValidationError):
            PolicyPromoter(store, guard_tolerance=0.0)
        with pytest.raises(ValidationError):
            PolicyPromoter(store, min_history_cycles=0)
        with pytest.raises(ValidationError):
            PolicyPromoter(store, eval_workers=0)


class TestGuardWindow:
    def promote_with_baseline(self, tmp_path, baseline_eff=10.0, **kwargs):
        report = FakeReport([score(ACTIVE, 1.0), score(CHALLENGER, 2.0)])
        promoter, store, service = make_promoter(
            tmp_path, report=report, guard_cycles=2, **kwargs
        )
        promoter.observe_cycle(live_report(files=int(baseline_eff * 3), gbhr=3.0))
        assert promoter.step()["action"] == "promote"
        return promoter, store, service

    def test_idle_cycles_carry_no_evidence(self, tmp_path):
        promoter, store, _ = self.promote_with_baseline(tmp_path)
        idle = SimpleNamespace(
            candidates_generated=0, results=[], total_files_reduced=0, total_gbhr=0.0
        )
        for _ in range(5):
            promoter.observe_cycle(idle)
        assert store.state == "GUARD"  # the window never advanced

    def test_degradation_rolls_back(self, tmp_path):
        promoter, store, _ = self.promote_with_baseline(tmp_path, baseline_eff=10.0)
        # Injected degradation: efficiency collapses to 1/30th of baseline.
        promoter.observe_cycle(live_report(files=1, gbhr=3.0))
        promoter.observe_cycle(live_report(files=1, gbhr=3.0))
        assert store.state == "STABLE"
        assert store.active == ACTIVE  # the boot policy is back
        assert promoter.rollbacks == 1
        assert promoter.last_decision["action"] == "rollback"
        assert any("efficiency" in d for d in promoter.last_decision["degraded"])
        summary = verify_promotions(store.store_dir)
        assert summary.violations == []
        assert summary.rollbacks == 1
        evidence = [e for e in read_promotions(store.store_dir) if e["event"] == "rollback_evidence"]
        assert len(evidence) == 1 and evidence[0]["reason"]

    def test_healthy_guard_confirms_and_feeds_learner(self, tmp_path):
        learner = WeightLearner(PolicyVariant(name="p").build_policy(), warmup_cycles=0)
        promoter, store, _ = self.promote_with_baseline(
            tmp_path, baseline_eff=10.0, learner=learner
        )
        priors_before = len(learner._efficiencies)
        promoter.observe_cycle(live_report(files=36, gbhr=3.0))  # 12 files/GBHr
        promoter.observe_cycle(live_report(files=36, gbhr=3.0))
        assert store.state == "STABLE"
        assert store.active == CHALLENGER  # the promotion stuck
        assert promoter.guard_passes == 1
        assert len(learner._efficiencies) == priors_before + 1  # realised efficiency fed
        assert verify_promotions(store.store_dir).guard_passes == 1

    def test_guard_tolerance_allows_mild_regression(self, tmp_path):
        promoter, store, _ = self.promote_with_baseline(tmp_path, baseline_eff=10.0)
        # 10% worse with 25% tolerance: confirmed, not rolled back.
        promoter.observe_cycle(live_report(files=27, gbhr=3.0))
        promoter.observe_cycle(live_report(files=27, gbhr=3.0))
        assert store.state == "STABLE"
        assert promoter.guard_passes == 1 and promoter.rollbacks == 0

    def test_write_amplification_degradation_rolls_back(self, tmp_path):
        promoter, store, _ = self.promote_with_baseline(tmp_path)
        # Make write-amp explode: same efficiency, 100x the rewrite per ingest.
        baseline = store.guard["baseline"]
        assert baseline["write_amplification"] == 0.0  # no ingest observed yet
        # Seed a positive baseline by hand so the ceiling check is live.
        record = dict(store._active)
        record["guard"] = dict(record["guard"])
        record["guard"]["baseline"] = {
            "efficiency": 10.0,
            "write_amplification": 0.5,
            "gbhr": 3.0,
            "files_reduced": 30.0,
        }
        store._write_json(store._active_path, record)
        store._active = record
        promoter._on_commit("table_commit", {"op": "append", "added": [["p", MiB]]})
        promoter.observe_cycle(live_report(files=30, gbhr=3.0, rewritten=100 * MiB))
        promoter._on_commit("table_commit", {"op": "append", "added": [["p", MiB]]})
        promoter.observe_cycle(live_report(files=30, gbhr=3.0, rewritten=100 * MiB))
        assert store.state == "STABLE"
        assert store.active == ACTIVE
        assert any("write_amplification" in d for d in promoter.last_decision["degraded"])

    def test_replace_commits_do_not_count_as_ingest(self, tmp_path):
        promoter, _, _ = make_promoter(tmp_path)
        promoter._on_commit("table_commit", {"op": "replace", "added": [["p", MiB]]})
        assert promoter._drain_ingested() == 0
        promoter._on_commit("table_commit", {"op": "append", "added": [["p", 2 * MiB]]})
        assert promoter._drain_ingested() == 2 * MiB


# --- against a real service -------------------------------------------------------


class TestPromoterOnRealService:
    def build(self, catalog, simple_schema, monthly_spec, tmp_path):
        fleet = build_fleet(catalog, simple_schema, monthly_spec, tables=4)
        pipeline = openhouse_pipeline(
            fleet, Cluster("maint", executors=2), min_table_age_s=0.0
        )
        service = AutoCompService(pipeline)
        store = PolicyStore(tmp_path / "policy")
        # The boot variant is useless (its small-file floor filters every
        # candidate); every real challenger beats it deterministically.
        dud = PolicyVariant(name="dud", k=10, min_small_files=500)
        store.initialize(
            dud, pool=[dud, PolicyVariant(name="k10", k=10), PolicyVariant(name="k2", k=2)]
        )
        promoter = PolicyPromoter(store, guard_cycles=1, min_history_cycles=1)
        promoter.attach(service)
        return fleet, service, store, promoter

    def run_cycles(self, fleet, service, n=2):
        for _ in range(n):
            for table in fleet.database("db").tables.values():
                fragment_table(table, partitions=[(0,)], files_per_partition=4,
                               file_size=4 * MiB)
            fleet.clock.advance_by(HOUR)
            service.run_cycle(now=fleet.clock.now)

    def test_shadow_eval_promotes_and_next_cycle_applies(
        self, catalog, simple_schema, monthly_spec, tmp_path
    ):
        fleet, service, store, promoter = self.build(
            catalog, simple_schema, monthly_spec, tmp_path
        )
        self.run_cycles(fleet, service, n=2)
        decision = promoter.step()
        assert decision["action"] == "promote"
        assert decision["over"] == "dud"
        assert store.state == "GUARD"
        # The next live cycle resolves the promoted policy through the
        # store seam and runs under it...
        self.run_cycles(fleet, service, n=1)
        applied = [
            f for f in service.pipeline.stats_filters
            if isinstance(f, MinSmallFileCountFilter)
        ]
        assert applied and applied[0].min_small_files < 500
        # ...and with guard_cycles=1 that one productive cycle judged the
        # window (the dud baseline had zero efficiency, so no degradation).
        assert store.state == "STABLE"
        assert promoter.guard_passes == 1
        summary = verify_promotions(store.store_dir)
        assert summary.violations == []
        assert summary.promotions == 1 and summary.guard_passes == 1

    def test_promoter_counters_reach_telemetry(
        self, catalog, simple_schema, monthly_spec, tmp_path
    ):
        fleet, service, store, promoter = self.build(
            catalog, simple_schema, monthly_spec, tmp_path
        )
        self.run_cycles(fleet, service, n=2)
        promoter.step()
        telemetry = service.pipeline.telemetry
        assert telemetry.counter("autocomp.promoter.shadow_evals") == 1
        assert telemetry.counter("autocomp.promoter.promotions") == 1
        assert telemetry.series("autocomp.promoter.active_version").last() == 2
        assert telemetry.histogram("autocomp.hist.promoter_eval_wall_s").count == 1
