"""Tests for the incremental-observation caches (statscache)."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core import (
    AutoCompService,
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    IndexedCandidateCache,
    LstConnector,
    StatsCache,
    openhouse_pipeline,
)
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetConnector,
    FleetModel,
    ShardedAutoCompStrategy,
)
from repro.units import DAY, MiB

from tests.conftest import fragment_table


def _stats(small: int = 5, total: int = 10) -> CandidateStatistics:
    sizes = [8 * MiB] * small + [600 * MiB] * (total - small)
    return CandidateStatistics.from_file_sizes(sizes, target_file_size=512 * MiB)


def _table_key(db: str = "db", table: str = "events") -> CandidateKey:
    return CandidateKey(db, table, CandidateScope.TABLE)


def _partition_key(partition) -> CandidateKey:
    return CandidateKey("db", "events", CandidateScope.PARTITION, partition=partition)


class TestStatsCache:
    def test_put_then_get_hits(self):
        cache = StatsCache()
        key, stats = _table_key(), _stats()
        assert cache.get(key) is None
        cache.put(key, stats)
        assert cache.get(key) is stats
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert key in cache and len(cache) == 1

    def test_ttl_expiry_evicts(self):
        cache = StatsCache(ttl_s=10.0)
        key, stats = _table_key(), _stats()
        cache.put(key, stats, now=100.0)
        assert cache.get(key, now=109.9) is stats
        assert cache.get(key, now=110.0) is None  # aged out
        assert cache.expirations == 1
        assert key not in cache

    def test_token_mismatch_evicts(self):
        cache = StatsCache()
        key, stats = _table_key(), _stats()
        cache.put(key, stats, token=3)
        assert cache.get(key, token=3) is stats
        assert cache.get(key, token=4) is None
        assert cache.expirations == 1

    def test_invalidate_drops_all_scopes_of_the_table(self):
        cache = StatsCache()
        cache.put(_table_key(), _stats())
        cache.put(_partition_key((0,)), _stats())
        cache.put(_partition_key((1,)), _stats())
        cache.put(_table_key(table="other"), _stats())
        dropped = cache.invalidate(_partition_key((0,)))
        assert dropped == 3
        assert cache.invalidations == 3
        assert len(cache) == 1
        assert _table_key(table="other") in cache

    def test_invalidate_key_is_exact(self):
        cache = StatsCache()
        cache.put(_table_key(), _stats())
        cache.put(_partition_key((0,)), _stats())
        assert cache.invalidate_key(_partition_key((0,)))
        assert not cache.invalidate_key(_partition_key((0,)))
        assert _table_key() in cache

    def test_clear_preserves_counters(self):
        cache = StatsCache()
        cache.put(_table_key(), _stats())
        cache.get(_table_key())
        cache.clear()
        assert len(cache) == 0
        assert cache.hits == 1

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValidationError):
            StatsCache(ttl_s=0)


class TestIndexedCandidateCache:
    def _candidate(self, index: int = 0) -> Candidate:
        return Candidate(key=_table_key(table=f"table{index:06d}"), statistics=_stats())

    def test_put_then_get_hits_with_matching_token(self):
        cache = IndexedCandidateCache()
        candidate = self._candidate()
        cache.put(3, candidate, now=0.0, token=7)
        assert cache.get(3, token=7) is candidate
        assert cache.get(3, token=8) is None  # version bumped -> stale
        assert (cache.hits, cache.misses) == (1, 1)

    def test_ttl_expiry(self):
        cache = IndexedCandidateCache(ttl_s=5.0)
        candidate = self._candidate()
        cache.put(0, candidate, now=0.0, token=1)
        assert cache.get(0, now=4.9, token=1) is candidate
        assert cache.get(0, now=5.0, token=1) is None

    def test_invalidate_index(self):
        cache = IndexedCandidateCache()
        cache.put(2, self._candidate(), token=1)
        assert cache.invalidate_index(2)
        assert not cache.invalidate_index(2)
        assert not cache.invalidate_index(99)  # out of capacity: no-op
        assert cache.get(2, token=1) is None
        assert cache.invalidations == 1

    def test_unseen_index_is_a_miss(self):
        cache = IndexedCandidateCache()
        assert cache.get(41) is None
        assert cache.misses == 1


class TestLstConnectorCaching:
    def _world(self, catalog, simple_schema, monthly_spec):
        catalog.create_database("db")
        table = catalog.create_table("db.events", simple_schema, spec=monthly_spec)
        fragment_table(table)
        return table

    def test_second_observation_is_served_from_cache(
        self, catalog, simple_schema, monthly_spec
    ):
        self._world(catalog, simple_schema, monthly_spec)
        cache = StatsCache()
        connector = LstConnector(catalog, stats_cache=cache)
        key = connector.list_candidates("table")[0]
        first = connector.collect_statistics(key)
        second = connector.collect_statistics(key)
        assert second is first  # the frozen statistics object itself
        assert cache.hits == 1

    def test_invalidate_forces_reobservation(self, catalog, simple_schema, monthly_spec):
        table = self._world(catalog, simple_schema, monthly_spec)
        cache = StatsCache()
        connector = LstConnector(catalog, stats_cache=cache)
        key = connector.list_candidates("table")[0]
        before = connector.collect_statistics(key)
        fragment_table(table, partitions=[(2,)], files_per_partition=4)
        # Trust model: without an event the stale entry is still served...
        assert connector.collect_statistics(key) is before
        # ...and the write event evicts it.
        connector.invalidate(key)
        after = connector.collect_statistics(key)
        assert after.file_count == before.file_count + 4

    def test_ttl_fallback_uses_the_catalog_clock(
        self, catalog, simple_schema, monthly_spec
    ):
        table = self._world(catalog, simple_schema, monthly_spec)
        cache = StatsCache(ttl_s=60.0)
        connector = LstConnector(catalog, stats_cache=cache)
        key = connector.list_candidates("table")[0]
        before = connector.collect_statistics(key)
        fragment_table(table, partitions=[(2,)], files_per_partition=4)
        catalog.clock.advance_by(61.0)
        assert connector.collect_statistics(key).file_count == before.file_count + 4
        assert cache.expirations == 1


class TestServiceNotifyInvalidation:
    def test_notify_drains_into_cache_invalidation(
        self, catalog, simple_schema, monthly_spec, compaction_cluster
    ):
        catalog.create_database("db")
        hot = catalog.create_table("db.hot", simple_schema, spec=monthly_spec)
        catalog.create_table("db.cold", simple_schema, spec=monthly_spec)
        fragment_table(hot)
        fragment_table(catalog.load_table("db.cold"))
        pipeline = openhouse_pipeline(
            catalog, compaction_cluster, k=0, min_table_age_s=0.0
        )
        cache = StatsCache()
        pipeline.connector.stats_cache = cache
        service = AutoCompService(pipeline)
        service.run_cycle()  # cold: fills the cache for both tables
        assert len(cache) == 2
        service.notify(CandidateKey("db", "hot", CandidateScope.TABLE))
        service.run_cycle()
        # The notified table was re-observed; the cold one was served.
        assert cache.invalidations == 1
        assert cache.hits >= 1


class TestCachedCycleDeterminism:
    """NFR2: a cached cycle is byte-identical to a cold one."""

    def test_fleet_cached_cycles_match_cold_cycles(self):
        config = FleetConfig(initial_tables=250, seed=44)

        def run(with_cache: bool):
            model = FleetModel(config)
            model.step_day()
            strategy = AutoCompStrategy(model, k=15)
            if with_cache:
                cache = IndexedCandidateCache()
                strategy.pipeline.connector.stats_cache = cache
            reports = []
            for day in range(3):
                reports.append(strategy.pipeline.run_cycle(now=float(day) * DAY))
                model.step_day()
            hits = cache.hits if with_cache else 0
            return [dataclasses.asdict(r) for r in reports], hits

        cold_reports, _ = run(with_cache=False)
        cached_reports, hits = run(with_cache=True)
        assert hits > 0  # later cycles really were served from the cache
        assert cached_reports == cold_reports

    def test_lst_cached_cycle_matches_cold_cycle(
        self, simple_schema, monthly_spec
    ):
        from repro.catalog import Catalog

        def run(with_cache: bool):
            catalog = Catalog()
            catalog.create_database("db")
            for name in ("a", "b", "c"):
                fragment_table(
                    catalog.create_table(f"db.{name}", simple_schema, spec=monthly_spec)
                )
            pipeline = openhouse_pipeline(
                catalog, Cluster("maint", executors=3), k=1, min_table_age_s=0.0
            )
            cache = StatsCache() if with_cache else None
            pipeline.connector.stats_cache = cache
            # The act phase self-invalidates compacted tables, so the
            # second cycle re-observes exactly those; untouched tables are
            # served from the cache.
            first = dataclasses.asdict(pipeline.run_cycle(now=0.0))
            second = dataclasses.asdict(pipeline.run_cycle(now=0.0))
            return first, second, cache

        cold_first, cold_second, _ = run(with_cache=False)
        warm_first, warm_second, cache = run(with_cache=True)
        assert cache.hits > 0
        assert warm_first == cold_first
        assert warm_second == cold_second


class TestFleetConnectorCache:
    def test_rejects_dict_cache(self):
        model = FleetModel(FleetConfig(initial_tables=20, seed=2))
        with pytest.raises(ValidationError):
            FleetConnector(model, stats_cache=StatsCache())

    def test_version_token_invalidation_on_write_and_compact(self):
        model = FleetModel(FleetConfig(initial_tables=40, seed=2))
        model.step_day()
        cache = IndexedCandidateCache()
        connector = FleetConnector(model, min_small_files=1, stats_cache=cache)
        keys = connector.list_candidates()
        first = connector.observe(keys)
        misses_after_cold = cache.misses
        second = connector.observe(keys)
        assert cache.misses == misses_after_cold  # all hits
        assert all(a is b for a, b in zip(first, second))  # candidate reuse
        # A compaction bumps the table's stats_version: next observe
        # rebuilds exactly that candidate's statistics (the candidate
        # object is reused, so compare the statistics reference).
        index = int(keys[0].table[len("table"):])
        stats_before = second[0].statistics
        untouched_before = second[1].statistics
        model.compact(index)
        third = connector.observe(keys)
        assert third[0] is second[0]
        assert third[0].statistics is not stats_before
        assert third[1].statistics is untouched_before

    def test_notify_style_invalidation_via_connector(self):
        model = FleetModel(FleetConfig(initial_tables=30, seed=6))
        model.step_day()
        cache = IndexedCandidateCache()
        connector = FleetConnector(model, min_small_files=1, stats_cache=cache)
        keys = connector.list_candidates()
        connector.observe(keys)
        connector.invalidate(keys[3])
        assert cache.invalidations == 1


class TestReviewRegressions:
    def test_clear_keeps_bulk_accessor_aliases_live(self):
        cache = IndexedCandidateCache()
        slots = cache.candidates
        cache.put(1, Candidate(key=_table_key(), statistics=_stats()), token=1)
        cache.clear()
        assert slots is cache.candidates and len(slots) == 0
        cache.put(0, Candidate(key=_table_key(), statistics=_stats()), token=1)
        assert slots[0] is cache.candidates[0]

    def test_cached_quota_is_restamped_while_table_is_clean(self):
        """Database quota drifts via *other* tables' writes; hits must not
        serve the stale value (it feeds the quota-aware ranking)."""
        model = FleetModel(FleetConfig(initial_tables=120, seed=12))
        model.step_day()
        cache = IndexedCandidateCache()
        connector = FleetConnector(model, min_small_files=1, stats_cache=cache)
        for _ in range(6):
            candidates = connector.observe(connector.list_candidates())
            model.step_day()
        assert cache.hits > 0
        fresh_quota = model.observe_view().quota
        for candidate in connector.observe(connector.list_candidates()):
            index = int(candidate.key.table[len("table"):])
            assert candidate.statistics.quota_utilization == fresh_quota[index]

    def test_build_unchecked_matches_the_dataclass_field_for_field(self):
        """Guards the trusted constructor against future field drift: a new
        CandidateStatistics field must show up here (dataclass __eq__
        compares every declared field, raising on a missing attribute)."""
        normal = CandidateStatistics(
            file_count=7,
            total_bytes=700,
            small_file_count=3,
            small_file_bytes=120,
            target_file_size=512,
            file_sizes=(),
            partition_count=2,
            created_at=1.5,
            last_modified_at=2.5,
            quota_utilization=0.25,
        )
        trusted = CandidateStatistics.build_unchecked(
            file_count=7,
            total_bytes=700,
            small_file_count=3,
            small_file_bytes=120,
            target_file_size=512,
            partition_count=2,
            created_at=1.5,
            last_modified_at=2.5,
            quota_utilization=0.25,
        )
        assert trusted == normal
        declared = {f.name for f in dataclasses.fields(CandidateStatistics)}
        assert set(trusted.__dict__) == declared

    def test_lst_cached_quota_is_restamped_on_hit(
        self, catalog, simple_schema, monthly_spec
    ):
        """Quota drifts via *other* tables in the database; LST cache hits
        must serve the fresh value (it feeds quota-aware ranking)."""
        catalog.create_database("db", quota_objects=500)
        a = catalog.create_table("db.a", simple_schema, spec=monthly_spec)
        b = catalog.create_table("db.b", simple_schema, spec=monthly_spec)
        fragment_table(a)
        cache = StatsCache()
        connector = LstConnector(catalog, stats_cache=cache)
        key = CandidateKey("db", "a", CandidateScope.TABLE)
        before = connector.collect_statistics(key)
        fragment_table(b, partitions=[(0,)], files_per_partition=50)
        cached = connector.collect_statistics(key)
        assert cached is before  # still a cache hit...
        fresh = LstConnector(catalog).collect_statistics(key)
        assert fresh.quota_utilization > 0.0  # the drift really happened
        assert cached.quota_utilization == fresh.quota_utilization  # ...with fresh quota

    def test_compaction_self_invalidates_the_cache(
        self, catalog, simple_schema, monthly_spec, compaction_cluster
    ):
        """Without any external notify, a compacted table must be
        re-observed next cycle (not re-selected forever on stale stats)."""
        catalog.create_database("db")
        for name in ("a", "b"):
            fragment_table(
                catalog.create_table(f"db.{name}", simple_schema, spec=monthly_spec)
            )
        pipeline = openhouse_pipeline(
            catalog, compaction_cluster, k=1, min_table_age_s=0.0
        )
        pipeline.connector.stats_cache = StatsCache()
        first = pipeline.run_cycle(now=0.0)
        assert first.results and first.results[0].success
        compacted = first.results[0].candidate
        second = pipeline.run_cycle(now=0.0)
        # The stale entry was evicted, so the clean table is now ranked
        # ahead of the just-compacted one instead of re-selecting it.
        assert second.selected and second.selected[0] != compacted
        assert pipeline.connector.stats_cache.invalidations >= 1


class TestVersionSlack:
    """Opt-in approximate staleness tolerance (version_slack, default off)."""

    def test_statscache_slack_serves_slightly_stale_entries(self):
        cache = StatsCache(version_slack=2)
        key, stats = _table_key(), _stats()
        cache.put(key, stats, token=10)
        assert cache.get(key, token=11) is stats  # 1 version behind: hit
        assert cache.get(key, token=12) is stats  # 2 behind: still inside slack
        assert cache.get(key, token=13) is None   # 3 behind: stale
        assert cache.expirations == 1

    def test_statscache_slack_defaults_to_exact(self):
        cache = StatsCache()
        key, stats = _table_key(), _stats()
        cache.put(key, stats, token=10)
        assert cache.get(key, token=11) is None

    def test_statscache_slack_never_accepts_backwards_tokens(self):
        cache = StatsCache(version_slack=5)
        key, stats = _table_key(), _stats()
        cache.put(key, stats, token=10)
        assert cache.get(key, token=9) is None  # token regressed: not a hit

    def test_statscache_slack_requires_integer_tokens(self):
        cache = StatsCache(version_slack=5)
        key, stats = _table_key(), _stats()
        cache.put(key, stats, token="etag-a")
        assert cache.get(key, token="etag-b") is None

    def test_indexed_cache_slack(self):
        cache = IndexedCandidateCache(version_slack=1)
        candidate = Candidate(key=_table_key(), statistics=_stats())
        cache.put(0, candidate, token=5)
        assert cache.get(0, token=6) is candidate
        assert cache.get(0, token=7) is None

    def test_rejects_negative_slack(self):
        with pytest.raises(ValidationError):
            StatsCache(version_slack=-1)
        with pytest.raises(ValidationError):
            IndexedCandidateCache(version_slack=-1)

    def test_fleet_connector_honours_slack(self):
        model = FleetModel(FleetConfig(initial_tables=40, seed=2))
        model.step_day()
        cache = IndexedCandidateCache(version_slack=1)
        connector = FleetConnector(model, min_small_files=1, stats_cache=cache)
        keys = connector.list_candidates()
        first = connector.observe(keys)
        stats_before = first[0].statistics
        index = int(keys[0].table[len("table"):])
        # One version of drift stays within slack: the cached statistics
        # are served even though the table compacted.
        model.compact(index)
        second = connector.observe(keys)
        assert second[0].statistics is stats_before
        # A second version bump exceeds the slack: re-observed.
        model.compact(index)
        third = connector.observe(keys)
        assert third[0].statistics is not stats_before

    def test_sharded_strategy_slack_increases_hit_rate(self):
        def hit_rate(slack: int) -> float:
            model = FleetModel(FleetConfig(initial_tables=150, seed=9))
            model.step_day()
            strategy = ShardedAutoCompStrategy(
                model, n_shards=2, k=3, version_slack=slack
            )
            for _ in range(5):
                strategy.run_day(model, model.day)
                model.step_day()
            (cache,) = strategy.caches
            return cache.hit_rate

        assert hit_rate(3) > hit_rate(0)

    def test_statscache_slack_accepts_numpy_integer_tokens(self):
        import numpy as np

        cache = StatsCache(version_slack=2)
        key, stats = _table_key(), _stats()
        cache.put(key, stats, token=np.int64(10))
        assert cache.get(key, token=np.int64(11)) is stats
        assert cache.get(key, token=np.int64(13)) is None


class TestStatsCacheThreadSafety:
    """Shards sharing one key-hashed cache on a thread pool must not race."""

    def test_concurrent_disjoint_shards_keep_exact_accounting(self):
        import threading

        cache = StatsCache()
        n_threads, n_keys, rounds = 8, 40, 25
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def shard(worker: int) -> None:
            try:
                keys = [
                    _table_key(db=f"db{worker}", table=f"t{i}") for i in range(n_keys)
                ]
                barrier.wait()
                for _ in range(rounds):
                    for key in keys:
                        if cache.get(key, now=0.0) is None:
                            cache.put(key, _stats(), now=0.0)
                    cache.invalidate(keys[0])
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=shard, args=(worker,)) for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        lookups = n_threads * rounds * n_keys
        # Exact accounting under contention: every lookup was classified
        # exactly once (lost updates would leave the sum short).
        assert cache.hits + cache.misses == lookups
        # Each round's invalidate forces exactly one re-observation per
        # thread after round one.
        assert cache.invalidations == n_threads * rounds
        # The final round's invalidate leaves each thread's first key out.
        assert len(cache) == n_threads * (n_keys - 1)


class TestIndexedCacheThreadSafety:
    def test_concurrent_disjoint_gets_keep_exact_accounting(self):
        """Thread-sharded connectors call get() concurrently for disjoint
        slots; the shared hit/miss/expiration counters must not lose
        updates."""
        import threading

        n_threads, n_slots, rounds = 8, 50, 40
        cache = IndexedCandidateCache()
        for index in range(n_threads * n_slots):
            cache.put(index, Candidate(key=_table_key(), statistics=_stats()), token=1)
        barrier = threading.Barrier(n_threads)

        def shard(worker: int) -> None:
            base = worker * n_slots
            barrier.wait()
            for round_index in range(rounds):
                for offset in range(n_slots):
                    # Alternate valid and never-cached lookups so hits and
                    # misses both race.
                    index = base + offset if round_index % 2 == 0 else 10**6 + base
                    cache.get(index, token=1)

        threads = [
            threading.Thread(target=shard, args=(worker,)) for worker in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Even rounds are all hits, odd rounds all (out-of-capacity) misses.
        assert cache.hits == n_threads * (rounds // 2) * n_slots
        assert cache.misses == n_threads * (rounds // 2) * n_slots
        assert cache.expirations == 0


class TestEvictionAccountingParity:
    """Both cache kinds must report identical accounting for one scenario."""

    def _scenario_sparse(self) -> tuple[int, int, int, int]:
        cache = StatsCache(ttl_s=100.0)
        key = _table_key()
        cache.put(key, _stats(), now=0.0, token=1)
        assert cache.get(key, now=1.0, token=1) is not None  # hit
        assert cache.get(key, now=1.0, token=2) is None  # token expiration
        cache.put(key, _stats(), now=1.0, token=2)
        assert cache.get(key, now=500.0, token=2) is None  # TTL expiration
        cache.put(key, _stats(), now=500.0, token=2)
        cache.invalidate(key)  # write event
        assert cache.get(key, now=500.0, token=2) is None  # plain miss
        return (cache.hits, cache.misses, cache.invalidations, cache.expirations)

    def _scenario_dense(self) -> tuple[int, int, int, int]:
        cache = IndexedCandidateCache(ttl_s=100.0)
        candidate = Candidate(key=_table_key(), statistics=_stats())
        cache.put(0, candidate, now=0.0, token=1)
        assert cache.get(0, now=1.0, token=1) is not None  # hit
        assert cache.get(0, now=1.0, token=2) is None  # token expiration
        cache.put(0, candidate, now=1.0, token=2)
        assert cache.get(0, now=500.0, token=2) is None  # TTL expiration
        cache.put(0, candidate, now=500.0, token=2)
        cache.invalidate_index(0)  # write event
        assert cache.get(0, now=500.0, token=2) is None  # plain miss
        return (cache.hits, cache.misses, cache.invalidations, cache.expirations)

    def test_same_scenario_same_counters(self):
        assert self._scenario_sparse() == self._scenario_dense()
        assert self._scenario_sparse() == (1, 3, 1, 2)

    def test_dense_bulk_path_counts_expirations(self):
        """The fleet connector's inline hit pass must account evictions the
        same way IndexedCandidateCache.get does."""
        model = FleetModel(FleetConfig(initial_tables=60, seed=3))
        model.step_day()
        cache = IndexedCandidateCache()
        connector = FleetConnector(model, min_small_files=2, stats_cache=cache)
        keys = connector.list_candidates("table")
        connector.observe(keys)
        assert cache.expirations == 0
        model.step_day()  # writes bump versions: cached entries turn stale
        keys = connector.list_candidates("table")
        connector.observe(keys)
        assert cache.expirations > 0
        assert cache.expirations <= cache.misses
