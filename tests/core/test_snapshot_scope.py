"""Tests for snapshot-scope candidates (§4.1 fresh-data compaction)."""

from __future__ import annotations

import pytest

from repro.core import (
    CandidateScope,
    LstConnector,
    LstExecutionBackend,
)
from repro.core.scheduling import CompactionTask
from repro.core.candidates import Candidate
from repro.engine import Cluster
from repro.errors import ValidationError
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def snapshot_world(catalog, simple_schema, monthly_spec):
    catalog.create_database("db")
    table = catalog.create_table("db.t", simple_schema, spec=monthly_spec)
    # History: a well-sized base, then a burst of fresh small files.
    base_txn = table.new_append()
    base_txn.add_file(600 * MiB, partition=(0,))
    base_snapshot = base_txn.commit()
    fragment_table(table, partitions=[(1,)], files_per_partition=8, file_size=4 * MiB)
    connector = LstConnector(catalog)
    return catalog, table, connector, base_snapshot


class TestSnapshotCandidates:
    def test_candidate_key_built(self, snapshot_world):
        _, table, connector, base = snapshot_world
        key = connector.snapshot_candidate(table, base.snapshot_id)
        assert key.scope is CandidateScope.SNAPSHOT
        assert key.snapshot_id == base.snapshot_id

    def test_unknown_snapshot_rejected(self, snapshot_world):
        _, table, connector, _ = snapshot_world
        with pytest.raises(ValidationError):
            connector.snapshot_candidate(table, 999)

    def test_statistics_cover_only_fresh_files(self, snapshot_world):
        _, table, connector, base = snapshot_world
        key = connector.snapshot_candidate(table, base.snapshot_id)
        stats = connector.collect_statistics(key)
        assert stats.file_count == 8  # the burst only, not the 600 MiB base
        assert stats.small_file_count == 8
        assert stats.total_bytes == 8 * 4 * MiB

    def test_files_for_excludes_base(self, snapshot_world):
        _, table, connector, base = snapshot_world
        key = connector.snapshot_candidate(table, base.snapshot_id)
        fresh = connector.files_for(key)
        assert all(f.size_bytes == 4 * MiB for f in fresh)

    def test_backend_compacts_only_fresh_files(self, snapshot_world):
        catalog, table, connector, base = snapshot_world
        key = connector.snapshot_candidate(table, base.snapshot_id)
        backend = LstExecutionBackend(connector, Cluster("m", executors=2))
        task = CompactionTask(candidate=Candidate(key=key))
        job = backend.prepare(task)
        assert job is not None
        job.start()
        result = job.finish()
        assert result.success
        # 8 fresh files -> 1; the base file is untouched.
        assert table.data_file_count == 2
        sizes = sorted(f.size_bytes for f in table.live_files())
        assert sizes == [8 * 4 * MiB, 600 * MiB]

    def test_snapshot_scope_after_no_new_writes_is_empty(self, snapshot_world):
        _, table, connector, _ = snapshot_world
        current = table.current_snapshot()
        key = connector.snapshot_candidate(table, current.snapshot_id)
        stats = connector.collect_statistics(key)
        assert stats.file_count == 0
