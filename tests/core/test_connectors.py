"""Tests for the LST (catalog-backed) connector."""

from __future__ import annotations

import pytest

from repro.core import CandidateKey, CandidateScope, LstConnector
from repro.errors import ValidationError
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def populated_catalog(catalog, simple_schema, monthly_spec):
    catalog.create_database("db1", quota_objects=10_000)
    catalog.create_database("db2")
    partitioned = catalog.create_table("db1.part", simple_schema, spec=monthly_spec)
    flat = catalog.create_table("db1.flat", simple_schema)
    other = catalog.create_table("db2.other", simple_schema)
    fragment_table(partitioned, partitions=[(0,), (1,), (2,)], files_per_partition=4)
    fragment_table(flat, partitions=[()], files_per_partition=6)
    fragment_table(other, partitions=[()], files_per_partition=2)
    return catalog


class TestCandidateGeneration:
    def test_table_strategy(self, populated_catalog):
        keys = LstConnector(populated_catalog).list_candidates("table")
        assert [str(k) for k in keys] == ["db1.flat", "db1.part", "db2.other"]
        assert all(k.scope is CandidateScope.TABLE for k in keys)

    def test_partition_strategy(self, populated_catalog):
        keys = LstConnector(populated_catalog).list_candidates("partition")
        partition_keys = [k for k in keys if k.scope is CandidateScope.PARTITION]
        table_keys = [k for k in keys if k.scope is CandidateScope.TABLE]
        # Partitioned table yields one key per partition; unpartitioned
        # tables fall back to table scope.
        assert len(partition_keys) == 3
        assert len(table_keys) == 2

    def test_hybrid_strategy(self, populated_catalog):
        keys = LstConnector(populated_catalog).list_candidates("hybrid")
        by_table = {}
        for key in keys:
            by_table.setdefault(key.qualified_table, []).append(key)
        assert len(by_table["db1.part"]) == 3
        assert by_table["db1.part"][0].scope is CandidateScope.PARTITION
        assert by_table["db1.flat"][0].scope is CandidateScope.TABLE

    def test_unknown_strategy(self, populated_catalog):
        with pytest.raises(ValidationError):
            LstConnector(populated_catalog).list_candidates("bogus")

    def test_database_restriction(self, populated_catalog):
        connector = LstConnector(populated_catalog, include_databases=["db2"])
        keys = connector.list_candidates("table")
        assert [str(k) for k in keys] == ["db2.other"]

    def test_empty_table_yields_table_key(self, catalog, simple_schema, monthly_spec):
        catalog.create_database("db")
        catalog.create_table("db.empty", simple_schema, spec=monthly_spec)
        keys = LstConnector(catalog).list_candidates("hybrid")
        # No partitions yet: hybrid falls back to nothing for partitioned
        # tables with no data (no partitions to enumerate).
        assert keys == []


class TestStatistics:
    def test_table_scope_statistics(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db1", "part", CandidateScope.TABLE)
        stats = connector.collect_statistics(key)
        assert stats.file_count == 12
        assert stats.small_file_count == 12
        assert stats.total_bytes == 12 * 8 * MiB
        assert stats.partition_count == 3
        assert stats.quota_utilization > 0

    def test_partition_scope_statistics(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db1", "part", CandidateScope.PARTITION, partition=(1,))
        stats = connector.collect_statistics(key)
        assert stats.file_count == 4
        assert stats.partition_count == 1

    def test_unlimited_database_quota_zero(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db2", "other", CandidateScope.TABLE)
        assert connector.collect_statistics(key).quota_utilization == 0.0

    def test_observe_materialises_candidates(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        keys = connector.list_candidates("table")
        candidates = connector.observe(keys)
        assert len(candidates) == 3
        assert all(c.statistics is not None for c in candidates)

    def test_target_from_policy(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db1", "flat", CandidateScope.TABLE)
        stats = connector.collect_statistics(key)
        assert stats.target_file_size == 512 * MiB


class TestDenseLstCache:
    """The IndexedCandidateCache path on the catalog connector."""

    def _connector(self, populated_catalog, **kwargs):
        from repro.core.statscache import IndexedCandidateCache

        cache = IndexedCandidateCache(**kwargs)
        return LstConnector(populated_catalog, stats_cache=cache), cache

    def test_second_observation_reuses_candidates(self, populated_catalog):
        connector, cache = self._connector(populated_catalog)
        assert connector.reuses_candidates
        keys = connector.list_candidates("table")
        first = connector.observe(keys)
        assert cache.misses == len(keys)
        second = connector.observe(keys)
        assert cache.hits == len(keys)
        assert all(a is b for a, b in zip(first, second))  # whole-candidate reuse

    def test_version_token_self_heals_on_write(self, populated_catalog):
        connector, cache = self._connector(populated_catalog)
        keys = connector.list_candidates("table")
        first = connector.observe(keys)
        written = next(k for k in keys if str(k) == "db1.flat")
        from tests.conftest import fragment_table

        fragment_table(populated_catalog.load_table("db1.flat"), partitions=[()])
        second = connector.observe(keys)
        by_key_first = {c.key: c for c in first}
        by_key_second = {c.key: c for c in second}
        # The written table was re-observed (no notify event needed)...
        assert (
            by_key_second[written].statistics.file_count
            == by_key_first[written].statistics.file_count + 10
        )
        # ...while every clean table's candidate was served as-is.
        for key in keys:
            if key != written:
                assert by_key_second[key] is by_key_first[key]

    def test_partition_scope_keys_share_the_table_token(self, populated_catalog):
        connector, cache = self._connector(populated_catalog)
        keys = connector.list_candidates("hybrid")
        connector.observe(keys)
        from tests.conftest import fragment_table

        fragment_table(populated_catalog.load_table("db1.part"), partitions=[(0,)])
        misses_before = cache.misses
        connector.observe(keys)
        # All three db1.part partition candidates turned stale (the table
        # version bumped once for all of them); everything else hit.
        assert cache.misses == misses_before + 3

    def test_quota_is_restamped_on_hits(self, populated_catalog):
        connector, cache = self._connector(populated_catalog)
        keys = connector.list_candidates("table")
        quota_key = next(k for k in keys if k.database == "db1")
        first = {c.key: c for c in connector.observe(keys)}
        before = first[quota_key].statistics.quota_utilization
        from tests.conftest import fragment_table

        # Grow a *different* db1 table: quota drifts, versions of the flat
        # table stay put for db1.part and vice versa — pick the pair.
        fragment_table(populated_catalog.load_table("db1.flat"), partitions=[()])
        second = {c.key: c for c in connector.observe(keys)}
        part_key = next(k for k in keys if str(k) == "db1.part")
        assert second[part_key] is first[part_key]  # cache hit
        assert second[part_key].statistics.quota_utilization > before

    def test_invalidate_maps_table_to_dense_indices(self, populated_catalog):
        connector, cache = self._connector(populated_catalog)
        keys = connector.list_candidates("hybrid")
        connector.observe(keys)
        part_key = next(k for k in keys if k.qualified_table == "db1.part")
        connector.invalidate(part_key)
        assert cache.invalidations == 3  # all three partition candidates
        misses_before = cache.misses
        connector.observe(keys)
        assert cache.misses == misses_before + 3

    def test_collect_statistics_bypasses_dense_cache(self, populated_catalog):
        connector, cache = self._connector(populated_catalog)
        key = connector.list_candidates("table")[0]
        stats = connector.collect_statistics(key)
        assert stats.file_count > 0
        assert len(cache) == 0  # single-key reads don't populate slots

    def test_pipeline_cycles_match_uncached_connector(
        self, populated_catalog, compaction_cluster
    ):
        """Dense-cached cycles decide exactly like cold ones (NFR2)."""
        from repro.core.service import openhouse_pipeline
        from repro.core.statscache import IndexedCandidateCache

        def run(dense: bool):
            pipeline = openhouse_pipeline(
                populated_catalog, compaction_cluster, k=0, min_table_age_s=0.0
            )
            if dense:
                # Post-construction assignment is enough: the dense path
                # is derived from the live stats_cache attribute.
                pipeline.connector.stats_cache = IndexedCandidateCache()
            reports = [pipeline.run_cycle(now=0.0) for _ in range(3)]
            return [[str(k) for k in r.selected] + [r.ranked] for r in reports]

        assert run(dense=False) == run(dense=True)

    def test_post_construction_cache_assignment_enables_dense_path(
        self, populated_catalog
    ):
        from repro.core.statscache import IndexedCandidateCache

        connector = LstConnector(populated_catalog)
        assert not connector.reuses_candidates
        connector.stats_cache = IndexedCandidateCache()
        assert connector.reuses_candidates
        keys = connector.list_candidates("table")
        first = connector.observe(keys)
        second = connector.observe(keys)
        assert all(a is b for a, b in zip(first, second))


class TestLstWorkerObservation:
    """The catalog connector's picklable shard-work contract."""

    def _dense(self, populated_catalog):
        from repro.core.statscache import IndexedCandidateCache

        cache = IndexedCandidateCache()
        return LstConnector(populated_catalog, stats_cache=cache), cache

    def test_snapshot_statistics_match_live_observation(self, populated_catalog):
        from repro.core import TraitRegistry
        from repro.core.workers import run_shard_work

        connector = LstConnector(populated_catalog)
        keys = connector.list_candidates("hybrid")
        placed, spec = connector.export_shard_work(keys, 0, TraitRegistry([]))
        assert placed == [None] * len(keys)  # no cache: everything misses
        assert spec is not None and spec.snapshot is not None
        result = run_shard_work(spec)
        merged = connector.merge_shard_result(placed, result)
        live = LstConnector(populated_catalog).observe(keys)
        assert [c.key for c in merged] == [c.key for c in live]
        assert [c.statistics for c in merged] == [c.statistics for c in live]
        # file_sizes survive the snapshot (entropy-style traits need them).
        assert all(c.statistics.file_sizes for c in merged)

    def test_spec_is_picklable_and_worker_output_stable(self, populated_catalog):
        import pickle

        from repro.core import TraitRegistry
        from repro.core.workers import run_shard_work

        connector = LstConnector(populated_catalog)
        keys = connector.list_candidates("table")
        _, spec = connector.export_shard_work(keys, 2, TraitRegistry([]))
        thawed = pickle.loads(pickle.dumps(spec))
        assert [c.statistics for c in run_shard_work(thawed).candidates] == [
            c.statistics for c in run_shard_work(spec).candidates
        ]

    def test_dense_cache_hits_stay_local(self, populated_catalog):
        from repro.core import TraitRegistry

        connector, cache = self._dense(populated_catalog)
        keys = connector.list_candidates("table")
        connector.observe(keys)  # warm
        placed, spec = connector.export_shard_work(keys, 0, TraitRegistry([]))
        assert spec is None  # fully warm: nothing crosses the boundary
        assert all(c is not None for c in placed)

    def test_version_bump_exports_only_the_dirty_table(self, populated_catalog):
        from repro.core import TraitRegistry
        from tests.conftest import fragment_table

        connector, cache = self._dense(populated_catalog)
        keys = connector.list_candidates("table")
        connector.observe(keys)
        fragment_table(populated_catalog.load_table("db1.flat"), partitions=[()])
        placed, spec = connector.export_shard_work(keys, 0, TraitRegistry([]))
        assert spec is not None
        assert [str(k) for k in spec.keys] == ["db1.flat"]
        # The freshness token is the table's post-write metadata version.
        assert spec.tokens == (populated_catalog.load_table("db1.flat").version,)

    def test_sparse_observe_self_heals_on_version_bump(self, populated_catalog):
        from repro.core.statscache import StatsCache
        from tests.conftest import fragment_table

        cache = StatsCache()
        connector = LstConnector(populated_catalog, stats_cache=cache)
        keys = connector.list_candidates("table")
        first = {str(c.key): c for c in connector.observe(keys)}
        fragment_table(populated_catalog.load_table("db1.flat"), partitions=[()])
        second = {str(c.key): c for c in connector.observe(keys)}
        # No notify event arrived, but the bulk path's version token evicts
        # the written table's entry on its own...
        assert (
            second["db1.flat"].statistics.file_count
            == first["db1.flat"].statistics.file_count + 10
        )
        assert cache.expirations == 1
        # ...while clean tables keep hitting.
        assert second["db2.other"].statistics is first["db2.other"].statistics

    def test_apply_shard_delta_feeds_either_cache_kind(self, populated_catalog):
        from repro.core import TraitRegistry
        from repro.core.statscache import StatsCache
        from repro.core.workers import run_shard_work

        for cache in (StatsCache(), None):
            connector = LstConnector(populated_catalog, stats_cache=cache)
            keys = connector.list_candidates("table")
            placed, spec = connector.export_shard_work(keys, 0, TraitRegistry([]))
            result = run_shard_work(spec)
            connector.apply_shard_delta(result)
            if cache is not None:
                assert len(cache) == len(keys)
                # Next bulk pass hits without re-collection.
                _, spec2 = connector.export_shard_work(keys, 0, TraitRegistry([]))
                assert spec2 is None
