"""Tests for the LST (catalog-backed) connector."""

from __future__ import annotations

import pytest

from repro.core import CandidateKey, CandidateScope, LstConnector
from repro.errors import ValidationError
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def populated_catalog(catalog, simple_schema, monthly_spec):
    catalog.create_database("db1", quota_objects=10_000)
    catalog.create_database("db2")
    partitioned = catalog.create_table("db1.part", simple_schema, spec=monthly_spec)
    flat = catalog.create_table("db1.flat", simple_schema)
    other = catalog.create_table("db2.other", simple_schema)
    fragment_table(partitioned, partitions=[(0,), (1,), (2,)], files_per_partition=4)
    fragment_table(flat, partitions=[()], files_per_partition=6)
    fragment_table(other, partitions=[()], files_per_partition=2)
    return catalog


class TestCandidateGeneration:
    def test_table_strategy(self, populated_catalog):
        keys = LstConnector(populated_catalog).list_candidates("table")
        assert [str(k) for k in keys] == ["db1.flat", "db1.part", "db2.other"]
        assert all(k.scope is CandidateScope.TABLE for k in keys)

    def test_partition_strategy(self, populated_catalog):
        keys = LstConnector(populated_catalog).list_candidates("partition")
        partition_keys = [k for k in keys if k.scope is CandidateScope.PARTITION]
        table_keys = [k for k in keys if k.scope is CandidateScope.TABLE]
        # Partitioned table yields one key per partition; unpartitioned
        # tables fall back to table scope.
        assert len(partition_keys) == 3
        assert len(table_keys) == 2

    def test_hybrid_strategy(self, populated_catalog):
        keys = LstConnector(populated_catalog).list_candidates("hybrid")
        by_table = {}
        for key in keys:
            by_table.setdefault(key.qualified_table, []).append(key)
        assert len(by_table["db1.part"]) == 3
        assert by_table["db1.part"][0].scope is CandidateScope.PARTITION
        assert by_table["db1.flat"][0].scope is CandidateScope.TABLE

    def test_unknown_strategy(self, populated_catalog):
        with pytest.raises(ValidationError):
            LstConnector(populated_catalog).list_candidates("bogus")

    def test_database_restriction(self, populated_catalog):
        connector = LstConnector(populated_catalog, include_databases=["db2"])
        keys = connector.list_candidates("table")
        assert [str(k) for k in keys] == ["db2.other"]

    def test_empty_table_yields_table_key(self, catalog, simple_schema, monthly_spec):
        catalog.create_database("db")
        catalog.create_table("db.empty", simple_schema, spec=monthly_spec)
        keys = LstConnector(catalog).list_candidates("hybrid")
        # No partitions yet: hybrid falls back to nothing for partitioned
        # tables with no data (no partitions to enumerate).
        assert keys == []


class TestStatistics:
    def test_table_scope_statistics(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db1", "part", CandidateScope.TABLE)
        stats = connector.collect_statistics(key)
        assert stats.file_count == 12
        assert stats.small_file_count == 12
        assert stats.total_bytes == 12 * 8 * MiB
        assert stats.partition_count == 3
        assert stats.quota_utilization > 0

    def test_partition_scope_statistics(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db1", "part", CandidateScope.PARTITION, partition=(1,))
        stats = connector.collect_statistics(key)
        assert stats.file_count == 4
        assert stats.partition_count == 1

    def test_unlimited_database_quota_zero(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db2", "other", CandidateScope.TABLE)
        assert connector.collect_statistics(key).quota_utilization == 0.0

    def test_observe_materialises_candidates(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        keys = connector.list_candidates("table")
        candidates = connector.observe(keys)
        assert len(candidates) == 3
        assert all(c.statistics is not None for c in candidates)

    def test_target_from_policy(self, populated_catalog):
        connector = LstConnector(populated_catalog)
        key = CandidateKey("db1", "flat", CandidateScope.TABLE)
        stats = connector.collect_statistics(key)
        assert stats.target_file_size == 512 * MiB
