"""Tests for candidate filters."""

from __future__ import annotations

import pytest

from repro.core import (
    Candidate,
    CandidateKey,
    CandidateScope,
    CandidateStatistics,
    MaxTraitFilter,
    MinFileCountFilter,
    MinSmallFileCountFilter,
    MinTableAgeFilter,
    MinTotalBytesFilter,
    MinTraitFilter,
    QuiescenceFilter,
)
from repro.core.filters import apply_filters
from repro.errors import ValidationError
from repro.units import HOUR, MiB

TARGET = 512 * MiB


def _candidate(sizes=(MiB, MiB), created_at=0.0, modified_at=0.0, name="t"):
    return Candidate(
        key=CandidateKey("db", name, CandidateScope.TABLE),
        statistics=CandidateStatistics.from_file_sizes(
            list(sizes),
            target_file_size=TARGET,
            created_at=created_at,
            last_modified_at=modified_at,
        ),
    )


class TestMinTableAge:
    def test_young_tables_dropped(self):
        """OpenHouse's recent-creation window (§4.1)."""
        age_filter = MinTableAgeFilter(HOUR)
        young = _candidate(created_at=1800.0)
        old = _candidate(created_at=0.0)
        assert age_filter.apply([young, old], now=3600.0) == [old]

    def test_boundary_inclusive(self):
        age_filter = MinTableAgeFilter(HOUR)
        exact = _candidate(created_at=0.0)
        assert age_filter.keep(exact, now=HOUR)

    def test_validation(self):
        with pytest.raises(ValidationError):
            MinTableAgeFilter(-1)


class TestQuiescence:
    def test_hot_tables_dropped(self):
        quiet = QuiescenceFilter(600.0)
        hot = _candidate(modified_at=3500.0)
        cold = _candidate(modified_at=0.0)
        assert quiet.apply([hot, cold], now=3600.0) == [cold]

    def test_validation(self):
        with pytest.raises(ValidationError):
            QuiescenceFilter(-1)


class TestCountAndSizeFilters:
    def test_min_file_count(self):
        count_filter = MinFileCountFilter(3)
        assert not count_filter.keep(_candidate(sizes=[MiB, MiB]), now=0)
        assert count_filter.keep(_candidate(sizes=[MiB] * 3), now=0)

    def test_min_small_file_count(self):
        small_filter = MinSmallFileCountFilter(2)
        mostly_large = _candidate(sizes=[TARGET, TARGET, MiB])
        assert not small_filter.keep(mostly_large, now=0)
        assert small_filter.keep(_candidate(sizes=[MiB, MiB]), now=0)

    def test_min_total_bytes(self):
        size_filter = MinTotalBytesFilter(10 * MiB)
        assert not size_filter.keep(_candidate(sizes=[MiB]), now=0)
        assert size_filter.keep(_candidate(sizes=[20 * MiB]), now=0)


class TestTraitFilters:
    def test_min_trait(self):
        candidate = _candidate()
        candidate.traits["benefit"] = 5.0
        assert MinTraitFilter("benefit", 5.0).keep(candidate, now=0)
        assert not MinTraitFilter("benefit", 5.1).keep(candidate, now=0)

    def test_min_trait_missing_drops(self):
        assert not MinTraitFilter("ghost", 0.0).keep(_candidate(), now=0)

    def test_max_trait_budget_screen(self):
        """§4.2: candidates exceeding the per-task budget are discarded."""
        cheap = _candidate(name="cheap")
        cheap.traits["compute_cost_gbhr"] = 10.0
        pricey = _candidate(name="pricey")
        pricey.traits["compute_cost_gbhr"] = 1000.0
        budget = MaxTraitFilter("compute_cost_gbhr", 100.0)
        assert budget.apply([cheap, pricey], now=0) == [cheap]

    def test_max_trait_missing_drops(self):
        assert not MaxTraitFilter("ghost", 10.0).keep(_candidate(), now=0)


class TestApplyFilters:
    def test_sequential_application(self):
        candidates = [
            _candidate(sizes=[MiB], name="a"),
            _candidate(sizes=[MiB] * 5, name="b", created_at=100.0),
            _candidate(sizes=[MiB] * 5, name="c"),
        ]
        filters = [MinFileCountFilter(2), MinTableAgeFilter(50.0)]
        kept = apply_filters(filters, candidates, now=60.0)
        assert [c.key.table for c in kept] == ["c"]

    def test_empty_filter_list(self):
        candidates = [_candidate()]
        assert apply_filters([], candidates, now=0) == candidates

    def test_order_preserved(self):
        candidates = [_candidate(name=f"t{i}") for i in range(5)]
        kept = apply_filters([MinFileCountFilter(1)], candidates, now=0)
        assert [c.key.table for c in kept] == [f"t{i}" for i in range(5)]
