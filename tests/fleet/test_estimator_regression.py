"""Regression pins for the fleet estimator-accuracy model (§7).

The paper reports that across production compactions the table-level ΔF_c
estimate overestimates realised file-count reduction by ~28% (partition
boundaries) while the GBHr estimate underestimates realised compute cost
by ~19%.  The fleet model realises both errors explicitly
(``merge_efficiency`` / ``cost_noise``); these pins keep refactors of the
model, connectors or pipeline from silently drifting the calibration.
"""

from __future__ import annotations

import pytest

from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetSimulator,
    ShardedAutoCompStrategy,
)

#: Paper figures and the allowed drift (±10 points).
PAPER_REDUCTION_OVERESTIMATE = 0.28
PAPER_COST_UNDERESTIMATE = 0.19
TOLERANCE = 0.10


def _accuracy(strategy_factory) -> dict[str, float]:
    simulator = FleetSimulator(FleetConfig(initial_tables=900, seed=3003))
    simulator.set_strategy(0, strategy_factory(simulator.model))
    simulator.run_days(12, onboard_monthly=False)
    return simulator.estimator_accuracy()


def test_estimator_accuracy_matches_paper_figures():
    accuracy = _accuracy(lambda model: AutoCompStrategy(model, k=40))
    assert accuracy["reduction_overestimate"] == pytest.approx(
        PAPER_REDUCTION_OVERESTIMATE, abs=TOLERANCE
    )
    assert accuracy["cost_underestimate"] == pytest.approx(
        PAPER_COST_UNDERESTIMATE, abs=TOLERANCE
    )


def test_sharded_control_plane_preserves_estimator_accuracy():
    """The scale-out path must not alter the §7 accuracy calibration."""
    unsharded = _accuracy(lambda model: AutoCompStrategy(model, k=40))
    sharded = _accuracy(lambda model: ShardedAutoCompStrategy(model, n_shards=4, k=40))
    assert sharded["reduction_overestimate"] == pytest.approx(
        unsharded["reduction_overestimate"]
    )
    assert sharded["cost_underestimate"] == pytest.approx(unsharded["cost_underestimate"])
    assert sharded["reduction_overestimate"] == pytest.approx(
        PAPER_REDUCTION_OVERESTIMATE, abs=TOLERANCE
    )
