"""Tests for the fleet model: population, growth, compaction noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.fleet import Archetype, FleetConfig, FleetModel


@pytest.fixture
def model():
    return FleetModel(FleetConfig(initial_tables=300, databases=10, seed=42))


class TestPopulation:
    def test_initial_onboarding(self, model):
        assert model.count == 300
        assert model.total_files > 0

    def test_archetype_mix(self, model):
        kinds, counts = np.unique(model.archetype[: model.count], return_counts=True)
        assert set(kinds) == {int(a) for a in Archetype}
        # Hot+batch derived tables should dominate (65% of the mix).
        derived = counts[list(kinds).index(int(Archetype.DERIVED_HOT))]
        derived += counts[list(kinds).index(int(Archetype.DERIVED_BATCH))]
        assert derived / model.count > 0.5

    def test_onboard_growth(self, model):
        model.onboard(50)
        assert model.count == 350

    def test_onboard_grows_capacity(self):
        model = FleetModel(FleetConfig(initial_tables=10, seed=1))
        model.onboard(100)
        assert model.count == 110
        assert model.total_files > 0

    def test_databases_assigned(self, model):
        assert model.database[: model.count].max() < 10


class TestGrowth:
    def test_step_day_accumulates_files(self, model):
        before = model.total_files
        for _ in range(10):
            model.step_day()
        assert model.total_files > before
        assert model.day == 10

    def test_small_files_grow_fastest(self, model):
        tiny_before = int(model.tiny_files[: model.count].sum())
        large_before = int(model.large_files[: model.count].sum())
        for _ in range(20):
            model.step_day()
        tiny_growth = int(model.tiny_files[: model.count].sum()) - tiny_before
        large_growth = int(model.large_files[: model.count].sum()) - large_before
        assert tiny_growth > large_growth

    def test_last_write_day_updated(self, model):
        model.step_day()
        hot = model.archetype[: model.count] == int(Archetype.DERIVED_HOT)
        # Hot tables write ~daily; at least some were touched on day 0.
        assert (model.last_write_day[: model.count][hot] == 0).any()


class TestMetrics:
    def test_small_file_fraction_in_range(self, model):
        assert 0 <= model.small_file_fraction <= 1

    def test_per_table_views_consistent(self, model):
        n = model.count
        total = model.files_per_table()
        small = model.small_files_per_table()
        assert (small <= total).all()
        assert int(total.sum()) == model.total_files

    def test_quota_utilization_bounded(self, model):
        quota = model.database_quota_utilization()
        assert quota.shape == (10,)
        assert (quota >= 0).all() and (quota <= 1).all()

    def test_scan_metrics_positive(self, model):
        metrics = model.daily_scan_metrics()
        assert metrics["files_scanned"] > 0
        assert metrics["query_time"] > 0
        assert metrics["open_calls"] == metrics["files_scanned"]


class TestEstimators:
    def test_reduction_estimate_is_paper_formula(self, model):
        index = 0
        expected = float(model.tiny_files[index] + model.mid_files[index])
        assert model.estimate_reduction(index) == expected

    def test_gbhr_estimate_is_paper_formula(self, model):
        config = model.config
        index = 0
        small_bytes = float(model.tiny_bytes[index] + model.mid_bytes[index])
        expected = config.executor_memory_gb * small_bytes / config.rewrite_bytes_per_hour
        assert model.estimate_gbhr(index) == pytest.approx(expected)


class TestCompaction:
    def _most_fragmented(self, model):
        return int(np.argmax(model.small_files_per_table()))

    def test_compact_reduces_files(self, model):
        index = self._most_fragmented(model)
        before = model.total_files
        application = model.compact(index)
        assert application.actual_reduction > 0
        assert model.total_files == before - application.actual_reduction

    def test_bytes_conserved(self, model):
        index = self._most_fragmented(model)
        n = model.count
        before = int(
            model.tiny_bytes[:n].sum() + model.mid_bytes[:n].sum() + model.large_bytes[:n].sum()
        )
        model.compact(index)
        after = int(
            model.tiny_bytes[:n].sum() + model.mid_bytes[:n].sum() + model.large_bytes[:n].sum()
        )
        assert abs(after - before) <= 2  # integer rounding only

    def test_reduction_overestimated(self, model):
        """§7: the table-level ΔF_c estimate exceeds realised reduction."""
        errors = []
        for index in np.argsort(-model.small_files_per_table())[:30]:
            application = model.compact(int(index))
            if application.actual_reduction > 0:
                errors.append(
                    (application.estimated_reduction - application.actual_reduction)
                    / application.actual_reduction
                )
        assert np.mean(errors) > 0.1

    def test_cost_underestimated(self, model):
        """§7: realised GBHr exceeds the estimate (~19%)."""
        ratios = []
        for index in np.argsort(-model.small_files_per_table())[:30]:
            application = model.compact(int(index))
            if application.actual_gbhr > 0:
                ratios.append(application.actual_gbhr / application.estimated_gbhr)
        assert 1.05 < np.mean(ratios) < 1.4

    def test_compact_empty_table_noop(self, model):
        index = self._most_fragmented(model)
        model.compact(index)
        second = model.compact(index)  # little left to merge
        assert second.actual_reduction >= 0

    def test_out_of_range_rejected(self, model):
        with pytest.raises(ValidationError):
            model.compact(model.count + 5)


class TestConfigValidation:
    def test_invalid_configs(self):
        with pytest.raises(ValidationError):
            FleetConfig(initial_tables=0)
        with pytest.raises(ValidationError):
            FleetConfig(databases=0)
        with pytest.raises(ValidationError):
            FleetConfig(merge_efficiency_mean=0.0)


class TestDeterminism:
    def test_same_seed_same_fleet(self):
        a = FleetModel(FleetConfig(initial_tables=100, seed=9))
        b = FleetModel(FleetConfig(initial_tables=100, seed=9))
        for _ in range(5):
            a.step_day()
            b.step_day()
        assert a.total_files == b.total_files
        assert (a.tiny_files[:100] == b.tiny_files[:100]).all()
