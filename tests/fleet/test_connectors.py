"""Tests for the fleet connector/backend adapters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CandidateScope
from repro.core.scheduling import CompactionTask
from repro.core.candidates import Candidate, CandidateKey
from repro.errors import ValidationError
from repro.fleet import FleetBackend, FleetConfig, FleetConnector, FleetModel
from repro.units import DAY


@pytest.fixture
def model():
    return FleetModel(FleetConfig(initial_tables=200, databases=8, seed=17))


class TestConnector:
    def test_lists_fragmented_tables(self, model):
        connector = FleetConnector(model, min_small_files=1)
        keys = connector.list_candidates("table")
        assert keys
        assert all(k.scope is CandidateScope.TABLE for k in keys)

    def test_min_small_files_screen(self, model):
        all_keys = FleetConnector(model, min_small_files=1).list_candidates()
        screened = FleetConnector(model, min_small_files=50).list_candidates()
        assert len(screened) < len(all_keys)

    def test_rejects_partition_strategy(self, model):
        with pytest.raises(ValidationError):
            FleetConnector(model).list_candidates("partition")

    def test_statistics_match_model(self, model):
        connector = FleetConnector(model)
        key = connector.list_candidates()[0]
        index = int(key.table[len("table") :])
        stats = connector.collect_statistics(key)
        assert stats.file_count == int(
            model.tiny_files[index] + model.mid_files[index] + model.large_files[index]
        )
        assert stats.small_file_count == int(
            model.tiny_files[index] + model.mid_files[index]
        )
        assert stats.target_file_size == model.config.target_file_size
        assert 0 <= stats.quota_utilization <= 1

    def test_observe_batches_quota_lookup(self, model):
        connector = FleetConnector(model)
        keys = connector.list_candidates()[:20]
        candidates = connector.observe(keys)
        assert len(candidates) == 20
        assert all(c.statistics is not None for c in candidates)

    def test_bad_key_rejected(self, model):
        connector = FleetConnector(model)
        with pytest.raises(ValidationError):
            connector.collect_statistics(
                CandidateKey("x", "nottable", CandidateScope.TABLE)
            )


class TestBackend:
    def _task(self, model, index):
        key = CandidateKey(
            database=f"tenant{int(model.database[index]):03d}",
            table=f"table{index:06d}",
            scope=CandidateScope.TABLE,
        )
        return CompactionTask(candidate=Candidate(key=key), estimated_gbhr=1.0)

    def test_prepare_and_run(self, model):
        backend = FleetBackend(model)
        index = int(np.argmax(model.small_files_per_table()))
        job = backend.prepare(self._task(model, index))
        assert job is not None
        assert job.start() == 0.0
        result = job.finish()
        assert result.success
        assert result.actual_reduction > 0
        assert result.files_after < result.files_before
        assert result.gbhr > 0

    def test_prepare_skips_clean_tables(self, model):
        backend = FleetBackend(model)
        index = int(np.argmax(model.small_files_per_table()))
        model.compact(index)
        model.compact(index)
        small = int(model.tiny_files[index] + model.mid_files[index])
        if small < 2:
            assert backend.prepare(self._task(model, index)) is None

    def test_result_times_use_model_day(self, model):
        for _ in range(3):
            model.step_day()
        backend = FleetBackend(model)
        index = int(np.argmax(model.small_files_per_table()))
        job = backend.prepare(self._task(model, index))
        job.start()
        result = job.finish()
        assert result.started_at == 3 * DAY
