"""Tests for the fleet simulator and compaction strategies (§7 narrative)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.fleet import (
    AutoCompStrategy,
    FleetConfig,
    FleetSimulator,
    ManualCompactionStrategy,
    NoCompactionStrategy,
)


def _config(**overrides):
    defaults = dict(initial_tables=300, onboarded_per_month=50, databases=10, seed=31)
    defaults.update(overrides)
    return FleetConfig(**defaults)


class TestStrategySchedule:
    def test_default_is_no_compaction(self):
        sim = FleetSimulator(_config())
        assert isinstance(sim.active_strategy(0), NoCompactionStrategy)
        assert isinstance(sim.active_strategy(500), NoCompactionStrategy)

    def test_latest_entry_wins(self):
        sim = FleetSimulator(_config())
        manual = ManualCompactionStrategy(k=10)
        auto = AutoCompStrategy(sim.model, k=5)
        sim.set_strategy(10, manual)
        sim.set_strategy(20, auto)
        assert sim.active_strategy(5) is sim.schedule[0]
        assert sim.active_strategy(15) is manual
        assert sim.active_strategy(25) is auto

    def test_negative_start_rejected(self):
        sim = FleetSimulator(_config())
        with pytest.raises(ValidationError):
            sim.set_strategy(-1, NoCompactionStrategy())


class TestNoCompaction:
    def test_files_grow_unchecked(self):
        sim = FleetSimulator(_config())
        sim.run_days(20)
        series = sim.telemetry.series("fleet.total_files")
        assert series.values[-1] > series.values[0]
        assert sim.telemetry.series("fleet.files_reduced").values == [0.0] * 20


class TestManualStrategy:
    def test_diminishing_returns(self):
        """§7: the fixed set is exhausted after the first pass."""
        sim = FleetSimulator(_config())
        sim.set_strategy(0, ManualCompactionStrategy(k=50))
        sim.run_days(14)
        daily = sim.telemetry.series("fleet.files_reduced").values
        assert daily[0] > 5 * max(daily[7:])

    def test_fixed_set_never_revisited(self):
        sim = FleetSimulator(_config())
        strategy = ManualCompactionStrategy(k=30)
        sim.set_strategy(0, strategy)
        sim.run_days(3)
        assert len(strategy._chosen) == 30

    def test_invalid_k(self):
        with pytest.raises(ValidationError):
            ManualCompactionStrategy(k=0)


class TestAutoCompStrategy:
    def test_outperforms_manual_after_warmup(self):
        """Figure 10a: auto top-10 beats manual top-100 after week one."""
        config = _config()

        manual_sim = FleetSimulator(config)
        manual_sim.set_strategy(0, ManualCompactionStrategy(k=100))
        manual_sim.run_days(28)
        manual_tail = sum(manual_sim.telemetry.series("fleet.files_reduced").values[14:])

        auto_sim = FleetSimulator(config)
        auto_sim.set_strategy(0, AutoCompStrategy(auto_sim.model, k=10))
        auto_sim.run_days(28)
        auto_tail = sum(auto_sim.telemetry.series("fleet.files_reduced").values[14:])

        assert auto_tail > manual_tail

    def test_budget_mode_dynamic_k(self):
        """Figure 10b: the budget selector admits many more tables."""
        config = _config()
        fixed = FleetSimulator(config)
        fixed.set_strategy(0, AutoCompStrategy(fixed.model, k=10))
        fixed.run_days(5)
        fixed_tables = sum(fixed.telemetry.series("fleet.tables_compacted").values)

        budget = FleetSimulator(config)
        budget.set_strategy(
            0, AutoCompStrategy(budget.model, k=None, budget_gbhr=100_000.0)
        )
        budget.run_days(5)
        budget_tables = sum(budget.telemetry.series("fleet.tables_compacted").values)
        assert budget_tables > 3 * fixed_tables

    def test_requires_k_or_budget(self):
        sim = FleetSimulator(_config())
        with pytest.raises(ValidationError):
            AutoCompStrategy(sim.model, k=None, budget_gbhr=None)


class TestTelemetryAndGrowth:
    def test_monthly_onboarding(self):
        sim = FleetSimulator(_config(initial_tables=100, onboarded_per_month=20))
        sim.run_days(61)
        sizes = sim.telemetry.series("fleet.deployment_size").values
        assert sizes[0] == 100
        assert sizes[-1] == 140  # two month boundaries crossed

    def test_onboarding_disabled(self):
        sim = FleetSimulator(_config(initial_tables=100))
        sim.run_days(61, onboard_monthly=False)
        assert sim.model.count == 100

    def test_weekly_totals(self):
        sim = FleetSimulator(_config())
        sim.set_strategy(0, AutoCompStrategy(sim.model, k=5))
        sim.run_days(14)
        weekly = sim.weekly_totals("fleet.files_reduced")
        assert len(weekly) == 2
        assert all(w >= 0 for w in weekly)

    def test_scan_metrics_recorded(self):
        sim = FleetSimulator(_config())
        sim.run_days(7)
        for name in (
            "fleet.files_scanned",
            "fleet.query_time",
            "fleet.query_cost",
            "fleet.open_calls",
        ):
            assert len(sim.telemetry.series(name)) == 7

    def test_estimator_accuracy_matches_paper(self):
        """§7: ~28% reduction overestimate, ~19% cost underestimate."""
        sim = FleetSimulator(_config(initial_tables=600))
        sim.set_strategy(0, AutoCompStrategy(sim.model, k=40))
        sim.run_days(10)
        accuracy = sim.estimator_accuracy()
        assert 0.15 < accuracy["reduction_overestimate"] < 0.45
        assert 0.10 < accuracy["cost_underestimate"] < 0.30

    def test_invalid_days(self):
        with pytest.raises(ValidationError):
            FleetSimulator(_config()).run_days(0)


class TestDeterminism:
    def test_same_config_same_history(self):
        def run():
            sim = FleetSimulator(_config())
            sim.set_strategy(3, AutoCompStrategy(sim.model, k=8))
            sim.run_days(10)
            return (
                sim.telemetry.series("fleet.total_files").values,
                sim.telemetry.series("fleet.files_reduced").values,
            )

        assert run() == run()
