"""Tests for the exporter, the strict Prometheus checker, the HTTP status
surface and the ``repro.obs.status`` CLI."""

from __future__ import annotations

import json
import math
import os
import urllib.error
import urllib.request

import pytest

from repro.obs import METRICS
from repro.obs.exporter import MetricsExporter, prom_name, render_prometheus
from repro.obs.http import StatusServer
from repro.obs.promcheck import check_exposition
from repro.obs.promcheck import main as promcheck_main
from repro.obs.status import format_status, load_status_dir
from repro.obs.status import main as status_main
from repro.obs.tracing import Tracer
from repro.simulation import Telemetry


def populated_telemetry() -> Telemetry:
    telemetry = Telemetry()
    telemetry.increment("autocomp.cycles", 3)
    telemetry.increment("autocomp.shard00.locks.acquired", 2)
    telemetry.record("autocomp.fleet.files", 10.0, 42.0)
    telemetry.observe("autocomp.hist.cycle_wall_s", 0.01)
    telemetry.observe("autocomp.hist.cycle_wall_s", 0.2)
    telemetry.observe("autocomp.hist.rewrite_bytes", 5e8)
    return telemetry


class TestPromName:
    def test_dots_become_underscores(self):
        assert prom_name("autocomp.hist.cycle_wall_s") == "autocomp_hist_cycle_wall_s"

    def test_leading_digit_gets_prefixed(self):
        assert prom_name("9lives") == "_9lives"


class TestRenderPrometheus:
    def test_round_trips_through_strict_checker(self):
        text = render_prometheus(populated_telemetry())
        assert check_exposition(text) == []

    def test_counter_series_histogram_families(self):
        text = render_prometheus(populated_telemetry())
        assert "# TYPE autocomp_cycles counter" in text
        assert "autocomp_cycles 3" in text
        assert "# TYPE autocomp_fleet_files gauge" in text
        assert "autocomp_fleet_files 42" in text
        assert "# TYPE autocomp_hist_cycle_wall_s histogram" in text
        assert 'autocomp_hist_cycle_wall_s_bucket{le="+Inf"} 2' in text
        assert "autocomp_hist_cycle_wall_s_count 2" in text

    def test_registry_help_text_is_used(self):
        telemetry = Telemetry()
        name = "autocomp.hist.cycle_wall_s"
        assert name in METRICS  # the registry must document the metric
        telemetry.observe(name, 0.01)
        text = render_prometheus(telemetry)
        assert f"# HELP {prom_name(name)} {METRICS[name][1]}" in text

    def test_name_collisions_are_skipped_not_emitted(self):
        telemetry = Telemetry()
        telemetry.increment("a.b", 1)
        telemetry.increment("a_b", 2)  # sanitises to the same prom name
        text = render_prometheus(telemetry)
        assert text.count("# TYPE a_b counter") == 1
        assert "skipped duplicate metric name a_b" in text
        assert check_exposition(text) == []

    def test_empty_sink_renders_valid_empty_exposition(self):
        text = render_prometheus(Telemetry())
        assert check_exposition(text) == []

    def test_nan_gauge_renders_and_validates(self):
        telemetry = Telemetry()
        telemetry.record("empty.series", 0.0, math.nan)
        text = render_prometheus(telemetry)
        assert "empty_series NaN" in text
        assert check_exposition(text) == []


class TestPromcheckNegative:
    def test_bad_metric_name(self):
        assert check_exposition("9bad{} 1\n")

    def test_bad_sample_value(self):
        errors = check_exposition("# TYPE m counter\nm one\n")
        assert any("invalid sample value" in e for e in errors)

    def test_duplicate_sample(self):
        errors = check_exposition("# TYPE m counter\nm 1\nm 2\n")
        assert any("duplicate sample" in e for e in errors)

    def test_type_after_samples(self):
        errors = check_exposition("m 1\n# TYPE m counter\n")
        assert any("after its samples" in e for e in errors)

    def test_unknown_type(self):
        errors = check_exposition("# TYPE m wibble\n")
        assert any("unknown TYPE" in e for e in errors)

    def test_histogram_missing_inf_bucket(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 0.5\n"
            "h_count 1\n"
        )
        errors = check_exposition(text)
        assert any("+Inf" in e for e in errors)

    def test_histogram_non_cumulative_buckets(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 0.5\n"
            "h_count 3\n"
        )
        errors = check_exposition(text)
        assert any("not cumulative" in e for e in errors)

    def test_histogram_count_mismatch(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 0.5\n"
            "h_count 4\n"
        )
        errors = check_exposition(text)
        assert any("_count" in e for e in errors)

    def test_histogram_missing_sum_and_count(self):
        errors = check_exposition('# TYPE h histogram\nh_bucket{le="+Inf"} 0\n')
        assert any("missing _sum" in e for e in errors)
        assert any("missing _count" in e for e in errors)

    def test_malformed_labels(self):
        errors = check_exposition("# TYPE m counter\nm{le=unquoted} 1\n")
        assert any("malformed label" in e for e in errors)

    def test_cli_exit_codes(self, tmp_path, capsys):
        good = tmp_path / "good.prom"
        good.write_text(render_prometheus(populated_telemetry()))
        bad = tmp_path / "bad.prom"
        bad.write_text("m 1\nm 2\n")
        assert promcheck_main([str(good)]) == 0
        assert "OK" in capsys.readouterr().out
        assert promcheck_main([str(good), str(bad)]) == 1
        assert promcheck_main([str(tmp_path / "missing.prom")]) == 1


class TestMetricsExporter:
    def test_export_once_writes_all_files(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cycle"):
            pass
        exporter = MetricsExporter(
            populated_telemetry(),
            str(tmp_path / "obs"),
            tracer=tracer,
            status_fn=lambda: {"running": True, "nan": math.nan},
        )
        written = exporter.export_once()
        assert set(written) == {"prom", "jsonl", "trace_jsonl", "trace_chrome", "status"}
        for path in written.values():
            assert os.path.exists(path)
        with open(exporter.prom_path, encoding="utf-8") as stream:
            assert check_exposition(stream.read()) == []
        with open(exporter.status_path, encoding="utf-8") as stream:
            status = json.load(stream)
        assert status == {"running": True, "nan": None}  # NaN → JSON null
        assert exporter.exports == 1

    def test_without_tracer_or_status_fn_writes_core_files(self, tmp_path):
        exporter = MetricsExporter(populated_telemetry(), str(tmp_path))
        written = exporter.export_once()
        assert set(written) == {"prom", "jsonl"}

    def test_jsonl_ring_accumulates_snapshots(self, tmp_path):
        clock = iter(range(100)).__next__
        exporter = MetricsExporter(
            populated_telemetry(), str(tmp_path), clock=lambda: float(clock())
        )
        exporter.export_once()
        exporter.export_once()
        with open(exporter.jsonl_path, encoding="utf-8") as stream:
            entries = [json.loads(line) for line in stream if line.strip()]
        assert len(entries) == 2
        assert entries[0]["ts"] < entries[1]["ts"]
        assert entries[-1]["counters"]["autocomp.cycles"] == 3.0
        assert entries[-1]["histograms"]["autocomp.hist.cycle_wall_s"]["count"] == 2.0

    def test_no_leftover_temp_files(self, tmp_path):
        exporter = MetricsExporter(populated_telemetry(), str(tmp_path))
        exporter.export_once()
        assert not [n for n in os.listdir(tmp_path) if ".tmp." in n]

    def test_start_stop_final_export(self, tmp_path):
        telemetry = populated_telemetry()
        exporter = MetricsExporter(telemetry, str(tmp_path), interval_s=30.0)
        exporter.start()
        exporter.start()  # idempotent
        telemetry.increment("late.counter")
        exporter.stop()  # must flush the post-start increment
        assert exporter.exports >= 1
        with open(exporter.prom_path, encoding="utf-8") as stream:
            assert "late_counter 1" in stream.read()

    def test_invalid_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            MetricsExporter(Telemetry(), str(tmp_path), interval_s=0.0)


class TestStatusServer:
    def _get(self, address, path):
        host, port = address
        with urllib.request.urlopen(f"http://{host}:{port}{path}") as response:
            return response.status, response.read().decode("utf-8")

    def test_endpoints(self):
        telemetry = populated_telemetry()
        server = StatusServer(
            status_fn=lambda: {"running": True, "bad": math.inf},
            metrics_fn=lambda: render_prometheus(telemetry),
        )
        with server:
            address = server.address
            code, body = self._get(address, "/healthz")
            assert (code, body) == (200, "ok\n")
            code, body = self._get(address, "/status")
            assert code == 200
            assert json.loads(body) == {"running": True, "bad": None}
            code, body = self._get(address, "/metrics")
            assert code == 200
            assert check_exposition(body) == []
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(address, "/nope")
            assert excinfo.value.code == 404
        assert server.address is None

    def test_metrics_404_without_metrics_fn(self):
        with StatusServer(status_fn=dict) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.address, "/metrics")
            assert excinfo.value.code == 404

    def test_status_fn_exception_returns_500(self):
        def broken():
            raise RuntimeError("boom")

        with StatusServer(status_fn=broken) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                self._get(server.address, "/status")
            assert excinfo.value.code == 500


class TestStatusCLI:
    def _export_dir(self, tmp_path):
        tracer = Tracer()
        with tracer.span("cycle"):
            pass
        exporter = MetricsExporter(
            populated_telemetry(),
            str(tmp_path / "obs"),
            tracer=tracer,
            status_fn=lambda: {
                "owner": "alpha",
                "running": True,
                "cycles_run": 7,
                "held_locks": [],
                "histograms": {"autocomp.hist.cycle_wall_s": {"count": 2.0}},
            },
        )
        exporter.export_once()
        return exporter.out_dir

    def test_load_status_dir(self, tmp_path):
        loaded = load_status_dir(self._export_dir(tmp_path))
        assert loaded["status"]["owner"] == "alpha"
        assert loaded["snapshots"] == 1
        assert loaded["trace_spans"] == 1
        assert loaded["metrics_prom"] > 0
        assert loaded["errors"] == []

    def test_format_status_report(self, tmp_path):
        report = format_status(load_status_dir(self._export_dir(tmp_path)))
        assert "owner: alpha" in report
        assert "cycles_run: 7" in report
        assert "held_locks: (none)" in report
        assert "autocomp.hist.cycle_wall_s" in report
        assert "1 trace spans" in report

    def test_main_json_and_exit_codes(self, tmp_path, capsys):
        obs_dir = self._export_dir(tmp_path)
        assert status_main([obs_dir, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["status"]["cycles_run"] == 7

        empty = tmp_path / "empty"
        empty.mkdir()
        assert status_main([str(empty)]) == 1
        assert "missing" in capsys.readouterr().out

    def test_missing_dir_exits_nonzero(self, tmp_path, capsys):
        assert status_main([str(tmp_path / "nope")]) == 1
        capsys.readouterr()
