"""Tests for structured spans: Tracer, SpanRecorder, dumps and ids."""

from __future__ import annotations

import json
import os
import pickle
import threading

from repro.obs.tracing import Span, SpanContext, SpanRecorder, Tracer, make_span
from repro.obs.tracing import _id_salt, _new_id


class FakeClock:
    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


class TestIds:
    def test_ids_are_unique_and_well_formed(self):
        ids = {_new_id() for _ in range(10_000)}
        assert len(ids) == 10_000
        for an_id in list(ids)[:10]:
            assert len(an_id) == 16
            int(an_id, 16)  # hex

    def test_salt_redrawn_when_pid_changes(self):
        # A forked child inherits the counter position; the per-pid salt is
        # what keeps child ids disjoint from the parent's.  Simulate the
        # fork by invalidating the cached pid.
        _new_id()
        old_salt = _id_salt["salt"]
        _id_salt["pid"] = -1
        fresh = _new_id()
        assert _id_salt["pid"] == os.getpid()
        assert int(fresh, 16) >> 32 == _id_salt["salt"] >> 32
        # 32 random bits: a collision with the old salt is vanishingly
        # unlikely, and equality would mean the redraw never happened.
        assert _id_salt["salt"] != old_salt or old_salt == 0


class TestSpan:
    def test_duration_never_negative(self):
        span = Span("x", trace_id="t", span_id="s", start_s=10.0, end_s=9.0)
        assert span.duration_s == 0.0

    def test_context_round_trip(self):
        span = Span("x", trace_id="t", span_id="s")
        ctx = span.context
        assert ctx == SpanContext(trace_id="t", span_id="s")
        assert pickle.loads(pickle.dumps(ctx)) == ctx

    def test_to_dict_and_chrome_event(self):
        span = Span(
            "observe",
            trace_id="t",
            span_id="s",
            parent_id="p",
            start_s=1.0,
            end_s=1.5,
            attrs={"shard": 3},
            pid=42,
            tid=7,
        )
        as_dict = span.to_dict()
        assert as_dict["duration_s"] == 0.5
        assert as_dict["attrs"] == {"shard": 3}
        event = span.to_chrome_event()
        assert event["ph"] == "X"
        assert event["ts"] == 1.0e6
        assert event["dur"] == 0.5e6
        assert event["args"]["shard"] == 3
        assert event["args"]["parent_id"] == "p"


class TestTracer:
    def test_nesting_via_thread_local_stack(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("cycle") as cycle:
            with tracer.span("observe") as observe:
                assert tracer.current().span_id == observe.span_id
            with tracer.span("act") as act:
                pass
        assert tracer.current() is None
        spans = {s.name: s for s in tracer.finished()}
        assert spans["observe"].parent_id == cycle.span_id
        assert spans["act"].parent_id == cycle.span_id
        assert spans["cycle"].parent_id is None
        assert len({s.trace_id for s in spans.values()}) == 1

    def test_explicit_parent_beats_stack(self):
        tracer = Tracer(clock=FakeClock())
        other = SpanContext(trace_id="T", span_id="S")
        with tracer.span("cycle"):
            with tracer.span("child", parent=other) as child:
                assert child.trace_id == "T"
                assert child.parent_id == "S"

    def test_detached_span_never_becomes_implicit_parent(self):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("cycle") as cycle:
            job = tracer.begin("rewrite", detached=True)
            assert job.parent_id == cycle.span_id
            # The open detached span must not capture siblings.
            with tracer.span("observe") as observe:
                assert observe.parent_id == cycle.span_id
            tracer.end(job)

    def test_end_records_attrs_and_duration(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock)
        span = tracer.begin("x", items=3)
        clock.advance(2.0)
        tracer.end(span, success=True)
        [finished] = tracer.finished()
        assert finished.duration_s == 2.0
        assert finished.attrs == {"items": 3, "success": True}

    def test_per_thread_stacks_are_independent(self):
        tracer = Tracer(clock=FakeClock())
        seen = {}

        def worker():
            # The coordinator's open span must not leak into this thread.
            seen["parent"] = tracer.current()
            with tracer.span("pool-work") as span:
                seen["span"] = span

        with tracer.span("cycle"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["parent"] is None
        assert seen["span"].parent_id is None

    def test_adopt_stitches_and_filters_non_spans(self):
        tracer = Tracer(clock=FakeClock())
        remote = Span("w", trace_id="T", span_id="W")
        tracer.adopt([remote, None, "junk"])
        assert tracer.finished() == [remote]

    def test_clear_keeps_open_spans(self):
        tracer = Tracer(clock=FakeClock())
        open_span = tracer.begin("cycle")
        with tracer.span("observe"):
            pass
        tracer.clear()
        assert tracer.finished() == []
        tracer.end(open_span)
        assert [s.name for s in tracer.finished()] == ["cycle"]

    def test_dump_jsonl_and_chrome(self, tmp_path):
        tracer = Tracer(clock=FakeClock())
        with tracer.span("cycle", shard=1):
            pass
        jsonl = tracer.dump_jsonl(str(tmp_path / "trace.jsonl"))
        with open(jsonl, encoding="utf-8") as stream:
            lines = [json.loads(line) for line in stream if line.strip()]
        assert len(lines) == 1
        assert lines[0]["name"] == "cycle"

        chrome = tracer.dump_chrome(str(tmp_path / "trace.chrome.json"))
        with open(chrome, encoding="utf-8") as stream:
            payload = json.load(stream)
        assert payload["traceEvents"][0]["name"] == "cycle"
        assert payload["traceEvents"][0]["ph"] == "X"

    def test_dump_empty_trace_writes_empty_file(self, tmp_path):
        path = Tracer().dump_jsonl(str(tmp_path / "empty.jsonl"))
        with open(path, encoding="utf-8") as stream:
            assert stream.read() == ""


class TestMakeSpan:
    def test_one_shot_construction(self):
        parent = SpanContext(trace_id="T", span_id="P")
        span = make_span("rewrite", parent, 1.0, 2.0, key="db.t0")
        assert span.trace_id == "T"
        assert span.parent_id == "P"
        assert span.duration_s == 1.0
        assert span.attrs == {"key": "db.t0"}
        assert span.pid == os.getpid()

    def test_orphan_starts_its_own_trace(self):
        span = make_span("x", None, 0.0, 1.0)
        assert span.parent_id is None
        assert span.trace_id != ""

    def test_span_parent_accepted(self):
        parent = make_span("parent", None, 0.0, 2.0)
        child = make_span("child", parent, 0.5, 1.0)
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id


class TestSpanRecorder:
    def test_records_under_fixed_context(self):
        clock = FakeClock()
        ctx = SpanContext(trace_id="T", span_id="SHARD")
        recorder = SpanRecorder(ctx, clock=clock)
        with recorder.span("observe", files=9):
            clock.advance(1.0)
        with recorder.span("decide"):
            clock.advance(0.5)
        observe, decide = recorder.spans
        assert observe.trace_id == decide.trace_id == "T"
        assert observe.parent_id == decide.parent_id == "SHARD"
        assert observe.attrs == {"files": 9}
        # Sequential work on one worker: non-overlapping wall clock.
        assert observe.end_s <= decide.start_s

    def test_explicit_parent_override(self):
        recorder = SpanRecorder(SpanContext(trace_id="T", span_id="S"))
        inner_parent = SpanContext(trace_id="T", span_id="INNER")
        with recorder.span("sub", parent=inner_parent):
            pass
        assert recorder.spans[0].parent_id == "INNER"

    def test_spans_pickle_for_the_result_ride_home(self):
        recorder = SpanRecorder(SpanContext(trace_id="T", span_id="S"))
        with recorder.span("observe"):
            pass
        restored = pickle.loads(pickle.dumps(recorder.spans))
        assert restored == recorder.spans

    def test_exception_still_closes_span(self):
        recorder = SpanRecorder(SpanContext(trace_id="T", span_id="S"))
        try:
            with recorder.span("observe"):
                raise RuntimeError("worker blew up")
        except RuntimeError:
            pass
        assert len(recorder.spans) == 1
        assert recorder.spans[0].end_s >= recorder.spans[0].start_s
