"""Integration tests: whole-system scenarios across all packages."""

from __future__ import annotations

import pytest

from repro import (
    Catalog,
    Cluster,
    EngineSession,
    PeriodicTrigger,
    Simulator,
    openhouse_pipeline,
)
from repro.core import OptimizeAfterWriteHook, LstConnector, LstExecutionBackend
from repro.core.traits import FileCountReductionTrait
from repro.engine import MisconfiguredShuffleWriter, TrickleWriter
from repro.units import GiB, HOUR, MiB
from repro.workloads import CabConfig, CabWorkload


class TestStorageToQueryPath:
    """Fragmentation created by writers must be visible at every layer."""

    def test_small_files_propagate_through_layers(self, catalog, simple_schema):
        catalog.create_database("db", quota_objects=50_000)
        table = catalog.create_table("db.t", simple_schema)
        session = EngineSession(
            Cluster("q", executors=4), telemetry=catalog.telemetry, clock=catalog.clock
        )
        session.write(table, 256 * MiB, TrickleWriter(mean_file_size=4 * MiB))

        # LST layer sees the files.
        assert table.small_file_count() == table.data_file_count > 30
        # Storage layer sees objects + metadata.
        assert catalog.fs.file_count(table.location) > table.data_file_count
        # Quota accounting moved.
        assert catalog.quota_utilization("db") > 0
        # Query latency reflects the fragmentation.
        fragmented_latency = session.execute_read([(table, None)]).latency_s

        pipeline = openhouse_pipeline(
            catalog, Cluster("maint", executors=3), min_table_age_s=0.0
        )
        report = pipeline.run_cycle(now=catalog.clock.now)
        assert report.successes == 1
        healed_latency = session.execute_read([(table, None)]).latency_s
        assert healed_latency < fragmented_latency


class TestPeriodicAutoCompOnCab:
    """A miniature Figure 6: hourly AutoComp keeps CAB file counts down."""

    @pytest.fixture(scope="class")
    def runs(self):
        results = {}
        for strategy in ("none", "autocomp"):
            catalog = Catalog()
            session = EngineSession(
                Cluster("query", executors=8),
                telemetry=catalog.telemetry,
                clock=catalog.clock,
                seed=33,
            )
            session.attach_filesystem(catalog.fs)
            config = CabConfig(
                databases=4,
                data_bytes_per_db=256 * MiB,
                duration_s=3 * HOUR,
                lineitem_months=6,
                ro_rate_per_hour=3.0,
                rw_rate_per_hour=2.0,
                seed=33,
            )
            workload = CabWorkload(catalog, session, config)
            workload.load()
            simulator = Simulator(catalog.clock)
            workload.attach(simulator)
            if strategy == "autocomp":
                pipeline = openhouse_pipeline(
                    catalog,
                    Cluster("compaction", executors=3),
                    generation="hybrid",
                    k=40,
                    min_table_age_s=0.0,
                )
                PeriodicTrigger(pipeline, HOUR, until=config.duration_s).attach(simulator)
            simulator.run_until(config.duration_s + HOUR)
            results[strategy] = (workload, catalog)
        return results

    def test_compaction_reduces_file_count(self, runs):
        baseline_files = runs["none"][0].total_data_files()
        compacted_files = runs["autocomp"][0].total_data_files()
        assert compacted_files < baseline_files / 2

    def test_compaction_improves_query_latency(self, runs):
        def mean_late_latency(catalog):
            series = catalog.telemetry.series("engine.query.ro.latency")
            tail = series.between(2 * HOUR, 4 * HOUR)
            return sum(tail) / len(tail)

        assert mean_late_latency(runs["autocomp"][1]) < mean_late_latency(runs["none"][1])

    def test_storage_rpc_pressure_reduced(self, runs):
        baseline_opens = runs["none"][1].telemetry.counter("storage.rpc.open")
        compacted_opens = runs["autocomp"][1].telemetry.counter("storage.rpc.open")
        assert compacted_opens < baseline_opens


class TestHookServiceInterplay:
    """Optimize-after-write notify mode feeding the standalone service."""

    def test_notify_then_periodic_cycle(self, catalog, simple_schema):
        from repro.core import AutoCompService

        catalog.create_database("db")
        table = catalog.create_table("db.hot", simple_schema)
        session = EngineSession(
            Cluster("q", executors=4), telemetry=catalog.telemetry, clock=catalog.clock
        )
        pipeline = openhouse_pipeline(
            catalog, Cluster("maint", executors=2), min_table_age_s=0.0
        )
        service = AutoCompService(pipeline)
        connector = LstConnector(catalog)
        hook = OptimizeAfterWriteHook(
            connector,
            FileCountReductionTrait(),
            threshold=20,
            mode="notify",
            notify=service.notify,
        )
        session.write(table, 128 * MiB, MisconfiguredShuffleWriter(40))
        hook.on_write(table)
        assert len(service.notifications) == 1
        report = service.run_cycle(now=catalog.clock.now)
        assert report.successes == 1
        assert table.data_file_count == 1


class TestCrossFormatPipeline:
    """NFR3: one pipeline instance serves Iceberg and Delta tables."""

    def test_mixed_format_catalog(self, catalog, simple_schema):
        catalog.create_database("db")
        iceberg = catalog.create_table("db.ice", simple_schema, table_format="iceberg")
        delta = catalog.create_table("db.dlt", simple_schema, table_format="delta")
        session = EngineSession(
            Cluster("q", executors=4), telemetry=catalog.telemetry, clock=catalog.clock
        )
        for table in (iceberg, delta):
            session.write(table, 128 * MiB, MisconfiguredShuffleWriter(24))
        pipeline = openhouse_pipeline(
            catalog, Cluster("maint", executors=2), min_table_age_s=0.0
        )
        report = pipeline.run_cycle(now=catalog.clock.now)
        assert report.successes == 2
        assert iceberg.data_file_count == 1
        assert delta.data_file_count == 1
