"""Failure-injection tests: the system degrades gracefully, never corrupts.

Each scenario injects a fault mid-flow — quota exhaustion, concurrent
interference, tables vanishing between observe and act — and checks that
AutoComp reports the failure without corrupting table or storage state.
"""

from __future__ import annotations

import pytest

from repro.catalog import Catalog
from repro.core import (
    LstConnector,
    LstExecutionBackend,
    SequentialScheduler,
    TopKSelector,
    WeightedSumPolicy,
    Objective,
)
from repro.core.pipeline import AutoCompPipeline
from repro.core.traits import ComputeCostTrait, FileCountReductionTrait
from repro.engine import Cluster, EngineSession, MisconfiguredShuffleWriter
from repro.errors import NoSuchTableError, QuotaExceededError
from repro.units import GiB, MiB

from tests.conftest import fragment_table


def _pipeline(catalog, k=10):
    connector = LstConnector(catalog)
    return AutoCompPipeline(
        connector=connector,
        backend=LstExecutionBackend(connector, Cluster("m", executors=2)),
        traits=[
            FileCountReductionTrait(),
            ComputeCostTrait(executor_memory_gb=64.0, rewrite_bytes_per_hour=1 * GiB),
        ],
        policy=WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.7, maximize=True),
                Objective("compute_cost_gbhr", 0.3, maximize=False),
            ]
        ),
        selector=TopKSelector(k),
        scheduler=SequentialScheduler(),
        telemetry=catalog.telemetry,
    )


class TestQuotaExhaustion:
    def test_write_fails_cleanly_at_quota(self, simple_schema):
        catalog = Catalog()
        catalog.create_database("tight", quota_objects=40)
        table = catalog.create_table("tight.t", simple_schema)
        session = EngineSession(
            Cluster("q", executors=2), telemetry=catalog.telemetry, clock=catalog.clock
        )
        with pytest.raises(QuotaExceededError):
            # 64 files + metadata cannot fit in a 40-object quota.
            session.write(table, 64 * MiB, MisconfiguredShuffleWriter(64))
        # The namespace never exceeds its quota.
        used, limit = catalog.fs.quota_usage("/data/tight")
        assert used <= limit

    def test_compaction_frees_quota_headroom(self, simple_schema):
        from repro.catalog import TablePolicy

        catalog = Catalog()
        catalog.create_database("tight", quota_objects=220)
        # Zero retention: replaced files are physically deleted right after
        # the rewrite (the default 3-day window would hold them).
        table = catalog.create_table(
            "tight.t", simple_schema, policy=TablePolicy(snapshot_retention_s=0.0)
        )
        session = EngineSession(
            Cluster("q", executors=2), telemetry=catalog.telemetry, clock=catalog.clock
        )
        session.write(table, 64 * MiB, MisconfiguredShuffleWriter(48))
        used_before, _ = catalog.fs.quota_usage("/data/tight")

        pipeline = _pipeline(catalog)
        report = pipeline.run_cycle(now=catalog.clock.now)
        assert report.successes == 1
        used_after, _ = catalog.fs.quota_usage("/data/tight")
        assert used_after < used_before


class TestVanishingTables:
    def test_table_dropped_between_observe_and_act(self, catalog, simple_schema):
        """A backend that hits a dropped table surfaces the error rather
        than corrupting the cycle — the filter/act race every control
        plane has."""
        catalog.create_database("db")
        table = catalog.create_table("db.doomed", simple_schema)
        fragment_table(table, partitions=[()], files_per_partition=8)

        connector = LstConnector(catalog)
        backend = LstExecutionBackend(connector, Cluster("m", executors=2))

        class DroppingConnector(LstConnector):
            def observe(self, keys):
                candidates = super().observe(keys)
                catalog.drop_table("db.doomed")  # rug pull after observe
                return candidates

        pipeline = AutoCompPipeline(
            connector=DroppingConnector(catalog),
            backend=backend,
            traits=[FileCountReductionTrait()],
            policy=WeightedSumPolicy([Objective("file_count_reduction", 1.0)]),
            selector=TopKSelector(5),
            scheduler=SequentialScheduler(),
        )
        with pytest.raises(NoSuchTableError):
            pipeline.run_cycle(now=0.0)
        # Catalog state is consistent: the table is gone, nothing dangling.
        assert not catalog.table_exists("db.doomed")


class TestConflictStorm:
    def test_pipeline_survives_all_jobs_conflicting(self, catalog, simple_schema, monthly_spec):
        """Every compaction racing a user write: wasted GBHr is reported,
        tables keep every byte."""
        catalog.create_database("db")
        table = catalog.create_table("db.t", simple_schema, spec=monthly_spec)
        fragment_table(table, partitions=[(0,), (1,)], files_per_partition=8)
        bytes_before = table.total_data_bytes

        connector = LstConnector(catalog)
        real_backend = LstExecutionBackend(connector, Cluster("m", executors=2))

        class SabotagingBackend(LstExecutionBackend):
            def prepare(self, task):
                job = real_backend.prepare(task)
                if job is None:
                    return None
                original_start = job.start

                def start_and_interfere():
                    duration = original_start()
                    txn = table.new_append()
                    txn.add_file(MiB, partition=(0,))
                    txn.commit()  # lands inside the job's window
                    return duration

                job.start = start_and_interfere
                return job

        pipeline = AutoCompPipeline(
            connector=connector,
            backend=SabotagingBackend(connector, Cluster("m", executors=2)),
            traits=[FileCountReductionTrait()],
            policy=WeightedSumPolicy([Objective("file_count_reduction", 1.0)]),
            selector=TopKSelector(5),
            scheduler=SequentialScheduler(),
            telemetry=catalog.telemetry,
        )
        report = pipeline.run_cycle(now=0.0)
        assert report.successes == 0
        assert report.conflicts == 1
        assert report.total_gbhr > 0  # wasted work is accounted
        # No data lost: original bytes plus the interfering appends.
        assert table.total_data_bytes >= bytes_before
        assert catalog.telemetry.counter("autocomp.results.conflict") == 1


class TestEmptyWorlds:
    def test_pipeline_on_empty_catalog(self, catalog):
        report = _pipeline(catalog).run_cycle(now=0.0)
        assert report.candidates_generated == 0
        assert report.results == []

    def test_pipeline_on_catalog_of_empty_tables(self, catalog, simple_schema):
        catalog.create_database("db")
        for i in range(3):
            catalog.create_table(f"db.empty{i}", simple_schema)
        report = _pipeline(catalog).run_cycle(now=0.0)
        assert report.successes == 0
        assert all(r.skipped for r in report.results)
