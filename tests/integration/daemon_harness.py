"""Subprocess harness for the daemon crash-recovery suite.

Runs an :class:`~repro.core.daemon.AutoCompDaemon` backfill over a fresh
fragmented fleet, journaling every compacted unit to ``journal.log`` in
the work directory (one fsynced line per compaction, written while the
unit's lock is held and its state is ``RUNNING``).  ``--slow`` inserts a
sleep between the journal line and the unit's ``COMPLETE`` transition —
the window the recovery test aims its ``SIGKILL`` at.

The lock directory, state-machine directory and journal all live under
``--workdir`` and persist across invocations; the catalog itself is
rebuilt fresh each run (it is in-memory), which is exactly the point:
only the durable state machine prevents a restarted run from
re-compacting units the killed run already finished.

Invoked by tests as ``python -m tests.integration.daemon_harness`` (or by
path) with ``PYTHONPATH`` covering ``src`` and the repo root.  On a
completed drain it writes ``done.json`` (the final state counts) and
prints the same JSON to stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def build_fleet(tables: int, files_per_table: int):
    """A fresh catalog with ``tables`` fragmented tables and their keys."""
    from repro.catalog import Catalog
    from repro.core.candidates import CandidateKey, CandidateScope
    from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema
    from repro.units import HOUR, MiB

    catalog = Catalog()
    catalog.create_database("db")
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    keys = []
    for i in range(tables):
        table = catalog.create_table(f"db.t{i:03d}", schema, spec=spec)
        txn = table.new_append()
        for _ in range(files_per_table):
            txn.add_file(8 * MiB, partition=(0,))
        txn.commit()
        keys.append(CandidateKey("db", f"t{i:03d}", CandidateScope.TABLE))
    catalog.clock.advance_by(2 * HOUR)  # age past the recent-table filter
    return catalog, keys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", required=True, help="durable state home")
    parser.add_argument("--tables", type=int, default=12)
    parser.add_argument("--files-per-table", type=int, default=6)
    parser.add_argument(
        "--slow",
        type=float,
        default=0.0,
        help="seconds to sleep per unit between journal write and COMPLETE",
    )
    parser.add_argument("--chunk-size", type=int, default=1)
    args = parser.parse_args(argv)

    from repro.core import AutoCompDaemon, AutoCompService, LockManager
    from repro.core.service import openhouse_pipeline
    from repro.engine import Cluster

    workdir = args.workdir
    os.makedirs(workdir, exist_ok=True)
    catalog, keys = build_fleet(args.tables, args.files_per_table)
    pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=3))
    service = AutoCompService(pipeline)
    locks = LockManager(os.path.join(workdir, "locks"), stale_after_s=30.0)
    daemon = AutoCompDaemon(service, locks)

    journal_path = os.path.join(workdir, "journal.log")

    def journal_then_stall(unit: str) -> None:
        # O_APPEND + fsync: the line is durable before the kill window
        # opens, so the test can trust journal counts across a SIGKILL.
        fd = os.open(journal_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, (unit + "\n").encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)
        if args.slow > 0:
            time.sleep(args.slow)

    counts = daemon.backfill(
        keys,
        os.path.join(workdir, "state"),
        chunk_size=args.chunk_size,
        unit_hook=journal_then_stall,
    )
    with open(os.path.join(workdir, "done.json"), "w", encoding="utf-8") as stream:
        json.dump(counts, stream)
    print(json.dumps(counts))
    return 0


if __name__ == "__main__":
    sys.exit(main())
