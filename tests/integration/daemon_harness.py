"""Subprocess harness for the daemon crash-recovery suite.

Two modes, selected by ``--mode``:

``backfill`` (default)
    Runs an :class:`~repro.core.daemon.AutoCompDaemon` backfill over a
    fresh fragmented fleet, journaling every compacted unit to
    ``journal.log`` in the work directory (one fsynced line per
    compaction, written while the unit's lock is held and its state is
    ``RUNNING``).  ``--slow`` inserts a sleep between the journal line
    and the unit's ``COMPLETE`` transition — the window the recovery
    test aims its ``SIGKILL`` at.

``promoter``
    Runs a daemon with a :class:`~repro.core.promoter.PolicyPromoter`
    over a durable :class:`~repro.core.promoter.PolicyStore` under
    ``--workdir/policy``: live cycles to record history, one promoter
    step (the boot variant is a deliberate dud, so a challenger always
    wins), one more cycle to close the guard window.  The store's
    ``promote_hook`` journals ``promote_window:<variant>`` and then
    sleeps ``--slow`` seconds — the gap between the promotion's audit
    intent line and the ``active.json`` flip, which is where the
    recovery test lands its ``SIGKILL``.

The lock directory, state-machine / policy-store directories and journal
all live under ``--workdir`` and persist across invocations; the catalog
itself is rebuilt fresh each run (it is in-memory), which is exactly the
point: only the durable state prevents a restarted run from redoing (or
losing) what the killed run already committed.

Invoked by tests as ``python -m tests.integration.daemon_harness`` (or by
path) with ``PYTHONPATH`` covering ``src`` and the repo root.  On
completion both modes write ``done.json`` and print the same JSON to
stdout.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time


def build_fleet(tables: int, files_per_table: int):
    """A fresh catalog with ``tables`` fragmented tables and their keys."""
    from repro.catalog import Catalog
    from repro.core.candidates import CandidateKey, CandidateScope
    from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema
    from repro.units import HOUR, MiB

    catalog = Catalog()
    catalog.create_database("db")
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    keys = []
    for i in range(tables):
        table = catalog.create_table(f"db.t{i:03d}", schema, spec=spec)
        txn = table.new_append()
        for _ in range(files_per_table):
            txn.add_file(8 * MiB, partition=(0,))
        txn.commit()
        keys.append(CandidateKey("db", f"t{i:03d}", CandidateScope.TABLE))
    catalog.clock.advance_by(2 * HOUR)  # age past the recent-table filter
    return catalog, keys


def journal_writer(workdir):
    """An O_APPEND + fsync line writer: durable before any kill window opens."""
    journal_path = os.path.join(workdir, "journal.log")

    def journal(line: str) -> None:
        fd = os.open(journal_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644)
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
            os.fsync(fd)
        finally:
            os.close(fd)

    return journal


def finish(workdir, payload: dict) -> int:
    with open(os.path.join(workdir, "done.json"), "w", encoding="utf-8") as stream:
        json.dump(payload, stream)
    print(json.dumps(payload))
    return 0


def run_backfill(args) -> int:
    from repro.core import AutoCompDaemon, AutoCompService, LockManager
    from repro.core.service import openhouse_pipeline
    from repro.engine import Cluster

    workdir = args.workdir
    catalog, keys = build_fleet(args.tables, args.files_per_table)
    pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=3))
    service = AutoCompService(pipeline)
    locks = LockManager(os.path.join(workdir, "locks"), stale_after_s=30.0)
    daemon = AutoCompDaemon(service, locks)
    journal = journal_writer(workdir)

    def journal_then_stall(unit: str) -> None:
        journal(unit)
        if args.slow > 0:
            time.sleep(args.slow)

    counts = daemon.backfill(
        keys,
        os.path.join(workdir, "state"),
        chunk_size=args.chunk_size,
        unit_hook=journal_then_stall,
    )
    return finish(workdir, counts)


def run_promoter(args) -> int:
    from repro.core import (
        AutoCompDaemon,
        AutoCompService,
        LockManager,
        PolicyPromoter,
        PolicyStore,
        verify_promotions,
    )
    from repro.core.service import openhouse_pipeline
    from repro.engine import Cluster
    from repro.replay import PolicyVariant
    from repro.units import HOUR, MiB

    workdir = args.workdir
    catalog, _keys = build_fleet(args.tables, args.files_per_table)
    pipeline = openhouse_pipeline(
        catalog, Cluster("maint", executors=3), min_table_age_s=0.0
    )
    service = AutoCompService(pipeline)
    locks = LockManager(os.path.join(workdir, "locks"), stale_after_s=30.0)
    store = PolicyStore(os.path.join(workdir, "policy"))
    recovered = store.recovered_action  # what (if anything) a restart resolved
    # The boot variant's small-file floor filters every candidate, so a
    # real challenger beats it deterministically at the first shadow eval.
    dud = PolicyVariant(name="dud", k=10, min_small_files=500)
    store.initialize(
        dud,
        pool=[dud, PolicyVariant(name="k10", k=10), PolicyVariant(name="k2", k=2)],
    )
    journal = journal_writer(workdir)

    def promote_window(op: str, variant_name: str) -> None:
        # Between the audit intent line and the active.json flip: exactly
        # the window a kill -9 must leave recoverable.
        journal(f"{op}_window:{variant_name}")
        if args.slow > 0:
            time.sleep(args.slow)

    store.promote_hook = promote_window
    promoter = PolicyPromoter(store, guard_cycles=1, min_history_cycles=1)
    daemon = AutoCompDaemon(service, locks, interval_s=3600.0, promoter=promoter)

    def churn_cycle() -> None:
        for table in catalog.database("db").tables.values():
            txn = table.new_append()
            for _ in range(4):
                txn.add_file(4 * MiB, partition=(0,))
            txn.commit()
        catalog.clock.advance_by(HOUR)
        daemon.run_once()

    daemon.start()
    try:
        for _ in range(2):
            churn_cycle()  # record enough history to shadow-evaluate
        decision = daemon.run_promoter_once()
        churn_cycle()  # one productive cycle closes the 1-cycle guard window
    finally:
        daemon.stop()
    summary = verify_promotions(store.store_dir)
    return finish(
        workdir,
        {
            "recovered": recovered,
            "decision": decision,
            "snapshot": store.snapshot(),
            "violations": summary.violations,
            "promotions": summary.promotions,
            "rollbacks": summary.rollbacks,
            "guard_passes": summary.guard_passes,
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workdir", required=True, help="durable state home")
    parser.add_argument("--mode", choices=("backfill", "promoter"), default="backfill")
    parser.add_argument("--tables", type=int, default=12)
    parser.add_argument("--files-per-table", type=int, default=6)
    parser.add_argument(
        "--slow",
        type=float,
        default=0.0,
        help="seconds to stall inside the kill window (per unit, or per promotion)",
    )
    parser.add_argument("--chunk-size", type=int, default=1)
    args = parser.parse_args(argv)
    os.makedirs(args.workdir, exist_ok=True)
    if args.mode == "promoter":
        return run_promoter(args)
    return run_backfill(args)


if __name__ == "__main__":
    sys.exit(main())
