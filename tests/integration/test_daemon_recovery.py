"""Crash-recovery integration: SIGKILL a backfilling daemon, restart, resume.

Drives :mod:`tests.integration.daemon_harness` as a real subprocess so the
kill is a genuine ``kill -9`` — no atexit handlers, no finally blocks, no
lock releases.  The durable artifacts under the shared work directory
(lock files + audit log, resumable-state files, the compaction journal)
are all that connects the two runs, exactly as for a production daemon
restarting on the same warehouse.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.daemon import ResumableStateMachine
from repro.core.locks import LOCK_SUFFIX, verify_audit

HARNESS = os.path.join(os.path.dirname(__file__), "daemon_harness.py")
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def launch(workdir, tables: int, slow: float = 0.0, mode: str = "backfill") -> subprocess.Popen:
    env = dict(os.environ)
    src = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = os.pathsep.join(
        part for part in (src, env.get("PYTHONPATH")) if part
    )
    return subprocess.Popen(
        [
            sys.executable,
            HARNESS,
            "--workdir",
            os.fspath(workdir),
            "--mode",
            mode,
            "--tables",
            str(tables),
            "--slow",
            str(slow),
        ],
        env=env,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


def run_to_completion(workdir, tables: int, mode: str = "backfill") -> dict:
    proc = launch(workdir, tables=tables, mode=mode)
    stdout, stderr = proc.communicate(timeout=120)
    assert proc.returncode == 0, f"harness failed:\n{stderr}"
    return json.loads(stdout.strip().splitlines()[-1])


def journal_lines(workdir) -> list[str]:
    path = os.path.join(os.fspath(workdir), "journal.log")
    try:
        with open(path, encoding="utf-8") as stream:
            return [line for line in stream.read().splitlines() if line]
    except FileNotFoundError:
        return []


def wait_for_journal(proc, workdir, n: int, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if len(journal_lines(workdir)) >= n:
            return
        if proc.poll() is not None:
            pytest.fail(f"harness exited early:\n{proc.stderr.read()}")
        time.sleep(0.02)
    pytest.fail(f"journal never reached {n} lines")


def wait_for_journal_line(proc, workdir, needle: str, timeout: float = 60.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if any(needle in line for line in journal_lines(workdir)):
            return
        if proc.poll() is not None:
            pytest.fail(f"harness exited early:\n{proc.stderr.read()}")
        time.sleep(0.02)
    pytest.fail(f"journal never contained {needle!r}")


def lock_files(workdir) -> list[str]:
    lock_dir = os.path.join(os.fspath(workdir), "locks")
    try:
        return sorted(n for n in os.listdir(lock_dir) if n.endswith(LOCK_SUFFIX))
    except FileNotFoundError:
        return []


class TestCleanBackfill:
    def test_single_run_drains_and_audits_clean(self, tmp_path):
        counts = run_to_completion(tmp_path, tables=6)
        assert counts["COMPLETE"] == 6
        assert counts["INIT"] == counts["LOCKED"] == counts["RUNNING"] == 0
        journal = journal_lines(tmp_path)
        assert len(journal) == 6 == len(set(journal))
        assert lock_files(tmp_path) == []  # every lock released
        summary = verify_audit(tmp_path / "locks")
        assert summary.ok, summary.violations
        assert summary.compact_commits == 6

    def test_rerun_after_success_recompacts_nothing(self, tmp_path):
        run_to_completion(tmp_path, tables=5)
        journal_before = journal_lines(tmp_path)
        counts = run_to_completion(tmp_path, tables=5)
        assert counts["COMPLETE"] == 5
        # The second run found every unit COMPLETE and touched none.
        assert journal_lines(tmp_path) == journal_before
        summary = verify_audit(tmp_path / "locks")
        assert summary.ok, summary.violations
        assert summary.compact_commits == 5


class TestKillDashNine:
    TABLES = 12

    def kill_mid_backfill(self, tmp_path) -> tuple[list[str], list[str], dict]:
        """Run 1 with a widened per-unit window; SIGKILL after >=3 units.

        Returns (pre-kill COMPLETE units, leftover lock files, pre-kill
        state counts).
        """
        proc = launch(tmp_path, tables=self.TABLES, slow=0.25)
        try:
            wait_for_journal(proc, tmp_path, n=3)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()
        machine = ResumableStateMachine(tmp_path / "state")
        counts = machine.counts()
        return machine.complete_units(), lock_files(tmp_path), counts

    def test_restart_resumes_without_recompacting_complete_units(self, tmp_path):
        completed_before, _, counts_before = self.kill_mid_backfill(tmp_path)
        # The kill landed mid-fleet: real progress, real remaining work.
        assert counts_before["COMPLETE"] >= 1
        assert counts_before["COMPLETE"] < self.TABLES

        counts = run_to_completion(tmp_path, tables=self.TABLES)
        assert counts["COMPLETE"] == self.TABLES
        assert counts["INIT"] == counts["LOCKED"] == counts["RUNNING"] == 0

        journal = journal_lines(tmp_path)
        # Units COMPLETE before the kill were journaled exactly once: the
        # restarted run skipped them.  (A unit killed mid-RUNNING may
        # legitimately appear twice — demoted to INIT and redone.)
        for unit in completed_before:
            assert journal.count(unit) == 1, f"{unit} re-compacted after restart"
        assert set(journal) == {f"db.t{i:03d}" for i in range(self.TABLES)}

    def test_stale_locks_reclaimed_and_audit_stays_clean(self, tmp_path):
        _, leftover_locks, _ = self.kill_mid_backfill(tmp_path)
        run_to_completion(tmp_path, tables=self.TABLES)
        assert lock_files(tmp_path) == []  # crash leftovers reclaimed
        summary = verify_audit(tmp_path / "locks")
        assert summary.ok, summary.violations
        assert summary.reclaims == len(leftover_locks)
        assert summary.double_compactions == {}
        assert summary.compact_commits >= self.TABLES


class TestKillMidPromotion:
    """SIGKILL lands between a promotion's audit intent and the policy flip."""

    def kill_mid_promotion(self, tmp_path) -> None:
        proc = launch(tmp_path, tables=6, slow=30.0, mode="promoter")
        try:
            wait_for_journal_line(proc, tmp_path, "promote_window:")
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            proc.wait(timeout=30)
            proc.stdout.close()
            proc.stderr.close()

    def test_reopened_store_aborts_the_dangling_intent(self, tmp_path):
        from repro.core import PolicyStore, verify_promotions

        self.kill_mid_promotion(tmp_path)
        store = PolicyStore(tmp_path / "policy")
        # The flip never happened, so recovery aborts the intent: the
        # active policy is still the boot variant at version 1, STABLE.
        assert store.recovered_action.startswith("aborted promote")
        assert store.version == 1
        assert store.state == "STABLE"
        assert store.snapshot()["active"] == "dud"
        summary = verify_promotions(tmp_path / "policy")
        assert summary.violations == []
        assert summary.promotions == 0

    def test_restarted_daemon_promotes_after_the_crash(self, tmp_path):
        from repro.core import verify_promotions

        self.kill_mid_promotion(tmp_path)
        done = run_to_completion(tmp_path, tables=6, mode="promoter")
        # The fresh run recovered the dangling intent itself...
        assert done["recovered"].startswith("aborted promote")
        # ...then shadow-evaluated and promoted for real.
        assert done["decision"]["action"] == "promote"
        assert done["decision"]["over"] == "dud"
        assert done["snapshot"]["state"] == "STABLE"
        assert done["snapshot"]["active"] != "dud"
        assert done["violations"] == []
        assert done["promotions"] == 1 and done["guard_passes"] == 1
        # The full history — abort included — replays clean after the fact.
        assert verify_promotions(tmp_path / "policy").violations == []

    def test_clean_promoter_run_needs_no_recovery(self, tmp_path):
        done = run_to_completion(tmp_path, tables=6, mode="promoter")
        assert done["recovered"] is None
        assert done["decision"]["action"] == "promote"
        assert done["violations"] == []
        assert done["guard_passes"] == 1
