"""End-to-end observability: one daemon cycle, one stitched trace.

The tentpole acceptance test: a daemon cycle over a sharded pipeline with
``workers="processes"`` must produce a *single* trace in which the
worker-process observe/decide spans (recorded in other pids, shipped home
inside the cycle results) hang under the coordinator's shard spans with
non-overlapping wall-clock attribution — plus the exporter/status surface
around that cycle: a Prometheus exposition that survives the strict CI
checker, a ``status()`` report, and the live HTTP endpoints.
"""

from __future__ import annotations

import json
import os
import time
import urllib.request

import pytest

from repro.catalog import Catalog
from repro.core import AutoCompService, LockManager
from repro.core.daemon import AutoCompDaemon
from repro.core.service import openhouse_sharded_pipeline
from repro.core.workers import process_workers_available
from repro.engine import Cluster
from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema
from repro.obs.promcheck import check_exposition
from repro.obs.status import load_status_dir
from repro.obs.tracing import Tracer
from repro.units import HOUR, MiB


def build_fleet(databases=2, tables=2):
    catalog = Catalog()
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    for d in range(databases):
        catalog.create_database(f"db{d}", quota_objects=1_000_000)
        for t in range(tables):
            table = catalog.create_table(f"db{d}.t{t}", schema, spec=spec)
            txn = table.new_append()
            for _ in range(8):
                txn.add_file(8 * MiB, partition=(0,))
            txn.commit()
    catalog.clock.advance_by(2 * HOUR)  # age past the recent-table filter
    return catalog


def build_obs_daemon(tmp_path, tracer, workers="threads"):
    catalog = build_fleet()
    pipeline = openhouse_sharded_pipeline(
        catalog,
        Cluster("maint", executors=3),
        n_shards=2,
        selection="local",
        workers=workers,
        # On small CI boxes cpu_count() can be 1, which would silently
        # fall back to in-process observe; two workers force real fork.
        max_workers=2,
        tracer=tracer,
    )
    service = AutoCompService(pipeline)
    locks = LockManager(str(tmp_path / "locks"), owner="obs", stale_after_s=30.0)
    return AutoCompDaemon(
        service,
        locks,
        tracer=tracer,
        obs_dir=str(tmp_path / "obs"),
        export_interval_s=60.0,
    )


@pytest.mark.skipif(
    not process_workers_available(), reason="process workers need fork on Linux"
)
class TestStitchedProcessTrace:
    def test_single_trace_with_worker_parentage(self, tmp_path):
        tracer = Tracer()
        daemon = build_obs_daemon(tmp_path, tracer, workers="processes")
        try:
            report = daemon.run_once()
        finally:
            daemon.stop()
        assert report is not None

        spans = tracer.finished()
        by_name = {}
        for span in spans:
            by_name.setdefault(span.name, []).append(span)

        # One stitched trace: every span shares the root cycle's trace id.
        [cycle] = by_name["cycle"]
        assert {s.trace_id for s in spans} == {cycle.trace_id}

        coordinator_pid = os.getpid()
        assert cycle.pid == coordinator_pid

        # Coordinator-side shard spans parent under the observe phase.
        [observe] = [s for s in by_name["observe"] if s.pid == coordinator_pid]
        shard_spans = by_name["shard"]
        assert len(shard_spans) == 2
        for shard in shard_spans:
            assert shard.pid == coordinator_pid
            assert shard.parent_id == observe.span_id
            assert shard.attrs["mode"] == "processes"

        # Worker-side spans crossed the process boundary and stitched in
        # under their shard span with the worker's own pid.
        worker_spans = [s for s in spans if s.pid != coordinator_pid]
        assert worker_spans, "no worker-recorded spans were adopted"
        shard_ids = {s.span_id: s for s in shard_spans}
        for span in worker_spans:
            assert span.name in ("observe", "decide")
            assert span.parent_id in shard_ids

        # Non-overlapping wall-clock attribution per worker: the shard's
        # observe finishes before its decide starts, and both sit inside
        # the coordinator's shard-span window (same-host clocks).
        for shard in shard_spans:
            children = [s for s in worker_spans if s.parent_id == shard.span_id]
            phases = {s.name: s for s in children}
            if "decide" in phases:
                assert phases["observe"].end_s <= phases["decide"].start_s
            for child in children:
                assert child.start_s >= shard.start_s
                assert child.end_s <= shard.end_s

    def test_rewrite_spans_attribute_act_work(self, tmp_path):
        tracer = Tracer()
        daemon = build_obs_daemon(tmp_path, tracer, workers="processes")
        try:
            daemon.run_once()
        finally:
            daemon.stop()
        rewrites = [s for s in tracer.finished() if s.name == "rewrite"]
        assert rewrites, "act phase scheduled no rewrite jobs"
        acts = {s.span_id for s in tracer.finished() if s.name == "act"}
        for span in rewrites:
            assert span.parent_id in acts
            assert "key" in span.attrs
            assert span.attrs["rewritten_bytes"] >= 0


class TestDaemonObsSurface:
    def test_exporter_status_and_http(self, tmp_path):
        tracer = Tracer()
        daemon = build_obs_daemon(tmp_path, tracer, workers="threads")
        server = None
        try:
            daemon.run_once()
            status = daemon.status()
            assert status["owner"] == "obs"
            assert status["cycles_run"] == 1
            assert status["cycle_errors"] == 0
            assert status["cycle_in_flight"] is False
            assert status["held_locks"] == []
            assert any(
                name.startswith("autocomp.hist.") for name in status["histograms"]
            )

            server = daemon.serve_status()
            assert daemon.serve_status() is server  # idempotent
            host, port = server.address
            with urllib.request.urlopen(f"http://{host}:{port}/status") as response:
                live = json.load(response)
            assert live["cycles_run"] == 1
            with urllib.request.urlopen(f"http://{host}:{port}/metrics") as response:
                exposition = response.read().decode("utf-8")
            assert check_exposition(exposition) == []
            assert "autocomp_hist_cycle_wall_s_count" in exposition
        finally:
            daemon.stop()

        # stop() shut the HTTP server down and ran the final export.
        assert server.address is None
        loaded = load_status_dir(str(tmp_path / "obs"))
        assert loaded["errors"] == []
        assert loaded["status"]["cycles_run"] == 1
        assert loaded["trace_spans"] > 0
        assert loaded["metrics_prom"] > 0
        with open(daemon.exporter.prom_path, encoding="utf-8") as stream:
            assert check_exposition(stream.read()) == []

    def test_scheduled_cycles_export_while_running(self, tmp_path):
        tracer = Tracer()
        catalog = build_fleet()
        pipeline = openhouse_sharded_pipeline(
            catalog, Cluster("maint", executors=3), n_shards=2, tracer=tracer
        )
        service = AutoCompService(pipeline)
        locks = LockManager(str(tmp_path / "locks"), owner="sched", stale_after_s=30.0)
        daemon = AutoCompDaemon(
            service,
            locks,
            interval_s=0.05,
            tracer=tracer,
            obs_dir=str(tmp_path / "obs"),
            export_interval_s=0.1,
        )
        try:
            daemon.start()
            deadline = 50
            while daemon.exporter.exports == 0 and deadline:
                time.sleep(0.05)
                deadline -= 1
        finally:
            daemon.stop()
        assert daemon.cycles_run >= 1
        assert daemon.exporter.exports >= 1
        assert daemon.exporter.export_errors == 0
        assert os.path.exists(daemon.exporter.status_path)
