"""Scale sanity: the vectorised fleet handles paper-scale table counts.

The production deployment in §7 spans 21K–35K tables.  The benches run
smaller fleets for speed; this test verifies the fleet machinery itself —
onboarding, daily stepping, the AutoComp cycle over tens of thousands of
candidates — works at the paper's scale within sane wall-clock bounds.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator


@pytest.fixture(scope="module")
def paper_scale_sim():
    return FleetSimulator(
        FleetConfig(initial_tables=21_000, databases=200, seed=99)
    )


class TestPaperScale:
    def test_onboarding_21k_tables(self, paper_scale_sim):
        assert paper_scale_sim.model.count == 21_000
        assert paper_scale_sim.model.total_files > 0

    def test_daily_step_wall_clock(self, paper_scale_sim):
        start = time.perf_counter()
        paper_scale_sim.model.step_day()
        elapsed = time.perf_counter() - start
        assert elapsed < 1.0, f"daily step took {elapsed:.2f}s at 21K tables"

    def test_autocomp_cycle_over_full_fleet(self, paper_scale_sim):
        simulator = paper_scale_sim
        strategy = AutoCompStrategy(simulator.model, k=None, budget_gbhr=500_000.0)
        start = time.perf_counter()
        outcome = strategy.run_day(simulator.model, day=simulator.model.day)
        elapsed = time.perf_counter() - start
        # The paper's dynamic-k deployment compacts ~2500 tables/cycle.
        assert outcome.tables_compacted > 1_000
        assert elapsed < 30.0, f"cycle took {elapsed:.1f}s at 21K tables"

    def test_quota_vector_covers_all_databases(self, paper_scale_sim):
        quota = paper_scale_sim.model.database_quota_utilization()
        assert quota.shape == (200,)
        assert np.isfinite(quota).all()
