"""Tests for the catalog (databases, tables, quotas, policies)."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog, TablePolicy
from repro.errors import (
    NoSuchTableError,
    TableAlreadyExistsError,
    ValidationError,
)
from repro.lst import DeltaTable, IcebergTable, TableIdentifier
from repro.units import GiB, MiB

from tests.conftest import fragment_table


class TestDatabases:
    def test_create_and_list(self, catalog):
        catalog.create_database("b")
        catalog.create_database("a")
        assert catalog.list_databases() == ["a", "b"]

    def test_duplicate_rejected(self, catalog):
        catalog.create_database("x")
        with pytest.raises(ValidationError):
            catalog.create_database("x")

    def test_unknown_lookup(self, catalog):
        with pytest.raises(ValidationError):
            catalog.database("ghost")

    def test_quota_utilization_unlimited(self, catalog):
        catalog.create_database("free")
        assert catalog.quota_utilization("free") == 0.0

    def test_quota_utilization_tracks_files(self, catalog, simple_schema):
        catalog.create_database("ten", quota_objects=1000)
        table = catalog.create_table("ten.t", simple_schema)
        fragment_table(table, partitions=[()], files_per_partition=5)
        assert catalog.quota_utilization("ten") > 0.0


class TestTables:
    def test_create_and_load(self, catalog, simple_schema):
        catalog.create_database("db")
        created = catalog.create_table("db.t", simple_schema)
        loaded = catalog.load_table("db.t")
        assert created is loaded
        assert isinstance(created, IcebergTable)
        assert created.location == "/data/db/t"

    def test_create_with_identifier_object(self, catalog, simple_schema):
        catalog.create_database("db")
        ident = TableIdentifier("db", "t2")
        table = catalog.create_table(ident, simple_schema)
        assert str(table.identifier) == "db.t2"

    def test_delta_format(self, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.d", simple_schema, table_format="delta")
        assert isinstance(table, DeltaTable)

    def test_unknown_format_rejected(self, catalog, simple_schema):
        catalog.create_database("db")
        with pytest.raises(ValidationError):
            catalog.create_table("db.t", simple_schema, table_format="paimon")

    def test_duplicate_table_rejected(self, catalog, simple_schema):
        catalog.create_database("db")
        catalog.create_table("db.t", simple_schema)
        with pytest.raises(TableAlreadyExistsError):
            catalog.create_table("db.t", simple_schema)

    def test_missing_database_rejected(self, catalog, simple_schema):
        with pytest.raises(ValidationError):
            catalog.create_table("nodb.t", simple_schema)

    def test_load_missing(self, catalog):
        catalog.create_database("db")
        with pytest.raises(NoSuchTableError):
            catalog.load_table("db.ghost")

    def test_table_exists(self, catalog, simple_schema):
        catalog.create_database("db")
        assert not catalog.table_exists("db.t")
        catalog.create_table("db.t", simple_schema)
        assert catalog.table_exists("db.t")

    def test_list_tables(self, catalog, simple_schema):
        catalog.create_database("db1")
        catalog.create_database("db2")
        catalog.create_table("db1.b", simple_schema)
        catalog.create_table("db1.a", simple_schema)
        catalog.create_table("db2.c", simple_schema)
        all_tables = catalog.list_tables()
        assert [str(t) for t in all_tables] == ["db1.a", "db1.b", "db2.c"]
        assert [str(t) for t in catalog.list_tables("db2")] == ["db2.c"]

    def test_drop_table_removes_files(self, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.t", simple_schema)
        fragment_table(table, partitions=[()], files_per_partition=3)
        assert catalog.fs.file_count(table.location) > 0
        catalog.drop_table("db.t")
        assert not catalog.table_exists("db.t")
        assert catalog.fs.file_count(table.location) == 0

    def test_drop_missing(self, catalog):
        catalog.create_database("db")
        with pytest.raises(NoSuchTableError):
            catalog.drop_table("db.ghost")

    def test_tables_share_catalog_clock_and_fs(self, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.t", simple_schema)
        assert table.fs is catalog.fs
        assert table.clock is catalog.clock


class TestPolicies:
    def test_default_policy(self, catalog, simple_schema):
        catalog.create_database("db")
        catalog.create_table("db.t", simple_schema)
        policy = catalog.policy("db.t")
        assert policy.target_file_size == 512 * MiB
        assert policy.compaction_enabled

    def test_policy_flows_into_table_properties(self, catalog, simple_schema):
        catalog.create_database("db")
        policy = TablePolicy(target_file_size=64 * MiB, snapshot_retention_s=0.0)
        table = catalog.create_table("db.t", simple_schema, policy=policy)
        assert table.target_file_size == 64 * MiB
        assert table.snapshot_retention_s == 0.0

    def test_set_policy(self, catalog, simple_schema):
        catalog.create_database("db")
        catalog.create_table("db.t", simple_schema)
        catalog.set_policy("db.t", TablePolicy(target_file_size=1 * GiB))
        assert catalog.policy("db.t").target_file_size == 1 * GiB

    def test_policy_for_missing_table(self, catalog):
        catalog.create_database("db")
        with pytest.raises(NoSuchTableError):
            catalog.policy("db.ghost")
        with pytest.raises(NoSuchTableError):
            catalog.set_policy("db.ghost", TablePolicy())

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            TablePolicy(target_file_size=0)
        with pytest.raises(ValidationError):
            TablePolicy(snapshot_retention_s=-1)
        with pytest.raises(ValidationError):
            TablePolicy(min_age_before_compaction_s=-1)

    def test_policy_with_overrides(self):
        base = TablePolicy()
        changed = base.with_overrides(compaction_enabled=False)
        assert not changed.compaction_enabled
        assert changed.target_file_size == base.target_file_size
