"""Tests for data services (retention sweeps, health reporting)."""

from __future__ import annotations

from repro.catalog import DataServices, TablePolicy
from repro.units import MiB

from tests.conftest import fragment_table


def _rewrite_all(table):
    sources = table.live_files()
    by_partition = {}
    for f in sources:
        by_partition.setdefault(f.partition, []).append(f)
    txn = table.new_rewrite()
    for files in by_partition.values():
        txn.rewrite(files, [sum(f.size_bytes for f in files)])
    txn.commit()


class TestRetention:
    def test_retention_sweep_deletes_expired_files(self, catalog, simple_schema):
        catalog.create_database("db")
        policy = TablePolicy(snapshot_retention_s=0.0)
        table = catalog.create_table("db.t", simple_schema, policy=policy)
        fragment_table(table, partitions=[()], files_per_partition=6)
        _rewrite_all(table)
        catalog.clock.advance_by(10.0)
        report = DataServices(catalog).run_retention()
        assert report.tables_checked == 1
        assert report.snapshots_expired_tables == 1
        # 6 replaced data files + the expired snapshot's metadata (manifest
        # list + metadata JSON + its now-unreferenced manifest).
        assert report.files_deleted == 9

    def test_retention_respects_window(self, catalog, simple_schema):
        catalog.create_database("db")
        policy = TablePolicy(snapshot_retention_s=3600.0)
        table = catalog.create_table("db.t", simple_schema, policy=policy)
        fragment_table(table, partitions=[()], files_per_partition=4)
        _rewrite_all(table)
        catalog.clock.advance_by(10.0)  # still inside retention window
        report = DataServices(catalog).run_retention()
        assert report.files_deleted == 0


class TestHealthReporting:
    def test_out_of_policy_flags_fragmented_tables(self, catalog, simple_schema):
        catalog.create_database("db")
        fragmented = catalog.create_table("db.bad", simple_schema)
        fragment_table(fragmented, partitions=[()], files_per_partition=10, file_size=MiB)
        healthy = catalog.create_table("db.good", simple_schema)
        fragment_table(healthy, partitions=[()], files_per_partition=2, file_size=600 * MiB)
        services = DataServices(catalog)
        assert services.out_of_policy_tables() == ["db.bad"]

    def test_empty_tables_not_flagged(self, catalog, simple_schema):
        catalog.create_database("db")
        catalog.create_table("db.empty", simple_schema)
        assert DataServices(catalog).out_of_policy_tables() == []

    def test_table_health_metrics(self, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.t", simple_schema)
        fragment_table(table, partitions=[()], files_per_partition=4, file_size=MiB)
        health = DataServices(catalog).table_health(table)
        assert health["file_count"] == 4
        assert health["small_file_count"] == 4
        assert health["small_file_fraction"] == 1.0
        assert health["metadata_version"] == 1
