"""Tests for table-format registry extensibility (NFR3).

A third LST implementation (Hudi-like, say) should plug into the catalog —
and therefore into AutoComp — by registering one class.
"""

from __future__ import annotations

import pytest

from repro.catalog.catalog import TABLE_FORMATS
from repro.core import LstConnector, LstExecutionBackend
from repro.core.scheduling import CompactionTask
from repro.core.candidates import Candidate, CandidateKey, CandidateScope
from repro.engine import Cluster
from repro.lst.base import BaseTable, ConflictSemantics
from repro.units import KiB, MiB

from tests.conftest import fragment_table


class HudiLikeTable(BaseTable):
    """A minimal third format: one commit file per transaction, MVCC-light
    conflict rules (appends never fail, rewrites only on file overlap)."""

    format_name = "hudi-like"

    def _default_conflict_semantics(self) -> ConflictSemantics:
        return ConflictSemantics(
            append_fails_on_concurrent_rewrite=False,
            overwrite_fails_on_same_partition_commit=True,
            rowdelta_fails_on_reference_removed=True,
            rewrite_fails_on_concurrent_rewrite_any_partition=False,
            rewrite_fails_on_same_partition_write=False,
        )

    def _write_commit_metadata(
        self, snapshot_id, version, added, removed, parent, operation
    ):
        path = f"{self.location}/.custom/{version:08d}.commit"
        self.fs.create_file(path, 1 * KiB + 64 * (added + removed))
        previous = parent.manifest_paths if parent else ()
        return previous + (path,), ()


@pytest.fixture
def registered_format():
    TABLE_FORMATS["hudi-like"] = HudiLikeTable
    yield
    del TABLE_FORMATS["hudi-like"]


class TestThirdFormat:
    def test_catalog_creates_registered_format(self, registered_format, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.h", simple_schema, table_format="hudi-like")
        assert isinstance(table, HudiLikeTable)
        assert table.format_name == "hudi-like"

    def test_metadata_layout_used(self, registered_format, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.h", simple_schema, table_format="hudi-like")
        fragment_table(table, partitions=[()], files_per_partition=3)
        commits = catalog.fs.namenode.files_under(f"{table.location}/.custom")
        assert len(commits) == 1

    def test_autocomp_compacts_third_format(self, registered_format, catalog, simple_schema):
        """The whole OODA path works on a format AutoComp never saw."""
        catalog.create_database("db")
        table = catalog.create_table("db.h", simple_schema, table_format="hudi-like")
        fragment_table(table, partitions=[()], files_per_partition=12, file_size=4 * MiB)
        connector = LstConnector(catalog)
        backend = LstExecutionBackend(connector, Cluster("m", executors=2))
        key = CandidateKey("db", "h", CandidateScope.TABLE)
        stats = connector.collect_statistics(key)
        assert stats.small_file_count == 12
        job = backend.prepare(CompactionTask(candidate=Candidate(key=key)))
        job.start()
        result = job.finish()
        assert result.success
        assert table.data_file_count == 1

    def test_custom_semantics_in_force(self, registered_format, catalog, simple_schema, monthly_spec):
        catalog.create_database("db")
        table = catalog.create_table(
            "db.h", simple_schema, spec=monthly_spec, table_format="hudi-like"
        )
        fragment_table(table)
        # Disjoint concurrent rewrites commit (unlike the Iceberg profile).
        part0 = [f for f in table.live_files() if f.partition == (0,)]
        part1 = [f for f in table.live_files() if f.partition == (1,)]
        rewrite0 = table.new_rewrite()
        rewrite0.rewrite(part0, [sum(f.size_bytes for f in part0)])
        rewrite1 = table.new_rewrite()
        rewrite1.rewrite(part1, [sum(f.size_bytes for f in part1)])
        rewrite0.commit()
        rewrite1.commit()
        assert table.data_file_count == 2
