"""Tests for analysis utilities: distributions, metrics, reporting."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    PAPER_BUCKETS_MIB,
    bar_chart,
    candlestick,
    moving_average,
    normalize_series,
    percentile,
    render_table,
    series_chart,
    size_histogram,
    sparkline,
)
from repro.analysis.distributions import fraction_below
from repro.analysis.metrics import relative_change
from repro.errors import ValidationError
from repro.units import MiB


class TestSizeHistogram:
    def test_paper_buckets(self):
        sizes = [MiB, 20 * MiB, 100 * MiB, 300 * MiB, 600 * MiB]
        hist = size_histogram(sizes)
        assert hist["<16MiB"] == 1
        assert hist["16-32MiB"] == 1
        assert hist["64-128MiB"] == 1
        assert hist["256-512MiB"] == 1
        assert hist[">=512MiB"] == 1
        assert sum(hist.values()) == len(sizes)

    def test_default_edges_match_paper(self):
        assert PAPER_BUCKETS_MIB == (16, 32, 64, 128, 256, 512)

    def test_empty_edges_rejected(self):
        with pytest.raises(ValidationError):
            size_histogram([MiB], ())

    def test_fraction_below(self):
        sizes = [MiB, 100 * MiB, 200 * MiB]
        assert fraction_below(sizes, 128 * MiB) == pytest.approx(2 / 3)
        assert fraction_below([], 128 * MiB) == 0.0


class TestPercentiles:
    def test_linear_interpolation(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5

    def test_single_value(self):
        assert percentile([7.0], 25) == 7.0

    def test_unsorted_input(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            percentile([], 50)
        with pytest.raises(ValidationError):
            percentile([1.0], 101)


class TestCandlestick:
    def test_five_numbers(self):
        values = list(map(float, range(1, 101)))
        summary = candlestick(values)
        assert summary.minimum == 1.0
        assert summary.maximum == 100.0
        assert summary.median == pytest.approx(50.5)
        assert summary.p25 == pytest.approx(25.75)
        assert summary.p75 == pytest.approx(75.25)
        assert summary.spread == 99.0
        assert summary.iqr == pytest.approx(49.5)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            candlestick([])


class TestSeriesTransforms:
    def test_normalize(self):
        assert normalize_series([10.0, 20.0, 30.0]) == [0.0, 0.5, 1.0]
        assert normalize_series([5.0, 5.0]) == [0.0, 0.0]
        assert normalize_series([]) == []

    def test_moving_average(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert moving_average(values, 2) == [1.0, 1.5, 2.5, 3.5]
        assert moving_average(values, 1) == values

    def test_moving_average_validation(self):
        with pytest.raises(ValidationError):
            moving_average([1.0], 0)

    def test_relative_change(self):
        assert relative_change(100.0, 150.0) == pytest.approx(0.5)
        assert relative_change(100.0, 56.0) == pytest.approx(-0.44)
        with pytest.raises(ValidationError):
            relative_change(0.0, 1.0)


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["name", "value"], [["a", 1], ["bbbb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "name" in lines[0]
        assert set(lines[1]) <= {"-", " "}

    def test_row_width_validated(self):
        with pytest.raises(ValidationError):
            render_table(["a", "b"], [["only-one"]])


class TestCharts:
    def test_bar_chart_scales_to_peak(self):
        chart = bar_chart(["x", "y"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_bar_chart_zero_values(self):
        chart = bar_chart(["x"], [0.0])
        assert "█" not in chart

    def test_bar_chart_validation(self):
        with pytest.raises(ValidationError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValidationError):
            bar_chart(["a"], [1.0], width=0)

    def test_sparkline(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert sparkline([]) == ""
        assert sparkline([2.0, 2.0]) == "▁▁"

    def test_series_chart_downsamples(self):
        chart = series_chart({"m": list(map(float, range(100)))}, width=20)
        assert len(chart.split("| ")[1]) == 20

    def test_series_chart_empty(self):
        assert series_chart({}) == "(no series)"
