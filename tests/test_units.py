"""Tests for unit constants and formatting helpers."""

from __future__ import annotations

import pytest

from repro.units import (
    DAY,
    DEFAULT_TARGET_FILE_SIZE,
    GiB,
    HOUR,
    KiB,
    MiB,
    MINUTE,
    MONTH,
    SMALL_FILE_THRESHOLD,
    TiB,
    WEEK,
    format_bytes,
    format_duration,
)


class TestConstants:
    def test_byte_units_scale(self):
        assert KiB == 1024
        assert MiB == 1024 * KiB
        assert GiB == 1024 * MiB
        assert TiB == 1024 * GiB

    def test_paper_defaults(self):
        assert DEFAULT_TARGET_FILE_SIZE == 512 * MiB
        assert SMALL_FILE_THRESHOLD == 128 * MiB
        assert SMALL_FILE_THRESHOLD < DEFAULT_TARGET_FILE_SIZE

    def test_time_units_scale(self):
        assert MINUTE == 60
        assert HOUR == 60 * MINUTE
        assert DAY == 24 * HOUR
        assert WEEK == 7 * DAY
        assert MONTH == 30 * DAY


class TestFormatBytes:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (KiB, "1.0 KiB"),
            (512 * MiB, "512.0 MiB"),
            (3 * GiB, "3.0 GiB"),
            (2 * TiB, "2.0 TiB"),
        ],
    )
    def test_values(self, value, expected):
        assert format_bytes(value) == expected

    def test_negative(self):
        assert format_bytes(-2 * MiB) == "-2.0 MiB"

    def test_fractional(self):
        assert format_bytes(1.5 * MiB) == "1.5 MiB"


class TestFormatDuration:
    @pytest.mark.parametrize(
        "value, expected",
        [
            (0, "0.0 s"),
            (30, "30.0 s"),
            (90, "1.5 min"),
            (2 * HOUR, "2.0 h"),
            (3 * DAY, "3.0 d"),
        ],
    )
    def test_values(self, value, expected):
        assert format_duration(value) == expected

    def test_negative(self):
        assert format_duration(-HOUR) == "-1.0 h"
