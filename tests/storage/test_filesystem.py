"""Tests for the filesystem façade and its RPC accounting."""

from __future__ import annotations

from repro.storage import SimulatedFileSystem
from repro.units import MiB, SMALL_FILE_THRESHOLD


class TestRpcCounters:
    def test_create_counts(self, fs):
        fs.create_file("/a/f", 1)
        fs.create_file("/a/g", 1)
        assert fs.telemetry.counter("storage.rpc.create") == 2

    def test_open_counts(self, fs):
        fs.create_file("/a/f", 1)
        fs.open_file("/a/f")
        fs.open_file("/a/f")
        assert fs.telemetry.counter("storage.rpc.open") == 2

    def test_bulk_open_recording(self, fs):
        fs.record_opens(250)
        fs.record_opens(0)
        assert fs.telemetry.counter("storage.rpc.open") == 250

    def test_delete_and_list_and_stat_count(self, fs):
        fs.create_file("/a/f", 1)
        fs.list_files("/a")
        fs.exists("/a/f")
        fs.delete_file("/a/f")
        assert fs.telemetry.counter("storage.rpc.list") == 1
        assert fs.telemetry.counter("storage.rpc.stat") == 1
        assert fs.telemetry.counter("storage.rpc.delete") == 1


class TestCreationTime:
    def test_files_stamped_with_clock(self, fs, clock):
        clock.advance_to(123.0)
        info = fs.create_file("/a/f", 1)
        assert info.created_at == 123.0


class TestHealthMetrics:
    def test_small_file_count_and_fraction(self, fs):
        fs.create_file("/t/small1", 10 * MiB)
        fs.create_file("/t/small2", 100 * MiB)
        fs.create_file("/t/big", 200 * MiB)
        assert fs.small_file_count("/t") == 2
        assert fs.small_file_fraction("/t") == 2 / 3

    def test_small_threshold_boundary(self, fs):
        fs.create_file("/t/exact", SMALL_FILE_THRESHOLD)
        assert fs.small_file_count("/t") == 0  # strictly-below semantics

    def test_empty_prefix_fraction(self, fs):
        assert fs.small_file_fraction("/nothing") == 0.0

    def test_file_count_and_bytes(self, fs):
        fs.create_file("/x/a", 5)
        fs.create_file("/x/b", 7)
        assert fs.file_count("/x") == 2
        assert fs.total_bytes() == 12


class TestSizeHistogram:
    def test_buckets(self, fs):
        fs.create_file("/t/a", 1 * MiB)
        fs.create_file("/t/b", 20 * MiB)
        fs.create_file("/t/c", 600 * MiB)
        hist = fs.size_histogram([16, 32, 512], prefix="/t")
        assert hist == {"<16MiB": 1, "16-32MiB": 1, "32-512MiB": 0, ">=512MiB": 1}

    def test_bucket_order_preserved(self, fs):
        fs.create_file("/t/a", 1)
        hist = fs.size_histogram([16, 32, 64])
        assert list(hist) == ["<16MiB", "16-32MiB", "32-64MiB", ">=64MiB"]


class TestQuotaHelpers:
    def test_quota_utilization(self):
        fs = SimulatedFileSystem()
        fs.set_quota("/db", 10)
        fs.create_file("/db/f1", 1)
        fs.create_file("/db/f2", 1)
        assert fs.quota_usage("/db") == (2, 10)
        assert fs.quota_utilization("/db") == 0.2
