"""Tests for the NameNode namespace and quota accounting."""

from __future__ import annotations

import pytest

from repro.errors import (
    FileExistsInStorageError,
    FileNotFoundInStorageError,
    QuotaExceededError,
    ValidationError,
)
from repro.storage.namenode import NameNode, normalize_path, parent_directories
from repro.units import MiB


class TestPathHelpers:
    def test_normalize(self):
        assert normalize_path("/a/b/") == "/a/b"
        assert normalize_path("/a//b") == "/a/b"
        assert normalize_path("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(ValidationError):
            normalize_path("a/b")
        with pytest.raises(ValidationError):
            normalize_path("")

    def test_parent_directories(self):
        assert parent_directories("/a/b/c.txt") == ["/a", "/a/b"]
        assert parent_directories("/top.txt") == []


class TestCreateLookupDelete:
    def test_create_and_lookup(self):
        node = NameNode()
        info = node.create("/data/db/t/f1.parquet", 10 * MiB, created_at=5.0)
        assert info.size_bytes == 10 * MiB
        assert info.created_at == 5.0
        assert node.lookup("/data/db/t/f1.parquet") == info

    def test_duplicate_create_rejected(self):
        node = NameNode()
        node.create("/a/f", 1, created_at=0.0)
        with pytest.raises(FileExistsInStorageError):
            node.create("/a/f", 1, created_at=0.0)

    def test_lookup_missing(self):
        with pytest.raises(FileNotFoundInStorageError):
            NameNode().lookup("/missing")

    def test_negative_size_rejected(self):
        with pytest.raises(ValidationError):
            NameNode().create("/a/f", -1, created_at=0.0)

    def test_delete(self):
        node = NameNode()
        node.create("/a/f", 5, created_at=0.0)
        node.delete("/a/f")
        assert not node.exists("/a/f")
        with pytest.raises(FileNotFoundInStorageError):
            node.delete("/a/f")

    def test_exists_for_dirs(self):
        node = NameNode()
        node.create("/a/b/f", 1, created_at=0.0)
        assert node.exists("/a")
        assert node.exists("/a/b")
        assert not node.exists("/a/c")


class TestAccounting:
    def test_object_count_includes_directories(self):
        node = NameNode()
        node.create("/a/b/f1", 1, created_at=0.0)
        node.create("/a/b/f2", 1, created_at=0.0)
        assert node.file_count == 2
        assert node.directory_count == 2  # /a and /a/b
        assert node.object_count == 4

    def test_total_bytes_tracks_create_and_delete(self):
        node = NameNode()
        node.create("/a/f1", 100, created_at=0.0)
        node.create("/a/f2", 50, created_at=0.0)
        assert node.total_bytes == 150
        node.delete("/a/f1")
        assert node.total_bytes == 50

    def test_block_count(self):
        node = NameNode(block_size=128 * MiB)
        small = node.create("/a/small", 10 * MiB, created_at=0.0)
        large = node.create("/a/large", 300 * MiB, created_at=0.0)
        empty = node.create("/a/empty", 0, created_at=0.0)
        assert small.block_count == 1
        assert large.block_count == 3
        assert empty.block_count == 1
        assert node.total_blocks == 5

    def test_files_under(self):
        node = NameNode()
        node.create("/data/db1/f", 1, created_at=0.0)
        node.create("/data/db2/f", 1, created_at=0.0)
        node.create("/other/f", 1, created_at=0.0)
        assert len(node.files_under("/data")) == 2
        assert len(node.files_under("/")) == 3
        assert node.count_under("/data/db1") == 1
        assert node.count_under("/data") == 2

    def test_files_under_does_not_match_prefix_strings(self):
        node = NameNode()
        node.create("/data1/f", 1, created_at=0.0)
        node.create("/data/f", 1, created_at=0.0)
        assert node.count_under("/data") == 1


class TestQuotas:
    def test_quota_enforced(self):
        node = NameNode()
        node.set_quota("/db", 3)
        node.create("/db/f1", 1, created_at=0.0)  # dir /db not counted (quota root)
        node.create("/db/f2", 1, created_at=0.0)
        node.create("/db/f3", 1, created_at=0.0)
        with pytest.raises(QuotaExceededError):
            node.create("/db/f4", 1, created_at=0.0)

    def test_quota_counts_new_directories(self):
        node = NameNode()
        node.set_quota("/db", 2)
        # One new dir + one file = 2 objects; fits exactly.
        node.create("/db/part/f1", 1, created_at=0.0)
        with pytest.raises(QuotaExceededError):
            node.create("/db/part/f2", 1, created_at=0.0)

    def test_quota_failure_leaves_namespace_unchanged(self):
        node = NameNode()
        node.set_quota("/db", 1)
        with pytest.raises(QuotaExceededError):
            node.create("/db/newdir/f", 1, created_at=0.0)
        assert not node.exists("/db/newdir")
        assert node.object_count == 0

    def test_delete_releases_quota(self):
        node = NameNode()
        node.set_quota("/db", 1)
        node.create("/db/f1", 1, created_at=0.0)
        node.delete("/db/f1")
        node.create("/db/f2", 1, created_at=0.0)
        assert node.quota_usage("/db") == (1, 1)

    def test_quota_initialised_from_existing_contents(self):
        node = NameNode()
        node.create("/db/a/f1", 1, created_at=0.0)
        node.set_quota("/db", 10)
        used, limit = node.quota_usage("/db")
        assert used == 2  # dir /db/a plus file f1
        assert limit == 10

    def test_usage_requires_quota(self):
        with pytest.raises(ValidationError):
            NameNode().quota_usage("/nope")

    def test_invalid_limit(self):
        with pytest.raises(ValidationError):
            NameNode().set_quota("/db", 0)

    def test_quota_directories_listing(self):
        node = NameNode()
        node.set_quota("/db2", 5)
        node.set_quota("/db1", 5)
        assert node.quota_directories() == ["/db1", "/db2"]

    def test_unrelated_paths_not_charged(self):
        node = NameNode()
        node.set_quota("/db", 1)
        node.create("/elsewhere/f", 1, created_at=0.0)
        assert node.quota_usage("/db") == (0, 1)
