"""Property-based tests for the fleet model's conservation invariants."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import FleetConfig, FleetModel


def _totals(model: FleetModel) -> tuple[int, int]:
    n = model.count
    files = int(
        model.tiny_files[:n].sum() + model.mid_files[:n].sum() + model.large_files[:n].sum()
    )
    data_bytes = int(
        model.tiny_bytes[:n].sum() + model.mid_bytes[:n].sum() + model.large_bytes[:n].sum()
    )
    return files, data_bytes


class TestFleetInvariants:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        actions=st.lists(
            st.tuples(
                st.sampled_from(["step", "compact", "onboard"]),
                st.integers(min_value=0, max_value=99),
            ),
            min_size=1,
            max_size=25,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_state_never_corrupts(self, seed, actions):
        """Arbitrary interleavings of growth/compaction/onboarding keep all
        counters non-negative and compaction conserves bytes."""
        model = FleetModel(FleetConfig(initial_tables=100, databases=5, seed=seed))
        for action, argument in actions:
            if action == "step":
                model.step_day()
            elif action == "onboard":
                model.onboard(argument % 20)
            else:
                index = argument % model.count
                _, bytes_before = _totals(model)
                application = model.compact(index)
                _, bytes_after = _totals(model)
                # Compaction never creates or destroys data bytes (modulo
                # integer rounding of the merged split).
                assert abs(bytes_after - bytes_before) <= 4
                assert application.actual_reduction >= 0
                assert application.actual_gbhr >= 0.0

            n = model.count
            for array in (
                model.tiny_files,
                model.mid_files,
                model.large_files,
                model.tiny_bytes,
                model.mid_bytes,
                model.large_bytes,
            ):
                assert (array[:n] >= 0).all()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_estimates_bound_reality(self, seed):
        """ΔF_c upper-bounds realised reduction for every table (the §7
        overestimate is systematic, never an underestimate)."""
        model = FleetModel(FleetConfig(initial_tables=60, seed=seed))
        for _ in range(10):
            model.step_day()
        for index in np.argsort(-model.small_files_per_table())[:15]:
            estimate = model.estimate_reduction(int(index))
            application = model.compact(int(index))
            assert application.actual_reduction <= estimate

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_repeat_compaction_has_diminishing_returns(self, seed):
        """Re-compacting without new writes achieves strictly less each
        time (a table with partition-boundary efficiency e retains a
        (1−e) remainder per pass)."""
        model = FleetModel(FleetConfig(initial_tables=60, seed=seed))
        for _ in range(20):
            model.step_day()
        index = int(np.argmax(model.small_files_per_table()))
        first = model.compact(index)
        second = model.compact(index)
        third = model.compact(index)
        if first.actual_reduction > 0:
            assert second.actual_reduction < first.actual_reduction
        if second.actual_reduction > 0:
            assert third.actual_reduction < second.actual_reduction
