"""Property-based tests for the LST commit protocol.

A random interleaving of appends, overwrites, row-deltas and rewrites —
with some transactions deliberately left stale before committing — must
never corrupt table state: bytes and files stay consistent, conflicts only
roll back (never partially apply), and snapshot history stays linear.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CommitConflictError
from repro.lst import Field, IcebergTable, Schema, TableIdentifier
from repro.lst.partitioning import IdentityTransform, PartitionField, PartitionSpec
from repro.storage import SimulatedFileSystem
from repro.units import MiB


def _new_table():
    schema = Schema.of(Field("id", "long"), Field("p", "int"))
    spec = PartitionSpec.of(PartitionField("p", IdentityTransform()))
    return IcebergTable(
        TableIdentifier("db", "t"), schema, spec=spec, fs=SimulatedFileSystem()
    )


operation_strategy = st.lists(
    st.tuples(
        st.sampled_from(["append", "overwrite", "rewrite", "rowdelta"]),
        st.integers(min_value=0, max_value=2),  # partition
        st.booleans(),  # make stale: commit another append first
    ),
    min_size=1,
    max_size=25,
)


class TestCommitProtocolProperties:
    @given(operations=operation_strategy)
    @settings(max_examples=50, deadline=None)
    def test_state_always_consistent(self, operations):
        table = _new_table()
        # Seed each partition with a few files.
        seed = table.new_append()
        for partition in range(3):
            for _ in range(3):
                seed.add_file(4 * MiB, partition=(partition,))
        seed.commit()

        for kind, partition, make_stale in operations:
            files = [f for f in table.live_files() if f.partition == (partition,)]
            txn = None
            if kind == "append":
                txn = table.new_append()
                txn.add_file(2 * MiB, partition=(partition,))
            elif kind == "overwrite" and files:
                txn = table.new_overwrite()
                txn.delete_file(files[0])
                txn.add_file(files[0].size_bytes, partition=(partition,))
            elif kind == "rewrite" and len(files) >= 2:
                txn = table.new_rewrite()
                txn.rewrite(files, [sum(f.size_bytes for f in files)])
            elif kind == "rowdelta" and files:
                txn = table.new_row_delta()
                txn.add_deletes(MiB, files[:2])
            if txn is None:
                continue

            if make_stale:
                interloper = table.new_append()
                interloper.add_file(MiB, partition=(partition,))
                interloper.commit()

            version_before = table.version
            live_before = frozenset(f.file_id for f in table.live_files())
            try:
                txn.commit()
                assert table.version == version_before + 1
            except CommitConflictError:
                # Failed commits must not change anything.
                assert table.version == version_before
                assert frozenset(f.file_id for f in table.live_files()) == live_before

            self._check_invariants(table)

    @staticmethod
    def _check_invariants(table):
        snapshot = table.current_snapshot()
        assert snapshot is not None
        # Live files are unique by id and all positive-sized.
        ids = [f.file_id for f in snapshot.live_files]
        assert len(ids) == len(set(ids))
        assert all(f.size_bytes >= 0 for f in snapshot.live_files)
        # Delete files only reference live data files (dangling ones are
        # dropped at commit time).
        live_ids = set(ids)
        for delete_file in snapshot.delete_files:
            assert delete_file.references & live_ids
        # History is linear: sequence numbers strictly increase.
        sequence = [s.sequence_number for s in table.snapshots()]
        assert sequence == sorted(sequence)
        assert len(sequence) == len(set(sequence))
        # Every live file physically exists in storage.
        for data_file in snapshot.live_files:
            assert table.fs.namenode.exists(data_file.path)

    @given(
        file_counts=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6)
    )
    @settings(max_examples=30, deadline=None)
    def test_rewrite_then_expire_conserves_live_bytes(self, file_counts):
        table = _new_table()
        txn = table.new_append()
        for partition, count in enumerate(file_counts):
            for _ in range(count):
                txn.add_file(8 * MiB, partition=(partition,))
        txn.commit()
        bytes_before = table.total_data_bytes

        from repro.lst.maintenance import execute_rewrite, plan_table_rewrite

        plan = plan_table_rewrite(table, min_input_files=2)
        execute_rewrite(table, plan)
        table.expire_snapshots()
        assert table.total_data_bytes == bytes_before
        # Storage holds exactly the live data files (plus metadata).
        live_paths = {f.path for f in table.live_files()}
        stored = {
            info.path
            for info in table.fs.namenode.files_under(table.location)
            if "/data/" in info.path.replace(table.location, "")
        }
        assert live_paths == stored
