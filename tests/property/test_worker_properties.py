"""Property tests for the shard worker process boundary.

Two guarantees the scale-out control plane leans on:

* **mode equivalence** — thread- and process-mode sharded cycles produce
  *identical* :class:`~repro.core.sharding.ShardedCycleReport` contents
  for the same seeded fleet (the decide/act phases never notice which
  side of a process boundary observation happened on);
* **contract round-trip** — :class:`~repro.core.workers.ShardWorkSpec`
  and :class:`~repro.core.workers.ShardCycleResult` survive pickling
  bit-for-bit, whatever the column values.
"""

from __future__ import annotations

import dataclasses
import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CandidateKey, CandidateScope, ShardWorkSpec, run_shard_work
from repro.core.traits import (
    ComputeCostTrait,
    FileCountReductionTrait,
    TraitRegistry,
)
from repro.fleet import FleetConfig, FleetModel, ShardedAutoCompStrategy
from repro.units import DAY, GiB


def _report_fields(sharded) -> dict:
    return {
        "report": dataclasses.asdict(sharded.report),
        "shards": [dataclasses.asdict(r) for r in sharded.shard_reports],
    }


class TestWorkerModeEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_shards=st.integers(min_value=1, max_value=3),
        tables=st.integers(min_value=60, max_value=160),
    )
    @settings(max_examples=6, deadline=None)
    def test_thread_and_process_cycles_are_identical(self, seed, n_shards, tables):
        """Every field of every cycle report — counts, selections, realised
        results — must match across worker modes, over multiple days so the
        second cycle exercises the cross-process cache delta path."""
        config = FleetConfig(initial_tables=tables, seed=seed)
        model_t, model_p = FleetModel(config), FleetModel(config)
        model_t.step_day()
        model_p.step_day()
        with ShardedAutoCompStrategy(
            model_t, n_shards=n_shards, k=8, workers="threads"
        ) as threads, ShardedAutoCompStrategy(
            model_p, n_shards=n_shards, k=8, workers="processes", max_workers=2
        ) as processes:
            for day in range(3):
                now = float(day) * DAY
                thread_cycle = threads.pipeline.run_cycle(now=now)
                process_cycle = processes.pipeline.run_cycle(now=now)
                assert _report_fields(thread_cycle) == _report_fields(process_cycle)
                model_t.step_day()
                model_p.step_day()


_columns = st.integers(min_value=3, max_value=6).flatmap(
    lambda n: st.fixed_dictionaries(
        {
            "file_count": st.tuples(*[st.integers(5, 500)] * n),
            "total_bytes": st.tuples(*[st.integers(0, 10**12)] * n),
            "small_file_count": st.tuples(*[st.integers(0, 5)] * n),
            "small_file_bytes": st.tuples(*[st.integers(0, 10**9)] * n),
            "partition_count": st.tuples(*[st.integers(1, 8)] * n),
            "created_at": st.tuples(*[st.floats(0, 1e9, allow_nan=False)] * n),
            "last_modified_at": st.tuples(*[st.floats(0, 1e9, allow_nan=False)] * n),
            "quota_utilization": st.tuples(*[st.floats(0, 1, allow_nan=False)] * n),
        }
    )
)


class TestContractRoundTrip:
    @given(
        columns=_columns,
        shard_index=st.integers(min_value=0, max_value=7),
        now=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        observe_cost=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_spec_and_result_survive_pickling(
        self, columns, shard_index, now, observe_cost
    ):
        n = len(columns["file_count"])
        spec = ShardWorkSpec(
            shard_index=shard_index,
            keys=tuple(
                CandidateKey("db", f"table{i:06d}", CandidateScope.TABLE)
                for i in range(n)
            ),
            columns=columns,
            slots=tuple(range(n)),
            tokens=tuple(i + 1 for i in range(n)),
            target_file_size=512,
            now=now,
            traits=TraitRegistry(
                [
                    FileCountReductionTrait(),
                    ComputeCostTrait(
                        executor_memory_gb=192.0, rewrite_bytes_per_hour=768 * GiB
                    ),
                ]
            ),
            observe_cost=observe_cost,
        )
        thawed = pickle.loads(pickle.dumps(spec))
        assert thawed.keys == spec.keys
        assert thawed.columns == spec.columns
        assert (thawed.slots, thawed.tokens, thawed.now) == (
            spec.slots,
            spec.tokens,
            spec.now,
        )
        # The worker's output is the same whether computed from the
        # original spec or its pickled twin, and itself round-trips.
        result = run_shard_work(spec)
        twin = run_shard_work(thawed)
        assert [c.statistics for c in result.candidates] == [
            c.statistics for c in twin.candidates
        ]
        assert [c.traits for c in result.candidates] == [
            c.traits for c in twin.candidates
        ]
        revived = pickle.loads(pickle.dumps(result))
        assert [c.statistics for c in revived.candidates] == [
            c.statistics for c in result.candidates
        ]
        assert revived.cache_delta == result.cache_delta
