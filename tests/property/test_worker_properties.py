"""Property tests for the shard worker process boundary.

Two guarantees the scale-out control plane leans on:

* **mode equivalence** — thread- and process-mode sharded cycles produce
  *identical* :class:`~repro.core.sharding.ShardedCycleReport` contents
  for the same seeded fleet (the decide/act phases never notice which
  side of a process boundary observation happened on);
* **contract round-trip** — :class:`~repro.core.workers.ShardWorkSpec`
  and :class:`~repro.core.workers.ShardCycleResult` survive pickling
  bit-for-bit, whatever the column values.
"""

from __future__ import annotations

import dataclasses
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CandidateKey, CandidateScope, ShardWorkSpec, run_shard_work
from repro.core.traits import (
    ComputeCostTrait,
    FileCountReductionTrait,
    TraitRegistry,
)
from repro.fleet import FleetConfig, FleetModel, ShardedAutoCompStrategy
from repro.units import DAY, GiB


def _report_fields(sharded) -> dict:
    return {
        "report": dataclasses.asdict(sharded.report),
        "shards": [dataclasses.asdict(r) for r in sharded.shard_reports],
    }


class TestWorkerModeEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_shards=st.integers(min_value=1, max_value=3),
        tables=st.integers(min_value=60, max_value=160),
    )
    @settings(max_examples=6, deadline=None)
    def test_thread_and_process_cycles_are_identical(self, seed, n_shards, tables):
        """Every field of every cycle report — counts, selections, realised
        results — must match across worker modes, over multiple days so the
        second cycle exercises the cross-process cache delta path."""
        config = FleetConfig(initial_tables=tables, seed=seed)
        model_t, model_p = FleetModel(config), FleetModel(config)
        model_t.step_day()
        model_p.step_day()
        with ShardedAutoCompStrategy(
            model_t, n_shards=n_shards, k=8, workers="threads"
        ) as threads, ShardedAutoCompStrategy(
            model_p, n_shards=n_shards, k=8, workers="processes", max_workers=2
        ) as processes:
            for day in range(3):
                now = float(day) * DAY
                thread_cycle = threads.pipeline.run_cycle(now=now)
                process_cycle = processes.pipeline.run_cycle(now=now)
                assert _report_fields(thread_cycle) == _report_fields(process_cycle)
                model_t.step_day()
                model_p.step_day()


_columns = st.integers(min_value=3, max_value=6).flatmap(
    lambda n: st.fixed_dictionaries(
        {
            "file_count": st.tuples(*[st.integers(5, 500)] * n),
            "total_bytes": st.tuples(*[st.integers(0, 10**12)] * n),
            "small_file_count": st.tuples(*[st.integers(0, 5)] * n),
            "small_file_bytes": st.tuples(*[st.integers(0, 10**9)] * n),
            "partition_count": st.tuples(*[st.integers(1, 8)] * n),
            "created_at": st.tuples(*[st.floats(0, 1e9, allow_nan=False)] * n),
            "last_modified_at": st.tuples(*[st.floats(0, 1e9, allow_nan=False)] * n),
            "quota_utilization": st.tuples(*[st.floats(0, 1, allow_nan=False)] * n),
        }
    )
)


class TestLocalSelectionModeEquivalence:
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n_shards=st.integers(min_value=2, max_value=3),
        tables=st.integers(min_value=60, max_value=140),
    )
    @settings(max_examples=4, deadline=None)
    def test_local_cycles_identical_across_modes_and_decide_placement(
        self, seed, n_shards, tables
    ):
        """selection="local" must produce identical cycle reports whether the
        decide phase runs inline, on threads, or inside process workers —
        with worker-side decide both off and on."""
        config = FleetConfig(initial_tables=tables, seed=seed)
        variants = [
            {"workers": "threads", "max_workers": 1},  # inline
            {"workers": "threads", "max_workers": 2},
            {"workers": "processes", "max_workers": 2, "worker_decide": False},
            {"workers": "processes", "max_workers": 2, "worker_decide": True},
        ]
        models, strategies = [], []
        for kwargs in variants:
            model = FleetModel(config)
            model.step_day()
            models.append(model)
            strategies.append(
                ShardedAutoCompStrategy(
                    model, n_shards=n_shards, k=9, selection="local", **kwargs
                )
            )
        try:
            for day in range(3):
                now = float(day) * DAY
                reports = [s.pipeline.run_cycle(now=now) for s in strategies]
                reference = _report_fields(reports[0])
                for report in reports[1:]:
                    assert _report_fields(report) == reference
                for model in models:
                    model.step_day()
        finally:
            for strategy in strategies:
                strategy.close()

    def test_worker_decide_shrinks_the_return_payload(self):
        """With worker-side decide the shipped-back candidate count is
        O(selected); without it, O(shard misses)."""
        config = FleetConfig(initial_tables=200, seed=5)
        counts = {}
        for decide in (False, True):
            model = FleetModel(config)
            model.step_day()
            with ShardedAutoCompStrategy(
                model,
                n_shards=2,
                k=6,
                selection="local",
                workers="processes",
                max_workers=2,
                worker_decide=decide,
            ) as strategy:
                strategy.pipeline.run_cycle(now=0.0)
                series = strategy.pipeline.telemetry.series(
                    "autocomp.fleet.returned_candidates"
                )
                counts[decide] = series.last()
        assert counts[True] <= 6  # at most the split top-k selection
        assert counts[True] < counts[False]


def _build_lst_catalog():
    """A deterministic catalog: two tenants, mixed partitioned/flat tables."""
    from repro.catalog import Catalog
    from repro.lst import Field, MonthTransform, PartitionField, PartitionSpec, Schema

    from tests.conftest import fragment_table

    catalog = Catalog()
    schema = Schema.of(Field("id", "long"), Field("event_date", "date"))
    monthly = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
    catalog.create_database("tenant0", quota_objects=50_000)
    catalog.create_database("tenant1")
    for i in range(10):
        db = f"tenant{i % 2}"
        if i % 3 == 0:
            table = catalog.create_table(f"{db}.part{i:02d}", schema, spec=monthly)
            fragment_table(
                table, partitions=[(0,), (1,)], files_per_partition=3 + i % 4
            )
        else:
            table = catalog.create_table(f"{db}.flat{i:02d}", schema)
            fragment_table(table, partitions=[()], files_per_partition=4 + i % 5)
    return catalog


def _lst_daily_writes(catalog, day: int) -> None:
    """Deterministically dirty a rotating subset of tables."""
    from repro.units import DAY as _DAY

    from tests.conftest import fragment_table

    names = sorted(str(ident) for ident in catalog.list_tables())
    for offset in range(3):
        name = names[(day * 3 + offset) % len(names)]
        table = catalog.load_table(name)
        partition = (0,) if table.spec.is_partitioned else ()
        fragment_table(table, partitions=[partition], files_per_partition=2)
    catalog.clock.advance_by(_DAY)


class TestLstConnectorModeEquivalence:
    """The realistic catalog path through process workers (tentpole)."""

    @pytest.mark.parametrize(
        "cache_kind,selection,worker_decide",
        [
            ("none", "global", None),
            ("sparse", "global", None),
            ("dense", "global", None),
            ("dense", "local", False),
            ("dense", "local", True),
            ("sparse", "local", True),
        ],
    )
    def test_thread_and_process_lst_cycles_are_identical(
        self, cache_kind, selection, worker_decide
    ):
        from repro.core import IndexedCandidateCache, StatsCache, openhouse_sharded_pipeline
        from repro.engine import Cluster

        def cache():
            return {
                "none": lambda: None,
                "sparse": StatsCache,
                "dense": IndexedCandidateCache,
            }[cache_kind]()

        def pipeline(catalog, workers):
            return openhouse_sharded_pipeline(
                catalog,
                Cluster("maint", executors=2),
                n_shards=2,
                stats_cache=cache(),
                selection=selection,
                workers=workers,
                worker_decide=worker_decide,
                max_workers=2,
                k=6,
                min_table_age_s=0.0,
                generation="hybrid",
            )

        catalog_t, catalog_p = _build_lst_catalog(), _build_lst_catalog()
        with pipeline(catalog_t, "threads") as threads, pipeline(
            catalog_p, "processes"
        ) as processes:
            for day in range(3):
                now = catalog_t.clock.now
                thread_cycle = threads.run_cycle(now=now)
                process_cycle = processes.run_cycle(now=now)
                assert _report_fields(thread_cycle) == _report_fields(process_cycle), (
                    f"diverged on day {day}"
                )
                _lst_daily_writes(catalog_t, day)
                _lst_daily_writes(catalog_p, day)

    @pytest.mark.parametrize("transport", ["pickle", "columnar"])
    def test_lst_cycles_byte_identical_across_execution_matrix(self, transport):
        """Inline, thread-pool and process-pool cycles must produce
        byte-identical cycle reports whichever negotiated transport ships
        the process-mode work — the pickled report blobs themselves are
        compared, so even float bit patterns must agree."""
        from repro.core import IndexedCandidateCache, openhouse_sharded_pipeline
        from repro.engine import Cluster

        variants = [
            ("threads", 1, None),  # max_workers=1: effectively inline
            ("threads", 2, None),
            ("processes", 2, transport),
        ]
        catalogs, pipelines = [], []
        for workers, width, kind in variants:
            catalog = _build_lst_catalog()
            catalogs.append(catalog)
            pipelines.append(
                openhouse_sharded_pipeline(
                    catalog,
                    Cluster("maint", executors=2),
                    n_shards=2,
                    stats_cache=IndexedCandidateCache(),
                    selection="local",
                    workers=workers,
                    worker_decide=True,
                    transport=kind,
                    max_workers=width,
                    k=6,
                    min_table_age_s=0.0,
                )
            )
        try:
            for day in range(3):
                blobs = [
                    pickle.dumps(_report_fields(p.run_cycle(now=c.clock.now)))
                    for p, c in zip(pipelines, catalogs)
                ]
                assert blobs[0] == blobs[1] == blobs[2], f"diverged on day {day}"
                for catalog in catalogs:
                    _lst_daily_writes(catalog, day)
        finally:
            for pipeline in pipelines:
                pipeline.close()

    def test_lst_process_cycles_stay_incremental(self):
        from repro.core import IndexedCandidateCache, openhouse_sharded_pipeline
        from repro.engine import Cluster

        catalog = _build_lst_catalog()
        cache = IndexedCandidateCache()
        with openhouse_sharded_pipeline(
            catalog,
            Cluster("maint", executors=2),
            n_shards=2,
            stats_cache=cache,
            workers="processes",
            max_workers=2,
            k=0,  # no act-phase writes: the second cycle must be all hits
            min_table_age_s=0.0,
        ) as pipeline:
            pipeline.run_cycle(now=catalog.clock.now)
            assert cache.hits == 0 and cache.misses > 0
            pipeline.run_cycle(now=catalog.clock.now)
            assert cache.misses == len(cache)  # no new misses
            assert cache.hits > 0


class TestContractRoundTrip:
    @given(
        columns=_columns,
        shard_index=st.integers(min_value=0, max_value=7),
        now=st.floats(min_value=0, max_value=1e9, allow_nan=False),
        observe_cost=st.integers(min_value=0, max_value=3),
    )
    @settings(max_examples=25, deadline=None)
    def test_spec_and_result_survive_pickling(
        self, columns, shard_index, now, observe_cost
    ):
        n = len(columns["file_count"])
        spec = ShardWorkSpec(
            shard_index=shard_index,
            keys=tuple(
                CandidateKey("db", f"table{i:06d}", CandidateScope.TABLE)
                for i in range(n)
            ),
            columns=columns,
            slots=tuple(range(n)),
            tokens=tuple(i + 1 for i in range(n)),
            target_file_size=512,
            now=now,
            traits=TraitRegistry(
                [
                    FileCountReductionTrait(),
                    ComputeCostTrait(
                        executor_memory_gb=192.0, rewrite_bytes_per_hour=768 * GiB
                    ),
                ]
            ),
            observe_cost=observe_cost,
        )
        thawed = pickle.loads(pickle.dumps(spec))
        assert thawed.keys == spec.keys
        assert thawed.columns == spec.columns
        assert (thawed.slots, thawed.tokens, thawed.now) == (
            spec.slots,
            spec.tokens,
            spec.now,
        )
        # The worker's output is the same whether computed from the
        # original spec or its pickled twin, and itself round-trips.
        result = run_shard_work(spec)
        twin = run_shard_work(thawed)
        assert [c.statistics for c in result.candidates] == [
            c.statistics for c in twin.candidates
        ]
        assert [c.traits for c in result.candidates] == [
            c.traits for c in twin.candidates
        ]
        revived = pickle.loads(pickle.dumps(result))
        assert [c.statistics for c in revived.candidates] == [
            c.statistics for c in result.candidates
        ]
        assert revived.cache_delta == result.cache_delta
