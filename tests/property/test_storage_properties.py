"""Property-based tests for namespace and quota accounting."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    FileExistsInStorageError,
    FileNotFoundInStorageError,
    QuotaExceededError,
)
from repro.storage.namenode import NameNode

path_segment = st.text(alphabet="abcdef", min_size=1, max_size=4)
path_strategy = st.builds(
    lambda parts: "/" + "/".join(parts),
    st.lists(path_segment, min_size=1, max_size=4),
)

operation_strategy = st.lists(
    st.tuples(
        st.sampled_from(["create", "delete"]),
        path_strategy,
        st.integers(min_value=0, max_value=10**9),
    ),
    min_size=1,
    max_size=40,
)


class TestNamespaceProperties:
    @given(operations=operation_strategy)
    @settings(max_examples=60)
    def test_accounting_matches_shadow_model(self, operations):
        node = NameNode()
        shadow: dict[str, int] = {}
        for kind, path, size in operations:
            if kind == "create":
                try:
                    node.create(path, size, created_at=0.0)
                    shadow[node.lookup(path).path] = size
                except FileExistsInStorageError:
                    pass
            else:
                normalized = "/" + "/".join(p for p in path.split("/") if p)
                try:
                    node.delete(path)
                    shadow.pop(normalized, None)
                except FileNotFoundInStorageError:
                    assert normalized not in shadow
        assert node.file_count == len(shadow)
        assert node.total_bytes == sum(shadow.values())

    @given(operations=operation_strategy, limit=st.integers(min_value=1, max_value=30))
    @settings(max_examples=60)
    def test_quota_usage_never_exceeds_limit(self, operations, limit):
        node = NameNode()
        node.set_quota("/q", limit)
        for kind, path, size in operations:
            scoped = "/q" + path
            try:
                if kind == "create":
                    node.create(scoped, size, created_at=0.0)
                else:
                    node.delete(scoped)
            except (
                FileExistsInStorageError,
                FileNotFoundInStorageError,
                QuotaExceededError,
            ):
                pass
            used, cap = node.quota_usage("/q")
            assert 0 <= used <= cap

    @given(operations=operation_strategy)
    @settings(max_examples=40)
    def test_quota_used_matches_recount(self, operations):
        """Incremental quota charges agree with a from-scratch recount."""
        node = NameNode()
        node.set_quota("/q", 10_000)
        for kind, path, size in operations:
            scoped = "/q" + path
            try:
                if kind == "create":
                    node.create(scoped, size, created_at=0.0)
                else:
                    node.delete(scoped)
            except (FileExistsInStorageError, FileNotFoundInStorageError):
                pass
        used, _ = node.quota_usage("/q")
        # Recount from scratch: files plus (never-garbage-collected)
        # directories, matching HDFS namespace-quota semantics.
        recount = len(node.files_under("/q")) + len(node.directories_under("/q"))
        assert recount == used
