"""Property-based tests for normalisation, ranking, and selection."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BudgetSelector,
    Candidate,
    CandidateKey,
    CandidateScope,
    Objective,
    QuotaAwareWeightedSumPolicy,
    TopKSelector,
    WeightedSumPolicy,
    min_max_normalize,
)

finite_floats = st.floats(
    min_value=-1e12, max_value=1e12, allow_nan=False, allow_infinity=False
)


def _candidates(benefits, costs, quotas=None):
    out = []
    for i, (benefit, cost) in enumerate(zip(benefits, costs)):
        candidate = Candidate(key=CandidateKey("db", f"t{i:04d}", CandidateScope.TABLE))
        candidate.traits["file_count_reduction"] = benefit
        candidate.traits["compute_cost_gbhr"] = cost
        if quotas is not None:
            from repro.core import CandidateStatistics
            from repro.units import MiB

            candidate.statistics = CandidateStatistics.from_file_sizes(
                [MiB], target_file_size=512 * MiB, quota_utilization=quotas[i]
            )
        out.append(candidate)
    return out


class TestNormalizeProperties:
    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    def test_output_in_unit_interval(self, values):
        normalized = min_max_normalize(values)
        assert all(0.0 <= v <= 1.0 for v in normalized)

    @given(values=st.lists(finite_floats, min_size=2, max_size=50))
    def test_order_preserved(self, values):
        normalized = min_max_normalize(values)
        for i in range(len(values)):
            for j in range(len(values)):
                if values[i] < values[j]:
                    assert normalized[i] <= normalized[j]

    @given(values=st.lists(finite_floats, min_size=1, max_size=50))
    def test_length_preserved(self, values):
        assert len(min_max_normalize(values)) == len(values)


class TestWeightedSumProperties:
    @given(
        benefits=st.lists(
            st.floats(min_value=0, max_value=1e6, allow_nan=False), min_size=1, max_size=30
        ),
        costs=st.data(),
    )
    @settings(max_examples=60)
    def test_scores_bounded_and_sorted(self, benefits, costs):
        cost_values = [
            costs.draw(st.floats(min_value=0, max_value=1e6, allow_nan=False))
            for _ in benefits
        ]
        policy = WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.7, maximize=True),
                Objective("compute_cost_gbhr", 0.3, maximize=False),
            ]
        )
        ranked = policy.rank(_candidates(benefits, cost_values))
        scores = [c.score for c in ranked]
        assert scores == sorted(scores, reverse=True)
        assert all(-0.3 - 1e-9 <= s <= 0.7 + 1e-9 for s in scores)

    @given(
        benefits=st.lists(
            # Integer-valued benefits: sub-epsilon float gaps would collapse
            # under min-max normalisation and legitimately tie.
            st.integers(min_value=0, max_value=10**6).map(float),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=40)
    def test_dominance_respected(self, benefits):
        """A candidate with strictly better benefit and equal cost never
        ranks below a dominated one."""
        costs = [1.0] * len(benefits)
        policy = WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.7, maximize=True),
                Objective("compute_cost_gbhr", 0.3, maximize=False),
            ]
        )
        ranked = policy.rank(_candidates(benefits, costs))
        ranked_benefits = [c.trait("file_count_reduction") for c in ranked]
        assert ranked_benefits == sorted(ranked_benefits, reverse=True)

    @given(
        quotas=st.lists(
            st.floats(min_value=0, max_value=1, allow_nan=False), min_size=1, max_size=20
        )
    )
    @settings(max_examples=40)
    def test_quota_weights_in_range(self, quotas):
        for quota in quotas:
            weight = QuotaAwareWeightedSumPolicy.benefit_weight(quota)
            assert 0.5 <= weight <= 1.0


class TestSelectionProperties:
    @given(
        costs=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), min_size=0, max_size=40
        ),
        budget=st.floats(min_value=0, max_value=500, allow_nan=False),
    )
    @settings(max_examples=80)
    def test_budget_never_exceeded(self, costs, budget):
        candidates = _candidates([1.0] * len(costs), costs)
        selected = BudgetSelector(budget=budget).select(candidates)
        assert sum(c.trait("compute_cost_gbhr") for c in selected) <= budget + 1e-9

    @given(
        costs=st.lists(
            st.floats(min_value=0.1, max_value=100, allow_nan=False), min_size=1, max_size=40
        ),
        budget=st.floats(min_value=0, max_value=500, allow_nan=False),
    )
    @settings(max_examples=60)
    def test_greedy_maximality(self, costs, budget):
        """No skipped candidate could still have fit after the walk."""
        candidates = _candidates([1.0] * len(costs), costs)
        selected = BudgetSelector(budget=budget).select(candidates)
        remaining = budget - sum(c.trait("compute_cost_gbhr") for c in selected)
        chosen = {str(c.key) for c in selected}
        for candidate in candidates:
            if str(candidate.key) not in chosen:
                # Tolerance covers float error in the re-computed remainder.
                assert candidate.trait("compute_cost_gbhr") >= remaining - 1e-6

    @given(
        k=st.integers(min_value=0, max_value=50),
        count=st.integers(min_value=0, max_value=50),
    )
    def test_topk_size(self, k, count):
        candidates = _candidates([1.0] * count, [1.0] * count)
        assert len(TopKSelector(k).select(candidates)) == min(max(k, 0), count)

    @given(
        costs=st.lists(
            st.floats(min_value=0, max_value=100, allow_nan=False), min_size=0, max_size=30
        ),
        budget=st.floats(min_value=0, max_value=300, allow_nan=False),
    )
    @settings(max_examples=40)
    def test_selection_preserves_rank_order(self, costs, budget):
        candidates = _candidates([1.0] * len(costs), costs)
        selected = BudgetSelector(budget=budget).select(candidates)
        indices = [candidates.index(c) for c in selected]
        assert indices == sorted(indices)
