"""Property-based tests for bin-packing rewrite planning."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lst import DataFile
from repro.lst.maintenance import pack_sizes, plan_rewrite
from repro.units import MiB

TARGET = 512 * MiB

sizes_strategy = st.lists(
    st.integers(min_value=1, max_value=2 * TARGET), min_size=0, max_size=60
)


def _files(sizes, partitions=None):
    return [
        DataFile(
            file_id=i + 1,
            path=f"/t/f{i}.parquet",
            size_bytes=size,
            record_count=size // 128 + 1,
            partition=(partitions[i],) if partitions else (0,),
        )
        for i, size in enumerate(sizes)
    ]


class TestPackSizesProperties:
    @given(total=st.integers(min_value=0, max_value=100 * TARGET))
    def test_conserves_bytes(self, total):
        assert sum(pack_sizes(total, TARGET)) == total

    @given(total=st.integers(min_value=1, max_value=100 * TARGET))
    def test_outputs_bounded_by_target(self, total):
        for size in pack_sizes(total, TARGET):
            assert 0 < size <= TARGET

    @given(total=st.integers(min_value=1, max_value=100 * TARGET))
    def test_output_count_is_minimal(self, total):
        assert len(pack_sizes(total, TARGET)) == math.ceil(total / TARGET)

    @given(total=st.integers(min_value=1, max_value=100 * TARGET))
    def test_outputs_balanced(self, total):
        sizes = pack_sizes(total, TARGET)
        assert max(sizes) - min(sizes) <= 1


class TestPlanRewriteProperties:
    @given(sizes=sizes_strategy)
    @settings(max_examples=60)
    def test_plan_conserves_bytes(self, sizes):
        plan = plan_rewrite(_files(sizes), TARGET)
        for group in plan.groups:
            assert group.input_bytes == sum(group.output_sizes)

    @given(sizes=sizes_strategy)
    @settings(max_examples=60)
    def test_plan_strictly_reduces_file_count(self, sizes):
        plan = plan_rewrite(_files(sizes), TARGET)
        for group in plan.groups:
            assert group.output_count < group.input_count
        assert plan.file_count_reduction >= 0

    @given(sizes=sizes_strategy)
    @settings(max_examples=60)
    def test_only_small_files_selected(self, sizes):
        plan = plan_rewrite(_files(sizes), TARGET)
        for group in plan.groups:
            for source in group.sources:
                assert source.size_bytes < TARGET

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=TARGET - 1), min_size=2, max_size=40),
        partitions=st.data(),
    )
    @settings(max_examples=60)
    def test_groups_never_cross_partitions(self, sizes, partitions):
        labels = [
            partitions.draw(st.integers(min_value=0, max_value=3)) for _ in sizes
        ]
        plan = plan_rewrite(_files(sizes, labels), TARGET)
        for group in plan.groups:
            assert len({f.partition for f in group.sources}) == 1

    @given(sizes=sizes_strategy)
    @settings(max_examples=60)
    def test_estimator_never_below_plan(self, sizes):
        """ΔF_c (count of small files) upper-bounds achievable reduction."""
        from repro.lst.maintenance import estimate_table_level_reduction

        files = _files(sizes)
        estimate = estimate_table_level_reduction(files, TARGET)
        plan = plan_rewrite(files, TARGET, min_input_files=1)
        assert plan.file_count_reduction <= estimate

    @given(sizes=sizes_strategy)
    @settings(max_examples=40)
    def test_plan_deterministic(self, sizes):
        files = _files(sizes)
        first = plan_rewrite(files, TARGET)
        second = plan_rewrite(files, TARGET)
        assert first == second
