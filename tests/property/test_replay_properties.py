"""Property tests for the Policy Lab's replay guarantees.

Two invariants hold for *every* recorded workload and policy variant:

* replaying the same trace under the same variant twice yields
  byte-identical cycle reports (the determinism guarantee), and
* verbatim replay reconstructs the source fleet's per-table file counts
  exactly (the recorder/replayer round-trip guarantee).
"""

from __future__ import annotations

import io

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import PolicyVariant, TraceRecorder, TraceReplayer
from repro.simulation import TapBus

#: Small-but-varied recorded workloads (fleet size, days, seed, source k).
workloads = st.tuples(
    st.integers(min_value=10, max_value=60),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=8),
)

#: Policy variants covering weights, budgets, cadence and control planes.
variants = st.builds(
    PolicyVariant,
    name=st.just("prop"),
    ranking=st.sampled_from(["weighted", "quota_aware"]),
    benefit_weight=st.floats(min_value=0.35, max_value=0.9),
    k=st.integers(min_value=1, max_value=15),
    min_small_files=st.integers(min_value=0, max_value=4),
    trigger_interval_days=st.integers(min_value=1, max_value=3),
    scheduler=st.sampled_from(["sequential", "concurrent"]),
    n_shards=st.sampled_from([1, 2]),
)


def _record(tables: int, days: int, seed: int, k: int) -> tuple[str, FleetSimulator]:
    taps = TapBus()
    config = FleetConfig(initial_tables=tables, onboarded_per_month=5, seed=seed)
    buffer = io.StringIO()
    recorder = TraceRecorder(buffer, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=k))
    sim.run_days(days)
    recorder.close()
    return buffer.getvalue(), sim


@settings(max_examples=12, deadline=None)
@given(workload=workloads, variant=variants)
def test_replay_same_variant_is_byte_identical(workload, variant):
    trace_text, _ = _record(*workload)
    first = TraceReplayer(io.StringIO(trace_text)).replay(variant)
    second = TraceReplayer(io.StringIO(trace_text)).replay(variant)
    assert first.report_bytes() == second.report_bytes()


@settings(max_examples=12, deadline=None)
@given(workload=workloads)
def test_verbatim_replay_reconstructs_file_counts_exactly(workload):
    trace_text, sim = _record(*workload)
    replayed = TraceReplayer(io.StringIO(trace_text)).replay_verbatim()
    source = sim.model
    assert replayed.count == source.count
    assert replayed.day == source.day
    for name in ("tiny_files", "mid_files", "large_files", "tiny_bytes", "mid_bytes", "large_bytes"):
        assert np.array_equal(
            getattr(replayed, name)[: replayed.count],
            getattr(source, name)[: source.count],
        ), name
    assert replayed.total_files == source.total_files
