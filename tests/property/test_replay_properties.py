"""Property tests for the Policy Lab's replay guarantees.

Invariants that hold for *every* recorded workload and policy variant:

* replaying the same trace under the same variant twice yields
  byte-identical cycle reports (the determinism guarantee),
* verbatim replay reconstructs the source state exactly (the
  recorder/replayer round-trip guarantee — per-table file counts for the
  fleet plane, the full live file layout for the LST-catalog plane),
* a recorded catalog run replayed under its own policy reproduces its own
  cycle reports byte-for-byte, whether the trace was written as one plain
  file or as compressed chunked segments.
"""

from __future__ import annotations

import io
import json
import os
import tempfile

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import (
    CatalogReplayer,
    PolicyVariant,
    TraceReader,
    TraceRecorder,
    TraceReplayer,
    serialize_cycle_report,
)
from repro.simulation import TapBus
from repro.units import HOUR, MiB

from tests.replay.conftest import catalog_layout as _layout
from tests.replay.conftest import record_cab_run, small_cab_config

#: Small-but-varied recorded workloads (fleet size, days, seed, source k).
workloads = st.tuples(
    st.integers(min_value=10, max_value=60),
    st.integers(min_value=2, max_value=8),
    st.integers(min_value=0, max_value=2**32 - 1),
    st.integers(min_value=1, max_value=8),
)

#: Policy variants covering weights, budgets, cadence and control planes.
variants = st.builds(
    PolicyVariant,
    name=st.just("prop"),
    ranking=st.sampled_from(["weighted", "quota_aware"]),
    benefit_weight=st.floats(min_value=0.35, max_value=0.9),
    k=st.integers(min_value=1, max_value=15),
    min_small_files=st.integers(min_value=0, max_value=4),
    trigger_interval_days=st.integers(min_value=1, max_value=3),
    scheduler=st.sampled_from(["sequential", "concurrent"]),
    n_shards=st.sampled_from([1, 2]),
)


def _record(tables: int, days: int, seed: int, k: int) -> tuple[str, FleetSimulator]:
    taps = TapBus()
    config = FleetConfig(initial_tables=tables, onboarded_per_month=5, seed=seed)
    buffer = io.StringIO()
    recorder = TraceRecorder(buffer, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=k))
    sim.run_days(days)
    recorder.close()
    return buffer.getvalue(), sim


@settings(max_examples=12, deadline=None)
@given(workload=workloads, variant=variants)
def test_replay_same_variant_is_byte_identical(workload, variant):
    trace_text, _ = _record(*workload)
    first = TraceReplayer(io.StringIO(trace_text)).replay(variant)
    second = TraceReplayer(io.StringIO(trace_text)).replay(variant)
    assert first.report_bytes() == second.report_bytes()


@settings(max_examples=12, deadline=None)
@given(workload=workloads)
def test_verbatim_replay_reconstructs_file_counts_exactly(workload):
    trace_text, sim = _record(*workload)
    replayed = TraceReplayer(io.StringIO(trace_text)).replay_verbatim()
    source = sim.model
    assert replayed.count == source.count
    assert replayed.day == source.day
    for name in ("tiny_files", "mid_files", "large_files", "tiny_bytes", "mid_bytes", "large_bytes"):
        assert np.array_equal(
            getattr(replayed, name)[: replayed.count],
            getattr(source, name)[: source.count],
        ), name
    assert replayed.total_files == source.total_files


# --- catalog (§6 CAB) round trips ------------------------------------------------

#: Small-but-varied CAB catalog workloads: seed, shuffle fan-out, insert
#: size, and the recorded policy's k.
cab_workloads = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),
    st.integers(min_value=4, max_value=12),
    st.integers(min_value=8, max_value=32),
    st.integers(min_value=2, max_value=12),
)


def _record_cab(seed: int, shuffle: int, insert_mib: int, k: int, sink):
    """A tiny CAB run under AutoComp (synchronous hourly cycles), recorded.

    Thin wrapper over the shared :func:`tests.replay.conftest.record_cab_run`
    harness: hypothesis draws the workload shape and the recorded policy's
    k; path sinks record chunked + compressed, stream sinks single-file.
    """
    config = small_cab_config(
        seed=seed,
        databases=1,
        data_bytes_per_db=64 * MiB,
        duration_s=2 * HOUR,
        lineitem_months=3,
        ro_rate_per_hour=0.5,
        write_spike_hour=1.0,
        spike_events_per_db=1.0,
        insert_bytes_mean=insert_mib * MiB,
        shuffle_partitions=shuffle,
    )
    kwargs = {} if hasattr(sink, "write") else {"segment_records": 15, "compress": True}
    catalog, _, reports, variant = record_cab_run(
        sink, config=config, variant=PolicyVariant(name="recorded", k=k), **kwargs
    )
    return catalog, reports, variant


@settings(max_examples=8, deadline=None)
@given(workload=cab_workloads)
def test_cab_record_replay_round_trip_is_byte_identical(workload):
    """Record → replay of a CAB catalog run is byte-identical — same cycle
    report serialization, same final file layout — across both the
    single-file and the chunked+compressed trace formats."""
    buffer = io.StringIO()
    catalog, live_reports, variant = _record_cab(*workload, sink=buffer)
    live_bytes = "\n".join(
        json.dumps(serialize_cycle_report(r), sort_keys=True, separators=(",", ":"))
        for r in live_reports
    ).encode("utf-8")

    plain_trace = TraceReader(io.StringIO(buffer.getvalue())).read()
    with tempfile.TemporaryDirectory() as tmp:
        chunked_path = os.path.join(tmp, "cab.trace.jsonl")
        _record_cab(*workload, sink=chunked_path)
        chunked_trace = TraceReader(chunked_path).read()
        # Chunking is a pure container change: identical events.
        assert chunked_trace.events == plain_trace.events

        for trace in (plain_trace, chunked_trace):
            result = CatalogReplayer(trace).replay(variant)
            assert result.report_bytes() == live_bytes
            assert _layout(CatalogReplayer(trace).replay_verbatim()) == _layout(catalog)
