"""Tests for data/delete file value objects and snapshot accessors."""

from __future__ import annotations

import pytest

from repro.lst import DataFile, DeleteFile, FileContent
from repro.units import MiB

from tests.conftest import fragment_table


class TestDataFile:
    def test_fields(self):
        data_file = DataFile(
            file_id=1, path="/t/f.parquet", size_bytes=MiB, record_count=100,
            partition=(3,),
        )
        assert data_file.content is FileContent.DATA
        assert data_file.partition == (3,)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            DataFile(file_id=1, path="/f", size_bytes=-1, record_count=1)

    def test_negative_records_rejected(self):
        with pytest.raises(ValueError):
            DataFile(file_id=1, path="/f", size_bytes=1, record_count=-1)

    def test_hashable_value_object(self):
        a = DataFile(file_id=1, path="/f", size_bytes=1, record_count=1)
        b = DataFile(file_id=1, path="/f", size_bytes=1, record_count=1)
        assert a == b
        assert len({a, b}) == 1


class TestDeleteFile:
    def test_references(self):
        delete_file = DeleteFile(
            file_id=9, path="/d", size_bytes=100, record_count=10,
            references=frozenset({1, 2}),
        )
        assert delete_file.content is FileContent.POSITION_DELETES
        assert delete_file.references == {1, 2}


class TestSnapshotAccessors:
    def test_files_in_partition(self, fragmented_table):
        snapshot = fragmented_table.current_snapshot()
        part0 = snapshot.files_in_partition((0,))
        assert len(part0) == 10
        assert all(f.partition == (0,) for f in part0)
        assert snapshot.files_in_partition((99,)) == []

    def test_partitions_sorted(self, fragmented_table):
        assert fragmented_table.current_snapshot().partitions() == [(0,), (1,)]

    def test_totals(self, fragmented_table):
        snapshot = fragmented_table.current_snapshot()
        assert snapshot.data_file_count == 20
        assert snapshot.total_data_bytes == 20 * 8 * MiB
        assert snapshot.delete_file_count == 0
