"""Tests for format-specific metadata layouts (Iceberg vs Delta)."""

from __future__ import annotations

import pytest

from repro.lst import DeltaTable, IcebergTable, TableIdentifier
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def iceberg(fs, simple_schema, monthly_spec):
    return IcebergTable(
        identifier=TableIdentifier("db", "ice"),
        schema=simple_schema,
        spec=monthly_spec,
        fs=fs,
    )


@pytest.fixture
def delta(fs, simple_schema, monthly_spec):
    return DeltaTable(
        identifier=TableIdentifier("db", "dlt"),
        schema=simple_schema,
        spec=monthly_spec,
        fs=fs,
    )


class TestIcebergMetadata:
    def test_commit_writes_three_metadata_files(self, iceberg, fs):
        fragment_table(iceberg, partitions=[(0,)], files_per_partition=2)
        metadata = fs.namenode.files_under(f"{iceberg.location}/metadata")
        names = sorted(info.path.rsplit("/", 1)[1] for info in metadata)
        assert any(n.startswith("manifest-") for n in names)
        assert any(n.startswith("snap-") for n in names)
        assert any(n.endswith(".metadata.json") for n in names)
        assert len(metadata) == 3

    def test_manifests_accumulate_across_appends(self, iceberg):
        for _ in range(5):
            fragment_table(iceberg, partitions=[(0,)], files_per_partition=1)
        assert iceberg.current_snapshot().manifest_paths != ()
        assert len(iceberg.current_snapshot().manifest_paths) == 5
        assert iceberg.scan().manifests_read == 5

    def test_rewrite_compacts_manifests(self, iceberg):
        for _ in range(5):
            fragment_table(iceberg, partitions=[(0,)], files_per_partition=2)
        sources = iceberg.live_files()
        txn = iceberg.new_rewrite()
        txn.rewrite(sources, [sum(f.size_bytes for f in sources)])
        txn.commit()
        assert len(iceberg.current_snapshot().manifest_paths) == 1

    def test_metadata_contributes_to_namespace_objects(self, iceberg, fs):
        before = fs.file_count()
        fragment_table(iceberg, partitions=[(0,)], files_per_partition=1)
        after = fs.file_count()
        # 1 data file + 3 metadata files per commit (§2, cause iv).
        assert after - before == 4


class TestDeltaMetadata:
    def test_commit_writes_json_log(self, delta, fs):
        fragment_table(delta, partitions=[(0,)], files_per_partition=2)
        log = fs.namenode.files_under(f"{delta.location}/_delta_log")
        assert len(log) == 1
        assert log[0].path.endswith("00000000000000000001.json")

    def test_checkpoint_every_interval(self, delta, fs):
        for _ in range(10):
            fragment_table(delta, partitions=[(0,)], files_per_partition=1)
        log = fs.namenode.files_under(f"{delta.location}/_delta_log")
        checkpoints = [info for info in log if "checkpoint" in info.path]
        assert len(checkpoints) == 1
        assert "00000000000000000010" in checkpoints[0].path

    def test_planning_cost_resets_at_checkpoint(self, delta):
        for _ in range(9):
            fragment_table(delta, partitions=[(0,)], files_per_partition=1)
        assert delta.scan().manifests_read == 9
        fragment_table(delta, partitions=[(0,)], files_per_partition=1)  # v10
        assert delta.scan().manifests_read == 1  # just the checkpoint
        fragment_table(delta, partitions=[(0,)], files_per_partition=1)  # v11
        assert delta.scan().manifests_read == 2

    def test_custom_checkpoint_interval(self, fs, simple_schema):
        table = DeltaTable(
            identifier=TableIdentifier("db", "ckpt"),
            schema=simple_schema,
            fs=fs,
            properties={"delta.checkpoint-interval": 3},
        )
        for _ in range(3):
            txn = table.new_append()
            txn.add_file(MiB)
            txn.commit()
        log = fs.namenode.files_under(f"{table.location}/_delta_log")
        assert any("checkpoint" in info.path for info in log)


class TestTableProperties:
    def test_target_file_size_default_and_override(self, iceberg, fs, simple_schema):
        assert iceberg.target_file_size == 512 * MiB
        custom = IcebergTable(
            identifier=TableIdentifier("db", "custom_target"),
            schema=simple_schema,
            fs=fs,
            properties={"write.target-file-size-bytes": 128 * MiB},
        )
        assert custom.target_file_size == 128 * MiB

    def test_format_names(self, iceberg, delta):
        assert iceberg.format_name == "iceberg"
        assert delta.format_name == "delta"

    def test_repr(self, iceberg):
        assert "db.ice" in repr(iceberg)
