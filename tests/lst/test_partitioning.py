"""Tests for partition specs and transforms."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.lst import (
    BucketTransform,
    DayTransform,
    IdentityTransform,
    MonthTransform,
    PartitionField,
    PartitionSpec,
)
from repro.lst.partitioning import DAYS_PER_MONTH


class TestTransforms:
    def test_identity(self):
        assert IdentityTransform().apply("hello") == "hello"

    def test_month_groups_by_30_days(self):
        transform = MonthTransform()
        assert transform.apply(0) == 0
        assert transform.apply(DAYS_PER_MONTH - 1) == 0
        assert transform.apply(DAYS_PER_MONTH) == 1
        assert transform.apply(5 * DAYS_PER_MONTH + 3) == 5

    def test_day(self):
        assert DayTransform().apply(42.9) == 42

    def test_bucket_stable_and_in_range(self):
        transform = BucketTransform(8)
        values = [transform.apply(f"key{i}") for i in range(100)]
        assert all(0 <= v < 8 for v in values)
        assert values == [BucketTransform(8).apply(f"key{i}") for i in range(100)]

    def test_bucket_spreads(self):
        transform = BucketTransform(4)
        assert len({transform.apply(i) for i in range(50)}) > 1

    def test_bucket_invalid(self):
        with pytest.raises(ValidationError):
            BucketTransform(0)


class TestPartitionSpec:
    def test_unpartitioned(self):
        spec = PartitionSpec.unpartitioned()
        assert not spec.is_partitioned
        assert spec.partition_for({"a": 1}) == ()
        assert spec.partition_path(()) == ""

    def test_single_field(self):
        spec = PartitionSpec.of(PartitionField("ship_date", MonthTransform()))
        assert spec.is_partitioned
        assert spec.partition_for({"ship_date": 65}) == (2,)

    def test_multi_field(self):
        spec = PartitionSpec.of(
            PartitionField("d", MonthTransform()),
            PartitionField("k", BucketTransform(4)),
        )
        partition = spec.partition_for({"d": 31, "k": "abc"})
        assert partition[0] == 1
        assert 0 <= partition[1] < 4

    def test_missing_source_column(self):
        spec = PartitionSpec.of(PartitionField("d", MonthTransform()))
        with pytest.raises(ValidationError):
            spec.partition_for({"other": 1})

    def test_partition_path(self):
        spec = PartitionSpec.of(PartitionField("d", MonthTransform(), name="month"))
        assert spec.partition_path((7,)) == "month=7"

    def test_partition_path_default_name(self):
        spec = PartitionSpec.of(PartitionField("d", MonthTransform()))
        assert spec.partition_path((7,)) == "d_month=7"

    def test_partition_path_arity_mismatch(self):
        spec = PartitionSpec.of(PartitionField("d", MonthTransform()))
        with pytest.raises(ValidationError):
            spec.partition_path((1, 2))
