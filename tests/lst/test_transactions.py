"""Tests for table transactions: append, overwrite, row-delta, rewrite."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.lst import FileContent
from repro.units import MiB

from tests.conftest import fragment_table


class TestAppend:
    def test_append_creates_snapshot(self, table):
        txn = table.new_append()
        txn.add_file(10 * MiB, partition=(0,))
        txn.add_file(20 * MiB, partition=(1,))
        snapshot = txn.commit()
        assert snapshot.operation == "append"
        assert snapshot.data_file_count == 2
        assert table.version == 1
        assert table.data_file_count == 2
        assert table.total_data_bytes == 30 * MiB

    def test_append_accumulates(self, table):
        fragment_table(table, partitions=[(0,)], files_per_partition=3)
        fragment_table(table, partitions=[(1,)], files_per_partition=2)
        assert table.data_file_count == 5
        assert table.version == 2
        assert [s.sequence_number for s in table.snapshots()] == [1, 2]

    def test_files_created_in_storage(self, table, fs):
        fragment_table(table, partitions=[(0,)], files_per_partition=4)
        data_files = [
            info
            for info in fs.namenode.files_under(table.location)
            if info.path.startswith(f"{table.location}/data/")
        ]
        assert len(data_files) == 4

    def test_partition_paths_in_file_layout(self, table):
        fragment_table(table, partitions=[(3,)], files_per_partition=1)
        (data_file,) = table.live_files()
        assert "event_date_month=3" in data_file.path

    def test_default_record_count(self, table):
        txn = table.new_append()
        txn.add_file(1280, partition=(0,))
        txn.commit()
        (data_file,) = table.live_files()
        assert data_file.record_count == 10  # 1280 / 128-byte rows

    def test_negative_size_rejected(self, table):
        txn = table.new_append()
        with pytest.raises(ValidationError):
            txn.add_file(-1, partition=(0,))

    def test_transaction_single_use(self, table):
        txn = table.new_append()
        txn.add_file(1, partition=(0,))
        txn.commit()
        with pytest.raises(ValidationError):
            txn.commit()
        with pytest.raises(ValidationError):
            txn.add_file(1, partition=(0,))

    def test_abort_discards(self, table):
        txn = table.new_append()
        txn.add_file(1, partition=(0,))
        txn.abort()
        assert table.version == 0
        assert table.data_file_count == 0
        assert txn.committed_or_aborted


class TestOverwrite:
    def test_overwrite_replaces_files(self, fragmented_table):
        table = fragmented_table
        victims = [f for f in table.live_files() if f.partition == (0,)][:3]
        txn = table.new_overwrite()
        for victim in victims:
            txn.delete_file(victim)
        txn.add_file(64 * MiB, partition=(0,))
        snapshot = txn.commit()
        assert snapshot.operation == "overwrite"
        assert table.data_file_count == 20 - 3 + 1
        live_ids = {f.file_id for f in table.live_files()}
        assert not any(v.file_id in live_ids for v in victims)


class TestRowDelta:
    def test_row_delta_adds_delete_file(self, fragmented_table):
        table = fragmented_table
        targets = table.live_files()[:4]
        txn = table.new_row_delta()
        txn.add_deletes(1 * MiB, targets)
        snapshot = txn.commit()
        assert snapshot.delete_file_count == 1
        (delete_file,) = snapshot.delete_files
        assert delete_file.content is FileContent.POSITION_DELETES
        assert delete_file.references == frozenset(f.file_id for f in targets)

    def test_row_delta_requires_references(self, table):
        txn = table.new_row_delta()
        with pytest.raises(ValidationError):
            txn.add_deletes(1 * MiB, [])

    def test_scan_returns_relevant_deletes(self, fragmented_table):
        table = fragmented_table
        part0_files = [f for f in table.live_files() if f.partition == (0,)]
        txn = table.new_row_delta()
        txn.add_deletes(1 * MiB, part0_files[:2])
        txn.commit()
        plan0 = table.scan(partitions=[(0,)])
        plan1 = table.scan(partitions=[(1,)])
        assert len(plan0.delete_files) == 1
        assert len(plan1.delete_files) == 0


class TestRewrite:
    def test_rewrite_replaces_sources(self, fragmented_table):
        table = fragmented_table
        sources = [f for f in table.live_files() if f.partition == (0,)]
        total = sum(f.size_bytes for f in sources)
        txn = table.new_rewrite()
        txn.rewrite(sources, [total])
        snapshot = txn.commit()
        assert snapshot.operation == "replace"
        assert table.data_file_count == 11  # 10 in partition 1 + 1 merged
        merged = [f for f in table.live_files() if f.partition == (0,)]
        assert len(merged) == 1
        assert merged[0].size_bytes == total

    def test_rewrite_preserves_record_counts(self, fragmented_table):
        table = fragmented_table
        sources = [f for f in table.live_files() if f.partition == (0,)]
        records = sum(f.record_count for f in sources)
        total = sum(f.size_bytes for f in sources)
        txn = table.new_rewrite()
        txn.rewrite(sources, [total // 2, total - total // 2])
        txn.commit()
        merged = [f for f in table.live_files() if f.partition == (0,)]
        assert sum(f.record_count for f in merged) == records

    def test_rewrite_must_preserve_bytes(self, fragmented_table):
        table = fragmented_table
        sources = [f for f in table.live_files() if f.partition == (0,)]
        txn = table.new_rewrite()
        with pytest.raises(ValidationError):
            txn.rewrite(sources, [123])

    def test_rewrite_single_partition_only(self, fragmented_table):
        table = fragmented_table
        by_partition = {}
        for data_file in table.live_files():
            by_partition.setdefault(data_file.partition, []).append(data_file)
        mixed = by_partition[(0,)][:2] + by_partition[(1,)][:2]
        assert len({f.partition for f in mixed}) == 2
        txn = table.new_rewrite()
        with pytest.raises(ValidationError):
            txn.rewrite(mixed, [sum(f.size_bytes for f in mixed)])

    def test_rewrite_drops_covered_delete_files(self, fragmented_table):
        table = fragmented_table
        part0 = [f for f in table.live_files() if f.partition == (0,)]
        delta = table.new_row_delta()
        delta.add_deletes(1 * MiB, part0[:3])
        delta.commit()
        assert table.delete_file_count == 1
        txn = table.new_rewrite()
        txn.rewrite(part0, [sum(f.size_bytes for f in part0)])
        txn.commit()
        assert table.delete_file_count == 0

    def test_empty_rewrite_group_rejected(self, table):
        txn = table.new_rewrite()
        with pytest.raises(ValidationError):
            txn.rewrite([], [])


class TestScan:
    def test_empty_table_scan(self, table):
        plan = table.scan()
        assert plan.file_count == 0
        assert plan.total_bytes == 0
        assert plan.manifests_read == 0

    def test_full_scan(self, fragmented_table):
        plan = fragmented_table.scan()
        assert plan.file_count == 20
        assert plan.total_bytes == 20 * 8 * MiB

    def test_partition_pruned_scan(self, fragmented_table):
        plan = fragmented_table.scan(partitions=[(0,)])
        assert plan.file_count == 10
        assert all(f.partition == (0,) for f in plan.files)

    def test_scan_deterministic_order(self, fragmented_table):
        first = fragmented_table.scan()
        second = fragmented_table.scan()
        assert [f.file_id for f in first.files] == [f.file_id for f in second.files]


class TestHistory:
    def test_history_records_operations(self, table):
        fragment_table(table, partitions=[(0,)], files_per_partition=2)
        sources = table.live_files()
        txn = table.new_rewrite()
        txn.rewrite(sources, [sum(f.size_bytes for f in sources)])
        txn.commit()
        ops = [op for _, _, op in table.history()]
        assert ops == ["append", "replace"]

    def test_snapshot_lookup(self, fragmented_table):
        snap = fragmented_table.current_snapshot()
        assert fragmented_table.snapshot(snap.snapshot_id) is snap
        with pytest.raises(ValidationError):
            fragmented_table.snapshot(9999)

    def test_partitions_sorted(self, table):
        fragment_table(table, partitions=[(5,), (1,), (3,)], files_per_partition=1)
        assert table.partitions() == [(1,), (3,), (5,)]
