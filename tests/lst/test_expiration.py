"""Tests for snapshot expiration and physical cleanup."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.units import MiB

from tests.conftest import fragment_table


class TestExpireSnapshots:
    def test_expire_nothing_on_fresh_table(self, table):
        assert table.expire_snapshots() == 0

    def test_replaced_files_deleted_after_rewrite_and_expire(self, fragmented_table, fs):
        table = fragmented_table
        sources = [f for f in table.live_files() if f.partition == (0,)]
        txn = table.new_rewrite()
        txn.rewrite(sources, [sum(f.size_bytes for f in sources)])
        txn.commit()
        # Old snapshot still references the replaced files: nothing deleted yet.
        for source in sources:
            assert fs.namenode.exists(source.path)
        deleted = table.expire_snapshots()
        # The replaced data files plus the expired snapshot's metadata
        # (manifest list + metadata JSON + unreferenced manifest).
        assert deleted == len(sources) + 3
        for source in sources:
            assert not fs.namenode.exists(source.path)

    def test_current_snapshot_always_retained(self, fragmented_table):
        table = fragmented_table
        table.expire_snapshots(older_than=float("inf"))
        assert table.current_snapshot() is not None
        assert len(table.snapshots()) == 1

    def test_retain_last_keeps_tail(self, table, clock):
        for i in range(4):
            clock.advance_by(100)
            fragment_table(table, partitions=[(i,)], files_per_partition=1)
        table.expire_snapshots(retain_last=3)
        assert len(table.snapshots()) == 3

    def test_older_than_cutoff(self, table, clock):
        fragment_table(table, partitions=[(0,)], files_per_partition=1)
        clock.advance_by(1000)
        fragment_table(table, partitions=[(1,)], files_per_partition=1)
        clock.advance_by(1000)
        fragment_table(table, partitions=[(2,)], files_per_partition=1)
        # Only the first snapshot (t=0) is older than the cutoff.
        table.expire_snapshots(older_than=500.0, retain_last=1)
        assert len(table.snapshots()) == 2

    def test_files_still_referenced_by_retained_snapshots_survive(self, table, fs, clock):
        fragment_table(table, partitions=[(0,)], files_per_partition=2)
        clock.advance_by(10)
        fragment_table(table, partitions=[(1,)], files_per_partition=1)
        data_paths = [f.path for f in table.live_files()]
        # All three files are live in the current snapshot; expiring the
        # first snapshot must not delete any data (only that snapshot's
        # exclusive metadata: its manifest list and metadata JSON).
        deleted = table.expire_snapshots()
        assert deleted == 2
        assert table.data_file_count == 3
        assert all(fs.namenode.exists(path) for path in data_paths)

    def test_invalid_retain_last(self, table):
        with pytest.raises(ValidationError):
            table.expire_snapshots(retain_last=0)

    def test_expire_counts_delete_files(self, fragmented_table, fs):
        table = fragmented_table
        targets = [f for f in table.live_files() if f.partition == (0,)]
        delta = table.new_row_delta()
        delta.add_deletes(MiB, targets)
        delete_path = delta.commit().delete_files.__iter__().__next__().path
        txn = table.new_rewrite()
        txn.rewrite(targets, [sum(f.size_bytes for f in targets)])
        txn.commit()
        deleted = table.expire_snapshots()
        # 10 data files + 1 delete file physically removed, plus the
        # expired snapshots' metadata (exclusive files and manifests no
        # retained snapshot references).
        assert deleted >= len(targets) + 1
        assert all(not fs.namenode.exists(f.path) for f in targets)
        assert not fs.namenode.exists(delete_path)

    def test_expired_metadata_cleaned(self, table, fs, clock):
        """Old manifest lists / metadata JSONs don't accumulate forever."""
        for i in range(5):
            clock.advance_by(100)
            fragment_table(table, partitions=[(i,)], files_per_partition=1)
        metadata_before = fs.file_count(f"{table.location}/metadata")
        table.expire_snapshots(retain_last=1)
        metadata_after = fs.file_count(f"{table.location}/metadata")
        # Four expired snapshots each owned a manifest list + metadata JSON;
        # their manifests are still referenced by the current snapshot.
        assert metadata_after == metadata_before - 8
        # The current snapshot's planning inputs all still exist.
        for path in table.current_snapshot().manifest_paths:
            assert fs.namenode.exists(path)
