"""Tests for rewrite planning (bin packing) and execution."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.lst import DataFile
from repro.lst.maintenance import (
    estimate_table_level_reduction,
    execute_rewrite,
    pack_sizes,
    plan_rewrite,
    plan_table_rewrite,
)
from repro.units import MiB

from tests.conftest import fragment_table

TARGET = 512 * MiB


def _files(sizes, partition=(0,), start_id=1):
    return [
        DataFile(
            file_id=start_id + i,
            path=f"/t/data/f{start_id + i}.parquet",
            size_bytes=size,
            record_count=max(size // 128, 1),
            partition=partition,
        )
        for i, size in enumerate(sizes)
    ]


class TestPackSizes:
    def test_single_output(self):
        assert pack_sizes(100, 512) == (100,)

    def test_exact_multiple(self):
        assert pack_sizes(1024, 512) == (512, 512)

    def test_remainder_spread_evenly(self):
        sizes = pack_sizes(1025, 512)
        assert len(sizes) == 3
        assert sum(sizes) == 1025
        assert max(sizes) - min(sizes) <= 1

    def test_zero_bytes(self):
        assert pack_sizes(0, 512) == ()

    def test_outputs_never_exceed_target(self):
        for total in (1, 511, 512, 513, 5000, 123456):
            for size in pack_sizes(total, 512):
                assert 0 < size <= 512

    def test_invalid_args(self):
        with pytest.raises(ValidationError):
            pack_sizes(10, 0)
        with pytest.raises(ValidationError):
            pack_sizes(-1, 512)


class TestPlanRewrite:
    def test_merges_small_files(self):
        files = _files([64 * MiB] * 10)
        plan = plan_rewrite(files, TARGET)
        assert len(plan.groups) == 1
        group = plan.groups[0]
        assert group.input_count == 10
        assert group.output_count == 2  # 640 MiB -> two outputs
        assert plan.file_count_reduction == 8
        assert plan.rewritten_bytes == 640 * MiB

    def test_large_files_untouched(self):
        files = _files([TARGET, TARGET + 1, 64 * MiB, 64 * MiB])
        plan = plan_rewrite(files, TARGET)
        assert plan.input_file_count == 2

    def test_respects_partition_boundaries(self):
        files = _files([64 * MiB] * 4, partition=(0,)) + _files(
            [64 * MiB] * 4, partition=(1,), start_id=100
        )
        plan = plan_rewrite(files, TARGET)
        assert len(plan.groups) == 2
        assert all(len({f.partition for f in g.sources}) == 1 for g in plan.groups)

    def test_partition_filter(self):
        files = _files([64 * MiB] * 4, partition=(0,)) + _files(
            [64 * MiB] * 4, partition=(1,), start_id=100
        )
        plan = plan_rewrite(files, TARGET, partitions=[(1,)])
        assert len(plan.groups) == 1
        assert plan.groups[0].partition == (1,)

    def test_min_input_files_skips_lonely_partitions(self):
        files = _files([64 * MiB], partition=(0,)) + _files(
            [64 * MiB] * 3, partition=(1,), start_id=10
        )
        plan = plan_rewrite(files, TARGET, min_input_files=2)
        assert [g.partition for g in plan.groups] == [(1,)]

    def test_skips_partitions_with_no_gain(self):
        # Two 500 MiB files need two outputs: no reduction, no group.
        files = _files([500 * MiB, 500 * MiB])
        plan = plan_rewrite(files, TARGET)
        assert plan.is_empty

    def test_empty_input(self):
        plan = plan_rewrite([], TARGET)
        assert plan.is_empty
        assert plan.file_count_reduction == 0

    def test_invalid_min_input(self):
        with pytest.raises(ValidationError):
            plan_rewrite([], TARGET, min_input_files=0)

    def test_groups_sorted_by_partition(self):
        files = _files([MiB] * 3, partition=(2,)) + _files(
            [MiB] * 3, partition=(0,), start_id=50
        )
        plan = plan_rewrite(files, TARGET)
        assert [g.partition for g in plan.groups] == [(0,), (2,)]


class TestPlanTableRewrite:
    def test_uses_table_target(self, fragmented_table):
        plan = plan_table_rewrite(fragmented_table)
        assert not plan.is_empty
        assert plan.table == "db.events"
        assert plan.input_file_count == 20
        assert plan.output_file_count == 2  # one 80 MiB output per partition

    def test_target_override(self, fragmented_table):
        plan = plan_table_rewrite(fragmented_table, target_file_size=16 * MiB)
        # 80 MiB per partition at 16 MiB target -> 5 outputs per partition.
        assert plan.output_file_count == 10


class TestExecuteRewrite:
    def test_applies_plan(self, fragmented_table):
        table = fragmented_table
        plan = plan_table_rewrite(table)
        snapshot = execute_rewrite(table, plan)
        assert snapshot is not None
        assert table.data_file_count == 2

    def test_empty_plan_returns_none(self, table):
        plan = plan_table_rewrite(table)
        assert execute_rewrite(table, plan) is None


class TestTableLevelEstimator:
    def test_counts_small_files(self):
        files = _files([MiB, TARGET - 1, TARGET, TARGET + 5])
        assert estimate_table_level_reduction(files, TARGET) == 2

    def test_overestimates_vs_partition_aware_plan(self):
        """The §7 model-accuracy effect: ΔF_c ignores partition boundaries
        and output files, so it exceeds the achievable reduction."""
        files = []
        for partition in range(5):
            files.extend(
                _files([100 * MiB] * 3, partition=(partition,), start_id=partition * 10 + 1)
            )
        estimate = estimate_table_level_reduction(files, TARGET)
        plan = plan_rewrite(files, TARGET)
        assert estimate == 15
        assert plan.file_count_reduction == 10  # 3 -> 1 in each of 5 partitions
        assert estimate > plan.file_count_reduction

    def test_invalid_target(self):
        with pytest.raises(ValidationError):
            estimate_table_level_reduction([], 0)
