"""Tests for the Hudi-like format profile."""

from __future__ import annotations

import pytest

from repro.lst import HudiTable, TableIdentifier
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def hudi(fs, simple_schema, monthly_spec):
    return HudiTable(
        identifier=TableIdentifier("db", "hoodie"),
        schema=simple_schema,
        spec=monthly_spec,
        fs=fs,
    )


class TestTimelineMetadata:
    def test_commit_file_per_transaction(self, hudi, fs):
        fragment_table(hudi, partitions=[(0,)], files_per_partition=2)
        fragment_table(hudi, partitions=[(0,)], files_per_partition=2)
        timeline = fs.namenode.files_under(f"{hudi.location}/.hoodie")
        assert len(timeline) == 2
        assert all(info.path.endswith(".commit") for info in timeline)

    def test_planning_cost_grows_then_resets_at_compaction(self, hudi):
        for _ in range(4):
            fragment_table(hudi, partitions=[(0,)], files_per_partition=2)
        assert hudi.scan().manifests_read == 4
        sources = hudi.live_files()
        txn = hudi.new_rewrite()
        txn.rewrite(sources, [sum(f.size_bytes for f in sources)])
        txn.commit()
        assert hudi.scan().manifests_read == 1

    def test_replace_commit_named_distinctly(self, hudi, fs):
        fragment_table(hudi, partitions=[(0,)], files_per_partition=3)
        sources = hudi.live_files()
        txn = hudi.new_rewrite()
        txn.rewrite(sources, [sum(f.size_bytes for f in sources)])
        txn.commit()
        timeline = fs.namenode.files_under(f"{hudi.location}/.hoodie")
        assert any(info.path.endswith(".replacecommit") for info in timeline)


class TestHudiConflictProfile:
    def test_appends_never_conflict_with_rewrites(self, hudi):
        fragment_table(hudi, partitions=[(0,)], files_per_partition=4)
        append = hudi.new_append()
        append.add_file(MiB, partition=(0,))
        sources = hudi.live_files()
        rewrite = hudi.new_rewrite()
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        append.commit()  # no stale-metadata failure in this profile
        assert hudi.version == 3

    def test_disjoint_rewrites_both_commit(self, hudi):
        fragment_table(hudi)
        part0 = [f for f in hudi.live_files() if f.partition == (0,)]
        part1 = [f for f in hudi.live_files() if f.partition == (1,)]
        rewrite0 = hudi.new_rewrite()
        rewrite0.rewrite(part0, [sum(f.size_bytes for f in part0)])
        rewrite1 = hudi.new_rewrite()
        rewrite1.rewrite(part1, [sum(f.size_bytes for f in part1)])
        rewrite0.commit()
        rewrite1.commit()
        assert hudi.data_file_count == 2


class TestCatalogIntegration:
    def test_hudi_registered_by_default(self, catalog, simple_schema):
        catalog.create_database("db")
        table = catalog.create_table("db.h", simple_schema, table_format="hudi")
        assert isinstance(table, HudiTable)

    def test_autocomp_over_all_three_formats(self, catalog, simple_schema):
        """NFR3 end-to-end: one cycle over iceberg + delta + hudi tables."""
        from repro.core.service import openhouse_pipeline
        from repro.engine import Cluster, EngineSession, MisconfiguredShuffleWriter

        catalog.create_database("db")
        session = EngineSession(
            Cluster("q", executors=4), telemetry=catalog.telemetry, clock=catalog.clock
        )
        tables = []
        for fmt in ("iceberg", "delta", "hudi"):
            table = catalog.create_table(f"db.{fmt}_t", simple_schema, table_format=fmt)
            session.write(table, 64 * MiB, MisconfiguredShuffleWriter(16))
            tables.append(table)
        pipeline = openhouse_pipeline(
            catalog, Cluster("m", executors=2), min_table_age_s=0.0
        )
        report = pipeline.run_cycle(now=catalog.clock.now)
        assert report.successes == 3
        assert all(t.data_file_count == 1 for t in tables)
