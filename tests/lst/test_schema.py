"""Tests for schemas and fields."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.lst import Field, Schema


class TestField:
    def test_valid_field(self):
        field = Field("id", "long", doc="primary key")
        assert field.name == "id"
        assert field.doc == "primary key"

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Field("", "long")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValidationError):
            Field("x", "varchar")

    @pytest.mark.parametrize(
        "type_name",
        ["boolean", "int", "long", "float", "double", "decimal", "date", "timestamp", "string"],
    )
    def test_all_primitive_types(self, type_name):
        assert Field("x", type_name).type == type_name


class TestSchema:
    def test_of_builder(self):
        schema = Schema.of(Field("a", "int"), Field("b", "string"))
        assert len(schema) == 2
        assert schema.field_names() == ["a", "b"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Schema.of(Field("a", "int"), Field("a", "string"))

    def test_has_field(self):
        schema = Schema.of(Field("a", "int"))
        assert schema.has_field("a")
        assert not schema.has_field("z")

    def test_find(self):
        schema = Schema.of(Field("a", "int"), Field("b", "date"))
        assert schema.find("b").type == "date"
        with pytest.raises(ValidationError):
            schema.find("missing")

    def test_empty_schema_allowed(self):
        assert len(Schema.of()) == 0
