"""Tests for optimistic-concurrency conflict semantics (paper §4.4, Table 1).

The scenarios interleave transactions by opening several before committing
them, which is exactly what the engine's two-phase jobs do across simulated
time.
"""

from __future__ import annotations

import pytest

from repro.errors import CommitConflictError
from repro.lst import ConflictSemantics, DeltaTable, IcebergTable, Schema, Field, TableIdentifier
from repro.lst.partitioning import MonthTransform, PartitionField, PartitionSpec
from repro.units import MiB

from tests.conftest import fragment_table


def _sources(table, partition):
    return [f for f in table.live_files() if f.partition == partition]


class TestAppendConflicts:
    def test_concurrent_appends_merge(self, table):
        txn_a = table.new_append()
        txn_a.add_file(MiB, partition=(0,))
        txn_b = table.new_append()
        txn_b.add_file(MiB, partition=(0,))
        txn_a.commit()
        txn_b.commit()  # stale base but appends auto-merge
        assert table.data_file_count == 2
        assert table.telemetry.counter("lst.commit.refreshes") == 1

    def test_append_conflicts_with_concurrent_rewrite(self, fragmented_table):
        table = fragmented_table
        append = table.new_append()
        append.add_file(MiB, partition=(0,))
        rewrite = table.new_rewrite()
        sources = _sources(table, (0,))
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        with pytest.raises(CommitConflictError) as err:
            append.commit()
        assert err.value.side == "client"
        assert table.telemetry.counter("lst.conflicts.client") == 1

    def test_append_retry_succeeds_after_conflict(self, fragmented_table):
        table = fragmented_table
        append = table.new_append()
        append.add_file(MiB, partition=(0,))
        rewrite = table.new_rewrite()
        sources = _sources(table, (0,))
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        with pytest.raises(CommitConflictError):
            append.commit()
        retry = table.new_append()
        retry.add_file(MiB, partition=(0,))
        retry.commit()  # fresh metadata: no conflict
        assert table.data_file_count == 12


class TestOverwriteConflicts:
    def test_overwrite_fails_when_source_removed(self, fragmented_table):
        table = fragmented_table
        victim = _sources(table, (0,))[0]
        overwrite = table.new_overwrite()
        overwrite.delete_file(victim)
        overwrite.add_file(MiB, partition=(0,))
        rewrite = table.new_rewrite()
        sources = _sources(table, (0,))
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        with pytest.raises(CommitConflictError) as err:
            overwrite.commit()
        assert err.value.side == "client"

    def test_overwrite_fails_on_same_partition_commit(self, fragmented_table):
        table = fragmented_table
        victim = _sources(table, (0,))[0]
        overwrite = table.new_overwrite()
        overwrite.delete_file(victim)
        append = table.new_append()
        append.add_file(MiB, partition=(0,))
        append.commit()
        with pytest.raises(CommitConflictError):
            overwrite.commit()

    def test_overwrite_ok_on_disjoint_partition_commit(self, fragmented_table):
        table = fragmented_table
        victim = _sources(table, (0,))[0]
        overwrite = table.new_overwrite()
        overwrite.delete_file(victim)
        overwrite.add_file(MiB, partition=(0,))
        append = table.new_append()
        append.add_file(MiB, partition=(1,))
        append.commit()
        overwrite.commit()
        assert table.version == 3


class TestRowDeltaConflicts:
    def test_rowdelta_fails_when_reference_rewritten(self, fragmented_table):
        table = fragmented_table
        targets = _sources(table, (0,))[:2]
        delta = table.new_row_delta()
        delta.add_deletes(MiB, targets)
        rewrite = table.new_rewrite()
        sources = _sources(table, (0,))
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        with pytest.raises(CommitConflictError) as err:
            delta.commit()
        assert err.value.side == "client"


class TestRewriteConflicts:
    def test_rewrite_fails_when_sources_vanish(self, fragmented_table):
        table = fragmented_table
        sources = _sources(table, (0,))
        rewrite = table.new_rewrite()
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        overwrite = table.new_overwrite()
        overwrite.delete_file(sources[0])
        overwrite.add_file(MiB, partition=(0,))
        overwrite.commit()
        with pytest.raises(CommitConflictError) as err:
            rewrite.commit()
        assert err.value.side == "cluster"
        assert table.telemetry.counter("lst.conflicts.cluster") == 1

    def test_iceberg_quirk_disjoint_rewrites_conflict(self, fragmented_table):
        """The §4.4 observation: concurrent rewrites of *distinct*
        partitions still conflict on Iceberg v1.2.0."""
        table = fragmented_table
        rewrite0 = table.new_rewrite()
        sources0 = _sources(table, (0,))
        rewrite0.rewrite(sources0, [sum(f.size_bytes for f in sources0)])
        rewrite1 = table.new_rewrite()
        sources1 = _sources(table, (1,))
        rewrite1.rewrite(sources1, [sum(f.size_bytes for f in sources1)])
        rewrite0.commit()
        with pytest.raises(CommitConflictError) as err:
            rewrite1.commit()
        assert err.value.side == "cluster"
        assert "distinct partitions" in str(err.value)

    def test_rewrite_fails_on_concurrent_write_same_partition(self, fragmented_table):
        table = fragmented_table
        sources = _sources(table, (0,))
        rewrite = table.new_rewrite()
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        append = table.new_append()
        append.add_file(MiB, partition=(0,))
        append.commit()
        with pytest.raises(CommitConflictError):
            rewrite.commit()

    def test_rewrite_ok_without_concurrency(self, fragmented_table):
        table = fragmented_table
        sources = _sources(table, (0,))
        rewrite = table.new_rewrite()
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        assert table.data_file_count == 11


class TestDeltaSemantics:
    @pytest.fixture
    def delta_table(self, fs, simple_schema, monthly_spec):
        table = DeltaTable(
            identifier=TableIdentifier("db", "delta_events"),
            schema=simple_schema,
            spec=monthly_spec,
            fs=fs,
        )
        fragment_table(table)
        return table

    def test_disjoint_rewrites_commit_on_delta(self, delta_table):
        """Delta's file-granularity validation allows disjoint OPTIMIZE."""
        table = delta_table
        rewrite0 = table.new_rewrite()
        sources0 = _sources(table, (0,))
        rewrite0.rewrite(sources0, [sum(f.size_bytes for f in sources0)])
        rewrite1 = table.new_rewrite()
        sources1 = _sources(table, (1,))
        rewrite1.rewrite(sources1, [sum(f.size_bytes for f in sources1)])
        rewrite0.commit()
        rewrite1.commit()  # no quirk: distinct file sets commit cleanly
        assert table.data_file_count == 2

    def test_overlapping_rewrites_still_conflict_on_delta(self, delta_table):
        table = delta_table
        sources = _sources(table, (0,))
        rewrite_a = table.new_rewrite()
        rewrite_a.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite_b = table.new_rewrite()
        rewrite_b.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite_a.commit()
        with pytest.raises(CommitConflictError):
            rewrite_b.commit()

    def test_append_never_conflicts_with_rewrite_on_delta(self, delta_table):
        table = delta_table
        append = table.new_append()
        append.add_file(MiB, partition=(0,))
        rewrite = table.new_rewrite()
        sources = _sources(table, (0,))
        rewrite.rewrite(sources, [sum(f.size_bytes for f in sources)])
        rewrite.commit()
        append.commit()
        assert table.version == 3


class TestSemanticsProfiles:
    def test_iceberg_profile_flags(self):
        semantics = ConflictSemantics.iceberg_v1_2()
        assert semantics.rewrite_fails_on_concurrent_rewrite_any_partition
        assert semantics.append_fails_on_concurrent_rewrite

    def test_delta_profile_flags(self):
        semantics = ConflictSemantics.delta_v2_4()
        assert not semantics.rewrite_fails_on_concurrent_rewrite_any_partition
        assert not semantics.append_fails_on_concurrent_rewrite

    def test_custom_semantics_override(self, fs, simple_schema):
        spec = PartitionSpec.of(PartitionField("event_date", MonthTransform()))
        table = IcebergTable(
            identifier=TableIdentifier("db", "custom"),
            schema=simple_schema,
            spec=spec,
            fs=fs,
            conflict_semantics=ConflictSemantics.delta_v2_4(),
        )
        fragment_table(table)
        rewrite0 = table.new_rewrite()
        sources0 = _sources(table, (0,))
        rewrite0.rewrite(sources0, [sum(f.size_bytes for f in sources0)])
        rewrite1 = table.new_rewrite()
        sources1 = _sources(table, (1,))
        rewrite1.rewrite(sources1, [sum(f.size_bytes for f in sources1)])
        rewrite0.commit()
        rewrite1.commit()  # overridden semantics permit this
        assert table.version == 3
