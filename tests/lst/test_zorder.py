"""Tests for Z-order utilities and layout-aware rewrite planning (§8)."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.lst import DataFile
from repro.lst.zorder import (
    interleave_bits,
    plan_zorder_rewrite,
    z_order_files,
    z_value,
)
from repro.units import MiB

TARGET = 512 * MiB


def _file(file_id, partition, size=8 * MiB):
    return DataFile(
        file_id=file_id,
        path=f"/t/f{file_id}.parquet",
        size_bytes=size,
        record_count=100,
        partition=partition,
    )


class TestInterleaveBits:
    def test_one_dimension_is_identity(self):
        for value in (0, 1, 5, 1000):
            assert interleave_bits((value,)) == value

    def test_known_two_dimensional_codes(self):
        # Classic Morton codes: (x=1,y=0)->1, (x=0,y=1)->2, (x=1,y=1)->3,
        # (x=2,y=0)->4 ...
        assert interleave_bits((0, 0)) == 0
        assert interleave_bits((1, 0)) == 1
        assert interleave_bits((0, 1)) == 2
        assert interleave_bits((1, 1)) == 3
        assert interleave_bits((2, 0)) == 4
        assert interleave_bits((2, 2)) == 12

    def test_locality(self):
        """Adjacent cells in the plane get close codes within a quadrant."""
        quad_a = [interleave_bits((x, y)) for x in (0, 1) for y in (0, 1)]
        quad_b = [interleave_bits((x, y)) for x in (2, 3) for y in (2, 3)]
        assert max(quad_a) < min(quad_b)

    def test_bijective_over_small_grid(self):
        codes = {
            interleave_bits((x, y), bits=4) for x in range(16) for y in range(16)
        }
        assert len(codes) == 256

    def test_validation(self):
        with pytest.raises(ValidationError):
            interleave_bits(())
        with pytest.raises(ValidationError):
            interleave_bits((-1,))
        with pytest.raises(ValidationError):
            interleave_bits((1, 2, 3), bits=30)  # 90 bits > 64
        with pytest.raises(ValidationError):
            interleave_bits((1 << 22,), bits=21)


class TestZValue:
    def test_empty_partition(self):
        assert z_value(()) == 0

    def test_integer_partitions(self):
        assert z_value((3,)) == 3
        assert z_value((1, 1)) == 3

    def test_non_integer_components_stable(self):
        assert z_value(("east", 2)) == z_value(("east", 2))
        assert z_value(("east", 2)) != z_value(("west", 2))

    def test_negative_integers_hashed(self):
        assert z_value((-5,)) == z_value((-5,))


class TestZOrderFiles:
    def test_orders_by_curve_then_id(self):
        files = [
            _file(1, (3, 3)),
            _file(2, (0, 0)),
            _file(3, (1, 1)),
            _file(4, (0, 0)),
        ]
        ordered = z_order_files(files)
        assert [f.file_id for f in ordered] == [2, 4, 3, 1]


class TestPlanZorderRewrite:
    def test_groups_in_z_order(self):
        files = []
        fid = 1
        for partition in [(3, 3), (0, 1), (0, 0), (1, 0)]:
            for _ in range(3):
                files.append(_file(fid, partition))
                fid += 1
        plan = plan_zorder_rewrite(files, TARGET)
        partitions = [g.partition for g in plan.groups]
        codes = [z_value(p) for p in partitions]
        assert codes == sorted(codes)
        assert partitions[0] == (0, 0)

    def test_same_packing_as_plain_planner(self):
        from repro.lst.maintenance import plan_rewrite

        files = [
            _file(i, (i % 3, i % 2)) for i in range(1, 19)
        ]
        zplan = plan_zorder_rewrite(files, TARGET)
        plain = plan_rewrite(files, TARGET)
        assert zplan.input_file_count == plain.input_file_count
        assert zplan.output_file_count == plain.output_file_count
        assert zplan.rewritten_bytes == plain.rewritten_bytes

    def test_never_crosses_partitions(self):
        files = [_file(i, (i % 4,)) for i in range(1, 21)]
        plan = plan_zorder_rewrite(files, TARGET)
        for group in plan.groups:
            assert len({f.partition for f in group.sources}) == 1

    def test_executes_against_table(self, fragmented_table):
        from repro.lst.maintenance import execute_rewrite

        plan = plan_zorder_rewrite(
            fragmented_table.live_files(),
            fragmented_table.target_file_size,
            table=str(fragmented_table.identifier),
        )
        execute_rewrite(fragmented_table, plan)
        assert fragmented_table.data_file_count == 2

    def test_validation(self):
        with pytest.raises(ValidationError):
            plan_zorder_rewrite([], TARGET, min_input_files=0)
