"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.catalog import Catalog
from repro.engine import Cluster, EngineSession, MisconfiguredShuffleWriter
from repro.lst import (
    Field,
    IcebergTable,
    MonthTransform,
    PartitionField,
    PartitionSpec,
    Schema,
    TableIdentifier,
)
from repro.simulation import SimClock, Telemetry
from repro.storage import SimulatedFileSystem
from repro.units import MiB


@pytest.fixture
def clock() -> SimClock:
    return SimClock()


@pytest.fixture
def telemetry() -> Telemetry:
    return Telemetry()


@pytest.fixture
def fs(clock, telemetry) -> SimulatedFileSystem:
    return SimulatedFileSystem(clock=clock, telemetry=telemetry)


@pytest.fixture
def catalog() -> Catalog:
    return Catalog()


@pytest.fixture
def simple_schema() -> Schema:
    return Schema.of(Field("id", "long"), Field("event_date", "date"), Field("v", "string"))


@pytest.fixture
def monthly_spec() -> PartitionSpec:
    return PartitionSpec.of(PartitionField("event_date", MonthTransform()))


@pytest.fixture
def table(fs, simple_schema, monthly_spec) -> IcebergTable:
    """A partitioned Iceberg-like table on a fresh filesystem."""
    return IcebergTable(
        identifier=TableIdentifier("db", "events"),
        schema=simple_schema,
        spec=monthly_spec,
        fs=fs,
    )


@pytest.fixture
def unpartitioned_table(fs, simple_schema) -> IcebergTable:
    return IcebergTable(
        identifier=TableIdentifier("db", "flat"),
        schema=simple_schema,
        fs=fs,
    )


@pytest.fixture
def query_cluster() -> Cluster:
    return Cluster("query", executors=4, cores_per_executor=8)


@pytest.fixture
def compaction_cluster() -> Cluster:
    return Cluster("compaction", executors=3, cores_per_executor=8)


@pytest.fixture
def session(catalog, query_cluster) -> EngineSession:
    return EngineSession(
        query_cluster, telemetry=catalog.telemetry, clock=catalog.clock, seed=7
    )


def fragment_table(table, partitions=((0,), (1,)), files_per_partition=10, file_size=8 * MiB):
    """Append many small files to a table (test helper, not a fixture)."""
    txn = table.new_append()
    for partition in partitions:
        for _ in range(files_per_partition):
            txn.add_file(file_size, partition=partition)
    return txn.commit()


@pytest.fixture
def fragmented_table(table):
    """A table with 20 small files across two partitions."""
    fragment_table(table)
    return table
