"""Tests for the LST-Bench-like runner and §6.3 tuning workloads.

The three Figure 9 claims are asserted directly here (at reduced scale):
WP1 has a useful interior optimum, WP3 benefits consistently, and TPC-H's
best configuration is no auto-compaction at all.
"""

from __future__ import annotations

import pytest

from repro.core.traits import FileCountReductionTrait, FileEntropyTrait
from repro.errors import ValidationError
from repro.workloads import LstBenchPhase, LstBenchRun, PhaseResult
from repro.workloads.lstbench import run_phases, run_tpch, run_wp1, run_wp3

FAST = dict(scale_factor=1.0, cycles=3, writes_per_cycle=5, queries_per_cycle=6)


class TestPhaseRunner:
    def test_custom_phases(self):
        run = run_phases(
            "demo",
            [
                LstBenchPhase("one", lambda: (10.0, 3)),
                LstBenchPhase("two", lambda: (5.0, 2)),
            ],
        )
        assert run.total_duration_s == 15.0
        assert [p.name for p in run.phases] == ["one", "two"]

    def test_run_accumulators(self):
        run = LstBenchRun(workload="w")
        run.phases.append(PhaseResult("a", 1.0, 1, compactions=2))
        run.phases.append(PhaseResult("b", 2.0, 1, compactions=1))
        assert run.total_duration_s == 3.0
        assert run.total_compactions == 3


class TestWp1:
    def test_no_trigger_means_no_compactions(self):
        run = run_wp1(None, **FAST)
        assert run.total_compactions == 0
        assert run.total_duration_s > 0

    def test_low_threshold_compacts_often(self):
        eager = run_wp1(FileCountReductionTrait(), 10, **FAST)
        lazy = run_wp1(FileCountReductionTrait(), 10_000, **FAST)
        assert eager.total_compactions > lazy.total_compactions

    def test_interior_optimum_exists(self):
        """Figure 9a's shape: a tuned threshold beats both extremes.

        Needs the full default scale — at the reduced FAST scale
        fragmentation never accumulates enough for compaction to pay off
        (which is itself the TPC-H lesson of Figure 9b).
        """
        none = run_wp1(None)
        eager = run_wp1(FileCountReductionTrait(), 10)
        tuned = run_wp1(FileCountReductionTrait(), 500)
        assert tuned.total_duration_s < none.total_duration_s
        assert tuned.total_duration_s < eager.total_duration_s

    def test_entropy_trigger_comparable(self):
        """Figure 9c: entropy and file-count triggers behave similarly."""
        count_run = run_wp1(FileCountReductionTrait(), 400, **FAST)
        entropy_run = run_wp1(FileEntropyTrait(), 400, **FAST)
        ratio = entropy_run.total_duration_s / count_run.total_duration_s
        assert 0.7 < ratio < 1.4

    def test_deterministic(self):
        a = run_wp1(FileCountReductionTrait(), 300, **FAST)
        b = run_wp1(FileCountReductionTrait(), 300, **FAST)
        assert a.total_duration_s == b.total_duration_s

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_wp1(cycles=0)


class TestWp3:
    def test_compaction_beneficial(self):
        """Figure 9d: decoupled clusters make compaction a consistent win.

        Run at the full default scale, where fragmentation actually bites.
        """
        none = run_wp3(None)
        tuned = run_wp3(FileCountReductionTrait(), 500)
        assert tuned.total_duration_s < none.total_duration_s

    def test_phases_cycle_structured(self):
        run = run_wp3(None, **FAST)
        assert len(run.phases) == FAST["cycles"]

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_wp3(cycles=0)


class TestTpch:
    def test_default_no_compaction_is_best(self):
        """Figure 9b: TPC-H's unpartitioned tables make compaction a loss."""
        none = run_tpch(None, scale_factor=1.0, modification_rounds=8, queries=8)
        compacting = run_tpch(
            FileCountReductionTrait(), 30, scale_factor=1.0, modification_rounds=8, queries=8
        )
        assert none.total_duration_s < compacting.total_duration_s

    def test_tables_unpartitioned(self):
        run = run_tpch(None, scale_factor=0.5, modification_rounds=2, queries=2)
        assert run.workload == "tpch"

    def test_validation(self):
        with pytest.raises(ValidationError):
            run_tpch(modification_rounds=0)
