"""Tests for arrival patterns."""

from __future__ import annotations

import pytest

from repro.errors import ValidationError
from repro.simulation import derive_rng
from repro.units import HOUR
from repro.workloads import (
    BurstPattern,
    CombinedPattern,
    PeriodicPattern,
    SinusoidalPattern,
)


@pytest.fixture
def rng():
    return derive_rng(11, "patterns")


class TestSinusoidal:
    def test_mean_rate_approximates_target(self, rng):
        pattern = SinusoidalPattern(rate_per_hour=60.0, amplitude=0.5, period_s=HOUR)
        arrivals = pattern.arrivals(0.0, 10 * HOUR, rng)
        assert 450 < len(arrivals) < 750  # 600 expected

    def test_arrivals_sorted_and_in_window(self, rng):
        pattern = SinusoidalPattern(rate_per_hour=30.0)
        arrivals = pattern.arrivals(100.0, 100.0 + HOUR, rng)
        assert arrivals == sorted(arrivals)
        assert all(100.0 <= t < 100.0 + HOUR for t in arrivals)

    def test_intensity_oscillates(self):
        pattern = SinusoidalPattern(rate_per_hour=60.0, amplitude=1.0, period_s=HOUR)
        peak = pattern.intensity(HOUR / 4)
        trough = pattern.intensity(3 * HOUR / 4)
        assert peak > 1.9 * (60.0 / HOUR)
        assert trough < 0.1 * (60.0 / HOUR)

    def test_zero_rate(self, rng):
        assert SinusoidalPattern(0.0).arrivals(0, HOUR, rng) == []

    def test_empty_window(self, rng):
        assert SinusoidalPattern(10.0).arrivals(5.0, 5.0, rng) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            SinusoidalPattern(-1.0)
        with pytest.raises(ValidationError):
            SinusoidalPattern(1.0, amplitude=1.5)
        with pytest.raises(ValidationError):
            SinusoidalPattern(1.0, period_s=0)


class TestBurst:
    def test_events_cluster_at_bursts(self, rng):
        pattern = BurstPattern([HOUR], events_per_burst=50, spread_s=60.0)
        arrivals = pattern.arrivals(0.0, 2 * HOUR, rng)
        assert len(arrivals) > 20
        assert all(abs(t - HOUR) <= 60.0 for t in arrivals)

    def test_bursts_outside_window_skipped(self, rng):
        pattern = BurstPattern([10 * HOUR], events_per_burst=50)
        assert pattern.arrivals(0.0, HOUR, rng) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            BurstPattern([0.0], events_per_burst=-1)
        with pytest.raises(ValidationError):
            BurstPattern([0.0], 1.0, spread_s=-1)


class TestPeriodic:
    def test_deterministic_ticks(self, rng):
        pattern = PeriodicPattern(HOUR, offset_s=120.0)
        arrivals = pattern.arrivals(0.0, 4 * HOUR, rng)
        assert arrivals == [120.0, HOUR + 120.0, 2 * HOUR + 120.0, 3 * HOUR + 120.0]

    def test_jitter_bounded(self, rng):
        pattern = PeriodicPattern(HOUR, jitter_s=30.0)
        arrivals = pattern.arrivals(0.0, 5 * HOUR, rng)
        for i, t in enumerate(arrivals):
            assert abs(t - i * HOUR) <= 30.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            PeriodicPattern(0)
        with pytest.raises(ValidationError):
            PeriodicPattern(1, jitter_s=-1)


class TestCombined:
    def test_superposition(self, rng):
        combined = PeriodicPattern(HOUR) + PeriodicPattern(HOUR, offset_s=1800.0)
        arrivals = combined.arrivals(0.0, 3 * HOUR, rng)
        assert len(arrivals) == 6
        assert arrivals == sorted(arrivals)

    def test_empty_combination_rejected(self):
        with pytest.raises(ValidationError):
            CombinedPattern([])


class TestDeterminism:
    def test_same_seed_same_arrivals(self):
        pattern = SinusoidalPattern(20.0, amplitude=0.8)
        a = pattern.arrivals(0.0, 5 * HOUR, derive_rng(3, "s"))
        b = pattern.arrivals(0.0, 5 * HOUR, derive_rng(3, "s"))
        assert a == b
