"""Tests for the CAB multi-database workload."""

from __future__ import annotations

import pytest

from repro.engine import Cluster, EngineSession
from repro.errors import ValidationError
from repro.simulation import Simulator
from repro.units import HOUR, MiB
from repro.workloads import CabConfig, CabWorkload


@pytest.fixture
def small_config():
    return CabConfig(
        databases=3,
        data_bytes_per_db=256 * MiB,
        duration_s=2 * HOUR,
        lineitem_months=6,
        ro_rate_per_hour=4.0,
        rw_rate_per_hour=2.0,
        write_spike_hour=1.0,
        sample_interval_s=600.0,
        seed=21,
    )


@pytest.fixture
def cab(catalog, small_config):
    session = EngineSession(
        Cluster("query", executors=8),
        telemetry=catalog.telemetry,
        clock=catalog.clock,
        seed=small_config.seed,
    )
    return CabWorkload(catalog, session, small_config)


class TestSetup:
    def test_load_creates_databases(self, cab, catalog):
        cab.load()
        assert catalog.list_databases() == ["cab00", "cab01", "cab02"]
        assert cab.total_data_files() > 0

    def test_double_load_rejected(self, cab):
        cab.load()
        with pytest.raises(ValidationError):
            cab.load()

    def test_attach_requires_load(self, cab, catalog):
        with pytest.raises(ValidationError):
            cab.attach(Simulator(catalog.clock))

    def test_config_validation(self):
        with pytest.raises(ValidationError):
            CabConfig(databases=0)
        with pytest.raises(ValidationError):
            CabConfig(duration_s=0)


class TestRun:
    def test_full_run_produces_activity(self, cab, catalog):
        cab.load()
        simulator = Simulator(catalog.clock)
        cab.attach(simulator)
        simulator.run_until(cab.config.duration_s + HOUR)
        assert cab.counters.ro_queries > 0
        assert cab.counters.rw_queries > 0

    def test_file_count_grows_without_compaction(self, cab, catalog):
        """The Figure 6 baseline: files accumulate steadily."""
        cab.load()
        start_files = cab.total_data_files()
        simulator = Simulator(catalog.clock)
        cab.attach(simulator)
        simulator.run_until(cab.config.duration_s + HOUR)
        assert cab.total_data_files() > start_files

    def test_file_count_series_sampled(self, cab, catalog):
        cab.load()
        simulator = Simulator(catalog.clock)
        cab.attach(simulator)
        simulator.run_until(cab.config.duration_s + 1)
        series = catalog.telemetry.series("cab.data_file_count")
        # Samples every 10 minutes over 2 hours.
        assert len(series) >= 10

    def test_write_queries_counted_by_hour(self, cab, catalog):
        cab.load()
        simulator = Simulator(catalog.clock)
        cab.attach(simulator)
        simulator.run_until(cab.config.duration_s + HOUR)
        assert sum(cab.counters.write_queries_by_hour.values()) == cab.counters.rw_queries

    def test_spike_hour_has_extra_writes(self, catalog):
        config = CabConfig(
            databases=4,
            data_bytes_per_db=128 * MiB,
            duration_s=3 * HOUR,
            lineitem_months=4,
            ro_rate_per_hour=0.0,
            rw_rate_per_hour=1.0,
            # Mid-hour so the ±15 min burst lands wholly inside hour 2.
            write_spike_hour=2.5,
            spike_events_per_db=8.0,
            seed=5,
        )
        session = EngineSession(
            Cluster("query", executors=8),
            telemetry=catalog.telemetry,
            clock=catalog.clock,
            seed=5,
        )
        workload = CabWorkload(catalog, session, config)
        workload.load()
        simulator = Simulator(catalog.clock)
        workload.attach(simulator)
        simulator.run_until(config.duration_s + HOUR)
        by_hour = workload.counters.write_queries_by_hour
        spike = by_hour.get(2, 0)
        others = [by_hour.get(h, 0) for h in (0, 1)]
        assert spike > max(others)

    def test_latencies_recorded(self, cab, catalog):
        cab.load()
        simulator = Simulator(catalog.clock)
        cab.attach(simulator)
        simulator.run_until(cab.config.duration_s + HOUR)
        assert len(catalog.telemetry.series("engine.query.ro.latency")) == (
            cab.counters.ro_queries
        )


class TestDeterminism:
    def test_same_seed_same_workload(self, small_config, simple_schema):
        from repro.catalog import Catalog

        def run():
            catalog = Catalog()
            session = EngineSession(
                Cluster("query", executors=8),
                telemetry=catalog.telemetry,
                clock=catalog.clock,
                seed=small_config.seed,
            )
            workload = CabWorkload(catalog, session, small_config)
            workload.load()
            simulator = Simulator(catalog.clock)
            workload.attach(simulator)
            simulator.run_until(small_config.duration_s + HOUR)
            return (
                workload.counters.ro_queries,
                workload.counters.rw_queries,
                workload.total_data_files(),
            )

        assert run() == run()
