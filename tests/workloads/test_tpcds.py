"""Tests for the TPC-DS subset and the Figure 3 experiment protocol."""

from __future__ import annotations

import pytest

from repro.engine import WellTunedWriter
from repro.errors import ValidationError
from repro.workloads import TPCDS_TABLES, TpcdsExperiment, create_tpcds_database


class TestSchema:
    def test_fact_and_dimension_split(self):
        facts = [spec for spec in TPCDS_TABLES if spec.is_fact]
        dims = [spec for spec in TPCDS_TABLES if not spec.is_fact]
        assert {f.name for f in facts} == {"store_sales", "catalog_sales", "web_sales"}
        assert len(dims) == 4

    def test_facts_partitioned_by_sold_date(self):
        for spec in TPCDS_TABLES:
            if spec.is_fact:
                assert spec.partition_column is not None
            else:
                assert spec.partition_column is None


class TestCreateDatabase:
    def test_creates_all(self, catalog, session):
        tables = create_tpcds_database(
            catalog, "tpcds", 1.0, session, WellTunedWriter(), months=6
        )
        assert set(tables) == {spec.name for spec in TPCDS_TABLES}
        assert len(tables["store_sales"].partitions()) == 6

    def test_invalid_months(self, catalog, session):
        with pytest.raises(ValidationError):
            create_tpcds_database(catalog, "t", 1.0, session, WellTunedWriter(), months=0)


class TestFigure3Protocol:
    @pytest.fixture(scope="class")
    def timings(self):
        return TpcdsExperiment(scale_factor=4.0, query_count=24).run()

    def test_maintenance_degrades_performance(self, timings):
        """Paper: 1.53× after ~3% delete+insert churn."""
        assert 1.3 < timings.degradation_factor < 2.2

    def test_compaction_restores_performance(self, timings):
        """Paper: post-compaction runtime comparable to initial."""
        assert 0.7 < timings.restoration_factor < 1.1
        assert timings.single_user_restored_s < timings.single_user_degraded_s

    def test_phases_positive(self, timings):
        assert timings.single_user_initial_s > 0
        assert timings.maintenance_s > 0
        assert timings.compaction_s > 0

    def test_determinism(self):
        a = TpcdsExperiment(scale_factor=2.0, query_count=10).run()
        b = TpcdsExperiment(scale_factor=2.0, query_count=10).run()
        assert a.single_user_initial_s == b.single_user_initial_s
        assert a.degradation_factor == b.degradation_factor

    def test_validation(self):
        with pytest.raises(ValidationError):
            TpcdsExperiment(scale_factor=0)
        with pytest.raises(ValidationError):
            TpcdsExperiment(query_count=0)
        experiment = TpcdsExperiment(scale_factor=1.0, query_count=5)
        experiment.setup()
        with pytest.raises(ValidationError):
            experiment.run_maintenance(fraction=0.0)
