"""Tests for the TPC-H-like schema and loader."""

from __future__ import annotations

import pytest

from repro.engine import MisconfiguredShuffleWriter, WellTunedWriter
from repro.errors import ValidationError
from repro.units import GiB, MiB
from repro.workloads import TPCH_TABLES, create_tpch_database
from repro.workloads.tpch import tpch_table_spec


class TestTableSpecs:
    def test_eight_tables(self):
        assert len(TPCH_TABLES) == 8
        names = {spec.name for spec in TPCH_TABLES}
        assert names == {
            "lineitem",
            "orders",
            "partsupp",
            "part",
            "customer",
            "supplier",
            "nation",
            "region",
        }

    def test_dbgen_cardinalities(self):
        assert tpch_table_spec("lineitem").rows_per_sf == 6_000_000
        assert tpch_table_spec("orders").rows_per_sf == 1_500_000
        assert tpch_table_spec("nation").rows_per_sf == 25

    def test_lineitem_partitioned_by_shipdate(self):
        assert tpch_table_spec("lineitem").partition_column == "l_shipdate"
        assert tpch_table_spec("orders").partition_column is None

    def test_bytes_scale_linearly(self):
        spec = tpch_table_spec("lineitem")
        assert spec.bytes_at(2.0) == 2 * spec.bytes_at(1.0)

    def test_unknown_table(self):
        with pytest.raises(ValidationError):
            tpch_table_spec("widgets")


class TestCreateDatabase:
    def test_creates_all_tables(self, catalog, session):
        tables = create_tpch_database(
            catalog, "tpch", 0.5, session, WellTunedWriter(), months=6
        )
        assert set(tables) == {spec.name for spec in TPCH_TABLES}
        assert catalog.table_exists("tpch.lineitem")

    def test_lineitem_monthly_partitions(self, catalog, session):
        tables = create_tpch_database(
            catalog, "tpch", 1.0, session, WellTunedWriter(), months=12
        )
        assert len(tables["lineitem"].partitions()) == 12
        assert tables["orders"].partitions() == [()]

    def test_unpartitioned_variant(self, catalog, session):
        tables = create_tpch_database(
            catalog,
            "tpch",
            1.0,
            session,
            WellTunedWriter(),
            partition_lineitem=False,
        )
        assert not tables["lineitem"].spec.is_partitioned

    def test_fragmented_loader_seeds_small_files(self, catalog, session):
        tables = create_tpch_database(
            catalog, "tpch", 1.0, session, MisconfiguredShuffleWriter(32), months=12
        )
        lineitem = tables["lineitem"]
        assert lineitem.small_file_count() == lineitem.data_file_count
        assert lineitem.data_file_count >= 12 * 32

    def test_volume_close_to_scale(self, catalog, session):
        tables = create_tpch_database(
            catalog, "tpch", 2.0, session, WellTunedWriter(), months=10
        )
        lineitem_bytes = tables["lineitem"].total_data_bytes
        expected = tpch_table_spec("lineitem").bytes_at(2.0)
        assert abs(lineitem_bytes - expected) / expected < 0.05

    def test_quota_applied(self, catalog, session):
        create_tpch_database(
            catalog, "tpch", 0.5, session, WellTunedWriter(), quota_objects=100_000
        )
        assert catalog.quota_utilization("tpch") > 0

    def test_invalid_months(self, catalog, session):
        with pytest.raises(ValidationError):
            create_tpch_database(catalog, "t", 1.0, session, WellTunedWriter(), months=0)
