"""Tests for the managed raw-ingestion pipeline (Figure 1's raw side)."""

from __future__ import annotations

import pytest

from repro.engine import EngineSession, Cluster
from repro.errors import ValidationError
from repro.lst import (
    Field,
    IcebergTable,
    IdentityTransform,
    PartitionField,
    PartitionSpec,
    Schema,
    TableIdentifier,
)
from repro.simulation import derive_rng
from repro.units import GiB, MiB
from repro.workloads import RawIngestionPipeline


@pytest.fixture
def raw_table(fs):
    schema = Schema.of(Field("event", "string"), Field("hour", "int"))
    spec = PartitionSpec.of(PartitionField("hour", IdentityTransform()))
    return IcebergTable(TableIdentifier("raw", "events"), schema, spec=spec, fs=fs)


@pytest.fixture
def ingest_session(fs):
    return EngineSession(Cluster("ingest", executors=4), telemetry=fs.telemetry, clock=fs.clock)


class TestIngestion:
    def test_hourly_partitions_created(self, raw_table, ingest_session):
        pipeline = RawIngestionPipeline(raw_table, ingest_session, int(1.5 * GiB))
        stats = pipeline.ingest_hours(4, derive_rng(0, "ingest"))
        assert stats.hours == 4
        assert len(raw_table.partitions()) == 4

    def test_files_near_target_size(self, raw_table, ingest_session):
        """The paper's central pipeline yields ~512 MB files."""
        pipeline = RawIngestionPipeline(raw_table, ingest_session, 2 * GiB)
        pipeline.ingest_hours(6, derive_rng(1, "ingest"))
        sizes = [f.size_bytes for f in raw_table.live_files()]
        near_target = sum(1 for s in sizes if s > 256 * MiB)
        assert near_target / len(sizes) > 0.9

    def test_micro_batch_count(self, raw_table, ingest_session):
        pipeline = RawIngestionPipeline(raw_table, ingest_session, 1 * GiB)
        assert pipeline.batches_per_hour == 12  # five-minute cadence
        stats = pipeline.ingest_hours(2, derive_rng(2, "ingest"))
        assert stats.micro_batches == 24

    def test_bytes_accounted(self, raw_table, ingest_session):
        pipeline = RawIngestionPipeline(raw_table, ingest_session, 1 * GiB)
        stats = pipeline.ingest_hours(3, derive_rng(3, "ingest"))
        assert stats.bytes_ingested == raw_table.total_data_bytes
        assert stats.hourly_files == raw_table.data_file_count

    def test_validation(self, raw_table, ingest_session):
        with pytest.raises(ValidationError):
            RawIngestionPipeline(raw_table, ingest_session, 0)
        pipeline = RawIngestionPipeline(raw_table, ingest_session, 1 * GiB)
        with pytest.raises(ValidationError):
            pipeline.ingest_hours(0, derive_rng(0, "x"))
