"""Tests for compaction jobs and GBHr accounting."""

from __future__ import annotations

import pytest

from repro.engine import Cluster, CompactionJob, CostModel
from repro.errors import ValidationError
from repro.lst.maintenance import plan_table_rewrite
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def compaction_setup(fragmented_table):
    table = fragmented_table
    plan = plan_table_rewrite(table)
    cluster = Cluster("maint", executors=3, executor_memory_gb=64)
    return table, plan, cluster


class TestRunSync:
    def test_successful_compaction(self, compaction_setup):
        table, plan, cluster = compaction_setup
        outcome = CompactionJob(table, plan, cluster).run_sync()
        assert outcome.success
        assert outcome.files_before == 20
        assert outcome.files_after == 2
        assert outcome.actual_reduction == 18
        assert outcome.planned_reduction == 18
        assert not outcome.wasted

    def test_gbhr_matches_cluster_and_duration(self, compaction_setup):
        table, plan, cluster = compaction_setup
        model = CostModel()
        job = CompactionJob(table, plan, cluster, cost_model=model)
        expected_duration = model.rewrite_duration(plan.rewritten_bytes, cluster.executors)
        assert job.duration_s == pytest.approx(expected_duration)
        assert job.gbhr == pytest.approx(cluster.total_memory_gb * expected_duration / 3600)

    def test_physical_cleanup_after_success(self, compaction_setup, fs):
        table, plan, cluster = compaction_setup
        file_count_before = fs.file_count(table.location)
        CompactionJob(table, plan, cluster).run_sync()
        # 20 small files deleted, 2 outputs added (+3 metadata files).
        assert fs.file_count(table.location) < file_count_before

    def test_cleanup_disabled_keeps_old_files(self, compaction_setup, fs):
        table, plan, cluster = compaction_setup
        sources = list(plan.groups[0].sources)
        CompactionJob(table, plan, cluster, cleanup_snapshots=False).run_sync()
        assert all(fs.namenode.exists(s.path) for s in sources)

    def test_telemetry_on_success(self, compaction_setup, telemetry):
        table, plan, cluster = compaction_setup
        CompactionJob(table, plan, cluster, telemetry=telemetry).run_sync()
        assert telemetry.counter("engine.compaction.success") == 1
        assert len(telemetry.series("engine.compaction.gbhr")) == 1
        assert telemetry.series("engine.compaction.files_reduced").last() == 18


class TestConflictedJob:
    def test_cluster_conflict_reports_wasted_work(self, compaction_setup, telemetry):
        table, plan, cluster = compaction_setup
        job = CompactionJob(table, plan, cluster, telemetry=telemetry)
        job.start()
        # A concurrent write to a rewritten partition aborts the commit.
        txn = table.new_append()
        txn.add_file(MiB, partition=(0,))
        txn.commit()
        outcome = job.finish()
        assert not outcome.success
        assert outcome.wasted
        assert outcome.conflict_reason is not None
        assert outcome.actual_reduction == 0
        assert outcome.gbhr > 0  # resources were spent anyway
        assert telemetry.counter("engine.compaction.failed") == 1
        assert telemetry.series("engine.compaction.wasted_gbhr").last() == outcome.gbhr

    def test_table_unchanged_after_conflict(self, compaction_setup):
        table, plan, cluster = compaction_setup
        job = CompactionJob(table, plan, cluster)
        job.start()
        txn = table.new_append()
        txn.add_file(MiB, partition=(0,))
        txn.commit()
        job.finish()
        assert table.data_file_count == 21  # 20 original + 1 appended


class TestLifecycleErrors:
    def test_empty_plan_rejected(self, table):
        plan = plan_table_rewrite(table)
        with pytest.raises(ValidationError):
            CompactionJob(table, plan, Cluster("maint"))

    def test_double_start_rejected(self, compaction_setup):
        table, plan, cluster = compaction_setup
        job = CompactionJob(table, plan, cluster)
        job.start()
        with pytest.raises(ValidationError):
            job.start()

    def test_finish_before_start_rejected(self, compaction_setup):
        table, plan, cluster = compaction_setup
        job = CompactionJob(table, plan, cluster)
        with pytest.raises(ValidationError):
            job.finish()
