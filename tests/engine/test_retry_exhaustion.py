"""Tests for write-retry exhaustion and multi-table reads."""

from __future__ import annotations

import pytest

from repro.engine import Cluster, EngineSession, WellTunedWriter
from repro.lst import IcebergTable, TableIdentifier
from repro.lst.maintenance import plan_table_rewrite
from repro.engine.jobs import CompactionJob
from repro.units import MiB

from tests.conftest import fragment_table


class TestRetryExhaustion:
    def test_write_gives_up_after_retry_budget(self, fs, simple_schema, monthly_spec, clock, telemetry):
        """With a zero retry budget, one conflict terminates the write —
        and the table keeps none of its files."""
        session = EngineSession(
            Cluster("q", executors=2),
            telemetry=telemetry,
            clock=clock,
            max_commit_retries=0,
        )
        table = IcebergTable(
            TableIdentifier("db", "t"), simple_schema, spec=monthly_spec, fs=fs
        )
        fragment_table(table, partitions=[(0,)], files_per_partition=6)
        files_before = table.data_file_count

        job = session.start_write(table, MiB, WellTunedWriter(), partitions=(0,))
        plan = plan_table_rewrite(table)
        CompactionJob(table, plan, Cluster("m", executors=2)).run_sync()
        result = job.complete()

        assert not result.committed
        assert result.conflicts == 1
        assert result.retries == 0
        assert result.files_created == 0
        assert result.bytes_written == 0
        # Only the rewrite's output is live; the failed append added nothing.
        assert table.data_file_count == 1
        del files_before

    def test_default_budget_survives_single_conflict(self, fs, simple_schema, monthly_spec, clock, telemetry):
        session = EngineSession(
            Cluster("q", executors=2), telemetry=telemetry, clock=clock
        )
        table = IcebergTable(
            TableIdentifier("db", "t2"), simple_schema, spec=monthly_spec, fs=fs
        )
        fragment_table(table, partitions=[(0,)], files_per_partition=6)
        job = session.start_write(table, MiB, WellTunedWriter(), partitions=(0,))
        plan = plan_table_rewrite(table)
        CompactionJob(table, plan, Cluster("m", executors=2)).run_sync()
        result = job.complete()
        assert result.committed
        assert result.retries == 1


class TestMultiTableReads:
    def test_join_query_aggregates_scans(self, catalog, simple_schema):
        from repro.engine import MisconfiguredShuffleWriter

        catalog.create_database("db")
        fact = catalog.create_table("db.fact", simple_schema)
        dim = catalog.create_table("db.dim", simple_schema)
        session = EngineSession(
            Cluster("q", executors=4), telemetry=catalog.telemetry, clock=catalog.clock
        )
        session.write(fact, 64 * MiB, MisconfiguredShuffleWriter(16))
        session.write(dim, 8 * MiB, WellTunedWriter())

        single = session.execute_read([(fact, None)])
        join = session.execute_read([(fact, None), (dim, None)])
        assert join.files_scanned == single.files_scanned + 1
        assert join.latency_s > single.latency_s
        assert join.bytes_scanned == fact.total_data_bytes + dim.total_data_bytes
