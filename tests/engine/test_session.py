"""Tests for engine sessions: reads, two-phase writes, conflicts."""

from __future__ import annotations

import pytest

from repro.engine import (
    Cluster,
    EngineSession,
    MisconfiguredShuffleWriter,
    WellTunedWriter,
)
from repro.errors import ValidationError
from repro.lst import IcebergTable, TableIdentifier
from repro.lst.maintenance import plan_table_rewrite
from repro.engine.jobs import CompactionJob
from repro.units import MiB

from tests.conftest import fragment_table


@pytest.fixture
def engine_world(fs, simple_schema, monthly_spec, clock, telemetry):
    cluster = Cluster("q", executors=4)
    session = EngineSession(cluster, telemetry=telemetry, clock=clock, seed=3)
    table = IcebergTable(
        identifier=TableIdentifier("db", "t"),
        schema=simple_schema,
        spec=monthly_spec,
        fs=fs,
    )
    return session, table


class TestReads:
    def test_read_result_fields(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,), (1,)], files_per_partition=5)
        result = session.execute_read([(table, None)])
        assert result.files_scanned == 10
        assert result.bytes_scanned == 10 * 8 * MiB
        assert result.latency_s > 0
        assert result.cost_gbhr > 0

    def test_partition_pruning(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,), (1,)], files_per_partition=5)
        result = session.execute_read([(table, [(0,)])])
        assert result.files_scanned == 5

    def test_latency_recorded_by_label(self, engine_world, telemetry):
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=2)
        session.execute_read([(table, None)], label="ro")
        series = telemetry.series("engine.query.ro.latency")
        assert len(series) == 1

    def test_fragmentation_slows_reads(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=2, file_size=512 * MiB)
        fast = session.execute_read([(table, None)]).latency_s
        fragment_table(table, partitions=[(0,)], files_per_partition=500, file_size=MiB)
        slow = session.execute_read([(table, None)]).latency_s
        assert slow > fast

    def test_opens_forwarded_to_attached_fs(self, engine_world, fs):
        session, table = engine_world
        session.attach_filesystem(fs)
        fragment_table(table, partitions=[(0,)], files_per_partition=7)
        before = fs.telemetry.counter("storage.rpc.open")
        session.execute_read([(table, None)])
        assert fs.telemetry.counter("storage.rpc.open") - before == 7


class TestWrites:
    def test_write_creates_files(self, engine_world):
        session, table = engine_world
        result = session.write(table, 64 * MiB, MisconfiguredShuffleWriter(16), partitions=(0,))
        assert result.committed
        assert result.files_created == 16
        assert table.data_file_count == 16

    def test_write_spread_over_partitions(self, engine_world):
        session, table = engine_world
        session.write(
            table, 64 * MiB, MisconfiguredShuffleWriter(32), partitions=[(0,), (1,), (2,)]
        )
        assert len(table.partitions()) > 1

    def test_unpartitioned_write(self, fs, simple_schema, clock, telemetry):
        session = EngineSession(Cluster("q"), telemetry=telemetry, clock=clock)
        table = IcebergTable(TableIdentifier("db", "flat"), simple_schema, fs=fs)
        result = session.write(table, 10 * MiB, WellTunedWriter())
        assert result.committed
        assert table.live_files()[0].partition == ()

    def test_empty_partition_list_rejected(self, engine_world):
        session, table = engine_world
        with pytest.raises(ValidationError):
            session.start_write(table, MiB, WellTunedWriter(), partitions=[])

    def test_two_phase_write_conflicts_with_compaction(self, engine_world):
        """A write whose window spans a compaction commit retries once
        (client-side conflict) and then succeeds — the Table 1 mechanism."""
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=8)
        job = session.start_write(
            table, 8 * MiB, MisconfiguredShuffleWriter(4), partitions=(0,)
        )
        plan = plan_table_rewrite(table)
        CompactionJob(table, plan, Cluster("maint", executors=2)).run_sync()
        result = job.complete()
        assert result.conflicts == 1
        assert result.retries == 1
        assert result.committed

    def test_conflict_telemetry_recorded(self, engine_world, telemetry):
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=8)
        job = session.start_write(table, MiB, WellTunedWriter(), partitions=(0,))
        plan = plan_table_rewrite(table)
        CompactionJob(table, plan, Cluster("maint", executors=2)).run_sync()
        job.complete()
        assert len(telemetry.series("engine.conflicts.client")) == 1


class TestRowDelta:
    def test_row_delta_job(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,), (1,)], files_per_partition=10)
        job = session.start_row_delta(table, delete_fraction=0.25)
        result = job.complete()
        assert result.committed
        assert table.delete_file_count >= 1

    def test_empty_table_rejected(self, engine_world):
        session, table = engine_world
        with pytest.raises(ValidationError):
            session.start_row_delta(table, 0.1)

    def test_invalid_fraction(self, engine_world):
        session, table = engine_world
        fragment_table(table)
        with pytest.raises(ValidationError):
            session.start_row_delta(table, 0.0)
        with pytest.raises(ValidationError):
            session.start_row_delta(table, 1.5)


class TestOverwrite:
    def test_overwrite_job(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=10)
        before = table.data_file_count
        job = session.start_overwrite(
            table, replace_fraction=0.5, writer=WellTunedWriter(), partition=(0,)
        )
        result = job.complete()
        assert result.committed
        assert table.data_file_count < before

    def test_overwrite_conflict_not_retried(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=10)
        job = session.start_overwrite(
            table, replace_fraction=0.3, writer=WellTunedWriter(), partition=(0,)
        )
        # A concurrent append to the same partition invalidates it.
        other = table.new_append()
        other.add_file(MiB, partition=(0,))
        other.commit()
        result = job.complete()
        assert not result.committed
        assert result.conflicts == 1

    def test_overwrite_empty_partition_rejected(self, engine_world):
        session, table = engine_world
        fragment_table(table, partitions=[(0,)], files_per_partition=2)
        with pytest.raises(ValidationError):
            session.start_overwrite(
                table, replace_fraction=0.5, writer=WellTunedWriter(), partition=(9,)
            )
