"""Tests for clusters and the contention model."""

from __future__ import annotations

import pytest

from repro.engine import Cluster
from repro.errors import ValidationError


class TestClusterBasics:
    def test_parallelism_and_memory(self):
        cluster = Cluster("c", executors=4, executor_memory_gb=64, cores_per_executor=8)
        assert cluster.parallelism == 32
        assert cluster.total_memory_gb == 256

    def test_default_query_slots(self):
        assert Cluster("c", executors=5).query_slots == 5

    def test_validation(self):
        with pytest.raises(ValidationError):
            Cluster("c", executors=0)
        with pytest.raises(ValidationError):
            Cluster("c", executor_memory_gb=0)
        with pytest.raises(ValidationError):
            Cluster("c", cores_per_executor=0)

    def test_gbhr(self):
        cluster = Cluster("c", executors=2, executor_memory_gb=100)
        assert cluster.gbhr(3600.0) == pytest.approx(200.0)
        assert cluster.gbhr(1800.0) == pytest.approx(100.0)


class TestContention:
    def test_no_contention_when_idle(self):
        cluster = Cluster("c", executors=2)
        assert cluster.contention_multiplier(0.0) == 1.0

    def test_contention_grows_with_overlap(self):
        cluster = Cluster("c", executors=2, contention_coeff=0.5)
        cluster.register_query(0.0, 100.0)
        cluster.register_query(0.0, 100.0)
        # Two active + the new one = 1 over the 2 slots.
        assert cluster.contention_multiplier(50.0) == pytest.approx(1.25)

    def test_finished_queries_pruned(self):
        cluster = Cluster("c", executors=1)
        cluster.register_query(0.0, 10.0)
        assert cluster.active_queries(5.0) == 1
        assert cluster.active_queries(11.0) == 0

    def test_within_slots_no_penalty(self):
        cluster = Cluster("c", executors=4)
        cluster.register_query(0.0, 100.0)
        cluster.register_query(0.0, 100.0)
        assert cluster.contention_multiplier(1.0) == 1.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValidationError):
            Cluster("c").register_query(0.0, -1.0)
