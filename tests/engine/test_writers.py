"""Tests for writer profiles (file-fragmentation models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import (
    MisconfiguredShuffleWriter,
    TrickleWriter,
    WellTunedWriter,
)
from repro.engine.writers import files_per_write_estimate
from repro.errors import ValidationError
from repro.simulation import derive_rng
from repro.units import GiB, MiB


@pytest.fixture
def rng():
    return derive_rng(0, "writer-tests")


class TestWellTunedWriter:
    def test_files_near_target(self, rng):
        writer = WellTunedWriter(target_file_size=512 * MiB, jitter=0.05)
        sizes = writer.split(4 * GiB, rng)
        assert len(sizes) == 8
        for size in sizes:
            assert abs(size - 512 * MiB) / (512 * MiB) < 0.3

    def test_preserves_total(self, rng):
        writer = WellTunedWriter()
        total = 3 * GiB + 12345
        assert sum(writer.split(total, rng)) == total

    def test_small_write_single_file(self, rng):
        writer = WellTunedWriter()
        sizes = writer.split(10 * MiB, rng)
        assert sizes == [10 * MiB]

    def test_zero_bytes(self, rng):
        assert WellTunedWriter().split(0, rng) == []

    def test_validation(self):
        with pytest.raises(ValidationError):
            WellTunedWriter(target_file_size=0)
        with pytest.raises(ValidationError):
            WellTunedWriter(jitter=1.5)


class TestMisconfiguredShuffleWriter:
    def test_one_file_per_partition(self, rng):
        writer = MisconfiguredShuffleWriter(num_partitions=200)
        sizes = writer.split(1 * GiB, rng)
        assert len(sizes) == 200
        assert sum(sizes) == 1 * GiB

    def test_produces_small_files(self, rng):
        """The §2 cause: partition count far too high for the volume."""
        writer = MisconfiguredShuffleWriter(num_partitions=100)
        sizes = writer.split(200 * MiB, rng)
        assert all(size < 128 * MiB for size in sizes)

    def test_skew(self, rng):
        writer = MisconfiguredShuffleWriter(num_partitions=100, skew_sigma=1.0)
        sizes = writer.split(1 * GiB, rng)
        assert max(sizes) > 3 * min(sizes)

    def test_validation(self):
        with pytest.raises(ValidationError):
            MisconfiguredShuffleWriter(num_partitions=0)
        with pytest.raises(ValidationError):
            MisconfiguredShuffleWriter(skew_sigma=-1)


class TestTrickleWriter:
    def test_file_count_scales_with_volume(self, rng):
        writer = TrickleWriter(mean_file_size=8 * MiB)
        small = writer.split(80 * MiB, rng)
        large = writer.split(800 * MiB, rng)
        assert len(small) == 10
        assert len(large) == 100

    def test_max_files_cap(self, rng):
        writer = TrickleWriter(mean_file_size=1, max_files=50)
        assert len(writer.split(10**6, rng)) == 50

    def test_preserves_total(self, rng):
        writer = TrickleWriter()
        assert sum(writer.split(123_456_789, rng)) == 123_456_789

    def test_validation(self):
        with pytest.raises(ValidationError):
            TrickleWriter(mean_file_size=0)
        with pytest.raises(ValidationError):
            TrickleWriter(max_files=0)


class TestDeterminism:
    def test_same_rng_same_split(self):
        writer = MisconfiguredShuffleWriter(num_partitions=64)
        a = writer.split(1 * GiB, derive_rng(5, "w"))
        b = writer.split(1 * GiB, derive_rng(5, "w"))
        assert a == b


class TestEstimates:
    def test_estimates_match_actuals(self, rng):
        cases = [
            (WellTunedWriter(), 4 * GiB),
            (MisconfiguredShuffleWriter(77), 1 * GiB),
            (TrickleWriter(mean_file_size=16 * MiB), 320 * MiB),
        ]
        for writer, total in cases:
            estimate = files_per_write_estimate(writer, total)
            actual = len(writer.split(total, rng))
            assert estimate == actual

    def test_zero_volume(self):
        assert files_per_write_estimate(WellTunedWriter(), 0) == 0
