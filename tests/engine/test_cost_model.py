"""Tests for the analytic cost model.

Beyond unit behaviour, these tests pin the *causal* properties the paper
depends on: many small files must cost more than few large ones for the
same bytes, MoR delete files must add latency, and the GBHr formula must
match §4.2 exactly.
"""

from __future__ import annotations

import pytest

from repro.engine import CostModel
from repro.errors import ValidationError
from repro.lst import DataFile, DeleteFile
from repro.lst.base import ScanPlan
from repro.units import GiB, MiB


def _plan(sizes, manifests=1, deletes=()):
    files = tuple(
        DataFile(
            file_id=i + 1,
            path=f"/t/f{i}.parquet",
            size_bytes=size,
            record_count=size // 128 + 1,
        )
        for i, size in enumerate(sizes)
    )
    return ScanPlan(files=files, delete_files=tuple(deletes), manifests_read=manifests)


class TestPlanningLatency:
    def test_grows_with_manifests(self):
        model = CostModel()
        few = model.planning_latency(_plan([MiB], manifests=1))
        many = model.planning_latency(_plan([MiB], manifests=50))
        assert many > few
        assert many - few == pytest.approx(49 * model.manifest_read_s)

    def test_grows_with_file_count(self):
        model = CostModel()
        few = model.planning_latency(_plan([MiB] * 2))
        many = model.planning_latency(_plan([MiB] * 2000))
        assert many > few


class TestReadLatency:
    def test_small_files_cost_more_for_same_bytes(self):
        """The paper's core mechanism: fragmentation slows queries."""
        model = CostModel()
        total = 1 * GiB
        packed = _plan([512 * MiB, 512 * MiB])
        fragmented = _plan([MiB] * 1024)
        assert model.read_latency(fragmented, 32) > 2 * model.read_latency(packed, 32)

    def test_parallelism_helps(self):
        model = CostModel()
        plan = _plan([256 * MiB] * 8)
        assert model.read_latency(plan, 64) < model.read_latency(plan, 4)

    def test_small_read_floor_applies(self):
        model = CostModel(small_read_floor=16 * MiB)
        tiny = _plan([1 * MiB])
        floored = model.effective_scan_bytes(tiny)
        assert floored == 16 * MiB

    def test_floor_does_not_inflate_large_files(self):
        model = CostModel(small_read_floor=16 * MiB)
        assert model.effective_scan_bytes(_plan([512 * MiB])) == 512 * MiB

    def test_empty_plan_costs_only_planning(self):
        model = CostModel()
        plan = _plan([], manifests=0)
        assert model.read_latency(plan, 8) == pytest.approx(model.base_planning_s)


class TestMergeOnRead:
    def _delete(self, refs, size=MiB):
        return DeleteFile(
            file_id=999,
            path="/t/d.parquet",
            size_bytes=size,
            record_count=100,
            references=frozenset(refs),
        )

    def test_delete_files_add_latency(self):
        model = CostModel()
        base = _plan([256 * MiB] * 4)
        with_deletes = _plan([256 * MiB] * 4, deletes=[self._delete({1, 2})])
        assert model.read_latency(with_deletes, 16) > model.read_latency(base, 16)

    def test_no_deletes_no_merge_cost(self):
        model = CostModel()
        assert model.merge_on_read_seconds(_plan([MiB]), 8) == 0.0

    def test_merge_cost_scales_with_affected_files(self):
        model = CostModel()
        few = _plan([MiB] * 10, deletes=[self._delete({1})])
        many = _plan([MiB] * 10, deletes=[self._delete(set(range(1, 11)))])
        assert model.merge_on_read_seconds(many, 8) > model.merge_on_read_seconds(few, 8)


class TestWriteAndRewrite:
    def test_write_latency_scales_with_files(self):
        model = CostModel()
        one = model.write_latency(1 * GiB, 1, 32)
        many = model.write_latency(1 * GiB, 1000, 32)
        assert many > one

    def test_rewrite_duration_scales_with_bytes_and_executors(self):
        model = CostModel()
        small = model.rewrite_duration(1 * GiB, executors=4)
        big = model.rewrite_duration(10 * GiB, executors=4)
        more_exec = model.rewrite_duration(10 * GiB, executors=8)
        assert big > small
        assert more_exec < big

    def test_rewrite_startup_floor(self):
        model = CostModel(compaction_startup_s=30.0)
        assert model.rewrite_duration(0, executors=4) == 30.0


class TestGbhrFormula:
    def test_paper_formula_verbatim(self):
        """GBHr_c = ExecutorMemoryGB × (DataSize_c / RewriteBytesPerHour)."""
        model = CostModel(rewrite_bytes_per_executor_s=64 * MiB)
        executors = 3
        rbph = model.rewrite_bytes_per_hour(executors)
        assert rbph == executors * 64 * MiB * 3600
        data_size = 10 * GiB
        memory = 192.0
        expected = memory * (data_size / rbph)
        assert model.estimate_compaction_gbhr(data_size, memory, executors) == pytest.approx(
            expected
        )

    def test_zero_data_zero_cost(self):
        model = CostModel()
        assert model.estimate_compaction_gbhr(0, 64.0, 4) == 0.0

    def test_negative_data_rejected(self):
        with pytest.raises(ValidationError):
            CostModel().estimate_compaction_gbhr(-1, 64.0, 4)

    def test_invalid_throughputs_rejected(self):
        with pytest.raises(ValidationError):
            CostModel(scan_bytes_per_core_s=0)
        with pytest.raises(ValidationError):
            CostModel(rewrite_bytes_per_executor_s=-1)
