"""Tests for the demo cost-model preset and pipeline generation validation."""

from __future__ import annotations

import pytest

from repro.engine.cost_model import DEMO_COST_MODEL, CostModel
from repro.errors import ValidationError


class TestDemoCostModel:
    def test_is_a_valid_cost_model(self):
        assert isinstance(DEMO_COST_MODEL, CostModel)
        assert DEMO_COST_MODEL.scan_bytes_per_core_s > 0

    def test_slower_scans_than_default(self):
        """The demo preset exaggerates latency effects for small tables."""
        default = CostModel()
        assert DEMO_COST_MODEL.scan_bytes_per_core_s < default.scan_bytes_per_core_s
        assert DEMO_COST_MODEL.write_bytes_per_core_s < default.write_bytes_per_core_s


class TestGenerationValidation:
    def test_pipeline_rejects_unknown_generation(self, catalog):
        from repro.core import (
            LstConnector,
            LstExecutionBackend,
            Objective,
            SequentialScheduler,
            TopKSelector,
            WeightedSumPolicy,
        )
        from repro.core.pipeline import AutoCompPipeline
        from repro.core.traits import FileCountReductionTrait
        from repro.engine import Cluster

        connector = LstConnector(catalog)
        with pytest.raises(ValidationError):
            AutoCompPipeline(
                connector=connector,
                backend=LstExecutionBackend(connector, Cluster("m", executors=1)),
                traits=[FileCountReductionTrait()],
                policy=WeightedSumPolicy([Objective("file_count_reduction", 1.0)]),
                selector=TopKSelector(1),
                scheduler=SequentialScheduler(),
                generation="snapshots",  # not a registered strategy
            )
