"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    CommitConflictError,
    FileNotFoundInStorageError,
    NoSuchTableError,
    QuotaExceededError,
    ReproError,
    SchedulingError,
    StorageError,
    TableError,
    ValidationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ValidationError("x"),
            StorageError("x"),
            FileNotFoundInStorageError("x"),
            QuotaExceededError("/d", 1, 1),
            TableError("x"),
            NoSuchTableError("x"),
            CommitConflictError("client", "x"),
            SchedulingError("x"),
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_validation_error_is_value_error(self):
        assert isinstance(ValidationError("x"), ValueError)

    def test_storage_errors_under_storage(self):
        assert isinstance(FileNotFoundInStorageError("x"), StorageError)
        assert isinstance(QuotaExceededError("/d", 1, 2), StorageError)


class TestCommitConflictError:
    def test_sides(self):
        client = CommitConflictError("client", "stale metadata")
        cluster = CommitConflictError("cluster", "sources removed")
        assert client.side == "client"
        assert cluster.side == "cluster"
        assert "stale metadata" in str(client)

    def test_invalid_side_rejected(self):
        with pytest.raises(ValidationError):
            CommitConflictError("server", "nope")


class TestQuotaExceededError:
    def test_carries_accounting(self):
        error = QuotaExceededError("/data/db", used=99, limit=100)
        assert error.directory == "/data/db"
        assert error.used == 99
        assert error.limit == 100
        assert "99" in str(error)
