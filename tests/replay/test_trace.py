"""Trace format: schema validation, ordering, canonical serialization."""

from __future__ import annotations

import io
import json

import pytest

from repro.fleet.model import FleetConfig
from repro.replay import (
    TRACE_SCHEMA_VERSION,
    TraceReader,
    TraceValidationError,
    TraceWriter,
)
from repro.replay.trace import canonical_json


def _header(config: FleetConfig | None = None) -> dict:
    import dataclasses

    config = config if config is not None else FleetConfig(initial_tables=4, seed=1)
    return {
        "kind": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "seed": config.seed,
        "config": dataclasses.asdict(config),
    }


def _day(day: int, indices=(0,), tiny=(1,), mid=(0,), large=(0,)) -> dict:
    return {
        "kind": "day",
        "day": day,
        "indices": list(indices),
        "tiny": list(tiny),
        "mid": list(mid),
        "large": list(large),
    }


def _lines(*records: dict) -> list[str]:
    return [canonical_json(record) for record in records]


class TestTraceReader:
    def test_round_trips_header_and_events(self):
        trace = TraceReader(_lines(_header(), _day(0), _day(1))).read()
        assert trace.schema == TRACE_SCHEMA_VERSION
        assert trace.seed == 1
        assert trace.days == 2
        assert trace.config() == FleetConfig(initial_tables=4, seed=1)

    def test_rejects_missing_header(self):
        with pytest.raises(TraceValidationError, match="first record must be the header"):
            TraceReader(_lines(_day(0))).read()

    def test_rejects_empty_trace(self):
        with pytest.raises(TraceValidationError, match="empty trace"):
            TraceReader([]).read()

    def test_rejects_wrong_schema_version(self):
        header = _header()
        header["schema"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(TraceValidationError, match="unsupported schema version"):
            TraceReader(_lines(header)).read()

    def test_rejects_duplicate_header(self):
        with pytest.raises(TraceValidationError, match="duplicate header"):
            TraceReader(_lines(_header(), _header())).read()

    def test_rejects_unknown_event_kind(self):
        with pytest.raises(TraceValidationError, match="unknown event kind"):
            TraceReader(_lines(_header(), {"kind": "mystery", "day": 0})).read()

    def test_rejects_out_of_order_days(self):
        with pytest.raises(TraceValidationError, match="non-decreasing"):
            TraceReader(_lines(_header(), _day(3), _day(1))).read()

    def test_rejects_misaligned_day_deltas(self):
        bad = _day(0, indices=(0, 1), tiny=(1,), mid=(0, 0), large=(0, 0))
        with pytest.raises(TraceValidationError, match="must align"):
            TraceReader(_lines(_header(), bad)).read()

    def test_rejects_invalid_json_with_line_number(self):
        lines = _lines(_header()) + ["{not json"]
        with pytest.raises(TraceValidationError, match="line 2"):
            TraceReader(lines).read()

    def test_rejects_onboard_missing_columns(self):
        event = {"kind": "onboard", "day": 0, "count": 1, "columns": {"archetype": [0]}}
        with pytest.raises(TraceValidationError, match="onboard columns missing"):
            TraceReader(_lines(_header(), event)).read()

    def test_rejects_compact_missing_state(self):
        event = {"kind": "compact", "day": 0, "index": 0, "state": {"tiny_files": 0}}
        with pytest.raises(TraceValidationError, match="compact state missing"):
            TraceReader(_lines(_header(), event)).read()

    def test_reads_recorded_run(self, trace_text):
        trace = TraceReader(io.StringIO(trace_text)).read()
        kinds = {event["kind"] for event in trace.events}
        assert kinds == {"onboard", "day", "compact", "cycle"}
        assert trace.days == 12
        assert trace.ingested_bytes() > 0


class TestTraceWriter:
    def test_writes_canonical_lines(self, tmp_path):
        path = tmp_path / "t.jsonl"
        writer = TraceWriter(path)
        writer.write(_header())
        writer.write(_day(0))
        writer.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        # Canonical: sorted keys, no spaces; byte-stable under reserialization.
        for line in lines:
            assert line == canonical_json(json.loads(line))
        assert TraceReader(path).read().days == 1
