"""Catalog Policy Lab tests: §6 trace capture, replay, ring self-evaluation."""

from __future__ import annotations

import io
import json
import os

import pytest

from repro.catalog import Catalog
from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.service import AutoCompService, openhouse_pipeline
from repro.engine import Cluster, EngineSession
from repro.errors import ValidationError
from repro.replay import (
    CatalogHistoryRing,
    CatalogReplayer,
    Perturbation,
    PolicyVariant,
    TraceReader,
    TraceValidationError,
    WhatIfRunner,
    serialize_cycle_report,
    trace_size_bytes,
)
from repro.simulation import Simulator
from repro.simulation.taps import TapBus
from repro.units import HOUR, MiB
from repro.workloads import CabWorkload

from tests.replay.conftest import catalog_layout as live_layout
from tests.replay.conftest import record_cab_run, small_cab_config

RECORD_VARIANT = PolicyVariant(name="w0.70-k10", k=10)


@pytest.fixture(scope="module")
def recorded_cab():
    buffer = io.StringIO()
    catalog, workload, reports, _ = record_cab_run(buffer, variant=RECORD_VARIANT)
    return buffer.getvalue(), catalog, workload, reports


@pytest.fixture(scope="module")
def cab_trace(recorded_cab):
    return TraceReader(io.StringIO(recorded_cab[0])).read()


class TestCatalogRecording:
    def test_trace_is_catalog_schema_v2(self, cab_trace):
        assert cab_trace.trace_type == "catalog"
        assert cab_trace.schema == 2
        kinds = {event["kind"] for event in cab_trace.events}
        assert kinds == {"db_create", "table_create", "table_commit", "cycle"}

    def test_config_refused_for_catalog_traces(self, cab_trace):
        with pytest.raises(ValidationError):
            cab_trace.config()

    def test_commit_events_carry_version_tokens(self, cab_trace):
        commits = cab_trace.events_of("table_commit")
        assert commits
        by_table: dict[str, int] = {}
        for event in commits:
            name = f"{event['database']}.{event['table']}"
            # Versions strictly increase per table — the freshness tokens
            # incremental caches key on.
            assert event["version"] > by_table.get(name, 0)
            by_table[name] = event["version"]

    def test_rewrites_are_replace_commits(self, cab_trace):
        assert any(e["op"] == "replace" for e in cab_trace.events_of("table_commit"))

    def test_cycle_events_hold_serialized_reports(self, cab_trace, recorded_cab):
        recorded = [event["report"] for event in cab_trace.events_of("cycle")]
        assert recorded == [serialize_cycle_report(r) for r in recorded_cab[3]]

    def test_cycle_stamp_floors_at_catalog_clock(self):
        """run_cycle() without `now` must not stamp t=0 after commits at
        t>0 — that trace would fail non-decreasing-time validation."""
        from repro.simulation import TapBus

        taps = TapBus()
        catalog = Catalog(taps=taps)
        buffer = io.StringIO()
        from repro.replay import CatalogTraceRecorder

        recorder = CatalogTraceRecorder(buffer, taps, seed=1, catalog=catalog)
        catalog.create_database("db")
        from repro.lst.schema import Field, Schema

        table = catalog.create_table("db.t", Schema.of(Field("x", "long")))
        catalog.clock.advance_to(HOUR)
        txn = table.new_append()
        txn.add_file(MiB)
        txn.commit()
        pipeline = openhouse_pipeline(
            catalog, Cluster("maint", executors=2), min_table_age_s=0.0
        )
        pipeline.taps = taps
        pipeline.run_cycle()  # defaults now=0.0
        recorder.close()
        trace = TraceReader(io.StringIO(buffer.getvalue())).read()  # must validate
        assert trace.events_of("cycle")[-1]["t"] == HOUR

    def test_ingested_bytes_counts_workload_not_rewrites(self, cab_trace):
        expected = sum(
            size
            for event in cab_trace.events_of("table_commit")
            if event["op"] != "replace"
            for _, size in event["added"]
        )
        assert cab_trace.ingested_bytes() == expected > 0


class TestCatalogVerbatimReplay:
    def test_final_layout_is_exact(self, recorded_cab, cab_trace):
        _, catalog, workload, _ = recorded_cab
        replayed = CatalogReplayer(cab_trace).replay_verbatim()
        assert live_layout(replayed) == live_layout(catalog)

    def test_versions_and_counters_match(self, recorded_cab, cab_trace):
        _, catalog, _, _ = recorded_cab
        replayed = CatalogReplayer(cab_trace).replay_verbatim()
        for source in catalog.all_tables():
            twin = replayed.load_table(str(source.identifier))
            assert twin.version == source.version
            assert twin._next_file_id == source._next_file_id
            assert twin._next_snapshot_id == source._next_snapshot_id


class TestCatalogWhatIfReplay:
    def test_record_replay_byte_identical(self, recorded_cab, cab_trace):
        """The §6 acceptance property: a recorded CAB run replayed under the
        recorded policy reproduces its own cycle reports byte-for-byte."""
        _, _, _, live_reports = recorded_cab
        result = CatalogReplayer(cab_trace).replay(RECORD_VARIANT)
        live_bytes = "\n".join(
            json.dumps(serialize_cycle_report(r), sort_keys=True, separators=(",", ":"))
            for r in live_reports
        ).encode("utf-8")
        assert result.report_bytes() == live_bytes

    def test_same_variant_twice_is_deterministic(self, cab_trace):
        first = CatalogReplayer(cab_trace).replay(RECORD_VARIANT)
        second = CatalogReplayer(cab_trace).replay(RECORD_VARIANT)
        assert first.report_bytes() == second.report_bytes()

    def test_trigger_interval_skips_markers(self, cab_trace):
        lazy = PolicyVariant(name="lazy", k=10, trigger_interval_days=2)
        result = CatalogReplayer(cab_trace).replay(lazy)
        markers = len(cab_trace.events_of("cycle"))
        assert len(result.reports) == markers // 2

    def test_counterfactual_policy_diverges(self, cab_trace):
        eager = CatalogReplayer(cab_trace).replay(PolicyVariant(name="k50", k=50))
        tiny = CatalogReplayer(cab_trace).replay(PolicyVariant(name="k1", k=1))
        assert eager.total_files_reduced >= tiny.total_files_reduced

    def test_baseline_never_compacts(self, cab_trace):
        baseline = CatalogReplayer(cab_trace).replay_baseline()
        assert baseline.reports == []
        assert baseline.files_final >= baseline.files_initial

    def test_fleet_replayer_refuses_catalog_traces(self, cab_trace):
        from repro.replay import TraceReplayer

        with pytest.raises(ValidationError):
            TraceReplayer(cab_trace).replay(RECORD_VARIANT)

    def test_catalog_replayer_refuses_fleet_traces(self):
        from tests.replay.conftest import record_fleet_run

        text, _ = record_fleet_run(initial_tables=10, days=2)
        with pytest.raises(ValidationError):
            CatalogReplayer(io.StringIO(text))


class TestChunkedTraces:
    def test_chunked_round_trip_matches_single_file(self, recorded_cab, tmp_path):
        plain_events = TraceReader(io.StringIO(recorded_cab[0])).read().events
        chunked_path = tmp_path / "run.trace.jsonl"
        record_cab_run(os.fspath(chunked_path), segment_records=25, compress=True)
        chunked = TraceReader(os.fspath(chunked_path)).read()
        assert chunked.events == plain_events
        assert chunked.header["chunked"] is True

    def test_compression_shrinks_traces(self, recorded_cab, tmp_path):
        plain_path = tmp_path / "plain.jsonl"
        plain_path.write_text(recorded_cab[0], encoding="utf-8")
        chunked_path = tmp_path / "chunked.jsonl"
        record_cab_run(os.fspath(chunked_path), segment_records=25, compress=True)
        assert trace_size_bytes(chunked_path) * 2 <= trace_size_bytes(plain_path)

    def test_segment_record_counts_validated(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        record_cab_run(os.fspath(path), segment_records=25, compress=False)
        with open(path, encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        tampered = json.loads(lines[1])
        tampered["records"] += 1
        lines[1] = json.dumps(tampered, sort_keys=True, separators=(",", ":"))
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        with pytest.raises(TraceValidationError):
            TraceReader(os.fspath(path)).read()

    def test_chunked_writer_needs_a_path(self):
        from repro.replay import TraceWriter

        with pytest.raises(ValidationError):
            TraceWriter(io.StringIO(), segment_records=10)

    def test_deterministic_compressed_bytes(self, tmp_path):
        """Same run recorded twice → identical segment bytes (pinned gzip)."""
        a = tmp_path / "a.jsonl"
        b = tmp_path / "b.jsonl"
        record_cab_run(os.fspath(a), segment_records=40, compress=True)
        record_cab_run(os.fspath(b), segment_records=40, compress=True)
        seg_a = sorted(p for p in os.listdir(tmp_path) if p.startswith("a.jsonl.seg"))
        seg_b = sorted(p for p in os.listdir(tmp_path) if p.startswith("b.jsonl.seg"))
        assert len(seg_a) == len(seg_b) >= 2
        for left, right in zip(seg_a, seg_b):
            assert (tmp_path / left).read_bytes() == (tmp_path / right).read_bytes()


class TestNonSeekableSources:
    def test_reader_accepts_pipe_like_streams(self, recorded_cab):
        class PipeLike(io.TextIOBase):
            def __init__(self, text: str) -> None:
                self._inner = io.StringIO(text)

            def readable(self) -> bool:
                return True

            def seekable(self) -> bool:
                return False

            def seek(self, *args):
                raise io.UnsupportedOperation("underlying stream is not seekable")

            def readline(self, *args):
                return self._inner.readline(*args)

        trace = TraceReader(PipeLike(recorded_cab[0])).read()
        assert trace.trace_type == "catalog"
        assert trace.events


class TestWhatIfOverCatalogTraces:
    def test_runner_dispatches_and_ranks(self, cab_trace):
        variants = [
            PolicyVariant(name="k2", k=2),
            PolicyVariant(name="k10", k=10),
            PolicyVariant(name="quota", ranking="quota_aware", k=10),
        ]
        with WhatIfRunner(cab_trace, variants) as runner:
            report = runner.run(workers=1)
        assert len(report.scores) == 3
        assert report.best().files_reduced >= 0
        digests = {s.variant.name: s.report_digest for s in report.scores}
        assert len(set(digests.values())) >= 2  # policies genuinely differ

    def test_path_mode_processes_match_sequential(self, tmp_path):
        path = tmp_path / "run.trace.jsonl"
        record_cab_run(os.fspath(path), segment_records=50, compress=True)
        variants = [PolicyVariant(name="k2", k=2), PolicyVariant(name="k10", k=10)]
        runner = WhatIfRunner(os.fspath(path), variants)
        try:
            sequential = runner.run(workers=1)
            parallel = runner.run(workers=2)
        finally:
            runner.close()
        assert [s.report_digest for s in sequential.scores] == [
            s.report_digest for s in parallel.scores
        ]


class TestPerturbation:
    def test_identity_changes_nothing(self, cab_trace):
        plain = CatalogReplayer(cab_trace).replay(RECORD_VARIANT)
        perturbed = CatalogReplayer(cab_trace).replay(RECORD_VARIANT, perturb=Perturbation())
        assert plain.report_bytes() == perturbed.report_bytes()

    def test_ingest_scaling_is_deterministic_and_monotone(self, cab_trace):
        heavy = Perturbation(ingest_scale=2.0)
        first = CatalogReplayer(cab_trace).replay(RECORD_VARIANT, perturb=heavy)
        second = CatalogReplayer(cab_trace).replay(RECORD_VARIANT, perturb=heavy)
        assert first.report_bytes() == second.report_bytes()
        assert cab_trace.ingested_bytes(perturb=heavy) > cab_trace.ingested_bytes()

    def test_growth_scaling_adds_files(self, cab_trace):
        grown = CatalogReplayer(cab_trace).replay_baseline(
            perturb=Perturbation(growth_scale=2.0)
        )
        plain = CatalogReplayer(cab_trace).replay_baseline()
        assert grown.files_final > plain.files_final

    def test_validation(self):
        with pytest.raises(ValidationError):
            Perturbation(growth_scale=0.0)
        with pytest.raises(ValidationError):
            Perturbation(ingest_scale=-1.0)
        with pytest.raises(ValidationError):
            Perturbation(database_scales={"logs": 0.0})
        with pytest.raises(ValidationError):
            Perturbation(class_scales={"huge": 2.0})  # not a fleet class
        with pytest.raises(ValidationError):
            Perturbation(class_scales={"tiny": -1.0})

    def test_scale_maps_normalize_and_hash(self):
        a = Perturbation(database_scales={"b": 2.0, "a": 3.0})
        b = Perturbation(database_scales={"a": 3.0, "b": 2.0})
        assert a == b and hash(a) == hash(b)
        assert a.database_scales == (("a", 3.0), ("b", 2.0))
        assert Perturbation(database_scales={"a": 1.0}, class_scales={"mid": 1.0}).is_identity
        assert not Perturbation(database_scales={"a": 2.0}).is_identity

    def test_database_scales_skew_only_the_named_tenant(self, cab_trace):
        commits = cab_trace.events_of("table_commit")
        databases = {e["database"] for e in commits if e["op"] != "replace"}
        target = sorted(databases)[0]
        skew = Perturbation(database_scales={target: 3.0})
        for event in commits:
            if event["op"] == "replace":
                assert skew.transform_commit(event) == event
                continue
            scaled = skew.transform_commit(event)
            if event["database"] == target:
                assert len(scaled["added"]) >= len(event["added"])
            else:
                assert scaled == event
        # Perturbed ingest volume grows, and replay stays deterministic.
        assert cab_trace.ingested_bytes(perturb=skew) > cab_trace.ingested_bytes()
        first = CatalogReplayer(cab_trace).replay(RECORD_VARIANT, perturb=skew)
        second = CatalogReplayer(cab_trace).replay(RECORD_VARIANT, perturb=skew)
        assert first.report_bytes() == second.report_bytes()

    def test_class_scales_skew_only_that_fleet_class(self):
        day = {"kind": "day", "indices": [0, 1], "tiny": [2, 4], "mid": [3, 5],
               "large": [1, 1]}
        scaled = Perturbation(class_scales={"tiny": 3.0}).transform_day(day)
        assert scaled["tiny"] == [6, 12]
        assert scaled["mid"] == day["mid"]
        assert scaled["large"] == day["large"]
        assert scaled["indices"] == day["indices"]


class TestShardedCatalogReplay:
    """Satellite: the sharded control plane replayed offline, byte-identical."""

    def test_sharded_variant_matches_unsharded_byte_for_byte(self, cab_trace):
        base = PolicyVariant(name="probe", k=8)
        sharded = PolicyVariant(name="probe", k=8, n_shards=2)
        plain = CatalogReplayer(cab_trace).replay(base)
        split = CatalogReplayer(cab_trace).replay(sharded)
        # Global selection re-merges shard candidates at fleet level, so
        # the sharded plane must reproduce the unsharded reports exactly.
        assert split.report_bytes() == plain.report_bytes()
        assert split.report_digest() == plain.report_digest()

    def test_sharded_replay_is_deterministic(self, cab_trace):
        variant = PolicyVariant(name="probe", k=8, n_shards=3)
        first = CatalogReplayer(cab_trace).replay(variant)
        second = CatalogReplayer(cab_trace).replay(variant)
        assert first.report_bytes() == second.report_bytes()

    def test_whatif_ranks_sharded_variants(self, cab_trace):
        variants = [
            PolicyVariant(name="k8", k=8),
            PolicyVariant(name="k8x2", k=8, n_shards=2),
        ]
        with WhatIfRunner(cab_trace, variants) as runner:
            report = runner.run(workers=1)
        scores = {s.variant.name: s for s in report.scores}
        assert scores["k8"].report_digest == scores["k8x2"].report_digest


def build_service_run(segment_cycles: int = 1, max_segments: int = 3):
    """A live CAB service with history enabled mid-life (post-load)."""
    config = small_cab_config(seed=5)
    catalog = Catalog()
    cluster = Cluster("compaction", executors=3)
    session = EngineSession(
        Cluster("query", executors=4),
        telemetry=catalog.telemetry,
        clock=catalog.clock,
        seed=config.seed,
    )
    session.attach_filesystem(catalog.fs)
    workload = CabWorkload(catalog, session, config)
    workload.load()  # before taps attach: the ring's checkpoint must cover it
    simulator = Simulator(catalog.clock)
    workload.attach(simulator)
    pipeline = openhouse_pipeline(catalog, cluster, k=10, min_table_age_s=0.0)
    service = AutoCompService(pipeline)
    ring = service.enable_history(
        segment_cycles=segment_cycles, max_segments=max_segments, seed=11
    )
    for hour in range(1, 4):
        simulator.run_until(hour * HOUR)
        service.run_cycle(now=catalog.clock.now)
    return service, ring, workload


class TestServiceSelfEvaluation:
    def test_evaluate_recent_ranks_without_touching_live_catalog(self):
        service, ring, workload = build_service_run()
        files_before = workload.total_data_files()
        layout_before = live_layout(service._catalog())
        variants = [
            PolicyVariant(name="k2", k=2),
            PolicyVariant(name="k10", k=10),
            PolicyVariant(name="quota", ranking="quota_aware", k=10),
            PolicyVariant(name="lazy", k=10, trigger_interval_days=2),
        ]
        report = service.evaluate_recent(variants, window=2)
        assert len(report.scores) == 4
        assert report.best() is report.ranked()[0]
        assert workload.total_data_files() == files_before
        assert live_layout(service._catalog()) == layout_before

    def test_ring_rotates_and_evicts(self):
        _, ring, _ = build_service_run(segment_cycles=1, max_segments=2)
        assert ring.n_segments == 2  # 3 cycles, capacity 2: oldest evicted

    def test_ring_trace_starts_with_checkpoint_and_replays(self):
        service, ring, _ = build_service_run()
        trace = ring.trace(window=2)
        assert trace.events[0]["kind"] == "checkpoint"
        assert not any(
            e["kind"] == "checkpoint" for e in trace.events[1:]
        )  # later checkpoints stripped
        first = CatalogReplayer(trace).replay(PolicyVariant(name="probe", k=5))
        second = CatalogReplayer(trace).replay(PolicyVariant(name="probe", k=5))
        assert first.report_bytes() == second.report_bytes()

    def test_ring_save_round_trips_through_reader(self, tmp_path):
        _, ring, _ = build_service_run()
        path = tmp_path / "ring.trace.jsonl"
        ring.save(os.fspath(path), segment_records=100, compress=True)
        trace = TraceReader(os.fspath(path)).read()
        assert trace.events == ring.trace().events

    def test_evaluate_recent_requires_history(self, tmp_path):
        catalog = Catalog()
        catalog.create_database("db")
        pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=2))
        service = AutoCompService(pipeline)
        with pytest.raises(ValidationError):
            service.evaluate_recent([PolicyVariant(name="k2", k=2)])

    def test_priors_come_from_ranked_winner(self):
        service, _, _ = build_service_run()
        report = service.evaluate_recent(
            [PolicyVariant(name="k2", k=2), PolicyVariant(name="k10", k=10)]
        )
        priors = report.to_priors()
        assert priors["k"] == float(report.best().variant.k)


class TestRingEdges:
    """Regression: evaluate_recent raised at ring edges instead of degrading."""

    def test_window_larger_than_history_clamps_to_everything(self):
        service, ring, _ = build_service_run()
        full = ring.trace()
        clamped = ring.trace(window=ring.n_segments + 100)
        assert clamped.events == full.events
        report = service.evaluate_recent(
            [PolicyVariant(name="k5", k=5)], window=10_000
        )
        assert len(report.scores) == 1

    def test_window_zero_degrades_to_current_state(self):
        service, ring, _ = build_service_run()
        trace = ring.trace(window=0)
        assert [e["kind"] for e in trace.events] == ["checkpoint"]
        # Zero recorded history: every variant scores over "what exists".
        report = service.evaluate_recent([PolicyVariant(name="k5", k=5)], window=0)
        assert report.scores[0].cycles == 0

    def test_negative_window_still_raises(self):
        _, ring, _ = build_service_run()
        with pytest.raises(ValidationError):
            ring.trace(window=-1)

    def test_empty_ring_evaluates_what_exists(self, catalog, simple_schema):
        # History enabled but no cycle ever ran: the ring holds one open
        # (unsealed) segment — just its opening checkpoint.
        catalog.create_database("db")
        catalog.create_table("db.t0", simple_schema)
        pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=2))
        service = AutoCompService(pipeline)
        ring = service.enable_history()
        assert ring.n_segments == 1
        report = service.evaluate_recent([PolicyVariant(name="k2", k=2)])
        assert len(report.scores) == 1

    def test_unsealed_trailing_segment_is_included(self):
        service, ring, _ = build_service_run(segment_cycles=8)  # never seals
        assert ring.n_segments == 1
        trace = ring.trace(window=1)
        assert any(e["kind"] == "cycle" for e in trace.events)


class TestRingSpillLoad:
    """Daemon drain persistence: spill → restart → identical history/rankings."""

    VARIANTS = (
        PolicyVariant(name="k2", k=2),
        PolicyVariant(name="k10", k=10),
        PolicyVariant(name="lazy", k=10, trigger_interval_days=2),
    )

    def test_spill_writes_one_trace_segment_per_ring_segment(self, tmp_path):
        _, ring, _ = build_service_run(segment_cycles=1, max_segments=3)
        path = tmp_path / "ring.spill.jsonl"
        spilled = ring.spill(os.fspath(path))
        assert spilled == ring.n_segments
        manifest = [json.loads(line) for line in open(path)]
        segments = [r for r in manifest if r["kind"] == "segment"]
        assert len(segments) == ring.n_segments
        assert all(r["codec"] == "gzip" for r in segments)

    def test_load_rebuilds_identical_segments(self, tmp_path):
        _, ring, _ = build_service_run(segment_cycles=1, max_segments=3)
        path = tmp_path / "ring.spill.jsonl"
        ring.spill(os.fspath(path))
        restored = CatalogHistoryRing(
            ring.catalog,
            TapBus(),
            seed=ring.seed,
            cluster=ring.cluster,
            segment_cycles=1,
            max_segments=3,
        )
        assert restored.load(os.fspath(path)) == ring.n_segments
        assert list(restored._segments) == list(ring._segments)
        assert restored.trace().events == ring.trace().events
        assert restored.events_recorded == sum(
            1 for s in ring._segments for e in s if e["kind"] != "checkpoint"
        )

    def test_rankings_identical_across_restart(self, tmp_path):
        service, ring, _ = build_service_run(segment_cycles=1, max_segments=3)
        before = [
            s.variant.name
            for s in service.evaluate_recent(list(self.VARIANTS)).ranked()
        ]
        path = tmp_path / "ring.spill.jsonl"
        assert service.spill_history(os.fspath(path)) == ring.n_segments
        # A fresh service over the same catalog — the daemon-restart shape.
        revived = AutoCompService(service.pipeline)
        revived.restore_history(
            os.fspath(path), segment_cycles=1, max_segments=3, seed=11
        )
        after = [
            s.variant.name
            for s in revived.evaluate_recent(list(self.VARIANTS)).ranked()
        ]
        assert after == before

    def test_spill_without_history_is_noop(self, catalog):
        catalog.create_database("db")
        pipeline = openhouse_pipeline(catalog, Cluster("maint", executors=2))
        service = AutoCompService(pipeline)
        assert service.spill_history("/nonexistent/should/not/be/written") is None


class TestCheckpointRestore:
    def test_restore_requires_empty_catalog(self, recorded_cab):
        _, catalog, _, _ = recorded_cab
        from repro.replay import catalog_checkpoint, restore_checkpoint

        event = catalog_checkpoint(catalog)
        target = Catalog()
        restore_checkpoint(target, event)
        assert live_layout(target) == live_layout(catalog)
        with pytest.raises(ValidationError):
            restore_checkpoint(target, event)

    def test_restored_tables_accept_new_commits(self, recorded_cab):
        _, catalog, _, _ = recorded_cab
        from repro.replay import catalog_checkpoint, restore_checkpoint

        target = Catalog()
        restore_checkpoint(target, catalog_checkpoint(catalog))
        table = target.all_tables()[0]
        source = catalog.load_table(str(table.identifier))
        txn = table.new_append()
        txn.add_file(4 * MiB, partition=table.partitions()[0] if table.partitions() else ())
        txn.commit()
        # New commit continues the recorded id/version sequence.
        assert table.version == source.version + 1
        assert table._next_file_id == source._next_file_id + 1
