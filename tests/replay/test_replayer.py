"""Replay guarantees: exact round-trip, deterministic what-if, snapshots."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.fleet import FleetConfig, FleetModel, TABLE_COLUMNS
from repro.replay import PolicyVariant, TraceReplayer
from repro.replay.replayer import verify_deterministic

from tests.replay.conftest import record_fleet_run


def _arrays_equal(a: FleetModel, b: FleetModel) -> bool:
    if a.count != b.count or a.day != b.day:
        return False
    return all(
        np.array_equal(getattr(a, name)[: a.count], getattr(b, name)[: b.count])
        for name in (
            "tiny_files",
            "mid_files",
            "large_files",
            "tiny_bytes",
            "mid_bytes",
            "large_bytes",
            "stats_version",
            "last_write_day",
        )
    )


class TestVerbatimReplay:
    def test_round_trip_reconstructs_file_counts_exactly(self, recorded_run):
        trace_text, sim = recorded_run
        replayed = TraceReplayer(io.StringIO(trace_text)).replay_verbatim()
        assert _arrays_equal(replayed, sim.model)
        assert replayed.total_files == sim.model.total_files
        assert replayed.files_below_threshold == sim.model.files_below_threshold

    def test_round_trip_with_mid_trace_onboarding(self):
        # 35 days crosses the day-30 onboarding boundary.
        trace_text, sim = record_fleet_run(initial_tables=60, days=35, seed=11)
        replayed = TraceReplayer(io.StringIO(trace_text)).replay_verbatim()
        assert replayed.count > 60  # onboarding happened and was replayed
        assert _arrays_equal(replayed, sim.model)


class TestWhatIfReplay:
    def test_same_variant_is_byte_identical(self, trace_text):
        variant = PolicyVariant(name="v", k=5)
        first = TraceReplayer(io.StringIO(trace_text)).replay(variant)
        second = TraceReplayer(io.StringIO(trace_text)).replay(variant)
        assert first.report_bytes() == second.report_bytes()
        assert first.report_digest() == second.report_digest()

    def test_repeated_replays_on_one_replayer_are_identical(self, trace_text):
        # The snapshot/restore fast path must not leak state across replays.
        replayer = TraceReplayer(io.StringIO(trace_text))
        variant = PolicyVariant(name="v", k=5)
        assert replayer.replay(variant).report_bytes() == replayer.replay(
            variant
        ).report_bytes()

    def test_different_variants_diverge(self, trace_text):
        replayer = TraceReplayer(io.StringIO(trace_text))
        lazy = replayer.replay(PolicyVariant(name="lazy", k=1))
        eager = replayer.replay(PolicyVariant(name="eager", k=25))
        assert eager.total_files_reduced > lazy.total_files_reduced
        assert eager.files_final < lazy.files_final

    def test_one_cycle_per_recorded_day_by_default(self, trace_text):
        result = TraceReplayer(io.StringIO(trace_text)).replay(
            PolicyVariant(name="v", k=5)
        )
        assert result.days == 12
        assert len(result.reports) == 12

    def test_trigger_interval_thins_cycles(self, trace_text):
        result = TraceReplayer(io.StringIO(trace_text)).replay(
            PolicyVariant(name="v", k=5, trigger_interval_days=3)
        )
        assert len(result.reports) == 4

    def test_sharded_variant_is_deterministic(self, trace_text):
        variant = PolicyVariant(name="sharded", k=5, n_shards=2)
        assert verify_deterministic(io.StringIO(trace_text), variant)

    def test_concurrent_scheduler_variant_is_deterministic(self, trace_text):
        variant = PolicyVariant(name="conc", k=5, scheduler="concurrent")
        assert verify_deterministic(io.StringIO(trace_text), variant)

    def test_baseline_replay_never_compacts(self, trace_text):
        baseline = TraceReplayer(io.StringIO(trace_text)).replay_baseline()
        assert baseline.reports == []
        assert baseline.files_final > baseline.files_initial

    def test_class_scaled_perturbation_grows_only_that_class(self, trace_text):
        from repro.replay import Perturbation

        plain = TraceReplayer(io.StringIO(trace_text)).replay_baseline()
        tiny_storm = TraceReplayer(io.StringIO(trace_text)).replay_baseline(
            perturb=Perturbation(class_scales={"tiny": 3.0})
        )
        assert tiny_storm.files_final > plain.files_final
        # Deterministic under the same skew.
        again = TraceReplayer(io.StringIO(trace_text)).replay_baseline(
            perturb=Perturbation(class_scales={"tiny": 3.0})
        )
        assert again.files_final == tiny_storm.files_final


class TestFleetSnapshotRestore:
    def test_restore_round_trips_full_state(self):
        model = FleetModel(FleetConfig(initial_tables=30, seed=3))
        model.step_day()
        snapshot = model.snapshot()
        before = {name: getattr(model, name)[: model.count].copy() for name in TABLE_COLUMNS}
        model.step_day()
        model.compact(0)
        model.restore(snapshot)
        for name in TABLE_COLUMNS:
            assert np.array_equal(getattr(model, name)[: model.count], before[name]), name
        assert model.day == 1

    def test_restore_restores_rng_stream(self):
        model = FleetModel(FleetConfig(initial_tables=30, seed=3))
        snapshot = model.snapshot()
        model.step_day()
        first = model.tiny_files[: model.count].copy()
        model.restore(snapshot)
        model.step_day()
        assert np.array_equal(model.tiny_files[: model.count], first)

    def test_restore_invalidates_observe_view_memo(self):
        model = FleetModel(FleetConfig(initial_tables=10, seed=3))
        model.step_day()
        snapshot = model.snapshot()
        stale = model.observe_view()
        model.restore(snapshot)
        assert model.observe_view() is not stale


class TestModelReplayApis:
    def test_load_tables_rejects_missing_columns(self):
        model = FleetModel(FleetConfig(initial_tables=4, seed=1), onboard_initial=False)
        with pytest.raises(ValidationError, match="missing columns"):
            model.load_tables({"archetype": [0]})

    def test_load_tables_rejects_ragged_columns(self):
        model = FleetModel(FleetConfig(initial_tables=4, seed=1), onboard_initial=False)
        columns = {name: [0] for name in TABLE_COLUMNS}
        columns["tiny_files"] = [0, 1]
        with pytest.raises(ValidationError, match="lengths differ"):
            model.load_tables(columns)

    def test_apply_growth_rejects_bad_index(self):
        model = FleetModel(FleetConfig(initial_tables=4, seed=1))
        with pytest.raises(ValidationError, match="out of range"):
            model.apply_growth([99], [1], [0], [0])

    def test_apply_compact_state_rejects_bad_index(self):
        model = FleetModel(FleetConfig(initial_tables=4, seed=1))
        with pytest.raises(ValidationError, match="out of range"):
            model.apply_compact_state(99, {})

    def test_apply_growth_rejects_misaligned_deltas(self):
        model = FleetModel(FleetConfig(initial_tables=4, seed=1))
        with pytest.raises(ValidationError, match="must match indices length"):
            model.apply_growth([0, 1, 2], [5], [5], [5])
