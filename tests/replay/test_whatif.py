"""What-if search: parallel equivalence, ranking, reports, offline priors."""

from __future__ import annotations

import io
from typing import ClassVar

import pytest

from repro.core.autotune import CostFrugalOptimizer, Parameter, RandomSearchOptimizer
from repro.core.ranking import Objective, WeightedSumPolicy
from repro.core.weight_learning import WeightLearner
from repro.errors import ValidationError
from repro.replay import (
    PolicyVariant,
    TraceReader,
    WhatIfRunner,
    sample_variants,
    variant_grid,
)


@pytest.fixture(scope="module")
def trace(trace_text):
    return TraceReader(io.StringIO(trace_text)).read()


@pytest.fixture(scope="module")
def trace_path(trace_text, tmp_path_factory):
    path = tmp_path_factory.mktemp("policy-lab") / "run.trace.jsonl"
    path.write_text(trace_text)
    return str(path)


VARIANTS = variant_grid(benefit_weights=(0.5, 0.8), ks=(3, 12))


class TestWhatIfRunner:
    def test_sequential_run_scores_every_variant(self, trace):
        report = WhatIfRunner(trace, VARIANTS).run(workers=1)
        assert len(report.scores) == len(VARIANTS)
        assert report.baseline_files_final > 0
        for score in report.scores:
            assert score.files_final < report.baseline_files_final
            assert 0.0 < score.reduction_vs_baseline < 1.0
            assert score.gbhr > 0
            assert score.write_amplification > 0
            assert score.task_failure_rate == 0.0  # fleet backend never conflicts
            assert score.cycles == 12

    def test_parallel_process_pool_matches_sequential(self, trace_path):
        runner = WhatIfRunner(trace_path, VARIANTS)
        sequential = runner.run(workers=1)
        parallel = runner.run(workers=2)
        assert [s.report_digest for s in sequential.scores] == [
            s.report_digest for s in parallel.scores
        ]
        assert [s.files_final for s in sequential.scores] == [
            s.files_final for s in parallel.scores
        ]

    def test_parallel_thread_pool_matches_sequential(self, trace):
        runner = WhatIfRunner(trace, VARIANTS)
        sequential = runner.run(workers=1)
        threaded = runner.run(workers=2)
        assert [s.report_digest for s in sequential.scores] == [
            s.report_digest for s in threaded.scores
        ]

    def test_ranking_modes(self, trace):
        runner = WhatIfRunner(trace, VARIANTS, rank_by="gbhr")
        report = runner.run(workers=1)
        costs = [score.gbhr for score in report.ranked()]
        assert costs == sorted(costs)
        report.rank_by = "files_reduced"
        reduced = [score.files_reduced for score in report.ranked()]
        assert reduced == sorted(reduced, reverse=True)

    def test_render_lists_every_variant(self, trace):
        report = WhatIfRunner(trace, VARIANTS).run(workers=1)
        rendered = report.render()
        for variant in VARIANTS:
            assert variant.name in rendered

    def test_rejects_duplicate_variant_names(self, trace):
        twice = [VARIANTS[0], VARIANTS[0]]
        with pytest.raises(ValidationError, match="unique"):
            WhatIfRunner(trace, twice)

    def test_rejects_empty_variant_list(self, trace):
        with pytest.raises(ValidationError, match="at least one"):
            WhatIfRunner(trace, [])

    def test_rejects_unknown_rank_mode(self, trace):
        with pytest.raises(ValidationError, match="rank_by"):
            WhatIfRunner(trace, VARIANTS, rank_by="vibes")

    def test_gbhr_ties_prefer_more_files_reduced(self):
        """A do-nothing variant (0 GBHr, 0 files reduced) must not outrank a
        variant that reduced files for the same zero cost."""
        from repro.replay.whatif import VariantScore, WhatIfReport

        def score(name: str, gbhr: float, files_reduced: int) -> VariantScore:
            return VariantScore(
                variant=PolicyVariant(name=name),
                files_final=1000 - files_reduced,
                files_reduced=files_reduced,
                reduction_vs_baseline=files_reduced / 1000,
                gbhr=gbhr,
                write_amplification=0.0,
                task_failure_rate=0.0,
                efficiency=0.0,
                cycles=1,
                tasks=0,
                report_digest="d",
            )

        report = WhatIfReport(
            scores=[
                score("do-nothing", 0.0, 0),
                score("free-lunch", 0.0, 40),
                score("expensive", 5.0, 90),
            ],
            rank_by="gbhr",
        )
        names = [s.variant.name for s in report.ranked()]
        assert names == ["free-lunch", "do-nothing", "expensive"]


class TestOfflinePriors:
    def test_priors_warm_start_cfo(self, trace):
        report = WhatIfRunner(trace, VARIANTS).run(workers=1)
        priors = report.to_priors()
        assert set(priors) >= {"benefit_weight", "k"}

        evaluated = []

        def objective(params):
            evaluated.append(dict(params))
            return (params["benefit_weight"] - 0.6) ** 2

        space = [
            Parameter("benefit_weight", 0.3, 0.9),
            Parameter("k", 1, 50, integer=True),
        ]
        CostFrugalOptimizer().optimize(objective, space, iterations=3, warm_start=priors)
        # The first evaluation is the what-if winner, clipped into range.
        assert evaluated[0]["benefit_weight"] == pytest.approx(
            min(max(priors["benefit_weight"], 0.3), 0.9)
        )
        assert evaluated[0]["k"] == priors["k"]

    def test_priors_warm_start_random_search_and_ignore_unknown_keys(self):
        evaluated = []

        def objective(params):
            evaluated.append(dict(params))
            return params["x"]

        result = RandomSearchOptimizer().optimize(
            objective,
            [Parameter("x", 0.0, 1.0)],
            iterations=4,
            seed=9,
            warm_start={"x": 0.25, "not_a_dimension": 7.0},
        )
        assert evaluated[0] == {"x": 0.25}
        assert result.iterations == 4

    def test_prior_efficiencies_seed_weight_learner(self, trace):
        report = WhatIfRunner(trace, VARIANTS).run(workers=1)
        priors = report.prior_efficiencies()
        assert priors == sorted(priors, reverse=True)
        policy = WeightedSumPolicy(
            [
                Objective("file_count_reduction", 0.7, maximize=True),
                Objective("compute_cost_gbhr", 0.3, maximize=False),
            ]
        )
        learner = WeightLearner(policy, warmup_cycles=2, prior_efficiencies=priors)
        # Priors exceed the warmup, so the first live observation adjusts.
        class _Result:
            success = True
            skipped = False
            actual_reduction = 10_000
            gbhr = 1.0

        class _Report:
            cycle_index = 0
            results: ClassVar = [_Result()]

        learner.observe(_Report())
        assert learner.updates, "prior-seeded learner should adapt immediately"


class TestVariantHelpers:
    def test_grid_names_are_unique(self):
        grid = variant_grid(
            benefit_weights=(0.4, 0.7),
            ks=(5, 10),
            rankings=("weighted", "quota_aware"),
            trigger_interval_days=(1, 2),
        )
        names = [variant.name for variant in grid]
        assert len(names) == len(set(names))
        # quota-aware points collapse over benefit_weight.
        assert sum(1 for v in grid if v.ranking == "quota_aware") == 4

    def test_sample_variants_deterministic(self):
        assert sample_variants(6, seed=3) == sample_variants(6, seed=3)
        assert sample_variants(6, seed=3) != sample_variants(6, seed=4)

    def test_variant_validation(self):
        with pytest.raises(ValidationError):
            PolicyVariant(name="")
        with pytest.raises(ValidationError):
            PolicyVariant(name="x", ranking="psychic")
        with pytest.raises(ValidationError):
            PolicyVariant(name="x", k=None)
        with pytest.raises(ValidationError):
            PolicyVariant(name="x", benefit_weight=1.5)
        with pytest.raises(ValidationError):
            PolicyVariant(name="x", trigger_interval_days=0)
