"""Shared fixtures for the Policy Lab tests: recorded fleet and catalog runs."""

from __future__ import annotations

import io

import pytest

from repro.catalog import Catalog
from repro.engine import Cluster, EngineSession
from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import CatalogTraceRecorder, PolicyVariant, TraceRecorder
from repro.simulation import Simulator, TapBus
from repro.units import HOUR, MiB
from repro.workloads import CabConfig, CabWorkload


def record_fleet_run(
    initial_tables: int = 80,
    days: int = 12,
    seed: int = 20250730,
    k: int = 5,
    onboarded_per_month: int = 10,
) -> tuple[str, FleetSimulator]:
    """Run a small fleet under AutoComp while recording; returns (trace, sim)."""
    taps = TapBus()
    config = FleetConfig(
        initial_tables=initial_tables,
        onboarded_per_month=onboarded_per_month,
        seed=seed,
    )
    buffer = io.StringIO()
    recorder = TraceRecorder(buffer, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=k))
    sim.run_days(days)
    recorder.close()
    return buffer.getvalue(), sim


@pytest.fixture(scope="module")
def recorded_run() -> tuple[str, FleetSimulator]:
    """A 12-day, 80-table recorded AutoComp run (module-cached)."""
    return record_fleet_run()


@pytest.fixture(scope="module")
def trace_text(recorded_run) -> str:
    return recorded_run[0]


# --- catalog (§6 CAB) recording harness -----------------------------------------


def small_cab_config(seed: int = 99, **overrides) -> CabConfig:
    """A laptop-instant CAB shape shared by the catalog Policy Lab tests."""
    params = dict(
        databases=2,
        data_bytes_per_db=256 * MiB,
        duration_s=3 * HOUR,
        lineitem_months=6,
        ro_rate_per_hour=2.0,
        rw_rate_per_hour=2.0,
        spike_events_per_db=2.0,
        insert_bytes_mean=24 * MiB,
        shuffle_partitions=12,
        seed=seed,
    )
    params.update(overrides)
    return CabConfig(**params)


def record_cab_run(
    sink,
    config: CabConfig | None = None,
    variant: PolicyVariant | None = None,
    **writer_kwargs,
):
    """Run a tiny §6 CAB catalog workload under AutoComp while recording.

    Cycles run *synchronously* (no simulator handed to the pipeline) on an
    hourly cadence driven between simulator windows — the recordable
    step-then-compact setting replay reproduces byte-for-byte.  Returns
    ``(catalog, workload, reports, variant)``.
    """
    config = config or small_cab_config()
    variant = variant or PolicyVariant(name="w0.70-k10", k=10)
    taps = TapBus()
    catalog = Catalog(taps=taps)
    cluster = Cluster("compaction", executors=3)
    recorder = CatalogTraceRecorder(
        sink, taps, seed=config.seed, catalog=catalog, cluster=cluster, **writer_kwargs
    )
    session = EngineSession(
        Cluster("query", executors=4),
        telemetry=catalog.telemetry,
        clock=catalog.clock,
        seed=config.seed,
    )
    session.attach_filesystem(catalog.fs)
    workload = CabWorkload(catalog, session, config)
    workload.load()
    simulator = Simulator(catalog.clock)
    workload.attach(simulator)
    pipeline = variant.build_catalog_pipeline(catalog, cluster)
    pipeline.taps = taps
    reports = []
    hours = int(config.duration_s // HOUR)
    for hour in range(1, hours + 1):
        simulator.run_until(hour * HOUR)
        reports.append(pipeline.run_cycle(now=catalog.clock.now))
    simulator.run_until(config.duration_s + HOUR)
    recorder.close()
    return catalog, workload, reports, variant


def catalog_layout(catalog: Catalog) -> dict:
    """Per-table live file layout — the verbatim-replay equality witness."""
    return {
        str(table.identifier): sorted(
            (f.file_id, f.size_bytes, f.partition) for f in table.live_files()
        )
        for table in catalog.all_tables()
    }
