"""Shared fixtures for the Policy Lab tests: one small recorded fleet run."""

from __future__ import annotations

import io

import pytest

from repro.fleet import AutoCompStrategy, FleetConfig, FleetSimulator
from repro.replay import TraceRecorder
from repro.simulation import TapBus


def record_fleet_run(
    initial_tables: int = 80,
    days: int = 12,
    seed: int = 20250730,
    k: int = 5,
    onboarded_per_month: int = 10,
) -> tuple[str, FleetSimulator]:
    """Run a small fleet under AutoComp while recording; returns (trace, sim)."""
    taps = TapBus()
    config = FleetConfig(
        initial_tables=initial_tables,
        onboarded_per_month=onboarded_per_month,
        seed=seed,
    )
    buffer = io.StringIO()
    recorder = TraceRecorder(buffer, taps, config=config)
    sim = FleetSimulator(config, taps=taps)
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=k))
    sim.run_days(days)
    recorder.close()
    return buffer.getvalue(), sim


@pytest.fixture(scope="module")
def recorded_run() -> tuple[str, FleetSimulator]:
    """A 12-day, 80-table recorded AutoComp run (module-cached)."""
    return record_fleet_run()


@pytest.fixture(scope="module")
def trace_text(recorded_run) -> str:
    return recorded_run[0]
