"""Regression tests for the true positives the analyzer surfaced.

Rolling ``repro.lint`` over the tree found real bugs (exactly the classes
of bug the rules encode): torn counter snapshots in the cache telemetry
path (RL001) and a non-atomic committed-baseline write in the benchmark
gate tooling (RL002).  These tests pin the fixes.
"""

from __future__ import annotations

import importlib.util
import json
import threading
from pathlib import Path
from typing import ClassVar

import pytest

from repro.core.candidates import CandidateKey, CandidateScope
from repro.core.connectors import Connector
from repro.core.statscache import IndexedCandidateCache, StatsCache

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _key(table="events"):
    return CandidateKey("db", table, CandidateScope.TABLE)


class _NullConnector(Connector):
    """Bare connector: just enough surface to exercise cache_counters()."""

    def list_candidates(self, strategy="table"):
        return []

    def collect_statistics(self, key):
        raise NotImplementedError


class TestCountersSnapshot:
    def test_statscache_snapshot_matches_attributes(self):
        cache = StatsCache(ttl_s=100.0)
        cache.get(_key(), now=1.0)  # miss
        cache.put(_key(), object(), now=1.0)
        cache.get(_key(), now=1.0)  # hit
        assert cache.counters_snapshot() == {
            "hits": 1,
            "misses": 1,
            "invalidations": 0,
            "expirations": 0,
        }

    def test_indexed_cache_snapshot_matches_attributes(self):
        cache = IndexedCandidateCache(ttl_s=100.0)
        cache.get(0, now=1.0)  # miss (empty slot)
        cache.record_lookups(hits=3, misses=2, expirations=1)
        assert cache.counters_snapshot() == {
            "hits": 3,
            "misses": 3,
            "invalidations": 0,
            "expirations": 1,
        }

    def test_snapshot_is_never_torn_under_concurrency(self):
        """hits+misses always equals completed lookups at snapshot time.

        StatsCache.get() counts exactly one of hits/misses per call under
        the lock; a snapshot taken under the same lock can therefore never
        observe a state where the sum disagrees with the number of
        completed lookups by more than the calls still in flight.  The
        old attribute-by-attribute read could tear between the two loads.
        """
        cache = StatsCache(ttl_s=1e9)
        cache.put(_key(), object(), now=0.0)
        lookups_done = threading.Barrier(3)
        stop = threading.Event()
        per_thread = 2000

        def hammer():
            lookups_done.wait()
            for _ in range(per_thread):
                cache.get(_key(), now=0.0)

        workers = [threading.Thread(target=hammer) for _ in range(2)]
        for worker in workers:
            worker.start()

        torn = []

        def sample():
            lookups_done.wait()
            previous = 0
            while not stop.is_set():
                counters = cache.counters_snapshot()
                total = counters["hits"] + counters["misses"]
                if total < previous:  # totals can only grow
                    torn.append((previous, total))
                previous = total

        sampler = threading.Thread(target=sample)
        sampler.start()
        for worker in workers:
            worker.join()
        stop.set()
        sampler.join()
        assert torn == []
        final = cache.counters_snapshot()
        assert final["hits"] == 2 * per_thread

    def test_connector_cache_counters_prefers_the_snapshot(self):
        """cache_counters() routes through counters_snapshot when present."""

        class _Probe:
            hits = 999  # must NOT be read attribute-by-attribute
            misses = 999
            expirations = 999

            @staticmethod
            def counters_snapshot():
                return {"hits": 1, "misses": 2, "expirations": 3}

        connector = _NullConnector()
        connector.stats_cache = _Probe()
        counters = connector.cache_counters()
        assert counters["hits"] == 1.0
        assert counters["misses"] == 2.0
        assert counters["expirations"] == 3.0

    def test_connector_cache_counters_falls_back_to_attributes(self):
        class _Legacy:
            hits = 5
            misses = 7

        connector = _NullConnector()
        connector.stats_cache = _Legacy()
        counters = connector.cache_counters()
        assert counters["hits"] == 5.0
        assert counters["misses"] == 7.0
        assert counters["expirations"] == 0.0


def _load_check_regression():
    spec = importlib.util.spec_from_file_location(
        "check_regression", REPO_ROOT / "benchmarks" / "check_regression.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestWriteBaselineAtomicity:
    CURRENT: ClassVar = {
        "bench": "bench_fig99",
        "config": {"tables": 4, "cores": 8},
        "metrics": {"cycles": 12, "wall_s": 1.5},
    }

    def test_writes_a_parseable_baseline_and_no_tmp_leftovers(self, tmp_path, capsys):
        module = _load_check_regression()
        path = tmp_path / "bench_fig99.json"
        module.write_baseline(self.CURRENT, str(path))
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert payload["bench"] == "bench_fig99"
        assert "cores" not in payload["config"]  # machine-shaped, never pinned
        assert payload["metrics"]["cycles"] == {"value": 12, "check": "exact"}
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != path.name]
        assert leftovers == []

    def test_crash_mid_write_preserves_the_previous_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        """The RL002 fix: a failure mid-dump must not tear the old file.

        The pre-fix ``open(path, "w")`` truncated the committed baseline
        before writing, so a crash left an empty/torn gate input.
        """
        module = _load_check_regression()
        path = tmp_path / "bench_fig99.json"
        module.write_baseline(self.CURRENT, str(path))
        before = path.read_bytes()

        def explode(*args, **kwargs):
            raise RuntimeError("simulated crash mid-write")

        monkeypatch.setattr(module.json, "dump", explode)
        with pytest.raises(RuntimeError):
            module.write_baseline(self.CURRENT, str(path))
        assert path.read_bytes() == before  # old baseline intact, not torn
