"""RL003: the contract manifest pins the worker wire contract to
``WORK_SPEC_VERSION`` — editing a contract dataclass without bumping the
constant fails the lint, and regeneration is idempotent."""

from __future__ import annotations

import ast
import json
import textwrap

from repro.lint import run_lint
from repro.lint.rules.rl003_contracts import (
    DEFAULT_MANIFEST,
    extract_contracts,
    manifest_payload,
    write_manifest,
)

WORKERS_FIXTURE = """
from dataclasses import dataclass

WORK_SPEC_VERSION = {version}


@dataclass(frozen=True)
class ShardWorkSpec:
    shard_index: int
    n_shards: int
{extra_field}

@dataclass(frozen=True)
class CacheDelta:
    slots: tuple
    tokens: tuple
"""

COLUMNAR_FIXTURE = """
from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnarMissBlock:
    file_sizes: list
"""


def write_tree(tmp_path, version=4, extra_field=""):
    workers = tmp_path / "workers.py"
    columnar = tmp_path / "columnar.py"
    workers.write_text(
        textwrap.dedent(
            WORKERS_FIXTURE.format(version=version, extra_field=extra_field)
        ),
        encoding="utf-8",
    )
    columnar.write_text(textwrap.dedent(COLUMNAR_FIXTURE), encoding="utf-8")
    return [workers, columnar]


def generate_manifest(tmp_path, files):
    trees = [
        (str(path), ast.parse(path.read_text(encoding="utf-8")))
        for path in files
    ]
    manifest = tmp_path / "contracts.json"
    write_manifest(extract_contracts(trees), manifest)
    return manifest


def lint_contracts(files, manifest):
    findings, _ = run_lint(
        files, select=["RL003"], contracts_manifest=manifest
    )
    return findings


def test_clean_tree_matches_its_manifest(tmp_path):
    files = write_tree(tmp_path)
    manifest = generate_manifest(tmp_path, files)
    assert lint_contracts(files, manifest) == []


def test_field_added_without_version_bump_fails(tmp_path):
    files = write_tree(tmp_path)
    manifest = generate_manifest(tmp_path, files)
    files = write_tree(tmp_path, extra_field="    sneaky_new_field: float\n")
    findings = lint_contracts(files, manifest)
    assert [f.rule_id for f in findings] == ["RL003"]
    assert "ShardWorkSpec" in findings[0].message
    assert "WORK_SPEC_VERSION" in findings[0].message


def test_field_added_with_version_bump_asks_for_regeneration(tmp_path):
    files = write_tree(tmp_path)
    manifest = generate_manifest(tmp_path, files)
    files = write_tree(
        tmp_path, version=5, extra_field="    sneaky_new_field: float\n"
    )
    findings = lint_contracts(files, manifest)
    assert [f.rule_id for f in findings] == ["RL003"]
    assert "regenerate" in findings[0].message
    # After regenerating, the tree is clean again at the new version.
    manifest = generate_manifest(tmp_path, files)
    assert lint_contracts(files, manifest) == []


def test_missing_manifest_is_reported(tmp_path):
    files = write_tree(tmp_path)
    findings = lint_contracts(files, tmp_path / "nope.json")
    assert [f.rule_id for f in findings] == ["RL003"]
    assert "emit-contracts" in findings[0].message


def test_class_removed_without_regeneration_fails(tmp_path):
    files = write_tree(tmp_path)
    manifest = generate_manifest(tmp_path, files)
    (tmp_path / "columnar.py").write_text(
        "from dataclasses import dataclass\n", encoding="utf-8"
    )
    findings = lint_contracts(files, manifest)
    assert [f.rule_id for f in findings] == ["RL003"]
    assert "ColumnarMissBlock" in findings[0].message


def test_regeneration_is_idempotent(tmp_path):
    files = write_tree(tmp_path)
    manifest = generate_manifest(tmp_path, files)
    first = manifest.read_bytes()
    generate_manifest(tmp_path, files)
    assert manifest.read_bytes() == first


def test_committed_manifest_matches_the_real_tree():
    """The committed contracts.json regenerates byte-identically.

    Guards the satellite requirement directly: if someone edits a worker
    contract dataclass, this test fails alongside RL003 until the
    manifest is regenerated (and the version bumped).
    """
    repo_src = DEFAULT_MANIFEST.parent.parent.parent  # src/
    sources = [
        repo_src / "repro" / "core" / "workers.py",
        repo_src / "repro" / "core" / "columnar.py",
    ]
    trees = [
        (str(path), ast.parse(path.read_text(encoding="utf-8")))
        for path in sources
    ]
    regenerated = manifest_payload(extract_contracts(trees))
    committed = json.loads(DEFAULT_MANIFEST.read_text(encoding="utf-8"))
    assert regenerated == committed
