"""Suppression directives: inline and file-wide disables, justification
text, and the RL007 unused-suppression check that keeps them honest."""

from __future__ import annotations

import textwrap

from repro.lint import run_lint
from repro.lint.suppressions import parse_suppressions

BAD_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def bump(self):
        with self._lock:
            self.total += 1

    def peek(self):
        return self.total{suffix}
"""


def lint(tmp_path, source, **kwargs):
    target = tmp_path / "mod.py"
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = run_lint([target], **kwargs)
    return findings


def test_inline_disable_suppresses_the_finding(tmp_path):
    source = BAD_CLASS.format(
        suffix="  # repro-lint: disable=RL001 -- benign approximate read"
    )
    assert lint(tmp_path, source, select=["RL001"]) == []


def test_unsuppressed_finding_still_fires(tmp_path):
    findings = lint(tmp_path, BAD_CLASS.format(suffix=""), select=["RL001"])
    assert [f.rule_id for f in findings] == ["RL001"]


def test_directive_for_another_rule_does_not_suppress(tmp_path):
    source = BAD_CLASS.format(suffix="  # repro-lint: disable=RL005")
    findings = lint(tmp_path, source, select=["RL001", "RL005"])
    rule_ids = sorted(f.rule_id for f in findings)
    # The RL001 finding survives, and the pointless RL005 directive is
    # itself reported as unused.
    assert rule_ids == ["RL001", "RL007"]


def test_file_wide_disable_covers_every_line(tmp_path):
    source = "# repro-lint: file-disable=RL001\n" + BAD_CLASS.format(suffix="")
    assert lint(tmp_path, source, select=["RL001"]) == []


def test_unused_suppression_reports_rl007(tmp_path):
    source = BAD_CLASS.format(suffix="") + (
        "\nHARMLESS = 1  # repro-lint: disable=RL002\n"
    )
    findings = lint(tmp_path, source, select=["RL001", "RL002"])
    by_rule = {f.rule_id for f in findings}
    assert by_rule == {"RL001", "RL007"}
    unused = next(f for f in findings if f.rule_id == "RL007")
    assert "RL002" in unused.message
    assert unused.severity == "warning"


def test_unused_suppressions_of_unselected_rules_are_not_judged(tmp_path):
    # A partial (--select) run cannot tell whether another rule's
    # directive is stale, so it must not flag it.
    source = BAD_CLASS.format(suffix="") + (
        "\nHARMLESS = 1  # repro-lint: disable=RL002\n"
    )
    findings = lint(tmp_path, source, select=["RL001"])
    assert [f.rule_id for f in findings] == ["RL001"]


def test_multiple_ids_in_one_directive(tmp_path):
    suppressions = parse_suppressions(
        "x = 1  # repro-lint: disable=RL001,RL005 -- both fine here\n"
    )
    assert suppressions.directives[0].rule_ids == ("RL001", "RL005")
    assert suppressions.is_suppressed("RL005", 1)
    assert suppressions.unused() == [(1, "RL001")]


def test_directive_inside_string_literal_is_ignored(tmp_path):
    suppressions = parse_suppressions(
        'text = "# repro-lint: disable=RL001"\n'
    )
    assert suppressions.directives == []
