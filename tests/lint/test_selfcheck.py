"""Self-check: the analyzer holds over its own repository.

The acceptance gate for the lint plane: ``python -m repro.lint src`` (and
the full src+tests+benchmarks sweep CI runs) reports zero unsuppressed
findings, the CLI plumbs exit codes and JSON correctly, and the rule
registry stays complete.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

from repro.lint import RULE_CLASSES, run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _run_cli(*argv):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *argv],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_registry_has_the_six_invariant_rules():
    assert [cls.rule_id for cls in RULE_CLASSES] == [
        "RL001", "RL002", "RL003", "RL004", "RL005", "RL006",
    ]
    severities = {cls.severity for cls in RULE_CLASSES}
    assert severities == {"error"}


def test_src_tree_is_clean():
    findings, _ = run_lint([REPO_ROOT / "src"])
    assert findings == [], [f.render() for f in findings]


def test_full_sweep_is_clean():
    findings, _ = run_lint(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"]
    )
    assert findings == [], [f.render() for f in findings]


def test_cli_exits_zero_on_src():
    result = _run_cli("src")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "clean" in result.stdout


def test_cli_json_report_shape(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "import json\n\n"
        "def save(state):\n"
        '    with open("active.json", "w") as stream:\n'
        "        json.dump(state, stream)\n",
        encoding="utf-8",
    )
    result = _run_cli("--format", "json", "--fix-hints", str(bad))
    assert result.returncode == 1
    payload = json.loads(result.stdout)
    assert payload["tool"] == "repro.lint"
    assert payload["summary"]["errors"] == 1
    (finding,) = payload["findings"]
    assert finding["rule_id"] == "RL002"
    assert finding["hint"]  # --fix-hints includes remediation text


def test_cli_list_rules_mentions_every_id():
    result = _run_cli("--list-rules")
    assert result.returncode == 0
    for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005", "RL006", "RL007"):
        assert rule_id in result.stdout
