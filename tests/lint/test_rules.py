"""Per-rule good/bad fixtures: every rule fires on its bad fixture and
stays quiet on the good one.  Fixture files are written under tmp_path
with path shapes that satisfy each rule's ``applies_to`` filter (RL005
needs ``repro/replay/``, RL004 needs a ``repro/``-rooted product path)."""

from __future__ import annotations

import textwrap

from repro.lint import run_lint


def lint_source(tmp_path, relpath, source, **kwargs):
    """Write ``source`` at ``tmp_path/relpath`` and lint just that file."""
    target = tmp_path / relpath
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source), encoding="utf-8")
    findings, _ = run_lint([target], **kwargs)
    return findings


def ids(findings):
    return [f.rule_id for f in findings]


class TestRL001LockDiscipline:
    def test_unlocked_read_of_guarded_attribute_fires(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1

                def peek(self):
                    return self.total
            """,
            select=["RL001"],
        )
        assert ids(findings) == ["RL001"]
        assert "Counter.total" in findings[0].message
        assert "peek" in findings[0].message

    def test_fully_locked_class_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import threading

            class Counter:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.total = 0

                def bump(self):
                    with self._lock:
                        self.total += 1

                def peek(self):
                    with self._lock:
                        return self.total
            """,
            select=["RL001"],
        )
        assert findings == []

    def test_constructor_only_helper_is_safe(self, tmp_path):
        # _scan writes guarded state unlocked, but construction
        # happens-before publication — the safe-context fixpoint covers it.
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import threading

            class Machine:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._states = {}
                    self._scan()

                def _scan(self):
                    self._states["boot"] = 1

                def set(self, key):
                    with self._lock:
                        self._states[key] = 1
            """,
            select=["RL001"],
        )
        assert findings == []

    def test_lambda_inherits_the_enclosing_lock(self, tmp_path):
        # A sort key runs inside the locked block; nested defs do not.
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import threading

            class Queue:
                def __init__(self):
                    self._mutex = threading.Lock()
                    self._deficit = {}

                def admit(self, names):
                    with self._mutex:
                        self._deficit["x"] = 1
                        return sorted(names, key=lambda n: self._deficit.get(n, 0))
            """,
            select=["RL001"],
        )
        assert findings == []

    def test_nested_def_does_not_inherit_the_lock(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import threading

            class Queue:
                def __init__(self):
                    self._mutex = threading.Lock()
                    self._deficit = {}

                def admit(self):
                    with self._mutex:
                        self._deficit["x"] = 1

                        def later():
                            return self._deficit["x"]
                        return later
            """,
            select=["RL001"],
        )
        assert ids(findings) == ["RL001"]


class TestRL002AtomicWrites:
    def test_bare_open_w_on_durable_file_fires(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import json

            def save(state, root):
                with open(root + "/active.json", "w") as stream:
                    json.dump(state, stream)
            """,
            select=["RL002"],
        )
        assert ids(findings) == ["RL002"]
        assert "active.json" in findings[0].message

    def test_write_text_on_durable_file_fires(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            def save(state, path):
                path = path + "/state.json"
                path.write_text(state)
            """,
            select=["RL002"],
        )
        assert ids(findings) == ["RL002"]

    def test_function_name_links_the_write_to_durable_state(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import json

            def write_baseline(payload, path):
                with open(path, "w") as stream:
                    json.dump(payload, stream)
            """,
            select=["RL002"],
        )
        assert ids(findings) == ["RL002"]

    def test_tmp_plus_replace_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import json
            import os

            def save(state, root):
                path = root + "/active.json"
                tmp = path + ".tmp"
                with open(tmp, "w") as stream:
                    json.dump(state, stream)
                os.replace(tmp, path)
            """,
            select=["RL002"],
        )
        assert findings == []

    def test_o_append_record_append_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            import os

            def append_audit(record, root):
                fd = os.open(
                    root + "/audit.jsonl",
                    os.O_CREAT | os.O_WRONLY | os.O_APPEND,
                )
                try:
                    os.write(fd, record)
                finally:
                    os.close(fd)
            """,
            select=["RL002"],
        )
        assert findings == []

    def test_non_durable_writes_are_ignored(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            def save(data, path):
                with open(path + "/scratch.txt", "w") as stream:
                    stream.write(data)
            """,
            select=["RL002"],
        )
        assert findings == []


REGISTRY_FIXTURE = """
METRICS = {
    "autocomp.cycles": ("counter", "Cycles run."),
    "autocomp.locks.acquired": ("counter", "Locks taken."),
    "autocomp.locks.reclaimed": ("counter", "Stale locks reclaimed."),
}
"""


class TestRL004MetricsRegistry:
    def _registry(self, tmp_path):
        registry = tmp_path / "repro" / "obs" / "__init__.py"
        registry.parent.mkdir(parents=True, exist_ok=True)
        registry.write_text(REGISTRY_FIXTURE, encoding="utf-8")
        return registry

    def test_unregistered_literal_fires(self, tmp_path):
        registry = self._registry(tmp_path)
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def run(telemetry):
                telemetry.increment("autocomp.bogus")
            """,
            select=["RL004"],
            metrics_registry_path=registry,
        )
        assert ids(findings) == ["RL004"]
        assert "autocomp.bogus" in findings[0].message

    def test_registered_literal_and_prefix_are_clean(self, tmp_path):
        registry = self._registry(tmp_path)
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def run(telemetry, event):
                telemetry.increment("autocomp.cycles")
                telemetry.increment(f"autocomp.locks.{event}")
            """,
            select=["RL004"],
            metrics_registry_path=registry,
        )
        assert findings == []

    def test_dynamic_prefix_matching_nothing_fires(self, tmp_path):
        registry = self._registry(tmp_path)
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def run(telemetry, event):
                telemetry.increment(f"autocomp.ghosts.{event}")
            """,
            select=["RL004"],
            metrics_registry_path=registry,
        )
        assert ids(findings) == ["RL004"]
        assert "autocomp.ghosts." in findings[0].message

    def test_dead_registry_entry_fires_when_registry_is_scanned(self, tmp_path):
        registry = self._registry(tmp_path)
        emitter = tmp_path / "repro" / "core" / "mod.py"
        emitter.parent.mkdir(parents=True, exist_ok=True)
        emitter.write_text(
            textwrap.dedent(
                """
                def run(telemetry, event):
                    telemetry.increment("autocomp.cycles")
                    telemetry.increment(f"autocomp.locks.{event}")
                """
            ),
            encoding="utf-8",
        )
        # Registry included in the scan, but nothing emits a third metric.
        third = REGISTRY_FIXTURE.replace(
            '"autocomp.cycles": ("counter", "Cycles run."),',
            '"autocomp.cycles": ("counter", "Cycles run."),\n'
            '    "autocomp.never": ("counter", "Dead."),',
        )
        registry.write_text(third, encoding="utf-8")
        findings, _ = run_lint(
            [emitter, registry],
            select=["RL004"],
            metrics_registry_path=registry,
        )
        assert ids(findings) == ["RL004"]
        assert "autocomp.never" in findings[0].message

    def test_no_dead_entry_report_on_partial_scans(self, tmp_path):
        registry = self._registry(tmp_path)
        findings = lint_source(
            tmp_path,
            "repro/core/mod.py",
            """
            def run(telemetry):
                telemetry.increment("autocomp.cycles")
            """,
            select=["RL004"],
            metrics_registry_path=registry,
        )
        # locks.* entries are unreferenced here, but the registry file was
        # not part of the scan, so no dead-entry findings appear.
        assert findings == []


class TestRL005ReplayDeterminism:
    def test_ambient_time_and_randomness_fire(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "repro/replay/bad.py",
            """
            import random
            import time

            def decide():
                started = time.time()
                jitter = random.random()
                return started + jitter
            """,
            select=["RL005"],
        )
        assert ids(findings) == ["RL005", "RL005"]
        messages = " ".join(f.message for f in findings)
        assert "time.time" in messages
        assert "random.random" in messages

    def test_set_iteration_fires(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "repro/replay/bad.py",
            """
            def order(keys):
                out = []
                for key in set(keys):
                    out.append(key)
                return [k for k in {1, 2, 3}]
            """,
            select=["RL005"],
        )
        assert len(findings) == 2
        assert all(f.rule_id == "RL005" for f in findings)

    def test_injected_seams_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "repro/replay/good.py",
            """
            import random
            import time

            def decide(clock, seed, keys):
                started = time.perf_counter()  # telemetry-only: allowed
                rng = random.Random(seed)
                now = clock()
                for key in sorted(set(keys)):
                    rng.shuffle
                return started, now
            """,
            select=["RL005"],
        )
        assert findings == []

    def test_rule_is_scoped_to_replay_paths(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "repro/core/elsewhere.py",
            """
            import time

            def now():
                return time.time()
            """,
            select=["RL005"],
        )
        assert findings == []


class TestRL006ResourceLifecycle:
    def test_class_owner_without_teardown_fires(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            from concurrent.futures import ThreadPoolExecutor

            class Runner:
                def start(self):
                    self._pool = ThreadPoolExecutor(max_workers=2)
            """,
            select=["RL006"],
        )
        assert ids(findings) == ["RL006"]
        assert "ThreadPoolExecutor" in findings[0].message

    def test_class_owner_with_close_is_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            from concurrent.futures import ThreadPoolExecutor

            class Runner:
                def start(self):
                    self._pool = ThreadPoolExecutor(max_workers=2)

                def close(self):
                    self._pool.shutdown()
            """,
            select=["RL006"],
        )
        assert findings == []

    def test_unreleased_local_resource_fires(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            from multiprocessing.shared_memory import SharedMemory

            def leak():
                segment = SharedMemory(create=True, size=64)
                return segment.name
            """,
            select=["RL006"],
        )
        assert ids(findings) == ["RL006"]
        assert "SharedMemory" in findings[0].message

    def test_context_manager_close_and_transfer_are_clean(self, tmp_path):
        findings = lint_source(
            tmp_path,
            "mod.py",
            """
            from concurrent.futures import ThreadPoolExecutor
            from multiprocessing.shared_memory import SharedMemory

            def managed():
                with ThreadPoolExecutor(max_workers=2) as pool:
                    pool.submit(print)

            def closed():
                segment = SharedMemory(create=True, size=64)
                try:
                    return bytes(segment.buf[:1])
                finally:
                    segment.close()

            def handed_over(stack):
                segment = SharedMemory(create=True, size=64)
                stack.callback(segment)
                return segment

            def factory():
                segment = SharedMemory(create=True, size=64)
                return segment
            """,
            select=["RL006"],
        )
        assert findings == []


class TestRL000ParseErrors:
    def test_unparseable_file_reports_rl000(self, tmp_path):
        findings = lint_source(tmp_path, "broken.py", "def broken(:\n")
        assert ids(findings) == ["RL000"]
        assert findings[0].severity == "error"
