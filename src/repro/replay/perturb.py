"""Counterfactual workload perturbation for trace replay.

What-if search answers "which policy wins on the workload we *saw*"; the
scheduling analyses of online merge compaction (PAPERS.md) additionally ask
"which policy wins if the workload *shifts*".  A :class:`Perturbation`
deterministically rescales the recorded workload before replay, so one
trace yields a family of counterfactual workloads — more tables writing,
heavier ingest, one tenant outgrowing the rest — without re-running the
source system:

* ``growth_scale`` multiplies *how much is written*: per-class file-count
  deltas in fleet ``day`` events, and the added-file list of catalog
  ``table_commit`` events (replicated cyclically / truncated to the scaled
  count, preserving order so replays stay deterministic);
* ``ingest_scale`` multiplies *how large the writes are*: applied to the
  fleet file-count deltas as a byte proxy (fleet bytes derive from counts)
  and to per-file sizes in catalog commits;
* ``database_scales`` skews *who* grows: a per-database multiplier layered
  on top of ``growth_scale`` for catalog commits, so shadow evaluation
  (:class:`~repro.core.promoter.PolicyPromoter`) can model one tenant's
  growth outpacing the fleet before promoting a policy;
* ``class_scales`` skews *what* grows in fleet traces: per-table-class
  (``tiny`` / ``mid`` / ``large``) multipliers on the day-event deltas,
  modelling e.g. a small-file explosion without touching large tables.

Scaling is plain integer arithmetic — no RNG — so a perturbed replay is
exactly as deterministic as an unperturbed one, and the
:class:`~repro.replay.whatif.WhatIfRunner` scores perturbed replays
against the *perturbed* ingest volume.

Catalog caveat: growth-scaled commits shift file-id allocation, so later
recorded removals may name files the counterfactual run no longer holds;
the catalog replayer applies removals best-effort (exactly the
approximation a live deployment's retry-with-fresh-metadata would make).
Custom hooks work too: anything with ``transform_day(event)`` /
``transform_commit(event)`` methods is accepted wherever a
``Perturbation`` is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

#: Fleet table classes a ``class_scales`` mapping may name.
TABLE_CLASSES = ("tiny", "mid", "large")


def _scale_count(count: int, factor: float) -> int:
    """Deterministic non-negative integer scaling (round-half-up)."""
    return max(0, int(count * factor + 0.5))


def _normalize_scales(scales, what: str, allowed=None) -> tuple:
    """A mapping (or item tuple) of scale factors → sorted item tuple.

    Sorted tuples keep the dataclass hashable/picklable and make equal
    mappings compare equal regardless of insertion order — perturbations
    are part of what-if cache keys and cross process boundaries.
    """
    items = dict(scales)
    for key, factor in items.items():
        if allowed is not None and key not in allowed:
            raise ValidationError(
                f"unknown {what} key {key!r}; expected one of {allowed}"
            )
        if not isinstance(factor, (int, float)) or factor <= 0:
            raise ValidationError(f"{what}[{key!r}] must be a positive number")
    return tuple(sorted((str(key), float(factor)) for key, factor in items.items()))


@dataclass(frozen=True)
class Perturbation:
    """A deterministic workload rescaling applied before replay.

    Args:
        growth_scale: multiplier on the number of files written
            (must be > 0; 1.0 = unchanged).
        ingest_scale: multiplier on written byte volume (> 0).
        database_scales: per-database growth multipliers for catalog
            commits, layered on ``growth_scale`` (a mapping like
            ``{"logs": 4.0}``; databases not named are unscaled).  Models
            tenant growth skew.
        class_scales: per-table-class multipliers for fleet ``day``
            events, keys from :data:`TABLE_CLASSES` (a mapping like
            ``{"tiny": 3.0}``).  Layered on the global scales.
    """

    growth_scale: float = 1.0
    ingest_scale: float = 1.0
    database_scales: tuple = ()
    class_scales: tuple = ()

    def __post_init__(self) -> None:
        if self.growth_scale <= 0:
            raise ValidationError("growth_scale must be positive")
        if self.ingest_scale <= 0:
            raise ValidationError("ingest_scale must be positive")
        # Accept mappings at construction; store canonical sorted tuples
        # (frozen dataclass: assign through object.__setattr__).
        object.__setattr__(
            self,
            "database_scales",
            _normalize_scales(self.database_scales, "database_scales"),
        )
        object.__setattr__(
            self,
            "class_scales",
            _normalize_scales(self.class_scales, "class_scales", allowed=TABLE_CLASSES),
        )

    @property
    def is_identity(self) -> bool:
        """Whether this perturbation changes nothing."""
        return (
            self.growth_scale == 1.0
            and self.ingest_scale == 1.0
            and all(factor == 1.0 for _, factor in self.database_scales)
            and all(factor == 1.0 for _, factor in self.class_scales)
        )

    def _database_factor(self, database: str | None) -> float:
        for key, factor in self.database_scales:
            if key == database:
                return factor
        return 1.0

    def _class_factor(self, table_class: str) -> float:
        for key, factor in self.class_scales:
            if key == table_class:
                return factor
        return 1.0

    def transform_day(self, event: dict) -> dict:
        """A fleet ``day`` event with scaled per-class file deltas.

        Fleet byte deltas are derived from file counts, so both global
        scales act on the counts (their product is the effective byte
        multiplier), further skewed per class by ``class_scales``.
        """
        if self.is_identity:
            return event
        base = self.growth_scale * self.ingest_scale
        scaled = {}
        for table_class in TABLE_CLASSES:
            factor = base * self._class_factor(table_class)
            scaled[table_class] = [
                _scale_count(c, factor) for c in event[table_class]
            ]
        return {**event, **scaled}

    def transform_commit(self, event: dict) -> dict:
        """A catalog ``table_commit`` event with a rescaled file delta.

        Rewrite (``replace``) commits pass through untouched — they are
        the *policy's* output, not workload, and what-if replay skips them
        anyway.  Added files are size-scaled by ``ingest_scale`` and
        count-scaled by ``growth_scale`` times the commit's database
        factor (cyclic replication / prefix truncation — replicated files
        keep their recorded sizes, so a tenant's byte volume scales with
        its file count); removals and delete files are preserved verbatim.
        """
        if self.is_identity or event.get("op") == "replace":
            return event
        added = event["added"]
        growth = self.growth_scale * self._database_factor(event.get("database"))
        if growth != 1.0 and added:
            target = max(1, _scale_count(len(added), growth))
            added = [added[i % len(added)] for i in range(target)]
        if self.ingest_scale != 1.0:
            added = [
                [partition, max(0, int(size * self.ingest_scale + 0.5))]
                for partition, size in added
            ]
        return {**event, "added": added}
