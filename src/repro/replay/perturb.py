"""Counterfactual workload perturbation for trace replay.

What-if search answers "which policy wins on the workload we *saw*"; the
scheduling analyses of online merge compaction (PAPERS.md) additionally ask
"which policy wins if the workload *shifts*".  A :class:`Perturbation`
deterministically rescales the recorded workload before replay, so one
trace yields a family of counterfactual workloads — more tables writing,
heavier ingest — without re-running the source system:

* ``growth_scale`` multiplies *how much is written*: per-class file-count
  deltas in fleet ``day`` events, and the added-file list of catalog
  ``table_commit`` events (replicated cyclically / truncated to the scaled
  count, preserving order so replays stay deterministic);
* ``ingest_scale`` multiplies *how large the writes are*: applied to the
  fleet file-count deltas as a byte proxy (fleet bytes derive from counts)
  and to per-file sizes in catalog commits.

Scaling is plain integer arithmetic — no RNG — so a perturbed replay is
exactly as deterministic as an unperturbed one, and the
:class:`~repro.replay.whatif.WhatIfRunner` scores perturbed replays
against the *perturbed* ingest volume.

Catalog caveat: growth-scaled commits shift file-id allocation, so later
recorded removals may name files the counterfactual run no longer holds;
the catalog replayer applies removals best-effort (exactly the
approximation a live deployment's retry-with-fresh-metadata would make).
Custom hooks work too: anything with ``transform_day(event)`` /
``transform_commit(event)`` methods is accepted wherever a
``Perturbation`` is.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


def _scale_count(count: int, factor: float) -> int:
    """Deterministic non-negative integer scaling (round-half-up)."""
    return max(0, int(count * factor + 0.5))


@dataclass(frozen=True)
class Perturbation:
    """A deterministic workload rescaling applied before replay.

    Args:
        growth_scale: multiplier on the number of files written
            (must be > 0; 1.0 = unchanged).
        ingest_scale: multiplier on written byte volume (> 0).
    """

    growth_scale: float = 1.0
    ingest_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.growth_scale <= 0:
            raise ValidationError("growth_scale must be positive")
        if self.ingest_scale <= 0:
            raise ValidationError("ingest_scale must be positive")

    @property
    def is_identity(self) -> bool:
        """Whether this perturbation changes nothing."""
        return self.growth_scale == 1.0 and self.ingest_scale == 1.0

    def transform_day(self, event: dict) -> dict:
        """A fleet ``day`` event with scaled per-class file deltas.

        Fleet byte deltas are derived from file counts, so both scales act
        on the counts (their product is the effective byte multiplier).
        """
        if self.is_identity:
            return event
        factor = self.growth_scale * self.ingest_scale
        return {
            **event,
            "tiny": [_scale_count(c, factor) for c in event["tiny"]],
            "mid": [_scale_count(c, factor) for c in event["mid"]],
            "large": [_scale_count(c, factor) for c in event["large"]],
        }

    def transform_commit(self, event: dict) -> dict:
        """A catalog ``table_commit`` event with a rescaled file delta.

        Rewrite (``replace``) commits pass through untouched — they are
        the *policy's* output, not workload, and what-if replay skips them
        anyway.  Added files are size-scaled by ``ingest_scale`` and
        count-scaled by ``growth_scale`` (cyclic replication / prefix
        truncation); removals and delete files are preserved verbatim.
        """
        if self.is_identity or event.get("op") == "replace":
            return event
        added = event["added"]
        if self.growth_scale != 1.0 and added:
            target = max(1, _scale_count(len(added), self.growth_scale))
            added = [added[i % len(added)] for i in range(target)]
        if self.ingest_scale != 1.0:
            added = [
                [partition, max(0, int(size * self.ingest_scale + 0.5))]
                for partition, size in added
            ]
        return {**event, "added": added}
