"""Deterministic trace replay: reconstruct a fleet, re-drive AutoComp.

Two replay modes, one trace:

* **verbatim** (:meth:`TraceReplayer.replay_verbatim`) — apply every
  recorded event exactly as captured, including the source run's
  compactions.  The resulting :class:`~repro.fleet.model.FleetModel`
  matches the source fleet's per-table file counts *exactly* (growth byte
  deltas are derived by the same arithmetic, compaction states are
  assigned verbatim), which is the recorder/replayer round-trip guarantee.
* **what-if** (:meth:`TraceReplayer.replay`) — apply only the recorded
  *workload* (onboards and write days) and let a caller-supplied
  :class:`~repro.replay.variants.PolicyVariant` make the compaction
  decisions, on the same cadence the source deployment ran (after each
  day's writes).  Replaying the same trace under the same variant yields
  byte-identical cycle reports: fleet reconstruction is exact, every
  pipeline phase is deterministic (NFR2), and the only stochastic input —
  realised compaction noise — draws from an RNG derived from
  ``(trace seed, variant name)``.

The replayer parses the trace once and snapshots the reconstructed state
after the initial onboard prefix, so evaluating many variants pays the
population-rebuild cost once (:meth:`~repro.fleet.model.FleetModel.restore`
per variant instead of a cold build).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import IO

from repro.core.pipeline import CycleReport
from repro.core.sharding import ShardedCycleReport
from repro.fleet.model import FleetModel, FleetSnapshot
from repro.replay.trace import Trace, TraceReader, canonical_json, serialize_cycle_report
from repro.replay.variants import PolicyVariant
from repro.simulation.rng import derive_rng
from repro.units import DAY


@dataclass
class ReplayResult:
    """Outcome of one what-if replay of a trace under one variant."""

    variant: PolicyVariant
    reports: list[CycleReport] = field(default_factory=list)
    #: Fleet files at the start (post initial onboard) and end of the replay.
    files_initial: int = 0
    files_final: int = 0
    #: Files below the 128 MiB reporting threshold at the end.
    files_below_threshold_final: int = 0
    #: Recorded write days replayed.
    days: int = 0

    @property
    def total_files_reduced(self) -> int:
        """Net file-count reduction across all cycles."""
        return sum(report.total_files_reduced for report in self.reports)

    @property
    def total_gbhr(self) -> float:
        """Compute spent across all cycles."""
        return sum(report.total_gbhr for report in self.reports)

    @property
    def total_rewritten_bytes(self) -> int:
        """Bytes rewritten by all compactions."""
        return sum(r.rewritten_bytes for report in self.reports for r in report.results)

    @property
    def tasks(self) -> int:
        """Act-phase tasks executed (successes + skips + failures)."""
        return sum(len(report.results) for report in self.reports)

    @property
    def failures(self) -> int:
        """Tasks that failed without being skips (conflicts etc.)."""
        return sum(
            1
            for report in self.reports
            for r in report.results
            if not r.success and not r.skipped
        )

    @property
    def skips(self) -> int:
        """Tasks skipped because nothing was worth rewriting."""
        return sum(1 for report in self.reports for r in report.results if r.skipped)

    def report_lines(self) -> list[str]:
        """Each cycle report as one canonical JSON line."""
        return [canonical_json(serialize_cycle_report(report)) for report in self.reports]

    def report_bytes(self) -> bytes:
        """The canonical serialization of every cycle report, newline-joined.

        Two replays of the same trace under the same variant produce equal
        values here — byte for byte (the determinism guarantee the Policy
        Lab's property tests pin down).
        """
        return "\n".join(self.report_lines()).encode("utf-8")

    def report_digest(self) -> str:
        """SHA-256 of :meth:`report_bytes` (compact cross-process equality)."""
        return hashlib.sha256(self.report_bytes()).hexdigest()


class TraceReplayer:
    """Replays one parsed trace, verbatim or under policy variants.

    Args:
        trace: a parsed :class:`~repro.replay.trace.Trace`, or anything
            :class:`~repro.replay.trace.TraceReader` accepts (a path or a
            text stream), which is read and validated here.
    """

    def __init__(self, trace: Trace | str | os.PathLike | IO[str]) -> None:
        if not isinstance(trace, Trace):
            trace = TraceReader(trace).read()
        self.trace = trace
        self._base: FleetSnapshot | None = None
        self._base_events_start = 0

    # --- state reconstruction ---------------------------------------------------

    def _fresh_model(self) -> FleetModel:
        """An empty model under the trace's config (no sampling, no taps)."""
        return FleetModel(self.trace.config(), onboard_initial=False)

    def _base_state(self) -> tuple[FleetModel, int]:
        """A model at the trace's starting population, plus the event cursor.

        The leading run of ``onboard`` events (normally exactly one: the
        initial population) is applied once and snapshotted; later calls
        restore the snapshot instead of re-applying.
        """
        model = self._fresh_model()
        if self._base is None:
            cursor = 0
            for event in self.trace.events:
                if event["kind"] != "onboard":
                    break
                model.load_tables(event["columns"])
                cursor += 1
            self._base = model.snapshot()
            self._base_events_start = cursor
        else:
            model.restore(self._base)
        return model, self._base_events_start

    # --- verbatim replay --------------------------------------------------------

    def replay_verbatim(self) -> FleetModel:
        """Reconstruct the source run's final fleet state exactly.

        Applies every recorded event — onboards, write days and the source
        run's own compactions — and returns the resulting model.  Per-table
        file counts and byte totals match the recorded fleet bit for bit.
        """
        model, cursor = self._base_state()
        for event in self.trace.events[cursor:]:
            kind = event["kind"]
            if kind == "onboard":
                model.load_tables(event["columns"])
            elif kind == "day":
                model.apply_growth(
                    event["indices"], event["tiny"], event["mid"], event["large"]
                )
            elif kind == "compact":
                model.apply_compact_state(event["index"], event["state"])
            # cycle events are reference metadata; nothing to apply.
        return model

    # --- what-if replay ---------------------------------------------------------

    def _apply_workload(
        self, model: FleetModel, cursor: int, on_day=None, perturb=None
    ) -> int:
        """Apply the recorded workload (onboards + write days) from ``cursor``.

        Recorded compactions and cycle summaries are ignored — the what-if
        caller supplies its own decisions via ``on_day`` (invoked after each
        applied write day with the 1-based day count).  ``perturb``
        (a :class:`~repro.replay.perturb.Perturbation` or compatible hook)
        rescales each day's deltas first — the counterfactual-workload
        path.  Returns the number of write days applied.  Shared by
        :meth:`replay` and :meth:`replay_baseline` so the two can never
        drift.
        """
        days_seen = 0
        for event in self.trace.events[cursor:]:
            kind = event["kind"]
            if kind == "onboard":
                model.load_tables(event["columns"])
            elif kind == "day":
                if perturb is not None:
                    event = perturb.transform_day(event)
                model.apply_growth(
                    event["indices"], event["tiny"], event["mid"], event["large"]
                )
                days_seen += 1
                if on_day is not None:
                    on_day(days_seen)
        return days_seen

    def replay(self, variant: PolicyVariant, perturb=None) -> ReplayResult:
        """Re-drive the recorded workload under ``variant``'s policy.

        Recorded compactions and cycle summaries are ignored; after every
        ``variant.trigger_interval_days``-th recorded write day, one OODA
        cycle runs against the reconstructed state (mirroring the source
        deployment's step-then-compact cadence).  ``perturb`` replays a
        counterfactually rescaled workload instead of the recorded one.

        Returns:
            The :class:`ReplayResult`, whose :meth:`ReplayResult.report_bytes`
            is identical across repeated calls with an equal variant (and
            equal perturbation).
        """
        model, cursor = self._base_state()
        # The what-if run's only stochasticity is realised compaction noise;
        # derive its stream from (trace seed, variant name) so reruns are
        # exact and distinct variants are statistically independent.
        model._rng = derive_rng(self.trace.seed, "policy-lab", variant.name)
        pipeline = variant.build_pipeline(model)
        result = ReplayResult(variant=variant, files_initial=model.total_files)

        def run_cycle_if_due(days_seen: int) -> None:
            if days_seen % variant.trigger_interval_days == 0:
                report = pipeline.run_cycle(now=float(model.day) * DAY)
                if isinstance(report, ShardedCycleReport):
                    report = report.report
                result.reports.append(report)

        result.days = self._apply_workload(
            model, cursor, on_day=run_cycle_if_due, perturb=perturb
        )
        result.files_final = model.total_files
        result.files_below_threshold_final = model.files_below_threshold
        return result

    def replay_baseline(self, perturb=None) -> ReplayResult:
        """The no-compaction reference replay (workload only, no cycles)."""
        model, cursor = self._base_state()
        result = ReplayResult(
            variant=PolicyVariant(name="baseline-none", k=0),
            files_initial=model.total_files,
        )
        result.days = self._apply_workload(model, cursor, perturb=perturb)
        result.files_final = model.total_files
        result.files_below_threshold_final = model.files_below_threshold
        return result


def verify_deterministic(
    trace: Trace | str | os.PathLike, variant: PolicyVariant
) -> bool:
    """Replay ``trace`` under ``variant`` twice; True iff byte-identical.

    A convenience wrapper used by benches and CI smoke checks; the test
    suite asserts the same property directly.
    """
    first = TraceReplayer(trace).replay(variant)
    second = TraceReplayer(trace).replay(variant)
    return first.report_bytes() == second.report_bytes()
