"""The Policy Lab: trace capture, deterministic replay, what-if search.

AutoComp's evaluation is fundamentally trace-driven — policies are judged
by replaying realistic write workloads and comparing file-count reduction
against GBHr cost.  This package turns every workload the repo can
generate — the vectorised §7 *fleet* plane and the live §6 *LST-catalog*
plane — into a reusable corpus for policy experiments, in three layers:

* **capture** — :class:`~repro.replay.recorder.TraceRecorder` (fleet) and
  :class:`~repro.replay.catalog_trace.CatalogTraceRecorder` (catalog)
  subscribe to simulation events through a
  :class:`~repro.simulation.taps.TapBus` and serialize them to a
  versioned, seed-stamped JSONL trace (:mod:`repro.replay.trace`) —
  optionally *chunked* into gzip-compressed segment files for month-scale
  runs, with checkpoint-delimited segments so any suffix replays
  standalone (the :class:`~repro.replay.catalog_trace.CatalogHistoryRing`
  behind ``AutoCompService.evaluate_recent``);
* **replay** — :class:`~repro.replay.replayer.TraceReplayer` /
  :class:`~repro.replay.catalog_replay.CatalogReplayer` reconstruct state
  from a trace and re-drive AutoComp cycles under a caller-supplied
  :class:`~repro.replay.variants.PolicyVariant`, with the guarantee that
  the same trace + the same variant yields byte-identical cycle reports;
  a :class:`~repro.replay.perturb.Perturbation` deterministically rescales
  the recorded workload first for counterfactual what-ifs;
* **search** — :class:`~repro.replay.whatif.WhatIfRunner` fans a grid or
  random sample of variants out over a worker pool (dispatching on the
  trace's type), scores each against the recorded workload, and emits a
  ranked comparison whose winner can seed :mod:`repro.core.autotune` /
  :mod:`repro.core.weight_learning` as offline priors.
"""

from repro.replay.catalog_replay import CatalogReplayer, verify_catalog_deterministic
from repro.replay.catalog_trace import (
    CatalogHistoryRing,
    CatalogTraceRecorder,
    catalog_checkpoint,
    restore_checkpoint,
)
from repro.replay.perturb import Perturbation
from repro.replay.recorder import TraceRecorder
from repro.replay.replayer import ReplayResult, TraceReplayer
from repro.replay.trace import (
    CATALOG_TRACE_EVENT_KINDS,
    TRACE_EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    Trace,
    TraceReader,
    TraceValidationError,
    TraceWriter,
    serialize_cycle_report,
    trace_size_bytes,
)
from repro.replay.variants import PolicyVariant, sample_variants, variant_grid
from repro.replay.whatif import VariantScore, WhatIfReport, WhatIfRunner, build_replayer

__all__ = [
    "CATALOG_TRACE_EVENT_KINDS",
    "CatalogHistoryRing",
    "CatalogReplayer",
    "CatalogTraceRecorder",
    "Perturbation",
    "PolicyVariant",
    "ReplayResult",
    "TRACE_EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "TraceReader",
    "TraceRecorder",
    "TraceReplayer",
    "TraceValidationError",
    "TraceWriter",
    "VariantScore",
    "WhatIfReport",
    "WhatIfRunner",
    "build_replayer",
    "catalog_checkpoint",
    "restore_checkpoint",
    "sample_variants",
    "serialize_cycle_report",
    "trace_size_bytes",
    "variant_grid",
]
