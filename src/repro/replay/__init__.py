"""The Policy Lab: trace capture, deterministic replay, what-if search.

AutoComp's evaluation is fundamentally trace-driven — policies are judged
by replaying realistic write workloads and comparing file-count reduction
against GBHr cost.  This package turns every fleet workload the repo can
generate into a reusable corpus for policy experiments, in three layers:

* **capture** — :class:`~repro.replay.recorder.TraceRecorder` subscribes to
  fleet events (write commits, compactions, cycle summaries) through a
  :class:`~repro.simulation.taps.TapBus` and serializes them to a
  versioned, seed-stamped JSONL trace
  (:mod:`repro.replay.trace`);
* **replay** — :class:`~repro.replay.replayer.TraceReplayer` reconstructs
  fleet state from a trace and re-drives AutoComp cycles under a
  caller-supplied :class:`~repro.replay.variants.PolicyVariant`, with the
  guarantee that the same trace + the same variant yields byte-identical
  cycle reports;
* **search** — :class:`~repro.replay.whatif.WhatIfRunner` fans a grid or
  random sample of variants out over a worker pool, scores each against
  the recorded workload, and emits a ranked comparison whose winner can
  seed :mod:`repro.core.autotune` / :mod:`repro.core.weight_learning`
  as offline priors.
"""

from repro.replay.recorder import TraceRecorder
from repro.replay.replayer import ReplayResult, TraceReplayer
from repro.replay.trace import (
    TRACE_EVENT_KINDS,
    TRACE_SCHEMA_VERSION,
    Trace,
    TraceReader,
    TraceValidationError,
    TraceWriter,
    serialize_cycle_report,
)
from repro.replay.variants import PolicyVariant, sample_variants, variant_grid
from repro.replay.whatif import VariantScore, WhatIfReport, WhatIfRunner

__all__ = [
    "PolicyVariant",
    "ReplayResult",
    "TRACE_EVENT_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Trace",
    "TraceReader",
    "TraceRecorder",
    "TraceReplayer",
    "TraceValidationError",
    "TraceWriter",
    "VariantScore",
    "WhatIfReport",
    "WhatIfRunner",
    "sample_variants",
    "serialize_cycle_report",
    "variant_grid",
]
