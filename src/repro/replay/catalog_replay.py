"""Deterministic catalog-trace replay: rebuild a catalog, re-drive AutoComp.

The catalog counterpart of :class:`~repro.replay.replayer.TraceReplayer`,
covering the paper's §6 setting (a live LST catalog under the CAB
workload) with the same two modes:

* **verbatim** (:meth:`CatalogReplayer.replay_verbatim`) — re-execute
  every recorded event, including the source run's own ``replace``
  (compaction) commits, through the real table/commit machinery.  Because
  commits replay in commit order with the clock pinned to each event's
  recorded time, file ids, versions, snapshots and the final live file
  layout match the source catalog exactly.
* **what-if** (:meth:`CatalogReplayer.replay`) — re-execute only the
  *workload* (DDL + non-rewrite commits) and let a
  :class:`~repro.replay.variants.PolicyVariant` make the compaction
  decisions, one synchronous OODA cycle per recorded ``cycle`` marker
  (honouring ``variant.trigger_interval_days`` as an every-Nth-marker
  cadence).  Catalog replay is RNG-free — compaction planning, execution
  and costing are all deterministic functions of table and cluster state —
  so the same trace + the same variant yields byte-identical cycle
  reports, and recording a run that was itself driven through
  ``variant.build_catalog_pipeline`` with synchronous cycles replays its
  own reports back byte-for-byte.

Counterfactual caveat: under a *different* policy (or a
:class:`~repro.replay.perturb.Perturbation`), replayed compactions rewrite
different files than the source run did, so later recorded removals may
name file ids the counterfactual catalog no longer holds.  Those removals
are applied best-effort (missing ids skipped) — mirroring how the live
writer would have retried against fresh metadata — and the replay stays
fully deterministic.
"""

from __future__ import annotations

import os
from typing import IO

from repro.catalog.catalog import Catalog
from repro.catalog.serde import parse_cluster, parse_policy, parse_schema, parse_spec
from repro.core.pipeline import CycleReport
from repro.engine.cluster import Cluster
from repro.errors import ValidationError
from repro.replay.catalog_trace import restore_checkpoint
from repro.replay.replayer import ReplayResult
from repro.replay.trace import Trace, TraceReader
from repro.replay.variants import PolicyVariant
from repro.simulation.clock import SimClock


class CatalogReplayer:
    """Replays one parsed catalog trace, verbatim or under policy variants.

    Args:
        trace: a parsed :class:`~repro.replay.trace.Trace` of type
            ``catalog``, or anything :class:`~repro.replay.trace.TraceReader`
            accepts (a path or a text stream), which is read and validated
            here.
        cluster: compaction-cluster override; defaults to the cluster
            serialized in the trace header (falling back to a stock
            3-executor cluster when the header carries none).
        cost_model: engine cost-model override (None = defaults).
        cycle_interval_s: synthetic cycle cadence for traces recorded
            *without* AutoComp running (no ``cycle`` markers): what-if
            replay then runs a cycle each time the recorded clock crosses
            a multiple of this interval.  Ignored when the trace has
            markers.
    """

    def __init__(
        self,
        trace: Trace | str | os.PathLike | IO[str],
        cluster: Cluster | None = None,
        cost_model=None,
        cycle_interval_s: float | None = None,
    ) -> None:
        if not isinstance(trace, Trace):
            trace = TraceReader(trace).read()
        if trace.trace_type != "catalog":
            raise ValidationError(
                f"CatalogReplayer needs a catalog trace, got {trace.trace_type!r} "
                "(use TraceReplayer for fleet traces)"
            )
        if cycle_interval_s is not None and cycle_interval_s <= 0:
            raise ValidationError("cycle_interval_s must be positive")
        self.trace = trace
        self._cluster_override = cluster
        self.cost_model = cost_model
        self.cycle_interval_s = cycle_interval_s
        self._has_markers = any(e["kind"] == "cycle" for e in trace.events)

    # --- construction helpers ---------------------------------------------------

    def _make_cluster(self) -> Cluster:
        """A fresh (contention-free) compaction cluster for one replay."""
        source = self._cluster_override
        if source is not None:
            return Cluster(
                name=source.name,
                executors=source.executors,
                executor_memory_gb=source.executor_memory_gb,
                cores_per_executor=source.cores_per_executor,
                query_slots=source.query_slots,
                contention_coeff=source.contention_coeff,
            )
        info = self.trace.header.get("catalog", {}).get("cluster")
        if info:
            return parse_cluster(info)
        return Cluster("compaction-replay", executors=3)

    def _fresh_catalog(self) -> Catalog:
        warehouse = self.trace.header.get("catalog", {}).get("warehouse", "/data")
        return Catalog(clock=SimClock(), warehouse=warehouse)

    # --- event application --------------------------------------------------------

    @staticmethod
    def _advance(catalog: Catalog, t: float) -> None:
        if t > catalog.clock.now:
            catalog.clock.advance_to(t)

    @staticmethod
    def _apply_create(catalog: Catalog, event: dict) -> None:
        catalog.create_table(
            f"{event['database']}.{event['table']}",
            schema=parse_schema(event["schema"]),
            spec=parse_spec(event["spec"]),
            table_format=event["format"],
            properties=dict(event["properties"]),
            policy=parse_policy(event["policy"]),
        )

    @staticmethod
    def _apply_commit(catalog: Catalog, event: dict) -> int:
        """Re-execute one recorded commit; returns removals skipped.

        Removals resolve against the table's *current* live files: under
        verbatim replay (and same-policy what-if) every recorded id is
        live by induction; under counterfactual policies missing ids are
        skipped deterministically.
        """
        table = catalog.load_table(f"{event['database']}.{event['table']}")
        live_by_id = {f.file_id: f for f in table.live_files()}
        op = event["op"]
        skipped = 0
        if op == "append":
            txn = table.new_append()
            for partition, size in event["added"]:
                txn.add_file(size, partition=tuple(partition))
        elif op in ("overwrite", "delete"):
            txn = table.new_overwrite()
            for file_id in event["removed"]:
                data_file = live_by_id.get(file_id)
                if data_file is None:
                    skipped += 1
                    continue
                txn.delete_file(data_file)
            for partition, size in event["added"]:
                txn.add_file(size, partition=tuple(partition))
        elif op == "rowdelta":
            txn = table.new_row_delta()
            for partition, size in event["added"]:
                txn.add_file(size, partition=tuple(partition))
            for partition, size, refs in event["deletes"]:
                partition = tuple(partition)
                references = [live_by_id[r] for r in refs if r in live_by_id]
                skipped += len(refs) - len(references)
                if not references:
                    continue
                # add_deletes takes the delete file's partition from the
                # first reference; order a matching one first when present.
                references.sort(
                    key=lambda f, p=partition: (f.partition != p, f.file_id)
                )
                txn.add_deletes(size, references)
        elif op == "replace":
            txn = table.new_rewrite()
            sources_by_partition: dict[tuple, list] = {}
            for file_id in event["removed"]:
                data_file = live_by_id.get(file_id)
                if data_file is None:
                    skipped += 1
                    continue
                sources_by_partition.setdefault(data_file.partition, []).append(data_file)
            # Outputs arrive in materialization order; group them by
            # partition preserving first appearance so re-staging allocates
            # the exact file ids the source rewrite did.
            outputs_by_partition: dict[tuple, list[int]] = {}
            for partition, size in event["added"]:
                outputs_by_partition.setdefault(tuple(partition), []).append(size)
            for partition, output_sizes in outputs_by_partition.items():
                sources = sorted(
                    sources_by_partition.get(partition, []), key=lambda f: f.file_id
                )
                if not sources:
                    skipped += len(output_sizes)
                    continue
                txn.rewrite(sources, output_sizes)
        else:  # pragma: no cover - reader validation rejects unknown ops
            raise ValidationError(f"unknown commit operation {op!r}")
        txn.commit()
        return skipped

    # --- verbatim replay --------------------------------------------------------

    def replay_verbatim(self) -> Catalog:
        """Reconstruct the source run's final catalog state exactly.

        Applies every recorded event — DDL, user commits and the source
        run's own ``replace`` commits — and returns the resulting catalog.
        Per-table live file layouts (ids, sizes, partitions), versions and
        commit counters match the recorded catalog bit for bit.
        """
        catalog = self._fresh_catalog()
        for index, event in enumerate(self.trace.events):
            kind = event["kind"]
            self._advance(catalog, float(event["t"]))
            if kind == "db_create":
                catalog.create_database(event["name"], quota_objects=event["quota_objects"])
            elif kind == "table_create":
                self._apply_create(catalog, event)
            elif kind == "table_commit":
                self._apply_commit(catalog, event)
            elif kind == "checkpoint" and index == 0:
                restore_checkpoint(catalog, event)
            # cycle events (and redundant mid-trace checkpoints) are
            # reference metadata under verbatim replay.
        return catalog

    # --- what-if replay ---------------------------------------------------------

    def replay(self, variant: PolicyVariant, perturb=None) -> ReplayResult:
        """Re-drive the recorded workload under ``variant``'s policy.

        Recorded ``replace`` commits and cycle reports are ignored; at
        every ``variant.trigger_interval_days``-th recorded cycle marker
        (or synthetic ``cycle_interval_s`` boundary for marker-less
        traces), one synchronous OODA cycle runs against the reconstructed
        catalog through ``variant.build_catalog_pipeline``.

        Returns:
            The :class:`~repro.replay.replayer.ReplayResult`, whose
            :meth:`~repro.replay.replayer.ReplayResult.report_bytes` is
            identical across repeated calls with an equal variant.
        """
        return self._replay_workload(variant, perturb, run_cycles=True)

    def replay_baseline(self, perturb=None) -> ReplayResult:
        """The no-compaction reference replay (workload only, no cycles)."""
        baseline = PolicyVariant(name="baseline-none", k=0)
        return self._replay_workload(baseline, perturb, run_cycles=False)

    def _replay_workload(
        self, variant: PolicyVariant, perturb, run_cycles: bool
    ) -> ReplayResult:
        catalog = self._fresh_catalog()
        pipeline = (
            variant.build_catalog_pipeline(
                catalog, self._make_cluster(), cost_model=self.cost_model
            )
            if run_cycles
            else None
        )
        try:
            return self._drive_workload(catalog, pipeline, variant, perturb, run_cycles)
        finally:
            # Sharded variants (n_shards > 1) own worker pools; release
            # them per replay so sweeps never strand threads.
            close = getattr(pipeline, "close", None)
            if close is not None:
                close()

    def _drive_workload(
        self, catalog, pipeline, variant: PolicyVariant, perturb, run_cycles: bool
    ) -> ReplayResult:
        result = ReplayResult(variant=variant)
        markers = 0
        files_initial_pending = True
        use_synthetic = not self._has_markers and self.cycle_interval_s is not None
        next_synthetic = self.cycle_interval_s if use_synthetic else None

        def total_files() -> int:
            return sum(table.data_file_count for table in catalog.all_tables())

        def run_cycle(now: float) -> None:
            report = pipeline.run_cycle(now=now)
            if not isinstance(report, CycleReport):
                # Sharded variants return a ShardedCycleReport; the merged
                # fleet report is the replay's unit of comparison.
                report = report.report
            result.reports.append(report)

        for index, event in enumerate(self.trace.events):
            kind = event["kind"]
            t = float(event["t"])
            if use_synthetic and run_cycles:
                while next_synthetic is not None and t >= next_synthetic:
                    if files_initial_pending:
                        result.files_initial = total_files()
                        files_initial_pending = False
                    self._advance(catalog, next_synthetic)
                    markers += 1
                    result.days = markers
                    if markers % variant.trigger_interval_days == 0:
                        run_cycle(catalog.clock.now)
                    next_synthetic += self.cycle_interval_s
            self._advance(catalog, t)
            if kind == "db_create":
                catalog.create_database(event["name"], quota_objects=event["quota_objects"])
            elif kind == "table_create":
                self._apply_create(catalog, event)
            elif kind == "checkpoint":
                if index == 0:
                    restore_checkpoint(catalog, event)
            elif kind == "table_commit":
                if event["op"] == "replace":
                    continue  # the recorded policy's output, not workload
                if perturb is not None:
                    event = perturb.transform_commit(event)
                self._apply_commit(catalog, event)
            elif kind == "cycle":
                if files_initial_pending:
                    result.files_initial = total_files()
                    files_initial_pending = False
                markers += 1
                result.days = markers
                if run_cycles and markers % variant.trigger_interval_days == 0:
                    run_cycle(catalog.clock.now)
        if files_initial_pending:
            result.files_initial = total_files()
        result.files_final = total_files()
        result.files_below_threshold_final = sum(
            table.small_file_count() for table in catalog.all_tables()
        )
        return result


def verify_catalog_deterministic(
    trace: Trace | str | os.PathLike, variant: PolicyVariant
) -> bool:
    """Replay ``trace`` under ``variant`` twice; True iff byte-identical."""
    first = CatalogReplayer(trace).replay(variant)
    second = CatalogReplayer(trace).replay(variant)
    return first.report_bytes() == second.report_bytes()
