"""The versioned JSONL trace format of the Policy Lab.

A trace is a newline-delimited sequence of JSON records.  The first record
is always a ``header`` carrying the schema version, the source run's root
seed and a ``trace_type``; every following record is an *event*.

Two trace types exist as of schema v2:

* ``fleet`` (the only type in schema v1) — events produced by the
  vectorised §7 fleet simulation:

  * ``onboard`` — a batch of tables joining the fleet, with the full
    per-table state columns (:data:`~repro.fleet.model.TABLE_COLUMNS`);
  * ``day`` — one day of write commits, sparse per-class file deltas;
  * ``compact`` — one realised compaction with the exact post-rewrite state;
  * ``cycle`` — one control-plane cycle summary (reference metadata).

* ``catalog`` (new in v2) — events produced by the live §6 LST-catalog
  plane (:class:`~repro.catalog.catalog.Catalog` and
  :class:`~repro.core.pipeline.AutoCompPipeline` publish them on a
  :class:`~repro.simulation.taps.TapBus`), each stamped with the simulated
  time ``t`` it occurred at:

  * ``db_create`` / ``table_create`` — catalog DDL, with full
    schema/spec/policy serialization so a replayer recreates the table
    byte-for-byte;
  * ``table_commit`` — one committed transaction's exact file delta
    (added files in materialization order, removed file ids, MoR delete
    files) plus the post-commit ``table.version`` freshness token;
    compactions are the ``op == "replace"`` commits;
  * ``cycle`` — one full serialized OODA
    :class:`~repro.core.pipeline.CycleReport` — both reference metadata
    and the cadence marker what-if replay re-runs its own cycles at;
  * ``checkpoint`` — a frozen per-table catalog layout written at segment
    rotations, letting a replayer start mid-history (the
    :class:`~repro.replay.catalog_trace.CatalogHistoryRing` ring-buffer
    contract).

Records use canonical JSON (sorted keys, no whitespace), so a trace is
byte-reproducible from the same source run and diffs cleanly.

**Chunked traces** (v2): month-scale traces grow without bound as a single
file, so :class:`TraceWriter` can *rotate* — events stream into numbered
segment files (optionally gzip-compressed with a pinned mtime, so
compressed traces stay byte-reproducible) while the main file becomes a
manifest holding the header (flagged ``chunked``) plus one ``segment``
index record per sealed segment.  :class:`TraceReader` follows the index
transparently: a parsed :class:`Trace` looks identical whether it came
from one file or thirty segments.

:class:`TraceReader` validates schema version, record shape and event
ordering (fleet days / catalog times must be non-decreasing, the header
must come first) before anything downstream consumes the trace.  Schema
v1 traces remain readable.
"""

from __future__ import annotations

import gzip
import io
import json
import os
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

from repro.errors import ReproError, ValidationError
from repro.fleet.model import COMPACT_STATE_FIELDS, FleetConfig, TABLE_COLUMNS
from repro.simulation.taps import CATALOG_EVENT_KINDS, FLEET_EVENT_KINDS

#: Bump when the record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 2

#: Schema versions this reader still accepts (v1 = fleet-only, no
#: ``trace_type``, no chunking).
SUPPORTED_SCHEMAS = (1, 2)

#: The two workload planes a trace can capture.
TRACE_TYPES = ("fleet", "catalog")

#: Every event kind a *fleet* trace may contain (the header is not an
#: event) — exactly what the fleet publishes, so recorder subscriptions
#: and reader validation can never drift from the producers.
TRACE_EVENT_KINDS = FLEET_EVENT_KINDS

#: Every event kind a *catalog* trace may contain: the published catalog
#: events plus the recorder-written ``checkpoint``.
CATALOG_TRACE_EVENT_KINDS = CATALOG_EVENT_KINDS + ("checkpoint",)

#: Transaction operations a ``table_commit`` event may carry.
COMMIT_OPERATIONS = ("append", "overwrite", "delete", "rowdelta", "replace")


class TraceValidationError(ReproError):
    """A trace failed schema or ordering validation.

    Attributes:
        line: 1-based logical record number of the offending record
            (0 = whole file; for chunked traces the count runs across the
            manifest and its segments in read order).
    """

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"trace line {line}: {message}" if line else message)
        self.line = line


def canonical_json(record: dict) -> str:
    """Canonical single-line JSON: sorted keys, minimal separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def serialize_cycle_report(report) -> dict:
    """A :class:`~repro.core.pipeline.CycleReport` as a canonical dict.

    Every decision-relevant field is included — counts, the selection in
    rank order, and each execution result — so two replays agree on this
    serialization iff they made identical decisions with identical
    outcomes.  :meth:`ReplayResult.report_bytes` hashes replays down to
    these dicts for the byte-identical-replay guarantee.
    """
    return {
        "cycle_index": report.cycle_index,
        "started_at": report.started_at,
        "candidates_generated": report.candidates_generated,
        "after_stats_filters": report.after_stats_filters,
        "after_trait_filters": report.after_trait_filters,
        "ranked": report.ranked,
        "selected": [str(key) for key in report.selected],
        "results": [
            {
                "candidate": str(result.candidate),
                "success": result.success,
                "skipped": result.skipped,
                "started_at": result.started_at,
                "finished_at": result.finished_at,
                "gbhr": result.gbhr,
                "files_before": result.files_before,
                "files_after": result.files_after,
                "estimated_reduction": result.estimated_reduction,
                "actual_reduction": result.actual_reduction,
                "rewritten_bytes": result.rewritten_bytes,
                "estimated_gbhr": result.estimated_gbhr,
            }
            for result in report.results
        ],
    }


@dataclass
class Trace:
    """A parsed, validated trace: header plus events in capture order."""

    header: dict
    events: list[dict] = field(default_factory=list)

    @property
    def seed(self) -> int:
        """The source run's root seed."""
        return int(self.header["seed"])

    @property
    def schema(self) -> int:
        """The trace's schema version."""
        return int(self.header["schema"])

    @property
    def trace_type(self) -> str:
        """``fleet`` or ``catalog`` (v1 traces are always fleet)."""
        return str(self.header.get("trace_type", "fleet"))

    def config(self) -> FleetConfig:
        """The source run's :class:`~repro.fleet.model.FleetConfig`.

        Raises:
            ValidationError: for catalog traces, which carry catalog
                metadata instead of a fleet config.
        """
        if self.trace_type != "fleet":
            raise ValidationError("catalog traces carry no FleetConfig")
        return FleetConfig(**self.header["config"])

    def events_of(self, kind: str) -> list[dict]:
        """All events of one kind, in capture order."""
        return [event for event in self.events if event["kind"] == kind]

    @property
    def days(self) -> int:
        """Number of recorded write days (fleet) or cycle markers (catalog)."""
        kind = "day" if self.trace_type == "fleet" else "cycle"
        return sum(1 for event in self.events if event["kind"] == kind)

    def ingested_bytes(self, perturb=None) -> int:
        """Total bytes the recorded workload wrote (onboard backlog excluded).

        For fleet traces, derived from the ``day`` events exactly as the
        fleet model derives byte deltas from file deltas; for catalog
        traces, the sum of added-file sizes across non-rewrite commits.
        Either way it is the denominator of the what-if runner's
        write-amplification metric.  ``perturb`` (a
        :class:`~repro.replay.perturb.Perturbation` or compatible hook)
        is applied to each workload event first, so perturbed replays are
        scored against the workload they actually saw.
        """
        total = 0
        if self.trace_type == "fleet":
            from repro.fleet.model import LARGE_MEAN_BYTES, MID_MEAN_BYTES, TINY_MEAN_BYTES

            for event in self.events:
                if event["kind"] != "day":
                    continue
                if perturb is not None:
                    event = perturb.transform_day(event)
                total += sum(event["tiny"]) * TINY_MEAN_BYTES
                total += sum(event["mid"]) * MID_MEAN_BYTES
                total += sum(event["large"]) * LARGE_MEAN_BYTES
            return total
        for event in self.events:
            if event["kind"] != "table_commit" or event["op"] == "replace":
                continue
            if perturb is not None:
                event = perturb.transform_commit(event)
            total += sum(size for _, size in event["added"])
            total += sum(size for _, size, _ in event["deletes"])
        return total


def trace_size_bytes(path: str | os.PathLike) -> int:
    """On-disk bytes of a trace: the file itself plus any segments.

    For chunked traces this follows the manifest's segment index; for
    single-file traces it is just the file size.  Benches use it to
    compare trace formats fairly.
    """
    path = os.fspath(path)
    total = os.path.getsize(path)
    base_dir = os.path.dirname(path) or "."
    with open(path, "r", encoding="utf-8") as stream:
        try:
            header = json.loads(stream.readline())
        except json.JSONDecodeError:
            return total
        if not (isinstance(header, dict) and header.get("chunked") is True):
            # Only chunked manifests carry segment records; a plain trace
            # is just its own file size — no need to scan every line.
            return total
        for line in stream:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(record, dict) and record.get("kind") == "segment":
                segment = os.path.join(base_dir, record["path"])
                if os.path.exists(segment):
                    total += os.path.getsize(segment)
    return total


class TraceWriter:
    """Streams trace records to a file path or text stream.

    Args:
        sink: a path (opened/truncated on first write, closed by
            :meth:`close`) or an open text stream (left open).
        segment_records: when set, the writer runs *chunked*: events go to
            numbered segment files next to the manifest, auto-rotating
            every ``segment_records`` events.  Requires a path sink.
        compress: gzip each segment (deterministically — the gzip mtime is
            pinned to 0, so identical records yield identical bytes).
            Implies chunked mode; requires a path sink.

    In chunked mode the main file holds the header (stamped with a
    ``chunked`` flag) followed by one ``segment`` index record per sealed
    segment; :meth:`rotate` seals the current segment explicitly (the
    :class:`~repro.replay.catalog_trace.CatalogTraceRecorder` rotates at
    checkpoint boundaries).
    """

    def __init__(
        self,
        sink: str | os.PathLike | IO[str],
        segment_records: int | None = None,
        compress: bool = False,
    ) -> None:
        if segment_records is not None and segment_records <= 0:
            raise ValidationError("segment_records must be positive")
        self._segment_records = segment_records
        self._compress = bool(compress)
        self._chunked = segment_records is not None or self._compress
        if isinstance(sink, (str, os.PathLike)):
            self._path: str | None = os.fspath(sink)
            self._stream: IO[str] = open(self._path, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            if self._chunked:
                raise ValidationError(
                    "chunked/compressed traces need a file-path sink "
                    "(segments are written next to the manifest)"
                )
            self._path = None
            self._stream = sink
            self._owns_stream = False
        self.records_written = 0
        self.segments_sealed = 0
        self._segment_index = 0
        self._segment_stream: IO[str] | None = None
        self._segment_raw: IO[bytes] | None = None
        self._segment_name: str | None = None
        self._segment_count = 0

    @property
    def chunked(self) -> bool:
        """Whether this writer splits events into segment files."""
        return self._chunked

    def write(self, record: dict) -> None:
        """Append one record as a canonical JSON line."""
        if self._chunked and record.get("kind") != "header":
            self._write_segment_record(record)
        else:
            if self._chunked:
                record = {**record, "chunked": True}
            self._stream.write(canonical_json(record))
            self._stream.write("\n")
        self.records_written += 1

    # --- chunking ---------------------------------------------------------------

    def _open_segment(self) -> None:
        assert self._path is not None
        suffix = ".gz" if self._compress else ""
        self._segment_name = (
            f"{os.path.basename(self._path)}.seg{self._segment_index:04d}{suffix}"
        )
        segment_path = os.path.join(os.path.dirname(self._path) or ".", self._segment_name)
        if self._compress:
            raw = open(segment_path, "wb")
            # filename="" and mtime=0 pin the gzip header, keeping
            # compressed traces byte-reproducible across runs.
            gz = gzip.GzipFile(filename="", mode="wb", fileobj=raw, mtime=0)
            self._segment_raw = raw
            self._segment_stream = io.TextIOWrapper(gz, encoding="utf-8", newline="")
        else:
            self._segment_raw = None
            self._segment_stream = open(segment_path, "w", encoding="utf-8")
        self._segment_count = 0

    def _write_segment_record(self, record: dict) -> None:
        if self._segment_stream is None:
            self._open_segment()
        assert self._segment_stream is not None
        self._segment_stream.write(canonical_json(record))
        self._segment_stream.write("\n")
        self._segment_count += 1
        if self._segment_records is not None and self._segment_count >= self._segment_records:
            self.rotate()

    def rotate(self) -> None:
        """Seal the current segment and append its index record (chunked only).

        A no-op when no events were written since the last rotation, so
        callers can rotate on a schedule without creating empty segments.

        Raises:
            ValidationError: on a non-chunked writer.
        """
        if not self._chunked:
            raise ValidationError(
                "rotate() requires a chunked TraceWriter "
                "(pass segment_records= or compress=)"
            )
        if self._segment_stream is None:
            return
        self._segment_stream.close()
        if self._segment_raw is not None:
            self._segment_raw.close()
        self._stream.write(
            canonical_json(
                {
                    "kind": "segment",
                    "path": self._segment_name,
                    "records": self._segment_count,
                    "codec": "gzip" if self._compress else "none",
                }
            )
        )
        self._stream.write("\n")
        self._segment_stream = None
        self._segment_raw = None
        self._segment_index += 1
        self.segments_sealed += 1

    def close(self) -> None:
        """Seal any open segment, flush, and close owned streams."""
        if self._chunked and self._segment_stream is not None:
            self.rotate()
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class TraceReader:
    """Parses and validates a JSONL trace (single-file or chunked).

    Validation covers structure (header first, supported schema version,
    known event kinds per trace type, required fields per kind) and
    ordering (fleet event days / catalog event times non-decreasing,
    onboard column lengths consistent), failing fast with the offending
    record number.  Chunked traces must be read from their manifest path;
    segment files are followed transparently and their declared record
    counts verified.
    """

    def __init__(self, source: str | os.PathLike | IO[str] | Iterable[str]) -> None:
        self._source = source

    def _segment_lines(self, record: dict, base_dir: str, line: int) -> Iterator[str]:
        name = record.get("path")
        if not isinstance(name, str) or not name:
            raise TraceValidationError("segment record needs a 'path'", line)
        segment_path = os.path.join(base_dir, name)
        if not os.path.exists(segment_path):
            raise TraceValidationError(f"segment file {name!r} is missing", line)
        codec = record.get("codec", "none")
        count = 0
        if codec == "gzip":
            stream: IO[str] = io.TextIOWrapper(
                gzip.open(segment_path, "rb"), encoding="utf-8"
            )
        elif codec == "none":
            stream = open(segment_path, "r", encoding="utf-8")
        else:
            raise TraceValidationError(f"unknown segment codec {codec!r}", line)
        with stream:
            for segment_line in stream:
                count += 1
                yield segment_line
        declared = record.get("records")
        if isinstance(declared, int) and declared != count:
            raise TraceValidationError(
                f"segment {name!r} holds {count} records, manifest declares {declared}",
                line,
            )

    def _lines(self) -> Iterator[str]:
        source = self._source
        if isinstance(source, (str, os.PathLike)):
            path = os.fspath(source)
            base_dir = os.path.dirname(path) or "."
            with open(path, "r", encoding="utf-8") as stream:
                first = stream.readline()
                if not first:
                    return
                yield first
                chunked = False
                try:
                    head = json.loads(first)
                    chunked = isinstance(head, dict) and head.get("chunked") is True
                except json.JSONDecodeError:
                    pass  # read() reports the malformed header itself
                if not chunked:
                    yield from stream
                    return
                line_number = 1
                for manifest_line in stream:
                    line_number += 1
                    stripped = manifest_line.strip()
                    if not stripped:
                        continue
                    try:
                        record = json.loads(stripped)
                    except json.JSONDecodeError:
                        yield manifest_line  # read() reports it with context
                        continue
                    if isinstance(record, dict) and record.get("kind") == "segment":
                        yield from self._segment_lines(record, base_dir, line_number)
                    else:
                        yield manifest_line
        elif isinstance(source, io.TextIOBase):
            # Rewind seekable streams so repeated reads see the whole
            # trace; pipes and chained readers are consumed from their
            # current position instead of raising on seek().
            if source.seekable():
                source.seek(0)
            yield from source
        else:
            yield from source

    def read(self) -> Trace:
        """Parse the whole trace, validating as it goes.

        Raises:
            TraceValidationError: on any schema or ordering violation.
        """
        header: dict | None = None
        trace_type = "fleet"
        events: list[dict] = []
        last_marker: float = float("-inf")
        for line_number, line in enumerate(self._lines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceValidationError(f"invalid JSON: {error}", line_number) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceValidationError("record must be an object with a 'kind'", line_number)
            kind = record["kind"]
            if header is None:
                if kind != "header":
                    raise TraceValidationError(
                        f"first record must be the header, got {kind!r}", line_number
                    )
                self._validate_header(record, line_number)
                header = record
                trace_type = str(record.get("trace_type", "fleet"))
                continue
            if kind == "header":
                raise TraceValidationError("duplicate header", line_number)
            if kind == "segment":
                # Path-based reads splice segments out in _lines(); seeing
                # one here means the manifest was fed in as a raw stream.
                raise TraceValidationError(
                    "chunked traces must be read from their manifest path "
                    "(segment records cannot be resolved from a stream)",
                    line_number,
                )
            expected = (
                CATALOG_TRACE_EVENT_KINDS if trace_type == "catalog" else TRACE_EVENT_KINDS
            )
            if kind not in expected:
                raise TraceValidationError(
                    f"unknown event kind {kind!r}; expected one of {expected}",
                    line_number,
                )
            if trace_type == "catalog":
                marker = self._validate_catalog_event(record, line_number)
            else:
                marker = float(self._validate_event(record, line_number))
            if marker < last_marker:
                axis = "times" if trace_type == "catalog" else "days"
                raise TraceValidationError(
                    f"event {axis} must be non-decreasing "
                    f"({marker:g} after {last_marker:g})",
                    line_number,
                )
            last_marker = marker
            events.append(record)
        if header is None:
            raise TraceValidationError("empty trace (no header)")
        return Trace(header=header, events=events)

    @staticmethod
    def _validate_header(record: dict, line: int) -> None:
        schema = record.get("schema")
        if schema not in SUPPORTED_SCHEMAS:
            raise TraceValidationError(
                f"unsupported schema version {schema!r} "
                f"(this reader supports {SUPPORTED_SCHEMAS})",
                line,
            )
        if "seed" not in record:
            raise TraceValidationError("header missing 'seed'", line)
        trace_type = record.get("trace_type", "fleet")
        if trace_type not in TRACE_TYPES:
            raise TraceValidationError(
                f"unknown trace_type {trace_type!r}; expected one of {TRACE_TYPES}",
                line,
            )
        if schema == 1 and trace_type != "fleet":
            raise TraceValidationError("schema v1 traces are always fleet traces", line)
        if trace_type == "fleet":
            if "config" not in record:
                raise TraceValidationError("header missing 'config'", line)
            try:
                FleetConfig(**record["config"])
            except TypeError as error:
                raise TraceValidationError(f"header config invalid: {error}", line) from None
        else:
            if not isinstance(record.get("catalog"), dict):
                raise TraceValidationError(
                    "catalog trace header needs a 'catalog' mapping", line
                )

    @staticmethod
    def _validate_event(record: dict, line: int) -> int:
        kind = record["kind"]
        day = record.get("day")
        if not isinstance(day, int) or day < 0:
            raise TraceValidationError(f"{kind} event needs a non-negative integer day", line)
        if kind == "onboard":
            columns = record.get("columns")
            if not isinstance(columns, dict):
                raise TraceValidationError("onboard event needs a columns mapping", line)
            missing = [name for name in TABLE_COLUMNS if name not in columns]
            if missing:
                raise TraceValidationError(f"onboard columns missing {missing}", line)
            lengths = {len(columns[name]) for name in TABLE_COLUMNS}
            if len(lengths) != 1:
                raise TraceValidationError(
                    f"onboard column lengths differ: {sorted(lengths)}", line
                )
            if record.get("count") != lengths.pop():
                raise TraceValidationError("onboard count does not match column length", line)
        elif kind == "day":
            for name in ("indices", "tiny", "mid", "large"):
                if not isinstance(record.get(name), list):
                    raise TraceValidationError(f"day event needs list {name!r}", line)
            n = len(record["indices"])
            if any(len(record[name]) != n for name in ("tiny", "mid", "large")):
                raise TraceValidationError("day event delta lists must align", line)
        elif kind == "compact":
            state = record.get("state")
            if not isinstance(state, dict):
                raise TraceValidationError("compact event needs a state mapping", line)
            missing = [name for name in COMPACT_STATE_FIELDS if name not in state]
            if missing:
                raise TraceValidationError(f"compact state missing {missing}", line)
            if not isinstance(record.get("index"), int):
                raise TraceValidationError("compact event needs an integer index", line)
        return day

    @staticmethod
    def _validate_catalog_event(record: dict, line: int) -> float:
        kind = record["kind"]
        t = record.get("t")
        if not isinstance(t, (int, float)) or t < 0:
            raise TraceValidationError(
                f"{kind} event needs a non-negative time 't'", line
            )
        if kind == "db_create":
            if not record.get("name"):
                raise TraceValidationError("db_create event needs a 'name'", line)
        elif kind == "table_create":
            for name in ("database", "table", "format"):
                if not record.get(name):
                    raise TraceValidationError(f"table_create event needs {name!r}", line)
            for name in ("schema", "spec"):
                if not isinstance(record.get(name), list):
                    raise TraceValidationError(f"table_create event needs list {name!r}", line)
            for name in ("properties", "policy"):
                if not isinstance(record.get(name), dict):
                    raise TraceValidationError(
                        f"table_create event needs mapping {name!r}", line
                    )
        elif kind == "table_commit":
            for name in ("database", "table"):
                if not record.get(name):
                    raise TraceValidationError(f"table_commit event needs {name!r}", line)
            if record.get("op") not in COMMIT_OPERATIONS:
                raise TraceValidationError(
                    f"table_commit op must be one of {COMMIT_OPERATIONS}, "
                    f"got {record.get('op')!r}",
                    line,
                )
            for name in ("added", "deletes", "removed"):
                if not isinstance(record.get(name), list):
                    raise TraceValidationError(f"table_commit event needs list {name!r}", line)
            version = record.get("version")
            if not isinstance(version, int) or version < 1:
                raise TraceValidationError(
                    "table_commit event needs a positive integer version", line
                )
        elif kind == "cycle":
            if not isinstance(record.get("report"), dict):
                raise TraceValidationError(
                    "catalog cycle event needs a 'report' mapping", line
                )
        elif kind == "checkpoint":
            if not isinstance(record.get("databases"), list):
                raise TraceValidationError("checkpoint event needs a 'databases' list", line)
        return float(t)
