"""The versioned JSONL trace format of the Policy Lab.

A trace is a newline-delimited sequence of JSON records.  The first record
is always a ``header`` carrying the schema version, the source run's root
seed and its :class:`~repro.fleet.model.FleetConfig`; every following
record is an *event* stamped with the fleet day it occurred on:

* ``onboard`` — a batch of tables joining the fleet, with the full
  per-table state columns (:data:`~repro.fleet.model.TABLE_COLUMNS`) so a
  replayer rebuilds the exact population the source run drew;
* ``day`` — one day of write commits, sparse: only tables that wrote
  appear, with their per-class file deltas (byte deltas are derived
  deterministically from file counts, so they are not stored);
* ``compact`` — one realised compaction: the table's exact post-rewrite
  state plus the application's estimate/actual pairs;
* ``cycle`` — one control-plane cycle summary (reference metadata; what-if
  replay re-derives its own cycles).

Records use canonical JSON (sorted keys, no whitespace), so a trace is
byte-reproducible from the same source run and diffs cleanly.

:class:`TraceReader` validates schema version, record shape and event
ordering (days must be non-decreasing, the header must come first) before
anything downstream consumes the trace.
"""

from __future__ import annotations

import io
import json
import os
from dataclasses import dataclass, field
from typing import IO, Iterable, Iterator

from repro.errors import ReproError
from repro.fleet.model import COMPACT_STATE_FIELDS, FleetConfig, TABLE_COLUMNS
from repro.simulation.taps import FLEET_EVENT_KINDS

#: Bump when the record layout changes incompatibly.
TRACE_SCHEMA_VERSION = 1

#: Every event kind a trace may contain (the header is not an event) —
#: exactly what the fleet publishes, so recorder subscriptions and reader
#: validation can never drift from the producers.
TRACE_EVENT_KINDS = FLEET_EVENT_KINDS


class TraceValidationError(ReproError):
    """A trace failed schema or ordering validation.

    Attributes:
        line: 1-based line number of the offending record (0 = whole file).
    """

    def __init__(self, message: str, line: int = 0) -> None:
        super().__init__(f"trace line {line}: {message}" if line else message)
        self.line = line


def canonical_json(record: dict) -> str:
    """Canonical single-line JSON: sorted keys, minimal separators."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def serialize_cycle_report(report) -> dict:
    """A :class:`~repro.core.pipeline.CycleReport` as a canonical dict.

    Every decision-relevant field is included — counts, the selection in
    rank order, and each execution result — so two replays agree on this
    serialization iff they made identical decisions with identical
    outcomes.  :meth:`ReplayResult.report_bytes` hashes replays down to
    these dicts for the byte-identical-replay guarantee.
    """
    return {
        "cycle_index": report.cycle_index,
        "started_at": report.started_at,
        "candidates_generated": report.candidates_generated,
        "after_stats_filters": report.after_stats_filters,
        "after_trait_filters": report.after_trait_filters,
        "ranked": report.ranked,
        "selected": [str(key) for key in report.selected],
        "results": [
            {
                "candidate": str(result.candidate),
                "success": result.success,
                "skipped": result.skipped,
                "started_at": result.started_at,
                "finished_at": result.finished_at,
                "gbhr": result.gbhr,
                "files_before": result.files_before,
                "files_after": result.files_after,
                "estimated_reduction": result.estimated_reduction,
                "actual_reduction": result.actual_reduction,
                "rewritten_bytes": result.rewritten_bytes,
                "estimated_gbhr": result.estimated_gbhr,
            }
            for result in report.results
        ],
    }


@dataclass
class Trace:
    """A parsed, validated trace: header plus events in capture order."""

    header: dict
    events: list[dict] = field(default_factory=list)

    @property
    def seed(self) -> int:
        """The source run's root seed."""
        return int(self.header["seed"])

    @property
    def schema(self) -> int:
        """The trace's schema version."""
        return int(self.header["schema"])

    def config(self) -> FleetConfig:
        """The source run's :class:`~repro.fleet.model.FleetConfig`."""
        return FleetConfig(**self.header["config"])

    def events_of(self, kind: str) -> list[dict]:
        """All events of one kind, in capture order."""
        return [event for event in self.events if event["kind"] == kind]

    @property
    def days(self) -> int:
        """Number of recorded write days."""
        return sum(1 for event in self.events if event["kind"] == "day")

    def ingested_bytes(self) -> int:
        """Total bytes the recorded workload wrote (onboard backlog excluded).

        Derived from the ``day`` events exactly as the fleet model derives
        byte deltas from file deltas; the denominator of the what-if
        runner's write-amplification metric.
        """
        from repro.fleet.model import LARGE_MEAN_BYTES, MID_MEAN_BYTES, TINY_MEAN_BYTES

        total = 0
        for event in self.events:
            if event["kind"] != "day":
                continue
            total += sum(event["tiny"]) * TINY_MEAN_BYTES
            total += sum(event["mid"]) * MID_MEAN_BYTES
            total += sum(event["large"]) * LARGE_MEAN_BYTES
        return total


class TraceWriter:
    """Streams trace records to a file path or text stream.

    Args:
        sink: a path (opened/truncated on first write, closed by
            :meth:`close`) or an open text stream (left open).
    """

    def __init__(self, sink: str | os.PathLike | IO[str]) -> None:
        if isinstance(sink, (str, os.PathLike)):
            self._stream: IO[str] = open(sink, "w", encoding="utf-8")
            self._owns_stream = True
        else:
            self._stream = sink
            self._owns_stream = False
        self.records_written = 0

    def write(self, record: dict) -> None:
        """Append one record as a canonical JSON line."""
        self._stream.write(canonical_json(record))
        self._stream.write("\n")
        self.records_written += 1

    def close(self) -> None:
        """Flush, and close the stream if this writer opened it."""
        self._stream.flush()
        if self._owns_stream:
            self._stream.close()


class TraceReader:
    """Parses and validates a JSONL trace.

    Validation covers structure (header first, matching schema version,
    known event kinds, required fields per kind) and ordering (event days
    non-decreasing, onboard column lengths consistent), failing fast with
    the offending line number.
    """

    def __init__(self, source: str | os.PathLike | IO[str] | Iterable[str]) -> None:
        self._source = source

    def _lines(self) -> Iterator[str]:
        source = self._source
        if isinstance(source, (str, os.PathLike)):
            with open(source, "r", encoding="utf-8") as stream:
                yield from stream
        elif isinstance(source, io.TextIOBase):
            source.seek(0)
            yield from source
        else:
            yield from source

    def read(self) -> Trace:
        """Parse the whole trace, validating as it goes.

        Raises:
            TraceValidationError: on any schema or ordering violation.
        """
        header: dict | None = None
        events: list[dict] = []
        last_day = -1
        for line_number, line in enumerate(self._lines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceValidationError(f"invalid JSON: {error}", line_number) from None
            if not isinstance(record, dict) or "kind" not in record:
                raise TraceValidationError("record must be an object with a 'kind'", line_number)
            kind = record["kind"]
            if header is None:
                if kind != "header":
                    raise TraceValidationError(
                        f"first record must be the header, got {kind!r}", line_number
                    )
                self._validate_header(record, line_number)
                header = record
                continue
            if kind == "header":
                raise TraceValidationError("duplicate header", line_number)
            if kind not in TRACE_EVENT_KINDS:
                raise TraceValidationError(
                    f"unknown event kind {kind!r}; expected one of {TRACE_EVENT_KINDS}",
                    line_number,
                )
            day = self._validate_event(record, line_number)
            if day < last_day:
                raise TraceValidationError(
                    f"event days must be non-decreasing (day {day} after {last_day})",
                    line_number,
                )
            last_day = day
            events.append(record)
        if header is None:
            raise TraceValidationError("empty trace (no header)")
        return Trace(header=header, events=events)

    @staticmethod
    def _validate_header(record: dict, line: int) -> None:
        schema = record.get("schema")
        if schema != TRACE_SCHEMA_VERSION:
            raise TraceValidationError(
                f"unsupported schema version {schema!r} "
                f"(this reader supports {TRACE_SCHEMA_VERSION})",
                line,
            )
        for required in ("seed", "config"):
            if required not in record:
                raise TraceValidationError(f"header missing {required!r}", line)
        try:
            FleetConfig(**record["config"])
        except TypeError as error:
            raise TraceValidationError(f"header config invalid: {error}", line) from None

    @staticmethod
    def _validate_event(record: dict, line: int) -> int:
        kind = record["kind"]
        day = record.get("day")
        if not isinstance(day, int) or day < 0:
            raise TraceValidationError(f"{kind} event needs a non-negative integer day", line)
        if kind == "onboard":
            columns = record.get("columns")
            if not isinstance(columns, dict):
                raise TraceValidationError("onboard event needs a columns mapping", line)
            missing = [name for name in TABLE_COLUMNS if name not in columns]
            if missing:
                raise TraceValidationError(f"onboard columns missing {missing}", line)
            lengths = {len(columns[name]) for name in TABLE_COLUMNS}
            if len(lengths) != 1:
                raise TraceValidationError(
                    f"onboard column lengths differ: {sorted(lengths)}", line
                )
            if record.get("count") != lengths.pop():
                raise TraceValidationError("onboard count does not match column length", line)
        elif kind == "day":
            for name in ("indices", "tiny", "mid", "large"):
                if not isinstance(record.get(name), list):
                    raise TraceValidationError(f"day event needs list {name!r}", line)
            n = len(record["indices"])
            if any(len(record[name]) != n for name in ("tiny", "mid", "large")):
                raise TraceValidationError("day event delta lists must align", line)
        elif kind == "compact":
            state = record.get("state")
            if not isinstance(state, dict):
                raise TraceValidationError("compact event needs a state mapping", line)
            missing = [name for name in COMPACT_STATE_FIELDS if name not in state]
            if missing:
                raise TraceValidationError(f"compact state missing {missing}", line)
            if not isinstance(record.get("index"), int):
                raise TraceValidationError("compact event needs an integer index", line)
        return day
