"""Catalog trace capture: checkpoints, recorder, and the history ring.

Three pieces turn a live LST-catalog deployment (§6's setting) into
replayable traces:

* :func:`catalog_checkpoint` — a frozen, JSON-safe snapshot of an entire
  :class:`~repro.catalog.catalog.Catalog` (databases, table definitions,
  live file layouts, version/id counters), from which
  :func:`restore_checkpoint` rebuilds an equivalent catalog without the
  events that produced it;
* :class:`CatalogTraceRecorder` — the catalog analogue of
  :class:`~repro.replay.recorder.TraceRecorder`: subscribes to the
  catalog-scoped event kinds on a :class:`~repro.simulation.taps.TapBus`
  and streams them to a (optionally chunked/compressed) trace, rotating on
  checkpoint boundaries for month-scale runs;
* :class:`CatalogHistoryRing` — a bounded in-memory ring of trace
  segments, each opening with a checkpoint, that lets a running
  :class:`~repro.core.service.AutoCompService` hand its own recent history
  to the what-if machinery (``evaluate_recent``) without unbounded growth:
  old segments fall off the back, and any suffix of the ring is a valid
  standalone trace because every segment boundary carries a checkpoint.
"""

from __future__ import annotations

import os
from collections import deque
from typing import IO

from repro.catalog.catalog import Catalog
from repro.catalog.serde import (
    serialize_cluster,
    serialize_policy,
    serialize_properties,
    serialize_schema,
    serialize_spec,
)
from repro.errors import ValidationError
from repro.replay.trace import TRACE_SCHEMA_VERSION, Trace, TraceWriter
from repro.simulation.taps import CATALOG_EVENT_KINDS, TapBus


def catalog_header(
    seed: int,
    warehouse: str = "/data",
    cluster=None,
    workload: dict | None = None,
) -> dict:
    """The schema-v2 header record for a catalog trace.

    ``cluster`` (the compaction cluster the recorded deployment ran
    AutoComp on) is serialized so replays rebuild the same cost surface —
    compaction durations and GBHr depend on executor count and memory.
    """
    catalog_info: dict = {"warehouse": warehouse}
    if cluster is not None:
        catalog_info["cluster"] = serialize_cluster(cluster)
    if workload:
        catalog_info["workload"] = dict(workload)
    return {
        "kind": "header",
        "schema": TRACE_SCHEMA_VERSION,
        "trace_type": "catalog",
        "seed": int(seed),
        "catalog": catalog_info,
    }


def catalog_checkpoint(catalog: Catalog, t: float | None = None) -> dict:
    """A ``checkpoint`` event freezing the catalog's current state.

    Captures everything :func:`restore_checkpoint` needs: per-database
    quotas, per-table definitions (schema/spec/policy/properties), the
    live data/delete file layout, and the version / file-id / snapshot-id
    counters that keep post-checkpoint replays allocating exactly the ids
    the source run allocated.
    """
    now = catalog.clock.now if t is None else t
    databases = []
    for db_name in catalog.list_databases():
        database = catalog.database(db_name)
        tables = []
        for table_name in sorted(database.tables):
            table = database.tables[table_name]
            policy = catalog.policy(f"{db_name}.{table_name}")
            snap = table.current_snapshot()
            files = sorted(table.live_files(), key=lambda f: f.file_id)
            deletes = sorted(
                snap.delete_files if snap is not None else (), key=lambda d: d.file_id
            )
            tables.append(
                {
                    "table": table_name,
                    "format": table.format_name,
                    "schema": serialize_schema(table.schema),
                    "spec": serialize_spec(table.spec),
                    "properties": serialize_properties(table.properties),
                    "policy": serialize_policy(policy),
                    "created_at": table.created_at,
                    "last_modified_at": table.last_modified_at,
                    "version": table.version,
                    "next_file_id": table._next_file_id,
                    "next_snapshot_id": table._next_snapshot_id,
                    "current_snapshot_id": snap.snapshot_id if snap is not None else None,
                    "files": [[f.file_id, list(f.partition), f.size_bytes] for f in files],
                    "deletes": [
                        [d.file_id, list(d.partition), d.size_bytes, sorted(d.references)]
                        for d in deletes
                    ],
                    "partition_mtimes": [
                        [list(partition), mtime]
                        for partition, mtime in sorted(
                            table._partition_last_modified.items()
                        )
                    ],
                }
            )
        databases.append(
            {"name": db_name, "quota_objects": database.quota_objects, "tables": tables}
        )
    return {"kind": "checkpoint", "t": now, "databases": databases}


def restore_checkpoint(catalog: Catalog, event: dict) -> None:
    """Rebuild databases and tables from a ``checkpoint`` event.

    The catalog must be empty.  Restored tables hold the checkpointed live
    layout under one synthetic snapshot (pre-checkpoint snapshot history
    and metadata files are not reconstructed — two replays from the same
    checkpoint still agree exactly, which is the property what-if sweeps
    need).
    """
    from repro.catalog.serde import parse_policy, parse_schema, parse_spec

    if catalog.list_databases():
        raise ValidationError("checkpoint restore requires an empty catalog")
    for db_info in event["databases"]:
        catalog.create_database(db_info["name"], quota_objects=db_info["quota_objects"])
        for table_info in db_info["tables"]:
            table = catalog.create_table(
                f"{db_info['name']}.{table_info['table']}",
                schema=parse_schema(table_info["schema"]),
                spec=parse_spec(table_info["spec"]),
                table_format=table_info["format"],
                properties=dict(table_info["properties"]),
                policy=parse_policy(table_info["policy"]),
            )
            table.restore_state(
                version=table_info["version"],
                next_file_id=table_info["next_file_id"],
                next_snapshot_id=table_info["next_snapshot_id"],
                current_snapshot_id=table_info["current_snapshot_id"],
                created_at=table_info["created_at"],
                last_modified_at=table_info["last_modified_at"],
                files=[
                    (file_id, tuple(partition), size)
                    for file_id, partition, size in table_info["files"]
                ],
                deletes=[
                    (file_id, tuple(partition), size, frozenset(refs))
                    for file_id, partition, size, refs in table_info["deletes"]
                ],
                partition_mtimes={
                    tuple(partition): mtime
                    for partition, mtime in table_info["partition_mtimes"]
                },
            )


class CatalogTraceRecorder:
    """Records catalog events published on a bus into a JSONL trace.

    Args:
        sink: trace destination — a path (required for chunked mode) or an
            open text stream.
        taps: the bus the catalog (and pipeline) publish on; subscribe the
            recorder *before* creating databases/tables so the trace
            contains the full catalog genesis, or call
            :meth:`write_checkpoint` right after attaching to record a
            mid-life starting point instead.
        seed: root seed stamped into the header (provenance; catalog
            replay itself is deterministic without RNG).
        catalog: when given, enables :meth:`write_checkpoint` /
            checkpointed rotation.
        cluster: the compaction cluster serialized into the header so
            replays rebuild the same cost surface.
        workload: free-form JSON-safe workload metadata for the header.
        segment_records / compress: forwarded to
            :class:`~repro.replay.trace.TraceWriter` (chunked traces).
    """

    def __init__(
        self,
        sink: str | os.PathLike | IO[str],
        taps: TapBus,
        seed: int = 0,
        catalog: Catalog | None = None,
        cluster=None,
        workload: dict | None = None,
        segment_records: int | None = None,
        compress: bool = False,
    ) -> None:
        self._writer = TraceWriter(sink, segment_records=segment_records, compress=compress)
        self._taps = taps
        self._catalog = catalog
        self._closed = False
        warehouse = catalog.warehouse if catalog is not None else "/data"
        self._writer.write(
            catalog_header(seed, warehouse=warehouse, cluster=cluster, workload=workload)
        )
        for kind in CATALOG_EVENT_KINDS:
            taps.subscribe(kind, self._on_event)

    @property
    def events_recorded(self) -> int:
        """Events written so far (header excluded)."""
        return max(self._writer.records_written - 1, 0)

    def write_checkpoint(self) -> None:
        """Append a checkpoint of the bound catalog's current state.

        Raises:
            ValidationError: when the recorder has no catalog bound.
        """
        if self._catalog is None:
            raise ValidationError("checkpoints need a catalog bound to the recorder")
        self._writer.write(catalog_checkpoint(self._catalog))

    def rotate(self, checkpoint: bool = True) -> None:
        """Seal the current segment; optionally open the next with a checkpoint.

        Month-scale recordings rotate periodically so any suffix of
        segments replays standalone (each post-rotation segment begins
        with the catalog state it assumes).
        """
        self._writer.rotate()
        if checkpoint and self._catalog is not None:
            self.write_checkpoint()

    def _on_event(self, kind: str, payload: dict) -> None:
        if self._closed:
            return
        self._writer.write({"kind": kind, **payload})

    def close(self) -> None:
        """Unsubscribe and flush/close the underlying writer (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for kind in CATALOG_EVENT_KINDS:
            self._taps.unsubscribe(kind, self._on_event)
        self._writer.close()

    def __enter__(self) -> "CatalogTraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class CatalogHistoryRing:
    """A bounded ring of in-memory trace segments over a live catalog.

    The deployment self-evaluation substrate:
    :meth:`~repro.core.service.AutoCompService.evaluate_recent` asks the
    ring for a :class:`~repro.replay.trace.Trace` covering the last
    ``window`` segments and sweeps policy variants over it offline.  Every
    segment opens with a :func:`catalog_checkpoint`, so dropping old
    segments never breaks replayability; segments seal after
    ``segment_cycles`` recorded cycle events and the ring keeps at most
    ``max_segments`` of them (the current, still-open segment included).

    Args:
        catalog: the live catalog whose events are ring-buffered.
        taps: the bus catalog/pipeline events arrive on.
        seed: stamped into generated trace headers.
        cluster: compaction cluster serialized into generated headers.
        segment_cycles: cycle events per segment before sealing.
        max_segments: ring capacity (oldest segments are evicted).
        segment_events: hard per-segment event cap — a segment also seals
            when it reaches this many events, so a service that stops
            cycling (expired trigger) under a workload that keeps
            committing still holds at most ``max_segments × segment_events``
            events instead of growing one open segment without bound.
    """

    def __init__(
        self,
        catalog: Catalog,
        taps: TapBus,
        seed: int = 0,
        cluster=None,
        segment_cycles: int = 8,
        max_segments: int = 8,
        segment_events: int = 4096,
    ) -> None:
        if segment_cycles <= 0:
            raise ValidationError("segment_cycles must be positive")
        if max_segments <= 0:
            raise ValidationError("max_segments must be positive")
        if segment_events <= 0:
            raise ValidationError("segment_events must be positive")
        self.catalog = catalog
        self.seed = seed
        self.cluster = cluster
        self.segment_cycles = segment_cycles
        self.max_segments = max_segments
        self.segment_events = segment_events
        self._taps = taps
        self._segments: deque[list[dict]] = deque()
        self._cycles_in_segment = 0
        self.events_recorded = 0
        self._closed = False
        self._begin_segment()
        for kind in CATALOG_EVENT_KINDS:
            taps.subscribe(kind, self._on_event)

    @property
    def n_segments(self) -> int:
        """Segments currently held (the open one included)."""
        return len(self._segments)

    def _begin_segment(self) -> None:
        self._segments.append([catalog_checkpoint(self.catalog)])
        self._cycles_in_segment = 0
        while len(self._segments) > self.max_segments:
            self._segments.popleft()

    def _on_event(self, kind: str, payload: dict) -> None:
        if self._closed:
            return
        self._segments[-1].append({"kind": kind, **payload})
        self.events_recorded += 1
        if kind == "cycle":
            self._cycles_in_segment += 1
            if self._cycles_in_segment >= self.segment_cycles:
                self._begin_segment()
                return
        # The checkpoint does not count against the cap (> rather than >=
        # would re-seal immediately on a 1-event segment).
        if len(self._segments[-1]) - 1 >= self.segment_events:
            self._begin_segment()

    def trace(self, window: int | None = None) -> Trace:
        """A standalone trace over the last ``window`` segments (None = all).

        The first included segment contributes its opening checkpoint;
        later segments contribute events only (their checkpoints are
        redundant restatements of already-replayed state).

        Ring edges degrade to "evaluate what exists" instead of raising:
        a ``window`` larger than the recorded history clamps to the whole
        ring (the unsealed trailing segment included), and ``window=0``
        yields a minimal trace holding one fresh checkpoint of the
        catalog's *current* state — replayable, zero recorded history.
        Only a negative window is a caller error.
        """
        if window is not None and window < 0:
            raise ValidationError("window must be non-negative")
        header = catalog_header(
            self.seed, warehouse=self.catalog.warehouse, cluster=self.cluster
        )
        if window == 0:
            return Trace(header=header, events=[catalog_checkpoint(self.catalog)])
        segments = list(self._segments)
        if window is not None:
            segments = segments[-window:]  # clamps when window > len
        events: list[dict] = list(segments[0])
        for segment in segments[1:]:
            events.extend(e for e in segment if e["kind"] != "checkpoint")
        return Trace(header=header, events=events)

    def save(self, path: str | os.PathLike, window: int | None = None, **writer_kwargs) -> None:
        """Persist the ring (or a window of it) as a trace file."""
        trace = self.trace(window)
        writer = TraceWriter(path, **writer_kwargs)
        try:
            writer.write(trace.header)
            for event in trace.events:
                writer.write(event)
        finally:
            writer.close()

    def spill(self, path: str | os.PathLike, compress: bool = True, **writer_kwargs) -> int:
        """Persist the whole ring, one chunked trace segment per ring segment.

        Unlike :meth:`save` (which flattens a window into one replayable
        event stream), ``spill`` preserves the ring's *structure*: every
        segment keeps its opening checkpoint and the writer rotates at
        each segment boundary, so :meth:`load` can rebuild an equivalent
        ring — same segment boundaries, same events — after a daemon
        restart.  The unsealed trailing segment spills too.

        Returns the number of ring segments written.
        """
        writer = TraceWriter(path, compress=compress, **writer_kwargs)
        try:
            writer.write(
                catalog_header(
                    self.seed, warehouse=self.catalog.warehouse, cluster=self.cluster
                )
            )
            for segment in self._segments:
                for event in segment:
                    writer.write(event)
                if writer.chunked:
                    writer.rotate()  # one trace segment per ring segment
        finally:
            writer.close()
        return len(self._segments)

    def load(self, path: str | os.PathLike) -> int:
        """Rebuild the ring from a :meth:`spill` file (or any catalog trace).

        Replaces the current segments with the spilled ones, splitting the
        event stream at ``checkpoint`` boundaries (each spilled ring
        segment opened with one), trimming to ``max_segments``, and
        resuming recording into the restored trailing segment — so a
        restarted service's :meth:`trace` yields the same events, and
        ``evaluate_recent`` the same rankings, as before the restart.

        Returns the number of segments restored.
        """
        from repro.replay.trace import TraceReader

        trace = TraceReader(path).read()
        segments: list[list[dict]] = []
        for event in trace.events:
            if event["kind"] == "checkpoint" or not segments:
                segments.append([])
            segments[-1].append(event)
        if not segments:
            segments = [[catalog_checkpoint(self.catalog)]]
        self._segments = deque(segments[-self.max_segments :])
        self._cycles_in_segment = sum(
            1 for e in self._segments[-1] if e["kind"] == "cycle"
        )
        self.events_recorded = sum(
            1 for s in self._segments for e in s if e["kind"] != "checkpoint"
        )
        return len(self._segments)

    def close(self) -> None:
        """Unsubscribe from the bus (idempotent); segments stay readable."""
        if self._closed:
            return
        self._closed = True
        for kind in CATALOG_EVENT_KINDS:
            self._taps.unsubscribe(kind, self._on_event)
