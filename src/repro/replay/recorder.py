"""Trace capture: subscribe to fleet events, serialize them to JSONL.

A :class:`TraceRecorder` sits between a :class:`~repro.simulation.taps.TapBus`
and a :class:`~repro.replay.trace.TraceWriter`: the fleet model publishes
``onboard`` / ``day`` / ``compact`` events as it mutates (and the fleet
simulator publishes ``cycle`` summaries), and the recorder writes each one
through verbatim, prefixed by a seed-stamped header.

Typical wiring::

    taps = TapBus()
    config = FleetConfig(initial_tables=500, seed=7)
    recorder = TraceRecorder("run.trace.jsonl", taps, config=config)
    sim = FleetSimulator(config, taps=taps)   # initial onboard recorded
    sim.set_strategy(0, AutoCompStrategy(sim.model, k=10))
    sim.run_days(30)
    recorder.close()

The recorder subscribes *before* the model onboards its initial population,
so the trace always contains the complete fleet history — a replayer needs
no out-of-band state.
"""

from __future__ import annotations

import dataclasses
import os
from typing import IO

from repro.errors import ValidationError
from repro.fleet.model import FleetConfig
from repro.replay.trace import TRACE_EVENT_KINDS, TRACE_SCHEMA_VERSION, TraceWriter
from repro.simulation.taps import TapBus


class TraceRecorder:
    """Records every fleet event published on a bus into a JSONL trace.

    Args:
        sink: trace destination — a path or an open text stream (e.g. an
            ``io.StringIO`` for in-memory capture).
        taps: the bus the fleet publishes on; the recorder subscribes to
            every trace-relevant kind immediately.
        config: the fleet configuration stamped into the header.  Must be
            set (here or via :meth:`bind_config`) before the first event
            arrives — i.e. before the recorded :class:`~repro.fleet.FleetModel`
            is constructed, since construction onboards the initial
            population.
        segment_records: chunk the trace into segment files of this many
            events (see :class:`~repro.replay.trace.TraceWriter`; requires
            a path sink).  Month-scale fleets should chunk: a 30-day
            1.2k-table trace is ~8 MiB as one plain file.
        compress: gzip each segment deterministically (implies chunking).
    """

    def __init__(
        self,
        sink: str | os.PathLike | IO[str],
        taps: TapBus,
        config: FleetConfig | None = None,
        segment_records: int | None = None,
        compress: bool = False,
    ) -> None:
        self._writer = TraceWriter(sink, segment_records=segment_records, compress=compress)
        self._taps = taps
        self._header_written = False
        self._config = config
        self._closed = False
        for kind in TRACE_EVENT_KINDS:
            taps.subscribe(kind, self._on_event)

    @property
    def events_recorded(self) -> int:
        """Events written so far (header excluded)."""
        return max(self._writer.records_written - (1 if self._header_written else 0), 0)

    def bind_config(self, config: FleetConfig) -> "TraceRecorder":
        """Associate the fleet config stamped into the header; returns self.

        Optional when the fleet is built *after* the recorder (the normal
        wiring): the first :meth:`write_header` caller supplies it.
        """
        self._config = config
        return self

    def write_header(self, config: FleetConfig | None = None) -> None:
        """Write the seed-stamped header (idempotent)."""
        if self._header_written:
            return
        config = config if config is not None else self._config
        if config is None:
            raise ValidationError(
                "TraceRecorder has no FleetConfig for the header; "
                "call bind_config() or pass one"
            )
        self._config = config
        self._writer.write(
            {
                "kind": "header",
                "schema": TRACE_SCHEMA_VERSION,
                "seed": config.seed,
                "config": dataclasses.asdict(config),
            }
        )
        self._header_written = True

    def rotate(self) -> None:
        """Seal the current trace segment (chunked writers only)."""
        self._writer.rotate()

    def _on_event(self, kind: str, payload: dict) -> None:
        if self._closed:
            return
        if not self._header_written:
            # The first event a fleet publishes is its initial onboard;
            # require the config to have been bound by then.
            self.write_header()
        self._writer.write({"kind": kind, **payload})

    def close(self) -> None:
        """Unsubscribe and flush/close the underlying writer (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for kind in TRACE_EVENT_KINDS:
            self._taps.unsubscribe(kind, self._on_event)
        self._writer.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
