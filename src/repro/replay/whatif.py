"""What-if search: fan policy variants out over a worker pool, rank them.

Given one recorded trace and a set of :class:`~repro.replay.variants.PolicyVariant`
points (a grid, a random sample, or hand-picked configurations), the
:class:`WhatIfRunner` replays the trace once per variant, scores every
outcome with :mod:`repro.analysis.metrics` — file-count reduction against
the no-compaction baseline, GBHr spent, write amplification, task-failure
rate — and returns a ranked :class:`WhatIfReport`.

Replays are embarrassingly parallel (each variant owns its reconstructed
fleet), so the runner fans variants out over the scale-out plane's
persistent :class:`~repro.core.workers.WorkerPool` (the same subsystem
behind process-mode shard workers): at most ``workers`` replays in
flight, results always assembled in deterministic variant order
regardless of completion order.  Replay is CPU-bound Python, so traces
read from a *path* are evaluated in **process** mode (each worker parses
and replays independently); in-memory traces fall back to thread mode.
The pool persists across :meth:`WhatIfRunner.run` calls — close the
runner (or use it as a context manager) when done.

The report's winner doubles as an offline prior: :meth:`WhatIfReport.to_priors`
feeds :meth:`repro.core.autotune.Optimizer.optimize`'s warm start and
:meth:`WhatIfReport.prior_efficiencies` seeds
:class:`~repro.core.weight_learning.WeightLearner`'s expectation.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.analysis.metrics import (
    reduction_efficiency,
    task_failure_rate,
    write_amplification,
)
from repro.analysis.reporting import bar_chart, render_table
from repro.core.workers import WorkerPool, process_workers_available
from repro.errors import ValidationError
from repro.replay.replayer import ReplayResult, TraceReplayer
from repro.replay.trace import Trace, TraceReader
from repro.replay.variants import PolicyVariant

#: Orderings the report can rank by (all "best first").
RANK_MODES = ("efficiency", "files_reduced", "gbhr")


@dataclass(frozen=True)
class VariantScore:
    """One variant's scored outcome over a recorded trace."""

    variant: PolicyVariant
    #: Fleet files at the end of the replay.
    files_final: int
    #: Net files removed by this variant's compactions.
    files_reduced: int
    #: Fractional file-count reduction vs the no-compaction baseline replay.
    reduction_vs_baseline: float
    #: Total compute spent.
    gbhr: float
    #: Bytes rewritten per byte ingested by the recorded workload.
    write_amplification: float
    #: Failed tasks over executed tasks.
    task_failure_rate: float
    #: Files removed per GBHr (the default ranking key).
    efficiency: float
    #: Cycles run / act-phase tasks executed.
    cycles: int
    tasks: int
    #: Determinism fingerprint of the replay's cycle reports.
    report_digest: str


@dataclass
class WhatIfReport:
    """Ranked outcome of one what-if sweep."""

    scores: list[VariantScore] = field(default_factory=list)
    baseline_files_final: int = 0
    rank_by: str = "efficiency"
    wall_s: float = 0.0
    workers: int = 1

    def ranked(self) -> list[VariantScore]:
        """Scores best-first under ``rank_by`` (ties broken by variant name)."""
        if self.rank_by == "gbhr":
            # Cheapest first, but among equally cheap variants prefer the
            # one that reduced more files — otherwise a do-nothing variant
            # (0 GBHr, 0 files reduced) always ranks first.
            key = lambda s: (s.gbhr, -s.files_reduced, s.variant.name)  # noqa: E731
            return sorted(self.scores, key=key)
        attribute = {"efficiency": "efficiency", "files_reduced": "files_reduced"}[
            self.rank_by
        ]
        return sorted(
            self.scores, key=lambda s: (-getattr(s, attribute), s.variant.name)
        )

    def best(self) -> VariantScore:
        """The top-ranked variant.

        Raises:
            ValidationError: when the sweep produced no scores.
        """
        ranked = self.ranked()
        if not ranked:
            raise ValidationError("what-if sweep produced no scores")
        return ranked[0]

    def to_priors(self) -> dict[str, float]:
        """The winner's knobs as a warm start for offline tuning.

        Feed to :meth:`repro.core.autotune.Optimizer.optimize` as
        ``warm_start`` (parameter names match the common trigger/weight
        search spaces) — the optimizer then starts from the trace-validated
        incumbent instead of a cold corner.
        """
        best = self.best().variant
        priors: dict[str, float] = {
            "trigger_interval_days": float(best.trigger_interval_days),
            "min_small_files": float(best.min_small_files),
        }
        if best.ranking == "weighted":
            # Quota-aware winners never read benefit_weight, so emitting it
            # would anchor the optimizer at an unvalidated default.
            priors["benefit_weight"] = best.benefit_weight
        if best.budget_gbhr is not None:
            priors["budget_gbhr"] = best.budget_gbhr
        elif best.k is not None:
            priors["k"] = float(best.k)
        return priors

    def prior_efficiencies(self) -> list[float]:
        """Per-variant efficiencies, best first (a WeightLearner prior)."""
        return [score.efficiency for score in self.ranked()]

    def render(self, width: int = 32) -> str:
        """The ranked comparison as an aligned table plus an efficiency chart."""
        ranked = self.ranked()
        rows = []
        for position, score in enumerate(ranked, start=1):
            rows.append(
                [
                    position,
                    score.variant.name,
                    score.files_final,
                    f"{score.reduction_vs_baseline:.1%}",
                    f"{score.gbhr:.1f}",
                    f"{score.efficiency:.1f}",
                    f"{score.write_amplification:.2f}",
                    f"{score.task_failure_rate:.1%}",
                    score.cycles,
                ]
            )
        table = render_table(
            [
                "#",
                "variant",
                "files",
                "dFiles vs none",
                "GBHr",
                "files/GBHr",
                "write amp",
                "fail rate",
                "cycles",
            ],
            rows,
        )
        chart = bar_chart(
            [score.variant.name for score in ranked],
            [round(score.efficiency, 1) for score in ranked],
            width=width,
            unit=" files/GBHr",
        )
        return f"{table}\n\n{chart}"


def _summarize(result: ReplayResult) -> dict:
    """A picklable summary of one replay (what crosses process boundaries)."""
    return {
        "files_final": result.files_final,
        "files_reduced": result.total_files_reduced,
        "gbhr": result.total_gbhr,
        "rewritten_bytes": result.total_rewritten_bytes,
        "tasks": result.tasks,
        "failures": result.failures,
        "cycles": len(result.reports),
        "report_digest": result.report_digest(),
    }


def build_replayer(trace: Trace | str | os.PathLike):
    """The right replayer for a trace: fleet or catalog, by header type.

    The single dispatch seam the what-if machinery goes through, so
    catalog traces (schema v2) sweep through exactly the same runner,
    scoring and ranking as fleet traces.
    """
    parsed = trace if isinstance(trace, Trace) else TraceReader(trace).read()
    if parsed.trace_type == "catalog":
        from repro.replay.catalog_replay import CatalogReplayer

        return CatalogReplayer(parsed)
    return TraceReplayer(parsed)


#: Per-process replayer memo: pool workers handle many variants, so each
#: worker parses (and base-snapshots) a given trace file exactly once.
#: Keyed by (path, size, mtime) so a rewritten trace is never served stale.
_REPLAYER_CACHE: dict[tuple, object] = {}


def _replay_variant(
    trace_source: str | Trace, variant: PolicyVariant, perturb=None
) -> dict:
    """Worker entry point: replay one variant, return its summary.

    Module-level (not a closure) so process pools can pickle it; paths go
    through the per-process replayer memo, in-memory traces are replayed
    directly.
    """
    if isinstance(trace_source, Trace):
        replayer = build_replayer(trace_source)
    else:
        stat = os.stat(trace_source)
        key = (os.path.abspath(trace_source), stat.st_size, stat.st_mtime_ns)
        replayer = _REPLAYER_CACHE.get(key)
        if replayer is None:
            _REPLAYER_CACHE.clear()
            replayer = _REPLAYER_CACHE[key] = build_replayer(trace_source)
    return _summarize(replayer.replay(variant, perturb=perturb))


class WhatIfRunner:
    """Sweeps policy variants over one recorded trace.

    Args:
        trace: a trace path (enables process-pool parallelism) or a parsed
            :class:`~repro.replay.trace.Trace` (thread pool only).  Fleet
            and catalog traces both work — the runner dispatches on the
            header's ``trace_type``.
        variants: the policy points to evaluate; names must be unique.
        rank_by: ranking key for the report (one of :data:`RANK_MODES`).
        perturb: optional :class:`~repro.replay.perturb.Perturbation`
            (or compatible hook) applied to the recorded workload in every
            replay *including the baseline*, so counterfactual sweeps are
            scored against the workload they actually saw.  Must be
            picklable for process-pool sweeps over on-disk traces.
    """

    def __init__(
        self,
        trace: str | os.PathLike | Trace,
        variants: list[PolicyVariant],
        rank_by: str = "efficiency",
        perturb=None,
    ) -> None:
        if not variants:
            raise ValidationError("what-if search needs at least one variant")
        names = [variant.name for variant in variants]
        if len(names) != len(set(names)):
            raise ValidationError(f"variant names must be unique, got {names}")
        if rank_by not in RANK_MODES:
            raise ValidationError(
                f"unknown rank_by {rank_by!r}; expected one of {RANK_MODES}"
            )
        if isinstance(trace, Trace):
            self._trace = trace
            self._trace_path: str | None = None
        else:
            self._trace_path = os.fspath(trace)
            self._trace = TraceReader(self._trace_path).read()
        self.variants = list(variants)
        self.rank_by = rank_by
        self.perturb = perturb
        # Trace, variants and perturbation are fixed at construction, so
        # the replayer (with its base-state snapshot) and the
        # no-compaction baseline are computed once and shared by every
        # run() call.
        self._replayer: object | None = None
        self._baseline: ReplayResult | None = None
        # Persistent worker pool, shared across run() calls (recreated only
        # when a run asks for a different width).
        self._pool: WorkerPool | None = None

    @property
    def worker_mode(self) -> str:
        """The pool mode sweeps use: processes for on-disk traces (replay
        is CPU-bound Python), threads for in-memory ones (the parsed trace
        cannot cheaply cross a process boundary)."""
        if self._trace_path is not None and process_workers_available():
            return "processes"
        return "threads"

    def close(self) -> None:
        """Shut the persistent sweep pool down (idempotent)."""
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    def __enter__(self) -> "WhatIfRunner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def run(self, workers: int | None = None) -> WhatIfReport:
        """Evaluate every variant and return the ranked report.

        Args:
            workers: maximum replays in flight.  None picks
                ``min(cpu_count, len(variants))``; 1 runs sequentially
                (in-process, reusing one replayer's base-state snapshot).

        Scores are identical whatever the worker count — parallelism only
        changes wall-clock time.
        """
        if workers is not None and workers <= 0:
            raise ValidationError("workers must be positive")
        if workers is None:
            workers = min(os.cpu_count() or 1, len(self.variants))
        workers = min(workers, len(self.variants))

        start = time.perf_counter()
        if self._replayer is None:
            self._replayer = build_replayer(self._trace)
        replayer = self._replayer
        if self._baseline is None:
            self._baseline = replayer.replay_baseline(perturb=self.perturb)
        baseline = self._baseline
        if workers <= 1:
            summaries = [
                _summarize(replayer.replay(variant, perturb=self.perturb))
                for variant in self.variants
            ]
        else:
            summaries = self._run_pool(workers, replayer)
        ingested = self._trace.ingested_bytes(perturb=self.perturb)
        scores = [
            self._score(variant, summary, baseline.files_final, ingested)
            for variant, summary in zip(self.variants, summaries)
        ]
        return WhatIfReport(
            scores=scores,
            baseline_files_final=baseline.files_final,
            rank_by=self.rank_by,
            wall_s=time.perf_counter() - start,
            workers=workers,
        )

    def _run_pool(self, workers: int, replayer) -> list[dict]:
        """Capped fan-out; results in variant order regardless of completion."""
        mode = self.worker_mode
        pool = self._pool
        if pool is None or pool.mode != mode or pool.max_workers != workers:
            if pool is not None:
                pool.close()
            pool = self._pool = WorkerPool(mode=mode, max_workers=workers)
        if mode == "processes":
            futures = [
                pool.submit(_replay_variant, self._trace_path, variant, self.perturb)
                for variant in self.variants
            ]
            return [future.result() for future in futures]
        # In-memory trace: threads sharing the parent replayer (its base
        # snapshot is already warm from the baseline replay; each replay
        # restores into its own model, so variants never share state).
        return pool.run_tasks(
            [
                lambda v=variant: _summarize(replayer.replay(v, perturb=self.perturb))
                for variant in self.variants
            ]
        )

    @staticmethod
    def _score(
        variant: PolicyVariant, summary: dict, baseline_files: int, ingested: int
    ) -> VariantScore:
        reduction = (
            (baseline_files - summary["files_final"]) / baseline_files
            if baseline_files
            else 0.0
        )
        return VariantScore(
            variant=variant,
            files_final=summary["files_final"],
            files_reduced=summary["files_reduced"],
            reduction_vs_baseline=reduction,
            gbhr=summary["gbhr"],
            write_amplification=write_amplification(summary["rewritten_bytes"], ingested),
            task_failure_rate=task_failure_rate(summary["failures"], summary["tasks"]),
            efficiency=reduction_efficiency(summary["files_reduced"], summary["gbhr"]),
            cycles=summary["cycles"],
            tasks=summary["tasks"],
            report_digest=summary["report_digest"],
        )
